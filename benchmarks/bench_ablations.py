"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper, but sweeps over the decisions the paper makes
implicitly: fence interval (the AAM window), the tCCD_L lock-step cadence,
the number of PIM units per pseudo-channel, and the MRS-free mode switch.
"""

from dataclasses import replace

import numpy as np

from repro.perf.latency import PIM_HBM, Calibration, LatencyModel
from repro.stack.runtime import PimSystem
from repro.stack.kernels import GemvKernel


def test_ablation_fence_cost_sweep(benchmark):
    """GEMV1 time vs fence cost: the mechanism behind the fence study."""

    def sweep():
        times = {}
        for fence in (0, 11, 22, 44, 88):
            model = LatencyModel(
                replace(PIM_HBM, cal=replace(Calibration(), fence_cycles=fence))
            )
            times[fence] = model.pim_gemv(1024, 4096).ns
        return times

    times = benchmark(sweep)
    print("\nAblation: GEMV1 PIM time vs fence cost (cycles -> us)")
    for fence, ns in times.items():
        print(f"  fence={fence:3d}: {ns / 1000:8.1f} us")
    values = list(times.values())
    assert values == sorted(values)  # monotonic in fence cost
    assert values[-1] > 1.5 * values[0]


def test_ablation_tccd_lockstep_cadence(benchmark):
    """AB-mode compute bandwidth scales with tCCD_S/tCCD_L (Section III-B):
    halving the lock-step cadence halves the x8 bank factor to x4."""

    def sweep():
        out = {}
        for tccd_l in (2, 4, 8):
            model = LatencyModel(replace(PIM_HBM, tccd_l=tccd_l))
            out[tccd_l] = (
                model.sys.onchip_bw / model.sys.offchip_bw,
                model.pim_gemv(1024, 4096).ns,
            )
        return out

    table = benchmark(sweep)
    print("\nAblation: tCCD_L vs on-chip/off-chip bandwidth ratio")
    for tccd_l, (ratio, ns) in table.items():
        print(f"  tCCD_L={tccd_l}: ratio x{ratio:.0f}, GEMV1 {ns / 1000:.1f} us")
    assert table[2][0] == 8.0
    assert table[4][0] == 4.0  # the product configuration (Table V)
    assert table[8][0] == 2.0


def test_ablation_fp16_vs_int8_device(benchmark):
    """Table I ablation: what an INT8 device would have saved."""
    from repro.perf.macunits import MacUnitModel, MacUnitSpec, TABLE1_SPECS

    def compare():
        model = MacUnitModel()
        by_name = {s.name: s for s in TABLE1_SPECS}
        fp16 = model.area(by_name["FP16"])
        int8 = model.area(by_name["INT8 (w/ 32-bit Acc.)"])
        return fp16 / int8

    ratio = benchmark(compare)
    print(f"\nFP16 unit is {ratio:.1f}x the area of INT8/32 "
          "(the cost of dynamic range + legacy FP16 software)")
    assert ratio > 2.5


def test_ablation_mode_switch_overhead(benchmark):
    """The MRS-free transition costs only an ACT+PRE pair per channel —
    the paper's argument against privileged mode-register writes."""

    def measure():
        system = PimSystem(num_pchs=1, num_rows=64)
        mc = system.controller(0)
        mm = system.device.pch(0).memory_map
        start = mc.current_cycle
        mc.precharge_all()
        mc.closed_page_access(0, 0, mm.abmr_row)
        entered = mc.current_cycle - start
        return entered

    cycles = benchmark.pedantic(measure, rounds=3, iterations=1)
    print(f"\nSB->AB transition: {cycles} cycles (~{cycles:.0f} ns at 1 GHz); "
          "an MRS via a kernel call would cost microseconds")
    assert cycles < 200


def test_ablation_aam_window_equals_grf_depth(benchmark):
    """Functional check that the fence interval is tied to the 8-entry GRF:
    fencing every 8 commands is sufficient for correctness under FR-FCFS."""

    def run():
        system = PimSystem(num_pchs=1, num_rows=128)
        rng = np.random.default_rng(0)
        w = (rng.standard_normal((128, 64)) * 0.2).astype(np.float16)
        x = (rng.standard_normal(64) * 0.2).astype(np.float16)
        kernel = GemvKernel(system, 128, 64)
        kernel.load_weights(w)
        y, _ = kernel(x)
        return y, w, x

    y, w, x = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.stack.blas import gemv_reference

    assert np.array_equal(y, gemv_reference(w, x, num_pchs=1))
