"""Throughput of the pipelined serving engine vs sequential BLAS calls.

Offers the same Poisson request stream (a mixed GEMV + elementwise load)
to two executors built on identical :class:`SystemConfig` platforms:

* **sequential** — one :class:`PimBlas` call per request in arrival order,
  each paying its own kernel launch and global drain;
* **server** — :class:`PimServer` with two lanes, batching same-operator
  requests into fused launches and pipelining the GEMV lane against the
  elementwise lane in simulated time.

Outputs are asserted bit-identical; the reported metric is served
throughput versus offered load.  At loads where batches of >= 4 form, the
serving engine must clear 1.5x the sequential throughput.
"""

import numpy as np
import pytest

from repro.faults import FaultConfig
from repro.stack.api import Request, ServerConfig
from repro.stack.blas import PimBlas
from repro.stack.runtime import PimSystem, SystemConfig
from repro.stack.server import PimServer

CONFIG = SystemConfig(num_pchs=4, num_rows=256, simulate_pchs=1)
M, N, LENGTH = 64, 96, 256
FAULT_RATES = (0.0, 1e-6, 1e-4)


def make_workload(num_requests: int, mean_interarrival_ns: float, seed: int = 7):
    """A mixed GEMV/ADD stream with Poisson (exponential-gap) arrivals."""
    rng = np.random.default_rng(seed)
    w = (rng.standard_normal((M, N)) * 0.25).astype(np.float16)
    arrivals = np.cumsum(rng.exponential(mean_interarrival_ns, size=num_requests))
    requests = []
    for i in range(num_requests):
        if i % 2 == 0:
            requests.append(
                ("gemv", dict(weights=w, a=(rng.standard_normal(N) * 0.25).astype(np.float16)))
            )
        else:
            requests.append(
                (
                    "add",
                    dict(
                        a=(rng.standard_normal(LENGTH) * 0.25).astype(np.float16),
                        b=(rng.standard_normal(LENGTH) * 0.25).astype(np.float16),
                    ),
                )
            )
    return [(op, kw, float(t)) for (op, kw), t in zip(requests, arrivals)]


def run_sequential(workload):
    """Serve the stream one BLAS call at a time; returns (results, makespan_ns)."""
    system = PimSystem(CONFIG)
    blas = PimBlas(system, simulate_pchs=CONFIG.simulate_pchs)
    ready = 0.0
    results = []
    for op, kw, arrival in workload:
        if op == "gemv":
            y, report = blas.gemv(kw["weights"], kw["a"])
        else:
            y, report = blas.add(kw["a"], kw["b"])
        ready = max(ready, arrival) + report.ns
        results.append(y)
    return results, ready


def run_server(workload, lanes=2, max_batch=8, config=CONFIG, **server_knobs):
    """Serve the stream through PimServer; returns (results, profile)."""
    system = PimSystem(config)
    server_config = ServerConfig(
        lanes=lanes,
        max_batch=max_batch,
        simulate_pchs=config.simulate_pchs,
        **server_knobs,
    )
    with PimServer(system, server_config) as server:
        handles = [
            server.submit(Request(op, arrival_ns=arrival, **kw))
            for op, kw, arrival in workload
        ]
        profile = server.run()
    return [h.result for h in handles], profile


def run_bounded_server(workload, queue_depth=8, admission="shed"):
    """Serve through a bounded-queue server; returns (handles, profile)."""
    system = PimSystem(CONFIG)
    server_config = ServerConfig(
        lanes=2,
        max_batch=8,
        simulate_pchs=CONFIG.simulate_pchs,
        queue_depth=queue_depth,
        admission=admission,
    )
    with PimServer(system, server_config) as server:
        handles = [
            server.submit(Request(op, arrival_ns=arrival, **kw))
            for op, kw, arrival in workload
        ]
        profile = server.run()
    return handles, profile


def faulty_config(rate: float) -> SystemConfig:
    """The benchmark platform hardened with ECC, scrub, and bit flips."""
    faults = FaultConfig(bit_flip_rate=rate, check_flip_rate=rate, seed=7)
    return CONFIG.replace(
        ecc=True,
        faults=faults if faults.active else None,
        scrub_interval=2,
    )


def test_serving_bit_exact_and_speedup(benchmark):
    """At saturating load the server is >= 1.5x sequential, bit-exactly."""
    workload = make_workload(num_requests=32, mean_interarrival_ns=500.0)

    def measure():
        seq_results, seq_makespan = run_sequential(workload)
        srv_results, profile = run_server(workload, lanes=2, max_batch=8)
        return seq_results, seq_makespan, srv_results, profile

    seq_results, seq_makespan, srv_results, profile = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    for a, b in zip(seq_results, srv_results):
        assert np.array_equal(a, b)
    speedup = seq_makespan / profile.makespan_ns
    print(
        f"\nsequential makespan {seq_makespan / 1000:.1f} us, "
        f"server {profile.makespan_ns / 1000:.1f} us -> x{speedup:.2f} "
        f"(mean batch {profile.mean_batch_size():.1f})"
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["mean_batch"] = round(profile.mean_batch_size(), 2)
    assert profile.mean_batch_size() >= 4
    assert speedup >= 1.5


def test_throughput_vs_offered_load(benchmark):
    """Throughput curve: the server's margin grows as batches fill."""

    def sweep():
        rows = []
        for gap_ns in (8000.0, 4000.0, 2000.0, 1000.0, 500.0):
            workload = make_workload(num_requests=24, mean_interarrival_ns=gap_ns)
            _, seq_makespan = run_sequential(workload)
            _, profile = run_server(workload)
            rows.append(
                (
                    gap_ns,
                    len(workload) / seq_makespan * 1e9,
                    profile.throughput_rps(),
                    profile.mean_batch_size(),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n  offered gap   seq req/s   server req/s   mean batch")
    for gap, seq_rps, srv_rps, batch in rows:
        print(f"  {gap:8.0f}ns {seq_rps:11,.0f} {srv_rps:14,.0f} {batch:10.1f}")
    # The server never loses, and wins at saturation.
    assert all(srv >= seq * 0.95 for _, seq, srv, _ in rows)
    assert rows[-1][2] >= rows[-1][1] * 1.5


def test_goodput_vs_offered_load(benchmark):
    """Goodput saturates gracefully under overload instead of collapsing.

    A bounded-queue shedding server is offered loads from well below to
    3-4x beyond saturation.  The ungated server's backlog (and turnaround)
    would grow without bound past saturation; the protected server must
    hold goodput within 10% of its saturation value while shedding the
    excess, and every submitted request must report a terminal outcome.
    """
    SATURATION_GAP_NS = 500.0

    def sweep():
        baseline = make_workload(
            num_requests=48, mean_interarrival_ns=SATURATION_GAP_NS
        )
        _, base_profile = run_server(baseline)
        rows = []
        for gap_ns in (2000.0, 1000.0, 500.0, 250.0, 125.0):
            workload = make_workload(num_requests=48, mean_interarrival_ns=gap_ns)
            handles, profile = run_bounded_server(workload)
            rows.append((gap_ns, handles, profile))
        return base_profile, rows

    base_profile, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    baseline_goodput = base_profile.goodput_rps()
    print(
        f"\n  unprotected saturation baseline: {baseline_goodput:,.0f} req/s"
    )
    print("  offered gap   goodput req/s   rejected   p95 turnaround")
    for gap_ns, handles, profile in rows:
        print(
            f"  {gap_ns:8.0f}ns {profile.goodput_rps():15,.0f} "
            f"{profile.rejected:8d} {profile.p95_turnaround_ns() / 1000:13.1f}us"
        )
        # Conservation: nothing is silently lost, ever.
        assert all(h.outcome is not None for h in handles)
        assert sum(profile.outcomes().values()) == len(handles)
        benchmark.extra_info[f"goodput@{gap_ns:g}ns"] = round(
            profile.goodput_rps()
        )
    overloaded = [r for r in rows if r[0] < SATURATION_GAP_NS]
    # Past saturation the queue bound sheds load...
    assert all(profile.rejected > 0 for _, _, profile in overloaded)
    # ...and goodput holds within 10% of the unprotected saturation
    # baseline at 2-4x offered load: graceful saturation, no cliff.
    for _, _, profile in overloaded:
        assert profile.goodput_rps() >= 0.9 * baseline_goodput
    # The bounded queue also bounds tail latency: p95 turnaround at 4x
    # offered load stays within 4x of the saturation-point p95 (an
    # unbounded queue would grow it with the backlog, without bound).
    p95_sat = next(
        p.p95_turnaround_ns() for g, _, p in rows if g == SATURATION_GAP_NS
    )
    assert rows[-1][2].p95_turnaround_ns() <= 4.0 * p95_sat


def test_throughput_vs_fault_rate(benchmark):
    """Throughput degradation under injected storage faults.

    One Poisson stream is served on ECC-hardened platforms whose fault
    injectors flip stored bits at increasing rates.  Every run must stay
    bit-exact against the fault-free run (the self-healing layer's job);
    the reported metric is the throughput each rate sustains.
    """
    workload = make_workload(num_requests=24, mean_interarrival_ns=1000.0)

    def sweep():
        rows = []
        for rate in FAULT_RATES:
            results, profile = run_server(workload, config=faulty_config(rate))
            rows.append((rate, results, profile))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    baseline = rows[0]
    print("\n  flip rate     req/s   retries   fallbacks   scrub fixed")
    for rate, results, profile in rows:
        print(
            f"  {rate:9.0e} {profile.throughput_rps():9,.0f} "
            f"{profile.retries:7d} {profile.fallbacks:11d} "
            f"{profile.scrub_corrected:13d}"
        )
        assert all(r is not None for r in results)
        for got, want in zip(results, baseline[1]):
            assert np.array_equal(got, want)
        benchmark.extra_info[f"rps@{rate:g}"] = round(profile.throughput_rps())
    # Faults cost throughput, never correctness; degradation stays bounded.
    assert rows[-1][2].throughput_rps() >= baseline[2].throughput_rps() * 0.2


def main():
    print("Serving throughput vs offered load (mixed GEMV+ADD, 2 lanes)")
    print(f"  device: {CONFIG.num_pchs} pCH, gemv {M}x{N}, add[{LENGTH}]")
    print("  offered gap   seq req/s   server req/s   mean batch   speedup")
    for gap_ns in (8000.0, 4000.0, 2000.0, 1000.0, 500.0):
        workload = make_workload(num_requests=32, mean_interarrival_ns=gap_ns)
        seq_results, seq_makespan = run_sequential(workload)
        srv_results, profile = run_server(workload)
        assert all(
            np.array_equal(a, b) for a, b in zip(seq_results, srv_results)
        ), "serving results diverged from sequential"
        seq_rps = len(workload) / seq_makespan * 1e9
        print(
            f"  {gap_ns:8.0f}ns {seq_rps:11,.0f} {profile.throughput_rps():14,.0f} "
            f"{profile.mean_batch_size():10.1f} {profile.throughput_rps() / seq_rps:9.2f}x"
        )

    print("\nGoodput vs offered load (queue_depth=8, admission=shed)")
    print("  offered gap   goodput req/s   rejected   p95 turnaround")
    for gap_ns in (2000.0, 1000.0, 500.0, 250.0, 125.0):
        workload = make_workload(num_requests=48, mean_interarrival_ns=gap_ns)
        handles, profile = run_bounded_server(workload)
        assert all(h.outcome is not None for h in handles), "silent loss"
        print(
            f"  {gap_ns:8.0f}ns {profile.goodput_rps():15,.0f} "
            f"{profile.rejected:8d} "
            f"{profile.p95_turnaround_ns() / 1000:13.1f}us"
        )

    print("\nThroughput vs storage fault rate (ECC + scrub every 2 batches)")
    workload = make_workload(num_requests=24, mean_interarrival_ns=1000.0)
    baseline = None
    print("  flip rate     req/s   retries   fallbacks   scrub fixed")
    for rate in FAULT_RATES:
        results, profile = run_server(workload, config=faulty_config(rate))
        if baseline is None:
            baseline = results
        assert all(
            np.array_equal(a, b) for a, b in zip(results, baseline)
        ), "faulty run diverged from the fault-free results"
        print(
            f"  {rate:9.0e} {profile.throughput_rps():9,.0f} "
            f"{profile.retries:7d} {profile.fallbacks:11d} "
            f"{profile.scrub_corrected:13d}"
        )


if __name__ == "__main__":
    main()
