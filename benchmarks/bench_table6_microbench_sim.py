"""Table VI microbenchmarks on the cycle-level functional simulator.

Runs GEMV1 (1k x 4k, full size) and a scaled ADD through the complete
device simulation — standard DRAM commands, FR-FCFS controller, PIM
triggering — with one cycle-accurately simulated pseudo-channel (all
channels execute identical streams).  Verifies bit-exact numerics against
the reference model and reports the achieved command cadence.

The larger Table VI points (GEMV4, ADD4) are covered by the analytic model
benches (Fig. 10); this bench is the ground truth that model is validated
against in tests/perf/test_latency.py.
"""

import numpy as np
import pytest

from repro.stack.blas import PimBlas, add_reference, gemv_reference
from repro.stack.runtime import PimSystem


@pytest.fixture(scope="module")
def system():
    return PimSystem(num_pchs=16, num_rows=256)


def test_gemv1_simulated(benchmark, system):
    """GEMV1: 1024 x 4096, the paper's headline 11.2x point."""
    rng = np.random.default_rng(0)
    w = (rng.standard_normal((1024, 4096)) * 0.05).astype(np.float16)
    x = (rng.standard_normal(4096) * 0.05).astype(np.float16)
    blas = PimBlas(system, simulate_pchs=1)
    operator = system.executor.gemv_operator(w)

    def run():
        return operator(x, simulate_pchs=1)

    y, report = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert np.array_equal(y, gemv_reference(w, x, num_pchs=16))
    cadence = report.cycles / (report.column_commands / report.simulated_pchs)
    print(f"\nGEMV1 simulated: {report.cycles} cycles/pCH, "
          f"{report.column_commands // report.simulated_pchs} columns/pCH, "
          f"{cadence:.1f} cycles/column")
    benchmark.extra_info["cycles_per_pch"] = report.cycles
    benchmark.extra_info["cycles_per_column"] = round(cadence, 2)
    # Fenced AB-PIM streams run well above the tCCD_L floor of 4.
    assert 4.0 <= cadence <= 16.0


def test_add_scaled_simulated(benchmark, system):
    """ADD at 1/4 of ADD1 (the stream is homogeneous, so cadence holds)."""
    n = 512 * 1024
    rng = np.random.default_rng(1)
    a = (rng.standard_normal(n)).astype(np.float16)
    b = (rng.standard_normal(n)).astype(np.float16)
    kernel = system.executor.elementwise_operator("add", n)

    def run():
        return kernel(a, b, simulate_pchs=1)

    out, report = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert np.array_equal(out, add_reference(a, b))
    cadence = report.cycles / (report.column_commands / report.simulated_pchs)
    print(f"\nADD simulated: {report.cycles} cycles/pCH, "
          f"{cadence:.1f} cycles/column")
    benchmark.extra_info["cycles_per_column"] = round(cadence, 2)


def test_bn_scaled_simulated(benchmark, system):
    n = 256 * 1024
    rng = np.random.default_rng(2)
    a = (rng.standard_normal(n)).astype(np.float16)
    kernel = system.executor.elementwise_operator("bn", n)

    def run():
        return kernel(a, scalars=(1.5, -0.5), simulate_pchs=1)

    out, report = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    expected = ((a * np.float16(1.5)).astype(np.float16) + np.float16(-0.5)).astype(np.float16)
    assert np.array_equal(out, expected)
    # BN has no FILL phase: fewer commands per element than ADD.
    benchmark.extra_info["columns"] = report.column_commands
