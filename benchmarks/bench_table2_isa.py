"""Table II — supported operations and operand-source combinations.

The paper counts 114 compute combinations (MUL 32, ADD 40, MAC 14, MAD 28)
and 24 data-movement combinations.  Our validity predicate is reconstructed
from the table's operand lists; the bench reports our enumeration next to
the paper's counts and checks that every enumerated combination encodes,
decodes and validates.
"""

from collections import Counter

from repro.pim.isa import (
    Instruction,
    Opcode,
    Operand,
    OperandSpace,
    decode,
    encode,
    legal_compute_combinations,
    legal_move_combinations,
)

PAPER_COUNTS = {"MUL": 32, "ADD": 40, "MAC": 14, "MAD": 28, "MOV": 24}


def _enumerate_and_encode():
    combos = legal_compute_combinations()
    none = Operand(OperandSpace.NONE)
    for op, s0, s1, d in combos:
        src2 = none
        if op is Opcode.MAC:
            src2 = Operand(d, 0)
        elif op is Opcode.MAD:
            src2 = Operand(OperandSpace.SRF_A, 0)
        instr = Instruction(
            op, dst=Operand(d, 0), src0=Operand(s0, 0),
            src1=Operand(s1, 0), src2=src2,
        )
        assert decode(encode(instr)).opcode is op
    return combos


def test_table2_compute_combinations(benchmark):
    combos = benchmark(_enumerate_and_encode)
    counts = Counter(op.name for op, *_ in combos)
    total = sum(counts.values())
    print("\nTable II: operand combinations (model vs paper)")
    for name in ("MUL", "ADD", "MAC", "MAD"):
        print(f"  {name}: {counts[name]} (paper {PAPER_COUNTS[name]})")
        benchmark.extra_info[name] = counts[name]
    print(f"  compute total: {total} (paper 114)")
    benchmark.extra_info["total"] = total
    assert 80 <= total <= 150


def test_table2_move_combinations(benchmark):
    combos = benchmark(legal_move_combinations)
    print(f"\n  MOV(/ReLU) data movements: {len(combos)} (paper 24)")
    assert 20 <= len(combos) <= 32
