"""Collaborative host+PIM GEMV (Section VIII future work), quantified.

Sweeps the output-row split between the PIM device and the host across
batch sizes.  At batch 1, PIM's 11x dominance makes the optimum all-PIM;
at the Fig. 10 crossover (batch ~3-4) a genuine split beats both pure
configurations — the quantitative case for the HBM3-generation
fine-grained SB/AB-PIM interleaving the paper proposes.
"""

from repro.stack.collaborative import CollaborativeGemv, optimal_split


def test_collaborative_split_sweep(benchmark):
    m, n = 8192, 4096

    def sweep():
        return {
            batch: CollaborativeGemv.sweep_split(m, n, batch=batch, points=9)
            for batch in (1, 2, 3, 4)
        }

    sweeps = benchmark(sweep)
    print(f"\nCollaborative GEMV {m}x{n}: time (us) vs PIM-side rows")
    rows_axis = sorted(next(iter(sweeps.values())))
    header = "  batch " + " ".join(f"{r:>7d}" for r in rows_axis)
    print(header)
    for batch, sweep_result in sweeps.items():
        line = f"  B{batch}    " + " ".join(
            f"{sweep_result[r] / 1000:7.1f}" for r in rows_axis
        )
        best = min(sweep_result, key=sweep_result.get)
        print(line + f"   best @ {best}")
        benchmark.extra_info[f"B{batch}_best_rows"] = best
    # Batch 1: all (or nearly all) PIM.  Crossover: interior optimum.
    assert min(sweeps[1], key=sweeps[1].get) >= m - 256
    b3_best = min(sweeps[3], key=sweeps[3].get)
    assert 0 < b3_best < m


def test_collaborative_speedup_at_crossover(benchmark):
    m, n, batch = 8192, 4096, 3

    def measure():
        sweep = CollaborativeGemv.sweep_split(m, n, batch=batch, points=33)
        best = min(sweep.values())
        return sweep[0] / best, sweep[max(sweep)] / best

    vs_host, vs_pim = benchmark(measure)
    print(f"\nAt batch {batch}, the optimal split is x{vs_host:.2f} faster than "
          f"pure host and x{vs_pim:.2f} faster than pure PIM")
    benchmark.extra_info["vs_host"] = round(vs_host, 2)
    benchmark.extra_info["vs_pim"] = round(vs_pim, 2)
    assert vs_host > 1.05 and vs_pim > 1.05


def test_optimal_split_functional_check(benchmark):
    """The chosen split computes the right answer on the simulator."""
    import numpy as np
    from repro.stack.runtime import PimSystem

    def run():
        system = PimSystem(num_pchs=2, num_rows=256)
        m, n = 512, 128
        rng = np.random.default_rng(0)
        w = (rng.standard_normal((m, n)) * 0.1).astype(np.float16)
        x = (rng.standard_normal(n) * 0.1).astype(np.float16)
        collab = CollaborativeGemv(system, m, n, pim_rows=256, simulate_pchs=1)
        collab.load_weights(w)
        y, report = collab(x)
        gold = w.astype(np.float32) @ x.astype(np.float32)
        return float(np.abs(y - gold).max()), report

    err, report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert err < 2e-3
    assert report.pim_rows == 256 and report.host_rows == 256
