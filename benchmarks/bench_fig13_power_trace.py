"""Fig. 13 — average system power of DS2 over time.

The paper's point: PIM-HBM improves DS2 energy efficiency both by running
shorter *and* at lower average power during the LSTM phases (the processor
idles while the PIM units compute).  The bench regenerates both traces and
prints a coarse time series.
"""

from repro.apps.models import DS2
from repro.perf.energy import EnergyModel
from repro.perf.latency import PIM_HBM, PROC_HBM


def _traces():
    hbm = EnergyModel(PROC_HBM)
    pim = EnergyModel(PIM_HBM)
    return hbm.power_trace(DS2, points=48), pim.power_trace(DS2, points=48)


def test_fig13_ds2_power_over_time(benchmark):
    hbm_trace, pim_trace = benchmark(_traces)
    hbm_end = hbm_trace[-1][0]
    pim_end = pim_trace[-1][0]
    print("\nFig. 13: DS2 system power over time (sampled)")
    print(f"  PROC-HBM runs {hbm_end / 1000:.1f} ms, PIM-HBM {pim_end / 1000:.1f} ms")
    for label, trace in (("PROC-HBM", hbm_trace), ("PIM-HBM", pim_trace)):
        samples = trace[:: len(trace) // 8]
        series = " ".join(f"{p:5.0f}W" for _, p in samples)
        print(f"  {label:9s} {series}")
    hbm_avg = sum(p for _, p in hbm_trace) / len(hbm_trace)
    pim_avg = sum(p for _, p in pim_trace) / len(pim_trace)
    print(f"  average power: PROC-HBM {hbm_avg:.0f} W, PIM-HBM {pim_avg:.0f} W")
    benchmark.extra_info["hbm_ms"] = round(hbm_end / 1000, 2)
    benchmark.extra_info["pim_ms"] = round(pim_end / 1000, 2)
    benchmark.extra_info["hbm_avg_w"] = round(hbm_avg, 1)
    benchmark.extra_info["pim_avg_w"] = round(pim_avg, 1)
    # Shorter execution...
    assert pim_end < hbm_end / 2
    # ...and not at the cost of higher average power.
    assert pim_avg < hbm_avg * 1.35


def test_fig13_lstm_phase_power_drops_on_pim(benchmark):
    """During offloaded LSTM phases the processor power-gates its CUs."""

    def lstm_phase_powers():
        hbm = EnergyModel(PROC_HBM)
        pim = EnergyModel(PIM_HBM)
        h = [p for p in hbm.app_phases(DS2) if p.name.startswith("lstm")]
        p = [p for p in pim.app_phases(DS2) if p.name.startswith("lstm")]
        return (
            sum(x.power_w for x in h) / len(h),
            sum(x.power_w for x in p) / len(p),
        )

    hbm_lstm_w, pim_lstm_w = benchmark(lstm_phase_powers)
    print(f"\nLSTM-phase power: PROC-HBM {hbm_lstm_w:.0f} W vs "
          f"PIM-HBM {pim_lstm_w:.0f} W")
    assert pim_lstm_w != hbm_lstm_w
