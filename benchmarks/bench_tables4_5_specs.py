"""Tables IV & V — PIM execution unit and PIM-HBM device specifications.

Every number is derived from the architectural parameters (lanes, clocks,
bank geometry); the bench renders both tables and asserts the headline
figures (9.6 GFLOPS, 1.229 TB/s, 307.2 GB/s, 6 GB).
"""

import pytest

from repro.perf.specs import PimDeviceSpec, PimUnitSpec


def test_table4_unit_spec(benchmark):
    spec = benchmark(lambda: PimUnitSpec().as_table())
    print("\nTable IV: PIM execution unit")
    for key, value in spec.items():
        print(f"  {key}: {value}")
    unit = PimUnitSpec()
    assert unit.peak_gflops == pytest.approx(9.6)
    assert unit.datapath_bits == 256
    benchmark.extra_info["gflops"] = unit.peak_gflops


def test_table5_device_spec(benchmark):
    spec = benchmark(lambda: PimDeviceSpec().as_table())
    print("\nTable V: PIM-HBM device")
    for key, value in spec.items():
        print(f"  {key}: {value}")
    device = PimDeviceSpec()
    assert device.onchip_bandwidth_tbps == pytest.approx(1.2288, rel=1e-3)
    assert device.io_bandwidth_gbps == pytest.approx(307.2)
    assert device.capacity_gbyte == 6.0
    assert device.pim_units_per_die == 32
    benchmark.extra_info["onchip_tbps"] = device.onchip_bandwidth_tbps
    benchmark.extra_info["io_gbps"] = device.io_bandwidth_gbps
