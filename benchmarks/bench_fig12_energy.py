"""Fig. 12 — relative power and energy of PROC-HBM, PIM-HBM and the
hypothetical PROC-HBMx4 for GEMV, ADD and the applications.

Paper anchors: GEMV energy efficiency 8.25x over PROC-HBM; ADD 1.4x;
DS2 3.2x / GNMT 1.38x / AlexNet 1.5x over PROC-HBM and 2.8x / 1.1x /
1.3x over PROC-HBMx4.
"""

from repro.apps.models import ALEXNET, DS2, GNMT
from repro.perf.energy import EnergyModel
from repro.perf.latency import PIM_HBM, PROC_HBM

PAPER = {
    "GEMV": {"vs_hbm": 8.25, "vs_x4": 1.0},
    "ADD": {"vs_hbm": 1.4, "vs_x4": None},
    "DS2": {"vs_hbm": 3.2, "vs_x4": 2.8},
    "GNMT": {"vs_hbm": 1.38, "vs_x4": 1.1},
    "AlexNet": {"vs_hbm": 1.5, "vs_x4": 1.3},
}


def _energy_table():
    hbm = EnergyModel(PROC_HBM)
    pim = EnergyModel(PIM_HBM)
    x4 = EnergyModel(PROC_HBM, bandwidth_scale=4.0)
    table = {}
    table["GEMV"] = (
        hbm.kernel_energy_j(hbm.gemv_phase(1024, 4096)),
        pim.kernel_energy_j(pim.gemv_phase(1024, 4096)),
        x4.kernel_energy_j(x4.gemv_phase(1024, 4096)),
    )
    table["ADD"] = (
        hbm.kernel_energy_j(hbm.add_phase(2 * 1024 * 1024)),
        pim.kernel_energy_j(pim.add_phase(2 * 1024 * 1024)),
        x4.kernel_energy_j(x4.add_phase(2 * 1024 * 1024)),
    )
    for app in (DS2, GNMT, ALEXNET):
        table[app.name] = (
            hbm.app_energy_j(app)[0],
            pim.app_energy_j(app)[0],
            x4.app_energy_j(app)[0],
        )
    return table


def test_fig12_energy_efficiency(benchmark):
    table = benchmark(_energy_table)
    print("\nFig. 12 energy efficiency of PIM-HBM")
    print(f"  {'workload':10s} {'vs PROC-HBM':>12s} {'paper':>7s} {'vs x4':>7s} {'paper':>7s}")
    for name, (e_hbm, e_pim, e_x4) in table.items():
        vs_hbm = e_hbm / e_pim
        vs_x4 = e_x4 / e_pim
        p = PAPER[name]
        paper_x4 = p["vs_x4"] if p["vs_x4"] is not None else float("nan")
        print(f"  {name:10s} {vs_hbm:12.2f} {p['vs_hbm']:7.2f} {vs_x4:7.2f} {paper_x4:7.2f}")
        benchmark.extra_info[name] = {
            "vs_hbm": round(vs_hbm, 2), "vs_x4": round(vs_x4, 2),
        }
    assert 6.5 <= table["GEMV"][0] / table["GEMV"][1] <= 10.5
    assert 1.1 <= table["ADD"][0] / table["ADD"][1] <= 1.8
    assert 2.6 <= table["DS2"][0] / table["DS2"][1] <= 3.9


def test_fig12_relative_power(benchmark):
    """The power half of Fig. 12: PIM draws more power than the stalled
    HBM host during GEMV but finishes far sooner."""

    def powers():
        hbm = EnergyModel(PROC_HBM)
        pim = EnergyModel(PIM_HBM)
        return hbm.gemv_phase(1024, 4096).power_w, pim.gemv_phase(1024, 4096).power_w

    p_hbm, p_pim = benchmark(powers)
    print(f"\nGEMV system power: PROC-HBM {p_hbm:.0f} W, PIM-HBM {p_pim:.0f} W "
          f"(ratio {p_pim / p_hbm:.2f})")
    assert 1.0 <= p_pim / p_hbm <= 2.0
