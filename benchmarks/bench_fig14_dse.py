"""Fig. 14 — design-space exploration: PIM-HBM-2x / -2BA / -SRW speedups
over the HBM host for GEMV, ADD and BN microbenchmarks.

Paper anchors (upper-bound simulation, as the paper notes): 2x ~+40%
geo-mean (+24% die area), 2BA ~+20% (esp. ADD, +60% power), SRW ~+10%
(~+25% for GEMV).  Our command-stream model reproduces the ordering and
the per-kernel benefit pattern; absolute variant gains run somewhat above
the paper's measured values because host-side issue limits inside the
authors' DRAMSim2 setup are not public (see EXPERIMENTS.md).
"""

from repro.common.units import geomean
from repro.dse.variants import VARIANTS, dse_speedups

PAPER_GEOMEAN_GAIN = {"PIM-HBM-2x": 1.40, "PIM-HBM-2BA": 1.20, "PIM-HBM-SRW": 1.10}


def test_fig14_variants(benchmark):
    results = benchmark(dse_speedups)
    base = results["PIM-HBM"]
    print("\nFig. 14: speedup over HBM host (and gain over baseline PIM)")
    header = ["GEMV1", "GEMV4", "ADD1", "ADD4", "BN1", "geomean"]
    print("  {:14s}".format("variant") + " ".join(f"{h:>7s}" for h in header))
    for name, row in results.items():
        print(
            "  {:14s}".format(name)
            + " ".join(f"{row[h]:7.2f}" for h in header)
        )
        if name != "PIM-HBM":
            gain = row["geomean"] / base["geomean"]
            paper = PAPER_GEOMEAN_GAIN[name]
            print(f"    -> geomean gain x{gain:.2f} (paper ~x{paper})")
            benchmark.extra_info[name] = round(gain, 3)

    gain = lambda v, b: results[v][b] / base[b]
    # Orderings the paper establishes:
    assert gain("PIM-HBM-2x", "geomean") > gain("PIM-HBM-2BA", "geomean")
    assert gain("PIM-HBM-2x", "geomean") > gain("PIM-HBM-SRW", "geomean")
    # 2BA helps ADD (FILL elimination), not GEMV.
    assert gain("PIM-HBM-2BA", "ADD1") > 1.15
    assert abs(gain("PIM-HBM-2BA", "GEMV1") - 1.0) < 0.05
    # SRW helps GEMV (staging elimination), not ADD.
    assert gain("PIM-HBM-SRW", "GEMV1") > 1.2
    assert abs(gain("PIM-HBM-SRW", "ADD1") - 1.0) < 0.05


def test_fig14_trace_level_upper_bounds(benchmark):
    """The same variants replayed command-by-command on the trace-driven
    simulator (the DRAMSim2 role): pure DRAM-side upper bounds with no
    fences and no host — the regime the paper's numbers come from."""
    from repro.dram.timing import HBM2_1P2GHZ
    from repro.dse.tracesim import replay_variant_elementwise, replay_variant_gemv

    def replay_all():
        out = {}
        for name in VARIANTS:
            gemv = replay_variant_gemv(name, 512, 512, 1, HBM2_1P2GHZ)
            add = replay_variant_elementwise(name, 512 * 1024, 1, HBM2_1P2GHZ)
            out[name] = (gemv, add)
        return out

    cycles = benchmark.pedantic(replay_all, rounds=1, iterations=1)
    base_gemv, base_add = cycles["PIM-HBM"]
    print("\nFig. 14 trace-level upper bounds (gain over baseline PIM):")
    for name, (gemv, add) in cycles.items():
        if name == "PIM-HBM":
            continue
        print(f"  {name:14s} GEMV x{base_gemv / gemv:.2f}, ADD x{base_add / add:.2f}")
        benchmark.extra_info[name] = {
            "gemv": round(base_gemv / gemv, 2), "add": round(base_add / add, 2),
        }
    assert base_gemv / cycles["PIM-HBM-SRW"][0] > 1.7  # staging removed
    assert base_gemv / cycles["PIM-HBM-2x"][0] > 1.7  # tiles halved
    assert base_add / cycles["PIM-HBM-2BA"][1] > 1.3  # FILL removed


def test_fig14_costs(benchmark):
    def costs():
        return {
            name: (v.die_area_increase, v.power_increase)
            for name, v in VARIANTS.items()
        }

    table = benchmark(costs)
    print("\nVariant implementation costs (paper, Section VII-D):")
    print(f"  2x:  +{table['PIM-HBM-2x'][0]:.0%} die area")
    print(f"  2BA: +{table['PIM-HBM-2BA'][1]:.0%} device power")
    assert table["PIM-HBM-2x"][0] == 0.24
    assert table["PIM-HBM-2BA"][1] == 0.60


def test_fig14_geomean_over_all_benchmarks(benchmark):
    """Cross-check: the per-benchmark speedups reproduce a sane geomean."""

    def compute():
        results = dse_speedups()
        return {
            name: geomean(
                v for k, v in row.items() if k != "geomean"
            )
            for name, row in results.items()
        }

    geos = benchmark(compute)
    assert geos["PIM-HBM-2x"] > geos["PIM-HBM"]
