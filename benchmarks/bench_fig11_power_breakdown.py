"""Fig. 11 — power breakdown of HBM vs PIM-HBM over back-to-back reads.

Paper anchors: PIM-HBM draws only +5.4% total power while moving 4x the
data on chip; cell/IOSA power scales with bank activity, internal global
bus power disappears, the buffer-die I/O keeps a ~10% residual that could
be gated; energy per bit drops 3.5x.
"""

import pytest

from repro.perf.energy import DevicePowerModel


def test_fig11_breakdown(benchmark):
    dev = DevicePowerModel()

    def build():
        return dev.hbm_breakdown(), dev.pim_breakdown()

    hbm, pim = benchmark(build)
    print("\nFig. 11 device power breakdown (HBM streaming == 1.0)")
    print(f"  {'component':16s} {'HBM':>6s} {'PIM-HBM':>8s}")
    for key in hbm:
        print(f"  {key:16s} {hbm[key]:6.3f} {pim[key]:8.3f}")
    total = sum(pim.values())
    print(f"  {'total':16s} {sum(hbm.values()):6.3f} {total:8.3f}  (paper: 1.054)")
    benchmark.extra_info["pim_total"] = round(total, 3)
    assert sum(hbm.values()) == pytest.approx(1.0)
    assert 1.02 <= total <= 1.09


def test_fig11_energy_per_bit(benchmark):
    reduction = benchmark(lambda: DevicePowerModel().energy_per_bit_reduction)
    print(f"\nEnergy-per-bit reduction: {reduction:.2f}x (paper 3.5x)")
    benchmark.extra_info["reduction"] = round(reduction, 2)
    assert 3.2 <= reduction <= 4.2


def test_fig11_buffer_die_gating_opportunity(benchmark):
    saving = benchmark(lambda: DevicePowerModel().gated_buffer_saving)
    print(f"\nBuffer-die I/O gating would save {saving:.0%} (paper ~10%)")
    assert 0.05 <= saving <= 0.15


def test_fig11_tdp_headroom(benchmark):
    """Section VII-C: PIM stays within the HBM system's TDP, and gating
    the buffer die would yield a thermal advantage."""
    from repro.perf.thermal import thermal_report

    report = benchmark(thermal_report)
    print(f"\nTDP check: HBM {report['hbm_streaming_w']:.1f} W, "
          f"PIM {report['pim_w']:.1f} W, gated {report['pim_gated_w']:.1f} W "
          f"vs TDP {report['tdp_w']:.1f} W")
    assert report["within_tdp"] == 1.0
    assert report["thermal_advantage_when_gated"] == 1.0
