"""Tracked scale-out baseline for the sharded serving fabric.

Serves one GEMV-heavy stream (distinct weight matrices spread across the
consistent-hash ring) through :class:`~repro.stack.fabric.PimFabric` at
1, 2, and 4 workers and records, per worker count:

* **simulated** throughput (req/s of the merged serving profile — round
  makespan is the max over shards, so this is what sharding actually
  scales) and its speedup over the 1-worker fabric;
* **wall-clock** serve time (informational only: CI containers may pin
  the whole run to a single core, so wall time is recorded but never
  gated).

Every result is checked bit-exact against the host GEMV reference before
being recorded.  Results land in a ``bench_fabric/v1`` JSON document::

    python benchmarks/bench_fabric.py --quick --out BENCH_fabric.json \\
        --min-speedup 1.8

The process exits non-zero if the 4-worker simulated speedup falls below
``--min-speedup`` (CI's ``fabric-smoke`` gate) or the emitted document
fails schema validation.
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.stack import (
    PimFabric,
    Request,
    ServerConfig,
    SystemConfig,
    gemv_reference,
)

SCHEMA = "bench_fabric/v1"
WORKER_COUNTS = (1, 2, 4)


def _workload(count: int, distinct: int, seed: int):
    """``count`` GEMV requests over ``distinct`` weight matrices."""
    m, n = 64, 96
    rng = np.random.default_rng(seed)
    weights = [
        (rng.standard_normal((m, n)) * 0.25).astype(np.float16)
        for _ in range(distinct)
    ]
    arrivals = np.cumsum(rng.exponential(200.0, size=count))
    return [
        Request(
            "gemv",
            weights=weights[i % distinct],
            a=(rng.standard_normal(n) * 0.25).astype(np.float16),
            arrival_ns=float(arrivals[i]),
        )
        for i in range(count)
    ]


def bench_workers(config, items, workers: int) -> dict:
    """Serve ``items`` through a ``workers``-shard fabric; one result row."""
    server_config = ServerConfig(lanes=2, max_batch=8)
    with PimFabric(config, workers=workers, server_config=server_config) as fabric:
        handles = [fabric.submit(request) for request in items]
        start = time.perf_counter()
        profile = fabric.run()
        wall_s = time.perf_counter() - start
    for handle in handles:
        golden = gemv_reference(
            handle.request.weights, handle.request.a, config.num_pchs
        )
        if handle.result is None or not np.array_equal(handle.result, golden):
            raise SystemExit(
                f"fabric result diverged from host reference at "
                f"{workers} workers (request {handle.request_id})"
            )
    if sum(profile.outcomes().values()) != len(handles):
        raise SystemExit(f"outcome conservation broken at {workers} workers")
    return {
        "workers": workers,
        "requests": len(handles),
        "throughput_rps": profile.throughput_rps(),
        "makespan_ns": profile.makespan_ns,
        "wall_s": wall_s,
    }


def validate(doc: dict) -> None:
    """Schema check of a ``bench_fabric/v1`` document (raises ValueError)."""
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"schema must be {SCHEMA!r}")
    if not isinstance(doc.get("quick"), bool):
        raise ValueError("quick must be a bool")
    workloads = doc.get("workloads")
    expected = {f"workers{n}" for n in WORKER_COUNTS}
    if not isinstance(workloads, dict) or set(workloads) != expected:
        raise ValueError(f"workloads must be exactly {sorted(expected)}")
    base = workloads["workers1"]
    for name, entry in workloads.items():
        for key in ("throughput_rps", "makespan_ns", "wall_s"):
            value = entry.get(key)
            if not isinstance(value, float) or value <= 0:
                raise ValueError(f"{name}.{key} must be a positive float")
        for key in ("workers", "requests"):
            if not isinstance(entry.get(key), int) or entry[key] <= 0:
                raise ValueError(f"{name}.{key} must be a positive int")
        speedup = entry.get("speedup")
        if not isinstance(speedup, float) or speedup <= 0:
            raise ValueError(f"{name}.speedup must be a positive float")
        implied = entry["throughput_rps"] / base["throughput_rps"]
        if abs(speedup - implied) > 1e-6:
            raise ValueError(f"{name}.speedup is inconsistent with throughput")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small request count (CI fabric-smoke)")
    parser.add_argument("--out", default=None,
                        help="write the bench_fabric/v1 JSON here")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail if the 4-worker simulated speedup is "
                             "below this")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    count = 48 if args.quick else 96
    # 8 distinct matrices is the most a single replica can keep staged
    # (num_rows=256); more would overflow the 1-worker baseline's driver
    # allocation and collapse it onto the host path.
    distinct = 8
    config = SystemConfig(
        num_pchs=4, num_rows=256, simulate_pchs=1, server_seed=args.seed
    )
    items = _workload(count, distinct, args.seed)

    workloads = {}
    for workers in WORKER_COUNTS:
        entry = bench_workers(config, items, workers)
        workloads[f"workers{workers}"] = entry
    base_rps = workloads["workers1"]["throughput_rps"]
    for entry in workloads.values():
        entry["speedup"] = entry["throughput_rps"] / base_rps
    doc = {"schema": SCHEMA, "quick": args.quick, "workloads": workloads}
    validate(doc)

    print(f"{'workers':>8s}{'sim req/s':>14s}{'speedup':>9s}{'wall':>8s}")
    for workers in WORKER_COUNTS:
        entry = workloads[f"workers{workers}"]
        print(
            f"{workers:8d}{entry['throughput_rps']:14,.0f}"
            f"{entry['speedup']:8.2f}x{entry['wall_s']:7.2f}s"
        )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        validate(json.load(open(args.out)))
        print(f"wrote {args.out}")
    if args.min_speedup is not None:
        speedup = workloads["workers4"]["speedup"]
        if speedup < args.min_speedup:
            print(
                f"FAIL: 4-worker simulated speedup {speedup:.2f}x below "
                f"--min-speedup {args.min_speedup}"
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
