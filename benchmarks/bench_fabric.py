"""Tracked scale-out and transport baseline for the serving fabric.

Serves one multi-wave GEMV stream (8 distinct weight matrices, each wave
revisiting every matrix) through :class:`~repro.stack.fabric.PimFabric`
at 1, 2, and 4 workers under **both** payload transports and records,
per (worker count, transport):

* **simulated** throughput (req/s of the merged serving profile — round
  makespan is the max over shards, so this is what sharding actually
  scales) and its speedup over the same transport's 1-worker fabric;
* **wall-clock** serve time (informational only: CI containers may pin
  the whole run to a single core, so wall time is recorded but never
  gated by default — ``--max-wall-ratio`` opts a bound in);
* **bytes on the control wire** (``fabric.bytes_tx``: framed pickle
  bytes the router pushed down worker pipes) and the bytes staged
  through shared memory (``fabric.shm_tx``).  The stream re-uses every
  weight matrix each wave, so the pipe transport re-ships the matrices
  wave after wave while the shm transport's shard-resident weight store
  ships each matrix once and 40-byte digests thereafter —
  ``wire_reduction`` (pipe bytes / shm bytes, same worker count) is the
  tracked payoff of ``ServerConfig(transport="shm")``.

Every result is checked bit-exact against the host GEMV reference, and
each worker count's shm run is checked bit-exact (results *and* profile
render) against its pipe twin before anything is recorded — the bench
refuses to emit numbers for a transport that diverges.  Hedging is
pinned off: it triggers on wall-clock noise, and the pipe-vs-shm
comparison must isolate the transport.  Results land in a
``bench_fabric/v2`` JSON document::

    python benchmarks/bench_fabric.py --quick --out BENCH_fabric.json \\
        --min-speedup 1.8 --min-wire-reduction 15

The process exits non-zero if the 4-worker pipe simulated speedup falls
below ``--min-speedup``, the 4-worker wire reduction falls below
``--min-wire-reduction``, the 4-worker shm/pipe wall ratio exceeds
``--max-wall-ratio`` (when given), or the emitted document fails schema
validation.
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.stack import (
    PimFabric,
    Request,
    ServerConfig,
    SystemConfig,
    gemv_reference,
)
from repro.stack.profiler import ServingProfile

SCHEMA = "bench_fabric/v2"
WORKER_COUNTS = (1, 2, 4)
TRANSPORTS = ("pipe", "shm")


def _workload(count: int, distinct: int, seed: int):
    """``count`` GEMV requests cycling over ``distinct`` weight matrices.

    Request ``i`` carries matrix ``i % distinct``, so serving the stream
    in waves of ``distinct`` requests makes every wave revisit every
    matrix exactly once — the repeated-weight shape the shm transport's
    residency path is built for.
    """
    m, n = 64, 96
    rng = np.random.default_rng(seed)
    weights = [
        (rng.standard_normal((m, n)) * 0.25).astype(np.float16)
        for _ in range(distinct)
    ]
    arrivals = np.cumsum(rng.exponential(200.0, size=count))
    return [
        Request(
            "gemv",
            weights=weights[i % distinct],
            a=(rng.standard_normal(n) * 0.25).astype(np.float16),
            arrival_ns=float(arrivals[i]),
        )
        for i in range(count)
    ]


def bench_workers(config, items, workers: int, transport: str, waves: int):
    """Serve ``items`` in ``waves`` rounds through one fabric.

    Returns ``(entry, handles, profile)`` — the result row plus the raw
    handles and merged profile the caller diffs across transports.
    """
    server_config = ServerConfig(
        lanes=2, max_batch=8, transport=transport, hedge=False
    )
    chunk = max(1, -(-len(items) // waves))
    with PimFabric(
        config, workers=workers, server_config=server_config
    ) as fabric:
        handles, profile = [], ServingProfile()
        start = time.perf_counter()
        for lo in range(0, len(items), chunk):
            for request in items[lo:lo + chunk]:
                handles.append(fabric.submit(request))
            profile.merge(fabric.run())
        wall_s = time.perf_counter() - start
        bytes_on_wire = fabric.bytes_tx
        shm_staged = fabric.shm_tx
    for handle in handles:
        golden = gemv_reference(
            handle.request.weights, handle.request.a, config.num_pchs
        )
        if handle.result is None or not np.array_equal(handle.result, golden):
            raise SystemExit(
                f"fabric result diverged from host reference at "
                f"{workers} workers/{transport} (request {handle.request_id})"
            )
    if sum(profile.outcomes().values()) != len(handles):
        raise SystemExit(
            f"outcome conservation broken at {workers} workers/{transport}"
        )
    entry = {
        "workers": workers,
        "transport": transport,
        "requests": len(handles),
        "waves": waves,
        "throughput_rps": profile.throughput_rps(),
        "makespan_ns": profile.makespan_ns,
        "wall_s": wall_s,
        "bytes_on_wire": int(bytes_on_wire),
        "shm_staged_bytes": int(shm_staged),
    }
    return entry, handles, profile


def validate(doc: dict) -> None:
    """Schema check of a ``bench_fabric/v2`` document (raises ValueError)."""
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"schema must be {SCHEMA!r}")
    if not isinstance(doc.get("quick"), bool):
        raise ValueError("quick must be a bool")
    workloads = doc.get("workloads")
    expected = {
        f"workers{n}_{t}" for n in WORKER_COUNTS for t in TRANSPORTS
    }
    if not isinstance(workloads, dict) or set(workloads) != expected:
        raise ValueError(f"workloads must be exactly {sorted(expected)}")
    for name, entry in workloads.items():
        for key in ("throughput_rps", "makespan_ns", "wall_s"):
            value = entry.get(key)
            if not isinstance(value, float) or value <= 0:
                raise ValueError(f"{name}.{key} must be a positive float")
        for key in ("workers", "requests", "waves"):
            if not isinstance(entry.get(key), int) or entry[key] <= 0:
                raise ValueError(f"{name}.{key} must be a positive int")
        if not isinstance(entry.get("bytes_on_wire"), int) or (
            entry["bytes_on_wire"] <= 0
        ):
            raise ValueError(f"{name}.bytes_on_wire must be a positive int")
        if not isinstance(entry.get("shm_staged_bytes"), int) or (
            entry["shm_staged_bytes"] < 0
        ):
            raise ValueError(f"{name}.shm_staged_bytes must be an int >= 0")
        if entry.get("transport") not in TRANSPORTS:
            raise ValueError(f"{name}.transport must be one of {TRANSPORTS}")
        base = workloads[f"workers1_{entry['transport']}"]
        speedup = entry.get("speedup")
        if not isinstance(speedup, float) or speedup <= 0:
            raise ValueError(f"{name}.speedup must be a positive float")
        implied = entry["throughput_rps"] / base["throughput_rps"]
        if abs(speedup - implied) > 1e-6:
            raise ValueError(f"{name}.speedup is inconsistent with throughput")
        if entry["transport"] == "shm":
            pipe = workloads[f"workers{entry['workers']}_pipe"]
            reduction = entry.get("wire_reduction")
            if not isinstance(reduction, float) or reduction <= 0:
                raise ValueError(
                    f"{name}.wire_reduction must be a positive float"
                )
            implied = pipe["bytes_on_wire"] / max(1, entry["bytes_on_wire"])
            if abs(reduction - implied) > 1e-6:
                raise ValueError(
                    f"{name}.wire_reduction is inconsistent with bytes_on_wire"
                )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small request count (CI fabric-smoke)")
    parser.add_argument("--out", default=None,
                        help="write the bench_fabric/v2 JSON here")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail if the 4-worker pipe simulated speedup "
                             "is below this")
    parser.add_argument("--min-wire-reduction", type=float, default=None,
                        help="fail if the 4-worker pipe/shm control-wire "
                             "byte ratio is below this")
    parser.add_argument("--max-wall-ratio", type=float, default=None,
                        help="fail if 4-worker shm wall clock exceeds this "
                             "multiple of the pipe wall clock (off by "
                             "default: CI wall time is noisy)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    count = 48 if args.quick else 96
    waves = 6 if args.quick else 12
    # 8 distinct matrices is the most a single replica can keep staged
    # (num_rows=256); more would overflow the 1-worker baseline's driver
    # allocation and collapse it onto the host path.
    distinct = 8
    config = SystemConfig(
        num_pchs=4, num_rows=256, simulate_pchs=1, server_seed=args.seed
    )
    items = _workload(count, distinct, args.seed)

    workloads = {}
    for workers in WORKER_COUNTS:
        runs = {}
        for transport in TRANSPORTS:
            entry, handles, profile = bench_workers(
                config, items, workers, transport, waves
            )
            runs[transport] = (entry, handles, profile)
            workloads[f"workers{workers}_{transport}"] = entry
        # Differential gate: the shm run must be indistinguishable from
        # its pipe twin everywhere but the wire counters.
        (_, p_handles, p_profile) = runs["pipe"]
        (s_entry, s_handles, s_profile) = runs["shm"]
        if not all(
            a.outcome == b.outcome and np.array_equal(a.result, b.result)
            for a, b in zip(p_handles, s_handles)
        ):
            raise SystemExit(
                f"shm results diverged from the pipe oracle at "
                f"{workers} workers"
            )
        if p_profile.render() != s_profile.render():
            raise SystemExit(
                f"shm serving profile diverged from the pipe oracle at "
                f"{workers} workers"
            )
        s_entry["wire_reduction"] = (
            runs["pipe"][0]["bytes_on_wire"]
            / max(1, s_entry["bytes_on_wire"])
        )
    for transport in TRANSPORTS:
        base_rps = workloads[f"workers1_{transport}"]["throughput_rps"]
        for workers in WORKER_COUNTS:
            entry = workloads[f"workers{workers}_{transport}"]
            entry["speedup"] = entry["throughput_rps"] / base_rps
    doc = {"schema": SCHEMA, "quick": args.quick, "workloads": workloads}
    validate(doc)

    print(
        f"{'workers':>8s}{'transport':>10s}{'sim req/s':>14s}{'speedup':>9s}"
        f"{'wall':>8s}{'wire bytes':>12s}{'reduction':>10s}"
    )
    for workers in WORKER_COUNTS:
        for transport in TRANSPORTS:
            entry = workloads[f"workers{workers}_{transport}"]
            reduction = (
                f"{entry['wire_reduction']:9.1f}x"
                if transport == "shm" else f"{'—':>10s}"
            )
            print(
                f"{workers:8d}{transport:>10s}"
                f"{entry['throughput_rps']:14,.0f}"
                f"{entry['speedup']:8.2f}x{entry['wall_s']:7.2f}s"
                f"{entry['bytes_on_wire']:12,d}{reduction}"
            )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        validate(json.load(open(args.out)))
        print(f"wrote {args.out}")
    failures = []
    if args.min_speedup is not None:
        speedup = workloads["workers4_pipe"]["speedup"]
        if speedup < args.min_speedup:
            failures.append(
                f"4-worker pipe simulated speedup {speedup:.2f}x below "
                f"--min-speedup {args.min_speedup}"
            )
    if args.min_wire_reduction is not None:
        reduction = workloads["workers4_shm"]["wire_reduction"]
        if reduction < args.min_wire_reduction:
            failures.append(
                f"4-worker wire reduction {reduction:.1f}x below "
                f"--min-wire-reduction {args.min_wire_reduction}"
            )
    if args.max_wall_ratio is not None:
        ratio = (
            workloads["workers4_shm"]["wall_s"]
            / workloads["workers4_pipe"]["wall_s"]
        )
        if ratio > args.max_wall_ratio:
            failures.append(
                f"4-worker shm/pipe wall ratio {ratio:.2f} above "
                f"--max-wall-ratio {args.max_wall_ratio}"
            )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
