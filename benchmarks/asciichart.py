"""Minimal ASCII chart rendering for the reproduction report.

The paper's figures are bar charts and a time series; these helpers render
the regenerated data as text so `python benchmarks/report.py` visually
"redraws" each figure without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["bar_chart", "grouped_bars", "time_series"]


def bar_chart(
    rows: Dict[str, float], width: int = 40, unit: str = "x", baseline: float = 1.0
) -> List[str]:
    """Horizontal bars, scaled to the max value; a '|' marks the baseline."""
    if not rows:
        return []
    peak = max(max(rows.values()), baseline)
    lines = []
    for label, value in rows.items():
        filled = max(1, round(value / peak * width))
        bar = "#" * filled
        marker = round(baseline / peak * width)
        if 0 < marker < width:
            bar = bar[:marker] + ("|" if len(bar) <= marker else bar[marker]) + bar[marker + 1:]
            bar = bar.ljust(marker + 1)
        lines.append(f"  {label:12s} {bar:<{width + 1}s} {value:6.2f}{unit}")
    return lines


def grouped_bars(
    rows: Dict[str, Sequence[float]],
    group_labels: Sequence[str],
    width: int = 24,
    unit: str = "x",
) -> List[str]:
    """One bar per (row, group): the Fig. 10 batch-sweep layout."""
    peak = max(value for values in rows.values() for value in values)
    lines = []
    for label, values in rows.items():
        for group, value in zip(group_labels, values):
            filled = max(1, round(value / peak * width))
            lines.append(
                f"  {label:10s} {group:3s} {'#' * filled:<{width}s} {value:6.2f}{unit}"
            )
        lines.append("")
    return lines[:-1]


def time_series(
    samples: Sequence[Tuple[float, float]],
    height: int = 8,
    width: int = 64,
    y_label: str = "W",
    x_label: str = "us",
) -> List[str]:
    """A coarse scatter of (x, y) samples: the Fig. 13 power trace."""
    if not samples:
        return []
    xs = [x for x, _ in samples]
    ys = [y for _, y in samples]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in samples:
        col = min(width - 1, int((x - x_min) / x_span * (width - 1)))
        row = min(height - 1, int((y - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "*"
    lines = []
    for i, row_chars in enumerate(grid):
        y_value = y_max - i * y_span / (height - 1)
        lines.append(f"  {y_value:7.1f}{y_label} |{''.join(row_chars)}")
    lines.append(f"  {'':9s}+{'-' * width}")
    lines.append(f"  {'':9s} {x_min:.0f}{x_label}{'':>{max(0, width - 16)}}{x_max:.0f}{x_label}")
    return lines
