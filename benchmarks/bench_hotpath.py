"""Tracked perf baseline for the vectorized device hot path.

Times the scalar (per-unit / per-word) device paths against the batched
ones on four hot-path workloads:

* **gemv_triggers** — the AAM MAC inner loop of the GEMV microkernel,
  driven one column trigger at a time through a :class:`LockstepGroup`;
* **elementwise_add** — the FILL/ADD/MOV-writeback elementwise kernel;
* **ecc_peek_poke** — the SEC-DED column path of :class:`EccBank`;
* **ecc_scrub** — whole-row scrubbing with a sprinkling of injected
  single-bit errors;
* **fused_gemv_triggers** / **fused_elementwise** — the same trigger
  streams replayed by the trace-compiled :class:`FusedLockstepGroup`
  against the lock-step interpreter baseline (PR 5), extending the
  ``bench_hotpath/v1`` trajectory one tier further.

Both sides of every workload are checked bit-identical before being
timed.  Results land in a ``bench_hotpath/v1`` JSON document::

    python benchmarks/bench_hotpath.py --quick --out BENCH_hotpath.json \\
        --min-speedup 1.5 --min-fused-speedup 5.0

The process exits non-zero if any workload's batched/scalar speedup falls
below ``--min-speedup``, any ``fused_*`` workload's fused/lock-step
speedup falls below ``--min-fused-speedup`` (CI's ``perf-smoke`` gates),
or the emitted document fails schema validation.
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.dram.bank import BankConfig
from repro.dram.ecc import EccBank
from repro.dram.timing import HBM2_1GHZ
from repro.pim.assembler import assemble_words
from repro.pim.exec_unit import ColumnTrigger, PimExecutionUnit
from repro.pim.fused import FusedLockstepGroup
from repro.pim.lockstep import LockstepGroup
from repro.pim.registers import LANES

SCHEMA = "bench_hotpath/v1"

GEMV_KERNEL = "MAC GRF_B[A], EVEN_BANK, SRF_M[A]\nJUMP -1, 7\nEXIT"
ADD_KERNEL = (
    "FILL GRF_A[0], EVEN_BANK\n"
    "ADD GRF_A[1], GRF_A[0], ODD_BANK\n"
    "MOV EVEN_BANK, GRF_A[1]\n"
    "JUMP -3, 7\n"
    "EXIT"
)
# The elementwise kernel in grouped command order: each stage loops over
# its 8 columns before advancing (how ElementwiseKernel streams a pCH),
# with AAM register indices so consecutive triggers are hazard-free —
# the shape the fused compiler turns into three 8-wide group steps.
FUSED_ADD_KERNEL = (
    "FILL GRF_A[A], EVEN_BANK\n"
    "JUMP -1, 7\n"
    "ADD GRF_B[A], GRF_A[A], ODD_BANK\n"
    "JUMP -1, 7\n"
    "MOV EVEN_BANK, GRF_B[A]\n"
    "JUMP -1, 7\n"
    "EXIT"
)


def _build_group(seed: int, enabled: bool, fused: bool = False) -> LockstepGroup:
    rng = np.random.default_rng(seed)
    cfg = BankConfig(num_rows=64)
    units = []
    for u in range(8):
        even = EccBank(cfg, HBM2_1GHZ)
        odd = EccBank(cfg, HBM2_1GHZ)
        even.use_vectorized = enabled
        odd.use_vectorized = enabled
        units.append(PimExecutionUnit(u, even, odd))
    if fused:
        group = FusedLockstepGroup(units)  # private per-group TraceCache
    else:
        group = LockstepGroup(units, enabled=enabled)
    for unit in units:
        for bank in (unit.even_bank, unit.odd_bank):
            for row in range(4):
                for col in range(8):
                    values = (rng.standard_normal(LANES) * 0.25).astype(np.float16)
                    bank.poke(row, col, values.view(np.uint8))
        unit.regs.srf_m[...] = (
            rng.standard_normal(unit.regs.srf_m.shape) * 0.25
        ).astype(np.float16)
    return group


def _program(group: LockstepGroup, source: str) -> None:
    words = assemble_words(source)
    for unit in group.units:
        for i, word in enumerate(words):
            unit.regs.crf[i] = word


def _state(group: LockstepGroup) -> bytes:
    parts = []
    for unit in group.units:
        parts.append(unit.regs.grf_a.tobytes())
        parts.append(unit.regs.grf_b.tobytes())
        for bank in (unit.even_bank, unit.odd_bank):
            for row in sorted(bank._rows):
                parts.append(bank._row_array(row).tobytes())
    return b"".join(parts)


def _run_gemv(group: LockstepGroup, passes: int) -> None:
    for _ in range(passes):
        group.start_all()
        for col in range(8):
            group.trigger_all(ColumnTrigger(is_write=False, row=0, col=col))
    group.flush_pending()  # land the deferred tail (no-op when eager)


def _run_add(group: LockstepGroup, passes: int) -> None:
    for _ in range(passes):
        group.start_all()
        for col in range(8):
            group.trigger_all(ColumnTrigger(is_write=False, row=1, col=col))
            group.trigger_all(ColumnTrigger(is_write=False, row=2, col=col))
            group.trigger_all(ColumnTrigger(is_write=True, row=3, col=col))
    group.flush_pending()


def _run_add_grouped(group: LockstepGroup, passes: int) -> None:
    # FUSED_ADD_KERNEL's command order: whole stages at a time.
    for _ in range(passes):
        group.start_all()
        for col in range(8):
            group.trigger_all(ColumnTrigger(is_write=False, row=1, col=col))
        for col in range(8):
            group.trigger_all(ColumnTrigger(is_write=False, row=2, col=col))
        for col in range(8):
            group.trigger_all(ColumnTrigger(is_write=True, row=3, col=col))
    group.flush_pending()


def _time(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def bench_kernel(source: str, runner, passes: int) -> dict:
    scalar = _build_group(11, enabled=False)
    batched = _build_group(11, enabled=True)
    _program(scalar, source)
    _program(batched, source)
    runner(scalar, 1)  # warm-up doubles as the equivalence probe
    runner(batched, 1)
    if _state(scalar) != _state(batched):
        raise SystemExit("batched path diverged from scalar on " + source.split()[0])
    scalar_s = _time(runner, scalar, passes)
    batched_s = _time(runner, batched, passes)
    if _state(scalar) != _state(batched):
        raise SystemExit("batched path diverged from scalar after timing")
    return {
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
        "iterations": passes,
    }


def bench_fused_kernel(source: str, runner, passes: int) -> dict:
    """Time the trace-compiled fused replay against the lock-step
    interpreter on an identical trigger stream (both bit-verified)."""
    lockstep = _build_group(11, enabled=True)
    fused = _build_group(11, enabled=True, fused=True)
    _program(lockstep, source)
    _program(fused, source)
    runner(lockstep, 1)  # warm-up doubles as the equivalence probe
    runner(fused, 1)  # ... and compiles the trace for the timed replays
    if _state(lockstep) != _state(fused):
        raise SystemExit("fused path diverged from lockstep on " + source.split()[0])
    lockstep_s = _time(runner, lockstep, passes)
    fused_s = _time(runner, fused, passes)
    if _state(lockstep) != _state(fused):
        raise SystemExit("fused path diverged from lockstep after timing")
    if fused.fused_fallbacks or not fused.fused_replays:
        raise SystemExit("fused path fell back to the interpreter while timed")
    return {
        "scalar_s": lockstep_s,
        "batched_s": fused_s,
        "speedup": lockstep_s / fused_s,
        "iterations": passes,
        "baseline": "lockstep",
    }


def _build_ecc_bank(vectorized: bool) -> EccBank:
    bank = EccBank(BankConfig(num_rows=64), HBM2_1GHZ)
    bank.use_vectorized = vectorized
    return bank


def bench_ecc_peek_poke(rows: int, reps: int) -> dict:
    rng = np.random.default_rng(3)
    cols = 1024 // 32  # row_bytes / col_bytes of the default BankConfig
    bursts = rng.integers(0, 256, size=(rows, cols, 32), dtype=np.uint8)

    def run(bank: EccBank) -> int:
        total = 0
        for _ in range(reps):
            for row in range(rows):
                for col in range(cols):
                    bank.poke(row, col, bursts[row, col])
            for row in range(rows):
                for col in range(cols):
                    total ^= int(bank.peek(row, col)[0])
        return total

    scalar_bank = _build_ecc_bank(False)
    batched_bank = _build_ecc_bank(True)
    if run(scalar_bank) != run(batched_bank):  # warm-up + equivalence
        raise SystemExit("vectorized ECC column path diverged from scalar")
    scalar_s = _time(run, scalar_bank)
    batched_s = _time(run, batched_bank)
    assert vars(scalar_bank.ecc_stats) == vars(batched_bank.ecc_stats)
    return {
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
        "iterations": reps * rows * cols * 2,
    }


def bench_ecc_scrub(rows: int, reps: int) -> dict:
    cols = 1024 // 32

    def build(vectorized: bool) -> EccBank:
        # Fresh generators per build, so both banks get identical contents
        # and identical injected upsets.
        rng = np.random.default_rng(4)
        bank = _build_ecc_bank(vectorized)
        data = np.random.default_rng(5).integers(
            0, 256, size=(rows, cols, 32), dtype=np.uint8
        )
        for row in range(rows):
            for col in range(cols):
                bank.poke(row, col, data[row, col])
        for _ in range(rows // 2):  # sparse single-bit upsets
            bank.inject_error(
                int(rng.integers(rows)), int(rng.integers(cols)),
                int(rng.integers(256)),
            )
        return bank

    def run(bank: EccBank):
        results = []
        for _ in range(reps):
            for row in range(rows):
                results.append(bank.scrub_row(row))
        return results

    scalar_bank = build(False)
    batched_bank = build(True)
    scalar_results = run(scalar_bank)
    batched_results = run(batched_bank)
    if scalar_results[:rows] != batched_results[:rows]:
        raise SystemExit("vectorized scrub diverged from scalar")
    scalar_s = _time(run, scalar_bank)
    batched_s = _time(run, batched_bank)
    return {
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
        "iterations": reps * rows,
    }


def validate(doc: dict) -> None:
    """Schema check of a ``bench_hotpath/v1`` document (raises ValueError)."""
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"schema must be {SCHEMA!r}")
    if not isinstance(doc.get("quick"), bool):
        raise ValueError("quick must be a bool")
    workloads = doc.get("workloads")
    expected = {
        "gemv_triggers", "elementwise_add", "ecc_peek_poke", "ecc_scrub",
        "fused_gemv_triggers", "fused_elementwise",
    }
    if not isinstance(workloads, dict) or set(workloads) != expected:
        raise ValueError(f"workloads must be exactly {sorted(expected)}")
    for name, entry in workloads.items():
        for key in ("scalar_s", "batched_s", "speedup"):
            value = entry.get(key)
            if not isinstance(value, float) or value <= 0:
                raise ValueError(f"{name}.{key} must be a positive float")
        if not isinstance(entry.get("iterations"), int) or entry["iterations"] <= 0:
            raise ValueError(f"{name}.iterations must be a positive int")
        if abs(entry["speedup"] - entry["scalar_s"] / entry["batched_s"]) > 1e-6:
            raise ValueError(f"{name}.speedup is inconsistent with the timings")
        baseline = entry.get("baseline", "scalar")
        if baseline != ("lockstep" if name.startswith("fused_") else "scalar"):
            raise ValueError(f"{name}.baseline is {baseline!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small iteration counts (CI perf-smoke)")
    parser.add_argument("--out", default=None,
                        help="write the bench_hotpath/v1 JSON here")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail if any workload speedup is below this")
    parser.add_argument("--min-fused-speedup", type=float, default=None,
                        help="fail if any fused_* workload's fused/lock-step "
                             "speedup is below this")
    args = parser.parse_args(argv)

    kernel_passes = 40 if args.quick else 400
    ecc_rows = 8 if args.quick else 32
    ecc_reps = 2 if args.quick else 6

    workloads = {
        "gemv_triggers": bench_kernel(GEMV_KERNEL, _run_gemv, kernel_passes),
        "elementwise_add": bench_kernel(ADD_KERNEL, _run_add, kernel_passes),
        "ecc_peek_poke": bench_ecc_peek_poke(ecc_rows, ecc_reps),
        "ecc_scrub": bench_ecc_scrub(ecc_rows, ecc_reps * 4),
        "fused_gemv_triggers": bench_fused_kernel(
            GEMV_KERNEL, _run_gemv, kernel_passes * 4
        ),
        "fused_elementwise": bench_fused_kernel(
            FUSED_ADD_KERNEL, _run_add_grouped, kernel_passes * 2
        ),
    }
    doc = {"schema": SCHEMA, "quick": args.quick, "workloads": workloads}
    validate(doc)

    print(f"{'workload':18s}{'scalar':>10s}{'batched':>10s}{'speedup':>9s}")
    for name, entry in workloads.items():
        print(
            f"{name:18s}{entry['scalar_s'] * 1000:9.1f}ms"
            f"{entry['batched_s'] * 1000:9.1f}ms{entry['speedup']:8.2f}x"
        )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        validate(json.load(open(args.out)))
        print(f"wrote {args.out}")
    if args.min_speedup is not None:
        slow = {
            name: entry["speedup"]
            for name, entry in workloads.items()
            if entry["speedup"] < args.min_speedup
        }
        if slow:
            print(f"FAIL: below --min-speedup {args.min_speedup}: {slow}")
            return 1
    if args.min_fused_speedup is not None:
        slow = {
            name: entry["speedup"]
            for name, entry in workloads.items()
            if name.startswith("fused_") and entry["speedup"] < args.min_fused_speedup
        }
        if slow:
            print(f"FAIL: below --min-fused-speedup {args.min_fused_speedup}: {slow}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
