"""Fig. 10 — relative performance of PIM-HBM over HBM with batch 1/2/4,
for the Table VI microbenchmarks and the five ML applications, plus the
modelled LLC miss rates and the Section VII-B fence study.

Paper anchors: GEMV up to 11.2x (B1) / 3.2x (B2) / <1 (B4); ADD 1.6x;
DS2 3.5x, GNMT 1.5x, AlexNet 1.4x, ResNet-50 1.0x at B1; DS2 1.6x and
RNN-T 1.9x at B2; GNMT encoder 6.2x; LLC miss ~100% -> 70-80%.
"""

import pytest

from repro.apps.microbench import ADD_SIZES, GEMV_SIZES
from repro.apps.models import ALL_APPS, GNMT
from repro.perf.latency import Calibration

PAPER_B1 = {"GEMV1": 11.2, "ADD1": 1.6, "DS2": 3.5, "GNMT": 1.5,
            "AlexNet": 1.4, "ResNet-50": 1.0}


def _microbench_table(host, pim, batches=(1, 2, 4)):
    rows = {}
    for g in GEMV_SIZES:
        rows[g.name] = [
            host.host_gemv(g.m, g.n, b).ns / pim.pim_gemv(g.m, g.n, b).ns
            for b in batches
        ]
    for a in ADD_SIZES:
        rows[a.name] = [
            host.host_stream(a.n, 3, b).ns / pim.pim_add(a.n, b).ns
            for b in batches
        ]
    return rows


def _app_table(host, pim, batches=(1, 2, 4)):
    return {
        app.name: [
            host.app_time(app, b)["total"] / pim.app_time(app, b)["total"]
            for b in batches
        ]
        for app in ALL_APPS
    }


def test_fig10_microbenchmarks(benchmark, host_model, pim_model):
    rows = benchmark(_microbench_table, host_model, pim_model)
    print("\nFig. 10 microbenchmarks (PIM-HBM speedup over HBM; B1/B2/B4)")
    for name, values in rows.items():
        marker = f"  (paper B1: {PAPER_B1[name]})" if name in PAPER_B1 else ""
        print("  {:6s} {:5.2f} {:5.2f} {:5.2f}{}".format(name, *values, marker))
        benchmark.extra_info[name] = [round(v, 2) for v in values]
    assert 9.5 <= rows["GEMV1"][0] <= 13.0  # paper 11.2
    assert 1.3 <= rows["ADD1"][0] <= 2.0  # paper 1.6
    assert rows["GEMV1"][2] < 1.0  # paper: HBM wins at batch 4


def test_fig10_applications(benchmark, host_model, pim_model):
    rows = benchmark(_app_table, host_model, pim_model)
    print("\nFig. 10 applications (PIM-HBM speedup over HBM; B1/B2/B4)")
    for name, values in rows.items():
        marker = f"  (paper B1: {PAPER_B1[name]})" if name in PAPER_B1 else ""
        print("  {:10s} {:5.2f} {:5.2f} {:5.2f}{}".format(name, *values, marker))
        benchmark.extra_info[name] = [round(v, 2) for v in values]
    assert 2.8 <= rows["DS2"][0] <= 4.6  # paper 3.5
    assert 1.2 <= rows["GNMT"][0] <= 2.1  # paper 1.5
    assert 0.95 <= rows["ResNet-50"][0] <= 1.15  # paper 1.0
    assert 1.3 <= rows["DS2"][1] <= 2.3  # paper 1.6 at B2
    assert 1.4 <= rows["RNN-T"][1] <= 2.4  # paper 1.9 at B2


def test_fig10_llc_miss_rates(benchmark):
    cal = Calibration()
    rates = benchmark(lambda: {b: cal.llc_miss_rate(b) for b in (1, 2, 4)})
    print("\nFig. 10 LLC miss rates:", {b: f"{r:.0%}" for b, r in rates.items()},
          "(paper: ~100% -> 70-80%)")
    assert rates[1] == pytest.approx(1.0)
    assert 0.70 <= rates[4] <= 0.80


def test_fig10_llc_simulator_cross_check(benchmark):
    """The set-associative LLC simulator reproduces the same trend the
    analytic miss model encodes: near-total misses at batch 1, partial
    reuse as batching turns GEMV into GEMM."""
    from repro.host.cache import Cache, CacheConfig, simulate_gemv_batch

    def sweep():
        rates = {}
        for batch in (1, 2, 4):
            cache = Cache(CacheConfig(capacity_bytes=256 * 1024, ways=16))
            stats = simulate_gemv_batch(
                rows=1024, cols=1024, batch=batch, cache=cache
            )
            rates[batch] = stats.miss_rate
        return rates

    rates = benchmark(sweep)
    print("\nLLC simulator miss rates (1024x1024 weights, 256 KiB LLC):",
          {b: f"{r:.0%}" for b, r in rates.items()})
    assert rates[1] > 0.9
    assert rates[1] > rates[2] > rates[4]


def test_fig10_gnmt_encoder(benchmark, host_model, pim_model):
    encoders = [l for l in GNMT.layers if getattr(l, "fused", False)]

    def encoder_speedup():
        h = sum(host_model.layer_time(l, 1).ns for l in encoders)
        p = sum(pim_model.layer_time(l, 1).ns for l in encoders)
        return h / p

    ratio = benchmark(encoder_speedup)
    print(f"\nGNMT LSTM encoder speedup: {ratio:.2f} (paper 6.2)")
    benchmark.extra_info["encoder_speedup"] = round(ratio, 2)
    assert 4.0 <= ratio <= 7.5


def test_fig10_fence_free_study(benchmark, pim_model):
    """Section VII-B: a controller preserving command order in PIM mode
    removes all fences."""

    def gains():
        free = pim_model.without_fences()
        gemv = pim_model.pim_gemv(1024, 4096).ns / free.pim_gemv(1024, 4096).ns
        add = pim_model.pim_add(2**21).ns / free.pim_add(2**21).ns
        return gemv, add

    gemv_gain, add_gain = benchmark(gains)
    print(f"\nFence-free gain over fenced PIM: GEMV {gemv_gain:.2f}x, "
          f"ADD {add_gain:.2f}x (paper reports ~2x-scale gains)")
    assert gemv_gain > 1.2
    assert add_gain > 1.1
