"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper.  The
pytest-benchmark timings measure the harness itself (simulator and model
throughput); the reproduced numbers are attached to ``benchmark.extra_info``
and printed, and ``benchmarks/report.py`` renders the full paper-vs-model
comparison (recorded in EXPERIMENTS.md).
"""

import pytest

from repro.perf.latency import PIM_HBM, PROC_HBM, LatencyModel


@pytest.fixture(scope="session")
def host_model():
    return LatencyModel(PROC_HBM)


@pytest.fixture(scope="session")
def pim_model():
    return LatencyModel(PIM_HBM)
