"""Tracked resilience baseline for the self-healing serving fabric.

Runs the seeded chaos scenario (:func:`repro.chaos.run_chaos` — worker
kill, wedge, slowdown, device channel death, bit flips, pipe-payload
corruption) next to its fault-free baseline and records what resilience
cost:

* **recovery throughput** (simulated req/s of the post-schedule recovery
  wave, served on the healed fleet) and its retention versus the
  fault-free run of the same wave — the 20% degradation gate;
* **p99 turnaround** of the chaos session versus fault-free — the 2x
  tail gate the straggler hedge defends;
* the healing ledger: respawns per slot, replays, hedges won/lost.

Every invariant of the chaos harness (conservation, bit-exactness,
trace validity, capacity recovery) must hold for a row to be recorded.
Results land in a ``bench_chaos/v1`` JSON document::

    python benchmarks/bench_chaos.py --quick --out BENCH_chaos.json \\
        --min-retention 0.8

The process exits non-zero on any harness violation, if recovery
throughput retention falls below ``--min-retention``, or if the emitted
document fails schema validation.
"""

import argparse
import json
import sys
import time

from repro.chaos import run_chaos
from repro.stack.profiler import _percentile

SCHEMA = "bench_chaos/v1"
_SERVED = ("completed", "degraded_host")


def _p99_us(profile) -> float:
    """p99 turnaround of a session's served requests, microseconds."""
    return _percentile(
        [r.turnaround_ns for r in profile.requests if r.outcome in _SERVED],
        0.99,
    ) / 1000.0


def bench_chaos(seed: int, workers: int, requests: int) -> dict:
    """One full chaos scenario with gates; returns the result row."""
    start = time.perf_counter()
    report = run_chaos(seed=seed, workers=workers, requests=requests)
    wall_s = time.perf_counter() - start
    if not report.ok:
        raise SystemExit(
            "chaos harness violations:\n"
            + "\n".join(f"  - {v}" for v in report.violations)
        )
    return {
        "seed": seed,
        "workers": workers,
        "requests": report.requests,
        "recovery_rps": report.recovery_rps,
        "baseline_recovery_rps": report.baseline_recovery_rps,
        "retention": report.recovery_rps / report.baseline_recovery_rps,
        "p99_us": _p99_us(report.profile),
        "baseline_p99_us": _p99_us(report.baseline_profile),
        "respawns": sum(report.respawns.values()),
        "replays": report.profile.replays,
        "hedge_wins": report.profile.hedge_wins,
        "hedge_losses": report.profile.hedge_losses,
        "wall_s": wall_s,
    }


def validate(doc: dict) -> None:
    """Schema check of a ``bench_chaos/v1`` document (raises ValueError)."""
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"schema must be {SCHEMA!r}")
    if not isinstance(doc.get("quick"), bool):
        raise ValueError("quick must be a bool")
    entry = doc.get("scenario")
    if not isinstance(entry, dict):
        raise ValueError("scenario must be a dict")
    for key in (
        "recovery_rps", "baseline_recovery_rps", "retention", "p99_us",
        "baseline_p99_us", "wall_s",
    ):
        value = entry.get(key)
        if not isinstance(value, float) or value <= 0:
            raise ValueError(f"scenario.{key} must be a positive float")
    for key in ("seed", "workers", "requests", "respawns", "replays",
                "hedge_wins", "hedge_losses"):
        if not isinstance(entry.get(key), int) or entry[key] < 0:
            raise ValueError(f"scenario.{key} must be a non-negative int")
    implied = entry["recovery_rps"] / entry["baseline_recovery_rps"]
    if abs(entry["retention"] - implied) > 1e-6:
        raise ValueError("scenario.retention is inconsistent with throughput")
    if entry["p99_us"] > 2.0 * entry["baseline_p99_us"]:
        raise ValueError("scenario.p99_us exceeds 2x the fault-free p99")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller request count (CI-sized run)")
    parser.add_argument("--out", default=None,
                        help="write the bench_chaos/v1 JSON here")
    parser.add_argument("--min-retention", type=float, default=None,
                        help="fail if recovery throughput retention is "
                             "below this fraction of fault-free")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    requests = 48 if args.quick else 96
    entry = bench_chaos(args.seed, args.workers, requests)
    doc = {"schema": SCHEMA, "quick": args.quick, "scenario": entry}
    validate(doc)

    print(
        f"recovery {entry['recovery_rps']:,.0f} req/s "
        f"(fault-free {entry['baseline_recovery_rps']:,.0f}, "
        f"retention {entry['retention']:.2f})"
    )
    print(
        f"p99 {entry['p99_us']:.1f}us (fault-free "
        f"{entry['baseline_p99_us']:.1f}us)  respawns {entry['respawns']}  "
        f"replays {entry['replays']}  hedges won/lost "
        f"{entry['hedge_wins']}/{entry['hedge_losses']}  "
        f"wall {entry['wall_s']:.1f}s"
    )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        validate(json.load(open(args.out)))
        print(f"wrote {args.out}")
    if args.min_retention is not None and entry["retention"] < args.min_retention:
        print(
            f"FAIL: recovery retention {entry['retention']:.2f} below "
            f"--min-retention {args.min_retention}"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
