"""Table I — relative area and energy/op of MAC units in a 20nm DRAM
process (INT16/INT8/FP16/BFLOAT16/FP32).

Regenerates the table from the structural model and reports model-vs-paper
per cell; the benchmark times a full model fit + table evaluation.
"""

from repro.perf.macunits import PAPER_TABLE1, TABLE1_SPECS, MacUnitModel


def _build_table():
    model = MacUnitModel()
    return model.normalised_table()


def test_table1_mac_unit_model(benchmark):
    table = benchmark(_build_table)
    print("\nTable I: MAC unit area and energy/op (normalised to INT16/48)")
    print(f"{'Number format':26s} {'area':>6s} {'paper':>6s} {'energy':>7s} {'paper':>6s}")
    for spec in TABLE1_SPECS:
        row = table[spec.name]
        paper = PAPER_TABLE1[spec.name]
        print(
            f"{spec.name:26s} {row['area']:6.2f} {paper['area']:6.2f} "
            f"{row['energy']:7.2f} {paper['energy']:6.2f}"
        )
        benchmark.extra_info[f"area/{spec.name}"] = round(row["area"], 3)
        benchmark.extra_info[f"energy/{spec.name}"] = round(row["energy"], 3)
        assert abs(row["area"] - paper["area"]) / paper["area"] < 0.10
        assert abs(row["energy"] - paper["energy"]) / paper["energy"] < 0.25


def test_table1_fp16_choice_rationale(benchmark):
    """The design decision Table I supports: FP16 over FP32 and BF16."""

    def orderings():
        model = MacUnitModel()
        by_name = {s.name: s for s in TABLE1_SPECS}
        return (
            model.area(by_name["FP32"]) / model.area(by_name["FP16"]),
            model.area(by_name["FP16"]) / model.area(by_name["BFLOAT16"]),
        )

    fp32_over_fp16, fp16_over_bf16 = benchmark(orderings)
    assert fp32_over_fp16 > 2.5  # FP32 "too large to be implemented in DRAM"
    assert fp16_over_bf16 > 1.0  # BF16 slightly smaller, FP16 chosen anyway
