"""Cross-family study: bank-level PIM on DDR4 / LPDDR4 / GDDR6 / HBM2.

Section III claims the architecture "is applicable to any standard DRAM
such as DDR, LPDDR, and GDDR DRAM with a few changes."  This bench runs the
same GEMV microkernel stream on the functional simulator configured with
each family's timing and reports the AB-mode compute-bandwidth factor and
the measured per-channel kernel cycles — quantifying what the claim is
worth on each substrate (LPDDR4's single tCCD makes AB mode relatively the
most profitable; DDR4's long tCCD_L the least per-channel).
"""

import numpy as np
import pytest

from repro.dram.timing import DRAM_FAMILIES
from repro.stack.blas import gemv_reference
from repro.stack.kernels import GemvKernel
from repro.stack.runtime import PimSystem


def _run_family(timing):
    system = PimSystem(num_pchs=1, num_rows=128, timing=timing)
    rng = np.random.default_rng(0)
    w = (rng.standard_normal((128, 128)) * 0.1).astype(np.float16)
    x = (rng.standard_normal(128) * 0.1).astype(np.float16)
    kernel = GemvKernel(system, 128, 128)
    kernel.load_weights(w)
    y, report = kernel(x)
    assert np.array_equal(y, gemv_reference(w, x, num_pchs=1))
    return report


def test_dram_family_study(benchmark):
    def sweep():
        return {name: _run_family(t) for name, t in DRAM_FAMILIES.items()}

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nBank-level PIM across DRAM families (128x128 GEMV, 1 channel)")
    print(f"  {'family':14s} {'AB factor':>9s} {'cycles':>8s} {'time us':>8s}")
    for name, report in reports.items():
        timing = DRAM_FAMILIES[name]
        us = report.cycles * timing.tck_ns / 1000
        print(f"  {name:14s} {timing.ab_bandwidth_factor:9.1f} "
              f"{report.cycles:8d} {us:8.1f}")
        benchmark.extra_info[name] = report.cycles
    # Every family executes the identical microkernel bit-exactly; the
    # AB-mode gain ranges x4 (bank groups) to x8 (LPDDR4, single tCCD).
    assert DRAM_FAMILIES["LPDDR4X-4266"].ab_bandwidth_factor == 8.0
    assert DRAM_FAMILIES["HBM2"].ab_bandwidth_factor == 4.0


def test_family_timing_sanity(benchmark):
    def check():
        rows = {}
        for name, t in DRAM_FAMILIES.items():
            rows[name] = (t.trcd * t.tck_ns, t.trc * t.tck_ns)
        return rows

    rows = benchmark(check)
    for name, (trcd_ns, trc_ns) in rows.items():
        # Core DRAM timings are technology-bound: ~12-20 ns tRCD, ~40-65 tRC.
        assert 10 <= trcd_ns <= 20, name
        assert 38 <= trc_ns <= 66, name
