"""Mechanism decomposition of the GEMV speedup, simulator vs simulator.

The paper's 11.2x over the HBM host is the product of two factors:

1. the **architecture factor** — AB-PIM command streams vs an *ideal* host
   read stream on the same DRAM (bounded by ~2x for GEMV: half the PIM
   commands stage the input vector, and fences eat into the rest);
2. the **software factor** — the vendor GEMV "not optimized to fully
   utilize the off-chip memory bandwidth" (Section VII-B), which we model
   as the calibrated efficiency in `Calibration.host_gemv_eff_base`.

This bench measures factor 1 cycle-accurately (both sides on the
functional simulator) and prints the implied software factor that closes
the gap to the paper's 11.2x.
"""

import numpy as np
import pytest

from repro.dram.bank import BankConfig
from repro.dram.device import DeviceConfig, HbmDevice
from repro.host.kernels import HostKernels
from repro.host.processor import HostSystem
from repro.perf.latency import Calibration
from repro.stack.kernels import GemvKernel
from repro.stack.runtime import PimSystem


def _measure(m, n):
    pim_sys = PimSystem(num_pchs=1, num_rows=256, fence_penalty_cycles=22)
    kernel = GemvKernel(pim_sys, m, n)
    rng = np.random.default_rng(0)
    kernel.load_weights((rng.standard_normal((m, n)) * 0.1).astype(np.float16))
    _, pim_report = kernel((rng.standard_normal(n) * 0.1).astype(np.float16))

    host_sys = HostSystem(
        HbmDevice(DeviceConfig(num_pchs=1, bank_config=BankConfig(num_rows=256))),
        fence_penalty_cycles=0,
    )
    host = HostKernels(host_sys).gemv(m, n)
    return pim_report, host


def test_gemv_mechanism_decomposition(benchmark):
    pim_report, host = benchmark.pedantic(
        lambda: _measure(256, 256), rounds=1, iterations=1
    )
    arch_factor = host.cycles / pim_report.cycles
    software_factor = 11.2 / arch_factor
    implied_efficiency = 1.0 / software_factor
    print("\nGEMV speedup decomposition (256x256, one channel, simulated):")
    print(f"  ideal host        : {host.cycles} cycles "
          f"({host.bandwidth_fraction():.0%} of peak)")
    print(f"  PIM (fenced)      : {pim_report.cycles} cycles")
    print(f"  architecture factor: x{arch_factor:.2f}")
    print(f"  -> software factor needed for the paper's 11.2x: "
          f"x{software_factor:.1f} (host library at {implied_efficiency:.0%} "
          f"of ideal; calibration uses "
          f"{Calibration().host_gemv_eff_base:.1%} at M=1024)")
    benchmark.extra_info["arch_factor"] = round(arch_factor, 2)
    benchmark.extra_info["implied_host_efficiency"] = round(implied_efficiency, 3)
    # The architecture alone cannot give 11.2x — that is the whole point.
    assert arch_factor < 3.0
    assert implied_efficiency < 0.25


def test_add_mechanism_decomposition(benchmark):
    def measure():
        pim_sys = PimSystem(num_pchs=1, num_rows=256, fence_penalty_cycles=22)
        from repro.stack.kernels import ElementwiseKernel

        n = 64 * 1024
        rng = np.random.default_rng(1)
        a = rng.standard_normal(n).astype(np.float16)
        b = rng.standard_normal(n).astype(np.float16)
        _, pim_report = ElementwiseKernel(pim_sys, "add", n)(a, b)

        host_sys = HostSystem(
            HbmDevice(DeviceConfig(num_pchs=1, bank_config=BankConfig(num_rows=256))),
            fence_penalty_cycles=0,
        )
        host = HostKernels(host_sys).elementwise_add(n)
        return pim_report, host

    pim_report, host = benchmark.pedantic(measure, rounds=1, iterations=1)
    arch_factor = host.cycles / pim_report.cycles
    print(f"\nADD architecture factor (simulated, one channel): x{arch_factor:.2f}"
          f"  (upper bound x4; fences and turnarounds take their share;"
          f" paper end-to-end: 1.6x)")
    benchmark.extra_info["arch_factor"] = round(arch_factor, 2)
    assert 1.0 <= arch_factor <= 4.0
