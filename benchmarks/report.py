"""Render the full paper-vs-model comparison for every table and figure.

Run:  python benchmarks/report.py

EXPERIMENTS.md records a snapshot of this output; the pytest benches in
this directory assert the same numbers stay inside their bands.
"""

import os
import sys

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from asciichart import bar_chart, time_series  # noqa: E402

from repro.apps.microbench import ADD_SIZES, GEMV_SIZES
from repro.apps.models import ALEXNET, ALL_APPS, DS2, GNMT
from repro.dse.variants import dse_speedups
from repro.perf.energy import DevicePowerModel, EnergyModel
from repro.perf.latency import PIM_HBM, PROC_HBM, Calibration, LatencyModel
from repro.perf.macunits import PAPER_TABLE1, TABLE1_SPECS, MacUnitModel
from repro.perf.specs import PimDeviceSpec, PimUnitSpec


def table1():
    print("## Table I — MAC units (20nm DRAM, normalised to INT16/48)")
    model = MacUnitModel()
    table = model.normalised_table()
    print(f"{'format':28s}{'area':>7s}{'paper':>7s}{'energy':>8s}{'paper':>7s}")
    for spec in TABLE1_SPECS:
        row, paper = table[spec.name], PAPER_TABLE1[spec.name]
        print(f"{spec.name:28s}{row['area']:7.2f}{paper['area']:7.2f}"
              f"{row['energy']:8.2f}{paper['energy']:7.2f}")


def tables45():
    print("\n## Tables IV & V — derived specifications")
    for key, value in PimUnitSpec().as_table().items():
        print(f"  [IV] {key}: {value}")
    for key, value in PimDeviceSpec().as_table().items():
        print(f"  [V]  {key}: {value}")


def fig10():
    host, pim = LatencyModel(PROC_HBM), LatencyModel(PIM_HBM)
    print("\n## Fig. 10 — relative performance (PIM-HBM over HBM), B1/B2/B4")
    paper = {"GEMV1": "11.2/3.2/<1", "ADD1": "1.6/-/-", "DS2": "3.5/1.6/<1",
             "RNN-T": "-/1.9/-", "GNMT": "1.5/<1/<1", "AlexNet": "1.4/<1/<1",
             "ResNet-50": "1.0/1.0/1.0"}
    for g in GEMV_SIZES:
        r = [host.host_gemv(g.m, g.n, b).ns / pim.pim_gemv(g.m, g.n, b).ns
             for b in (1, 2, 4)]
        print(f"  {g.name:10s} {r[0]:5.2f} {r[1]:5.2f} {r[2]:5.2f}"
              f"   (paper {paper.get(g.name, '-')})")
    for a in ADD_SIZES:
        r = [host.host_stream(a.n, 3, b).ns / pim.pim_add(a.n, b).ns
             for b in (1, 2, 4)]
        print(f"  {a.name:10s} {r[0]:5.2f} {r[1]:5.2f} {r[2]:5.2f}"
              f"   (paper {paper.get(a.name, '-')})")
    for app in ALL_APPS:
        r = [host.app_time(app, b)["total"] / pim.app_time(app, b)["total"]
             for b in (1, 2, 4)]
        print(f"  {app.name:10s} {r[0]:5.2f} {r[1]:5.2f} {r[2]:5.2f}"
              f"   (paper {paper.get(app.name, '-')})")
    print("\n  Fig. 10 batch-1 bars (| marks parity with HBM):")
    bars = {}
    for g in GEMV_SIZES[:1]:
        bars[g.name] = host.host_gemv(g.m, g.n).ns / pim.pim_gemv(g.m, g.n).ns
    for a in ADD_SIZES[:1]:
        bars[a.name] = host.host_stream(a.n, 3).ns / pim.pim_add(a.n).ns
    for app in ALL_APPS:
        bars[app.name] = (
            host.app_time(app)["total"] / pim.app_time(app)["total"]
        )
    for line in bar_chart(bars):
        print(line)
    cal = Calibration()
    print("  LLC miss rates:",
          {b: f"{cal.llc_miss_rate(b):.0%}" for b in (1, 2, 4)},
          "(paper ~100% -> 70-80%)")
    encoders = [l for l in GNMT.layers if getattr(l, "fused", False)]
    h = sum(host.layer_time(l, 1).ns for l in encoders)
    p = sum(pim.layer_time(l, 1).ns for l in encoders)
    print(f"  GNMT LSTM encoder speedup: {h / p:.2f} (paper 6.2)")
    free = pim.without_fences()
    print(f"  fence-free gain: GEMV1 x{pim.pim_gemv(1024, 4096).ns / free.pim_gemv(1024, 4096).ns:.2f},"
          f" ADD1 x{pim.pim_add(2**21).ns / free.pim_add(2**21).ns:.2f}"
          " over fenced PIM")


def fig11():
    dev = DevicePowerModel()
    print("\n## Fig. 11 — device power breakdown (HBM streaming == 1.0)")
    hbm, pim = dev.hbm_breakdown(), dev.pim_breakdown()
    for key in hbm:
        print(f"  {key:16s} HBM {hbm[key]:5.3f}   PIM-HBM {pim[key]:5.3f}")
    print(f"  total: PIM-HBM x{dev.pim_total:.3f} (paper x1.054); "
          f"energy/bit reduction {dev.energy_per_bit_reduction:.2f}x (paper 3.5x); "
          f"buffer-die gating saves {dev.gated_buffer_saving:.0%} (paper ~10%)")


def fig12():
    hbm, pim = EnergyModel(PROC_HBM), EnergyModel(PIM_HBM)
    x4 = EnergyModel(PROC_HBM, bandwidth_scale=4.0)
    print("\n## Fig. 12 — energy efficiency of PIM-HBM")
    rows = {
        "GEMV1": (
            hbm.kernel_energy_j(hbm.gemv_phase(1024, 4096)),
            pim.kernel_energy_j(pim.gemv_phase(1024, 4096)),
            x4.kernel_energy_j(x4.gemv_phase(1024, 4096)),
            "8.25 / ~1x-of-HBM",
        ),
        "ADD1": (
            hbm.kernel_energy_j(hbm.add_phase(2**21)),
            pim.kernel_energy_j(pim.add_phase(2**21)),
            x4.kernel_energy_j(x4.add_phase(2**21)),
            "1.4 / -",
        ),
    }
    for app, paper in ((DS2, "3.2 / 2.8"), (GNMT, "1.38 / 1.1"), (ALEXNET, "1.5 / 1.3")):
        rows[app.name] = (
            hbm.app_energy_j(app)[0], pim.app_energy_j(app)[0],
            x4.app_energy_j(app)[0], paper,
        )
    for name, (eh, ep, e4, paper) in rows.items():
        print(f"  {name:8s} vs PROC-HBM {eh / ep:5.2f}, vs PROC-HBMx4 {e4 / ep:5.2f}"
              f"   (paper {paper})")


def fig13():
    hbm, pim = EnergyModel(PROC_HBM), EnergyModel(PIM_HBM)
    eh, th = hbm.app_energy_j(DS2)
    ep, tp = pim.app_energy_j(DS2)
    print("\n## Fig. 13 — DS2 power over time")
    print(f"  PROC-HBM: {th / 1e6:6.1f} ms at avg {eh / (th * 1e-9):5.1f} W")
    print(f"  PIM-HBM : {tp / 1e6:6.1f} ms at avg {ep / (tp * 1e-9):5.1f} W")
    print("  (paper: shorter execution AND lower average power)")
    for label, model in (("PROC-HBM", hbm), ("PIM-HBM", pim)):
        print(f"\n  {label} trace:")
        samples = [(t / 1000.0, p) for t, p in model.power_trace(DS2, points=64)]
        for line in time_series(samples, x_label="ms"):
            print(line)


def fig14():
    results = dse_speedups()
    base = results["PIM-HBM"]
    print("\n## Fig. 14 — design-space exploration (gain over baseline PIM)")
    paper = {"PIM-HBM-2x": "+40%", "PIM-HBM-2BA": "+20%", "PIM-HBM-SRW": "+10%"}
    for name, row in results.items():
        if name == "PIM-HBM":
            continue
        gain = row["geomean"] / base["geomean"]
        gemv = row["GEMV1"] / base["GEMV1"]
        add = row["ADD1"] / base["ADD1"]
        print(f"  {name:14s} geomean x{gain:.2f} (paper ~{paper[name]}), "
              f"GEMV1 x{gemv:.2f}, ADD1 x{add:.2f}")


def observability():
    from repro.obs import render_timeline
    from repro.stack import PimContext, Request, ServerConfig, SystemConfig

    print("\n## Observability — traced serving session (span timeline)")
    config = SystemConfig(
        num_pchs=4, num_rows=256, simulate_pchs=1, server_seed=7, trace=True
    )
    rng = np.random.default_rng(7)
    m, n, length = 64, 96, 256
    weights = (rng.standard_normal((m, n)) * 0.25).astype(np.float16)
    arrivals = np.cumsum(rng.exponential(2000.0, size=12))
    with PimContext(config) as ctx:
        with ctx.server(ServerConfig(lanes=2, max_batch=8)) as srv:
            for i, arrival in enumerate(arrivals):
                if i % 3 == 2:
                    srv.submit(Request(
                        "add",
                        a=(rng.standard_normal(length) * 0.25).astype(np.float16),
                        b=(rng.standard_normal(length) * 0.25).astype(np.float16),
                        arrival_ns=float(arrival),
                    ))
                else:
                    srv.submit(Request(
                        "gemv", weights=weights,
                        a=(rng.standard_normal(n) * 0.25).astype(np.float16),
                        arrival_ns=float(arrival),
                    ))
            srv.run()
        for line in render_timeline(ctx.tracer, max_spans=24):
            print(line)
        serving = ctx.profiler.serving
        print(f"  requests {serving.num_requests}, "
              f"makespan {serving.makespan_ns / 1000.0:.1f}us, "
              f"retries {serving.retries}, fallbacks {serving.fallbacks}")


def main():
    table1()
    tables45()
    fig10()
    fig11()
    fig12()
    fig13()
    fig14()
    observability()


if __name__ == "__main__":
    main()
