"""Tracked durability baseline: what the request journal costs.

Serves the same seeded GEMV+ADD stream through a
:class:`~repro.stack.server.PimServer` twice — once plain, once with the
write-ahead log enabled (``ServerConfig(journal_dir=...)``) — and
records the journaling overhead on serving wall time, the journal's
size, and how long a restore-only :func:`repro.journal.recover` pass
takes over the finished log.  Both serving modes are timed as the
minimum over ``--reps`` repetitions so the overhead ratio reflects the
journal's cost, not scheduler noise.

Results land in a ``bench_replay/v1`` JSON document::

    python benchmarks/bench_replay.py --quick --out BENCH_replay.json \\
        --max-overhead 0.05

The process exits non-zero if the journaled run is more than
``--max-overhead`` slower than the plain run, if recovery loses a
record, or if the emitted document fails schema validation.
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.journal import recover
from repro.journal.wal import list_segments, read_records
from repro.stack import PimServer, PimSystem, Request, ServerConfig, SystemConfig

SCHEMA = "bench_replay/v1"


def _requests(seed: int, count: int):
    rng = np.random.default_rng(seed)
    m, n, length = 64, 96, 256
    w = (rng.standard_normal((m, n)) * 0.25).astype(np.float16)
    arrivals = np.cumsum(rng.exponential(2000.0, size=count))
    requests = []
    for i, arrival in enumerate(arrivals):
        if i % 2 == 0:
            requests.append(Request(
                "gemv", weights=w,
                a=(rng.standard_normal(n) * 0.25).astype(np.float16),
                arrival_ns=float(arrival), trace_id=f"bench-r{i}",
            ))
        else:
            requests.append(Request(
                "add",
                a=(rng.standard_normal(length) * 0.25).astype(np.float16),
                b=(rng.standard_normal(length) * 0.25).astype(np.float16),
                arrival_ns=float(arrival), trace_id=f"bench-r{i}",
            ))
    return requests


def _serve_once(config, requests, journal_dir=None) -> float:
    server_config = ServerConfig(lanes=2, max_batch=8)
    if journal_dir is not None:
        server_config = server_config.replace(journal_dir=journal_dir)
    system = PimSystem(config)
    start = time.perf_counter()
    with PimServer(system, server_config) as server:
        for request in requests:
            server.submit(request)
        profile = server.run()
    elapsed = time.perf_counter() - start
    served = sum(1 for r in profile.requests if r.outcome == "completed")
    if served != len(requests):
        raise SystemExit(
            f"bench run did not complete every request ({served}/"
            f"{len(requests)})"
        )
    return elapsed


def bench_replay(seed: int, count: int, reps: int) -> dict:
    """Journal overhead + recovery cost at one workload size."""
    config = SystemConfig(
        num_pchs=4, num_rows=256, simulate_pchs=1, server_seed=seed
    )
    requests = _requests(seed, count)
    root = tempfile.mkdtemp(prefix="repro-bench-replay-")
    try:
        # One untimed warmup, then *interleaved* plain/journaled reps:
        # back-to-back pairs see the same caches and scheduler state, so
        # the min-over-reps ratio isolates the journal's cost instead of
        # measuring which mode ran first.
        _serve_once(config, requests)
        plain_s = []
        journaled_s = []
        last_dir = None
        for rep in range(reps):
            plain_s.append(_serve_once(config, requests))
            last_dir = os.path.join(root, f"wal-{rep}")
            journaled_s.append(
                _serve_once(config, requests, journal_dir=last_dir)
            )
        plain_s = min(plain_s)
        journaled_s = min(journaled_s)
        journal_bytes = sum(
            os.path.getsize(p) for p in list_segments(last_dir)
        )
        records = len(read_records(last_dir))
        start = time.perf_counter()
        report = recover(last_dir)
        restore_s = time.perf_counter() - start
        if report.restored != count or report.replayed != 0:
            raise SystemExit(
                f"restore-only recovery diverged: restored "
                f"{report.restored}/{count}, replayed {report.replayed}"
            )
        return {
            "seed": seed,
            "requests": count,
            "reps": reps,
            "plain_s": plain_s,
            "journaled_s": journaled_s,
            "overhead": journaled_s / plain_s - 1.0,
            "journal_bytes": journal_bytes,
            "records": records,
            "restore_s": restore_s,
            "restored": report.restored,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def validate(doc: dict) -> None:
    """Schema check of a ``bench_replay/v1`` document (raises ValueError)."""
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"schema must be {SCHEMA!r}")
    if not isinstance(doc.get("quick"), bool):
        raise ValueError("quick must be a bool")
    entry = doc.get("serving")
    if not isinstance(entry, dict):
        raise ValueError("serving must be a dict")
    for key in ("plain_s", "journaled_s", "restore_s"):
        value = entry.get(key)
        if not isinstance(value, float) or value <= 0:
            raise ValueError(f"serving.{key} must be a positive float")
    for key in ("seed", "requests", "reps", "journal_bytes", "records",
                "restored"):
        if not isinstance(entry.get(key), int) or entry[key] < 0:
            raise ValueError(f"serving.{key} must be a non-negative int")
    overhead = entry.get("overhead")
    if not isinstance(overhead, float):
        raise ValueError("serving.overhead must be a float")
    implied = entry["journaled_s"] / entry["plain_s"] - 1.0
    if abs(overhead - implied) > 1e-6:
        raise ValueError("serving.overhead is inconsistent with timings")
    if entry["restored"] != entry["requests"]:
        raise ValueError("recovery must restore every journaled request")
    # meta + one accepted + one outcome record per request.
    if entry["records"] != 1 + 2 * entry["requests"]:
        raise ValueError("journal record count is inconsistent")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload and fewer reps (CI-sized)")
    parser.add_argument("--out", default=None,
                        help="write the bench_replay/v1 JSON here")
    parser.add_argument("--max-overhead", type=float, default=None,
                        help="fail if journaling slows serving by more "
                             "than this fraction (e.g. 0.05)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    count, reps = (64, 3) if args.quick else (128, 5)
    entry = bench_replay(args.seed, count, reps)
    doc = {"schema": SCHEMA, "quick": args.quick, "serving": entry}
    validate(doc)

    print(
        f"serving {entry['requests']} requests: plain "
        f"{entry['plain_s'] * 1000:.1f}ms, journaled "
        f"{entry['journaled_s'] * 1000:.1f}ms "
        f"(overhead {entry['overhead'] * 100:+.1f}%)"
    )
    print(
        f"journal {entry['journal_bytes'] / 1024:.0f}KiB, "
        f"{entry['records']} records; restore-only recovery "
        f"{entry['restore_s'] * 1000:.1f}ms for {entry['restored']} requests"
    )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        validate(json.load(open(args.out)))
        print(f"wrote {args.out}")
    if args.max_overhead is not None and entry["overhead"] > args.max_overhead:
        print(
            f"FAIL: journal overhead {entry['overhead'] * 100:.1f}% above "
            f"--max-overhead {args.max_overhead * 100:.1f}%"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
