"""Unit conversion helpers used across the simulator and the perf models.

The codebase keeps time in nanoseconds (float), clock counts in integer
cycles, bandwidth in bytes/second, energy in picojoules and power in
milliwatts, converting only at reporting boundaries.
"""

from __future__ import annotations

__all__ = [
    "GHZ",
    "MHZ",
    "KIB",
    "MIB",
    "GIB",
    "GB",
    "ns_per_cycle",
    "cycles_for_ns",
    "bytes_per_sec",
    "to_gbps",
    "geomean",
]

GHZ = 1e9
MHZ = 1e6
KIB = 1024
MIB = 1024**2
GIB = 1024**3
GB = 1e9


def ns_per_cycle(freq_hz: float) -> float:
    """Clock period in nanoseconds for a frequency in Hz."""
    if freq_hz <= 0:
        raise ValueError("frequency must be positive")
    return 1e9 / freq_hz


def cycles_for_ns(duration_ns: float, freq_hz: float) -> int:
    """Ceil of the number of clock cycles covering ``duration_ns``."""
    period = ns_per_cycle(freq_hz)
    cycles = duration_ns / period
    whole = int(cycles)
    return whole if whole == cycles else whole + 1


def bytes_per_sec(num_bytes: int, duration_ns: float) -> float:
    """Average bandwidth in bytes/second over a duration in nanoseconds."""
    if duration_ns <= 0:
        raise ValueError("duration must be positive")
    return num_bytes / (duration_ns * 1e-9)


def to_gbps(bps: float) -> float:
    """Bytes/second to gigabytes/second (decimal GB, as HBM specs use)."""
    return bps / GB


def geomean(values) -> float:
    """Geometric mean of positive values (used for Fig. 14 summaries)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geomean requires positive values")
        product *= value
    return product ** (1.0 / len(values))
