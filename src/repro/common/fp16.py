"""Bit-accurate software floating point for the PIM execution unit.

The PIM-HBM execution unit computes in IEEE 754 binary16 (FP16).  The paper's
Table I also evaluates INT16/INT8/BFLOAT16/FP32 MAC units, so this module
implements a generic binary floating-point codec parameterised by exponent and
mantissa widths, with round-to-nearest-even (RNE) — the rounding mode of the
fabricated MAC units.

Two layers are provided:

* **Scalar softfloat** (`FloatFormat`, `fp_add`, `fp_mul`, `fp_mac`) operating
  on raw bit patterns.  This is the golden reference model: every operation
  converts the operands to Python floats (exact, since binary64 is a superset
  of all supported formats), performs the operation in binary64, and rounds
  once back to the target format.  For a single mul or add of two FP16/BF16
  values this is exactly equivalent to a correctly-rounded hardware unit
  (the binary64 intermediate is exact).  MAC is modelled as
  ``round(round(a*b) + c)`` because the fabricated pipeline has separate MULT
  and ADD stages (Section IV-B), i.e. it is *not* a fused MAC.
* **Vector helpers** (`vec_mul`, `vec_add`, `vec_mac`, `vec_relu`) used by the
  16-lane SIMD datapath, implemented with numpy float16 for speed.  Property
  tests assert lane-for-lane equivalence with the scalar softfloat.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FloatFormat",
    "FP16",
    "BF16",
    "FP32",
    "fp_add",
    "fp_mul",
    "fp_mac",
    "fp_relu",
    "vec_add",
    "vec_mul",
    "vec_mac",
    "vec_relu",
    "format_vec_add",
    "format_vec_mul",
    "format_vec_mac",
    "encode_format",
    "decode_format",
    "f16_to_bits",
    "bits_to_f16",
]


@dataclass(frozen=True)
class FloatFormat:
    """An IEEE-754-style binary interchange format.

    Attributes:
        name: human-readable format name.
        exp_bits: width of the exponent field.
        man_bits: width of the trailing significand field.
    """

    name: str
    exp_bits: int
    man_bits: int

    @property
    def width(self) -> int:
        """Total storage width in bits (1 sign + exponent + mantissa)."""
        return 1 + self.exp_bits + self.man_bits

    @property
    def bias(self) -> int:
        """Exponent bias."""
        return (1 << (self.exp_bits - 1)) - 1

    @property
    def exp_max(self) -> int:
        """All-ones (reserved) biased exponent value."""
        return (1 << self.exp_bits) - 1

    @property
    def max_finite(self) -> float:
        """Largest finite representable magnitude."""
        frac = 2.0 - 2.0 ** (-self.man_bits)
        return frac * 2.0 ** (self.exp_max - 1 - self.bias)

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude."""
        return 2.0 ** (1 - self.bias)

    @property
    def min_subnormal(self) -> float:
        """Smallest positive subnormal magnitude."""
        return 2.0 ** (1 - self.bias - self.man_bits)

    # -- encoding ---------------------------------------------------------

    def to_bits(self, value: float) -> int:
        """Round ``value`` (binary64) to this format with RNE; return bits."""
        if math.isnan(value):
            # Canonical quiet NaN: all-ones exponent, MSB of mantissa set.
            return (self.exp_max << self.man_bits) | (1 << (self.man_bits - 1))
        sign = 1 if math.copysign(1.0, value) < 0 else 0
        mag = abs(value)
        if math.isinf(mag):
            return (sign << (self.width - 1)) | (self.exp_max << self.man_bits)
        if mag == 0.0:
            return sign << (self.width - 1)

        # Decompose |value| = frac * 2**exp with frac in [0.5, 1).
        frac, exp = math.frexp(mag)
        # Normalised form: 1.m * 2**(exp-1); unbiased exponent e = exp - 1.
        e = exp - 1
        if e < 1 - self.bias:
            # Subnormal range: significand scaled by 2**(1 - bias).
            scaled = mag / self.min_subnormal
            sig = _round_half_even(scaled)
            if sig >= (1 << self.man_bits):
                # Rounded up into the normal range.
                return (sign << (self.width - 1)) | (1 << self.man_bits)
            return (sign << (self.width - 1)) | sig
        # Normal: round the trailing significand.
        scaled = (mag / 2.0**e - 1.0) * (1 << self.man_bits)
        sig = _round_half_even(scaled)
        if sig == (1 << self.man_bits):
            sig = 0
            e += 1
        biased = e + self.bias
        if biased >= self.exp_max:
            # Overflow to infinity under RNE.
            return (sign << (self.width - 1)) | (self.exp_max << self.man_bits)
        return (sign << (self.width - 1)) | (biased << self.man_bits) | sig

    def from_bits(self, bits: int) -> float:
        """Decode a bit pattern to a Python float (exact)."""
        mask = (1 << self.width) - 1
        bits &= mask
        sign = -1.0 if bits >> (self.width - 1) else 1.0
        biased = (bits >> self.man_bits) & self.exp_max
        sig = bits & ((1 << self.man_bits) - 1)
        if biased == self.exp_max:
            if sig:
                return math.nan
            return sign * math.inf
        if biased == 0:
            return sign * sig * self.min_subnormal
        return sign * (1.0 + sig / (1 << self.man_bits)) * 2.0 ** (biased - self.bias)

    def round(self, value: float) -> float:
        """Round a binary64 value to the nearest value in this format."""
        return self.from_bits(self.to_bits(value))


def _round_half_even(x: float) -> int:
    """Round a non-negative float to the nearest integer, ties to even.

    ``x`` is always exactly representable here because callers scale by powers
    of two, so this implements the final RNE of the significand.
    """
    floor = math.floor(x)
    rem = x - floor
    if rem > 0.5 or (rem == 0.5 and floor % 2 == 1):
        return floor + 1
    return floor


FP16 = FloatFormat("fp16", exp_bits=5, man_bits=10)
BF16 = FloatFormat("bfloat16", exp_bits=8, man_bits=7)
FP32 = FloatFormat("fp32", exp_bits=8, man_bits=23)


# -- scalar softfloat operations (bits in, bits out) ----------------------


def fp_mul(fmt: FloatFormat, a_bits: int, b_bits: int) -> int:
    """Correctly rounded multiply in ``fmt``."""
    product = fmt.from_bits(a_bits) * fmt.from_bits(b_bits)
    return fmt.to_bits(product)


def fp_add(fmt: FloatFormat, a_bits: int, b_bits: int) -> int:
    """Correctly rounded add in ``fmt``.

    The binary64 sum of two values from any supported format is exact, so a
    single final rounding yields the correctly rounded result.
    """
    total = fmt.from_bits(a_bits) + fmt.from_bits(b_bits)
    return fmt.to_bits(total)


def fp_mac(fmt: FloatFormat, acc_bits: int, a_bits: int, b_bits: int) -> int:
    """Non-fused multiply-accumulate ``acc + a*b`` (round after each stage).

    Models the fabricated pipeline where the FP multiplier (stage 3) and FP
    adder (stage 4) each round their own result.
    """
    return fp_add(fmt, acc_bits, fp_mul(fmt, a_bits, b_bits))


def fp_relu(fmt: FloatFormat, a_bits: int) -> int:
    """ReLU on a bit pattern: a 2-to-1 mux controlled by the sign bit.

    Matches the hardware description in Section III-C: negative inputs
    (including -0.0 and negative NaNs, which the mux cannot distinguish)
    are replaced by +0.0.
    """
    if a_bits >> (fmt.width - 1):
        return 0
    return a_bits


# -- vectorised FP16 helpers for the SIMD datapath -------------------------


def vec_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Lane-wise FP16 multiply (numpy float16 semantics == IEEE RNE)."""
    return (a.astype(np.float16) * b.astype(np.float16)).astype(np.float16)


def vec_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Lane-wise FP16 add."""
    return (a.astype(np.float16) + b.astype(np.float16)).astype(np.float16)


def vec_mac(acc: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Lane-wise non-fused FP16 multiply-accumulate ``acc + a*b``."""
    return vec_add(acc, vec_mul(a, b))


def vec_relu(a: np.ndarray) -> np.ndarray:
    """Lane-wise ReLU via the sign bit, matching :func:`fp_relu`."""
    a = a.astype(np.float16)
    bits = a.view(np.uint16)
    return np.where(bits >> 15 != 0, np.float16(0.0), a).astype(np.float16)


# -- format-generic vector ops (for non-FP16 execution-unit variants) -------
#
# Lanes are 16-bit storage whatever the format; arrays travel as numpy
# float16 *containers* whose raw bits are interpreted per ``fmt``.  The FP16
# instance takes the fast numpy path; other formats (e.g. BF16, the Table I
# alternative) go through the scalar softfloat lane by lane.


def _lanewise(fmt: FloatFormat, op, *arrays: np.ndarray) -> np.ndarray:
    bits = [np.ascontiguousarray(a, dtype=np.float16).view(np.uint16) for a in arrays]
    out = np.empty_like(bits[0])
    for i in range(out.size):
        out[i] = op(fmt, *(int(b[i]) for b in bits))
    return out.view(np.float16)


def format_vec_mul(fmt: FloatFormat, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Lane-wise multiply in ``fmt`` (FP16 fast path, softfloat otherwise)."""
    if fmt is FP16:
        return vec_mul(a, b)
    return _lanewise(fmt, fp_mul, a, b)


def format_vec_add(fmt: FloatFormat, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Lane-wise add in ``fmt``."""
    if fmt is FP16:
        return vec_add(a, b)
    return _lanewise(fmt, fp_add, a, b)


def format_vec_mac(
    fmt: FloatFormat, acc: np.ndarray, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Lane-wise non-fused MAC in ``fmt``."""
    if fmt is FP16:
        return vec_mac(acc, a, b)
    return _lanewise(fmt, fp_mac, acc, a, b)


def encode_format(fmt: FloatFormat, values: np.ndarray) -> np.ndarray:
    """Encode real values into 16-bit lanes of ``fmt`` (float16 container)."""
    bits = np.array([fmt.to_bits(float(v)) for v in np.asarray(values).reshape(-1)],
                    dtype=np.uint16)
    return bits.view(np.float16)


def decode_format(fmt: FloatFormat, lanes: np.ndarray) -> np.ndarray:
    """Decode 16-bit lanes of ``fmt`` back to float64 values."""
    bits = np.ascontiguousarray(lanes, dtype=np.float16).view(np.uint16)
    return np.array([fmt.from_bits(int(b)) for b in bits])


def f16_to_bits(value: float) -> int:
    """Round a Python float to FP16 and return the 16 raw bits."""
    return FP16.to_bits(value)


def bits_to_f16(bits: int) -> float:
    """Decode 16 raw FP16 bits to a Python float."""
    return FP16.from_bits(bits)


def _f64_bits(value: float) -> int:
    """Raw binary64 bits of a Python float (debugging aid)."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]
