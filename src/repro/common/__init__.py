"""Shared substrate: softfloat arithmetic, bit fields, unit conversions."""

from .fp16 import (
    BF16,
    FP16,
    FP32,
    FloatFormat,
    bits_to_f16,
    f16_to_bits,
    fp_add,
    fp_mac,
    fp_mul,
    fp_relu,
    vec_add,
    vec_mac,
    vec_mul,
    vec_relu,
)
from .bitfield import BitField, Layout, get_bits, mask, set_bits
from .ecc import DecodeResult, DecodeStatus
from .ecc import decode as ecc_decode
from .ecc import encode as ecc_encode
from .units import geomean

__all__ = [
    "BF16",
    "FP16",
    "FP32",
    "FloatFormat",
    "bits_to_f16",
    "f16_to_bits",
    "fp_add",
    "fp_mac",
    "fp_mul",
    "fp_relu",
    "vec_add",
    "vec_mac",
    "vec_mul",
    "vec_relu",
    "BitField",
    "Layout",
    "get_bits",
    "mask",
    "set_bits",
    "geomean",
    "DecodeResult",
    "DecodeStatus",
    "ecc_decode",
    "ecc_encode",
]
