"""SEC-DED error-correcting code for on-die DRAM ECC (Section VIII).

The paper's product does not ship ECC but argues the architecture is
ECC-ready: "each PIM execution unit reads and writes data at the same data
access granularity as a host processor", so an on-die (72,64) engine can
protect PIM accesses exactly like host accesses.  This module implements
the classic extended-Hamming SEC-DED code used by on-die DRAM ECC:

* 64 data bits + 7 Hamming parity bits + 1 overall parity bit;
* any single-bit error (data or parity) is located and corrected;
* any double-bit error is detected as uncorrectable.

The cell array stores the 64 data bits as-is; the 8 check bits live in a
separate ECC array (:class:`repro.dram.ecc.EccBank` keeps one check byte
per 8-byte word, four per 32-byte column burst).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = [
    "DecodeStatus",
    "DecodeResult",
    "encode",
    "decode",
    "encode_words",
    "check_words",
    "decode_words",
    "STATUS_CODES",
    "CHECK_BITS",
]

CHECK_BITS = 8  # 7 Hamming + 1 overall parity
_DATA_BITS = 64
_CODE_POSITIONS = 71  # Hamming positions 1..71 (7 parity + 64 data)

# Positions 1..71 that are powers of two carry Hamming parity bits.
_PARITY_POSITIONS = (1, 2, 4, 8, 16, 32, 64)
_DATA_POSITIONS = tuple(
    pos for pos in range(1, _CODE_POSITIONS + 1) if pos not in _PARITY_POSITIONS
)
assert len(_DATA_POSITIONS) == _DATA_BITS

# For each of the 7 syndrome bits: the mask over the 71-bit codeword of
# positions participating in that parity group.
_PARITY_MASKS: List[int] = []
for _bit in range(7):
    _mask = 0
    for _pos in range(1, _CODE_POSITIONS + 1):
        if _pos & (1 << _bit):
            _mask |= 1 << (_pos - 1)
    _PARITY_MASKS.append(_mask)


def _parity(value: int) -> int:
    return bin(value).count("1") & 1


def _scatter(data: int) -> int:
    """Place 64 data bits into their codeword positions (parity bits 0)."""
    word = 0
    for i, pos in enumerate(_DATA_POSITIONS):
        if (data >> i) & 1:
            word |= 1 << (pos - 1)
    return word


def _gather(word: int) -> int:
    data = 0
    for i, pos in enumerate(_DATA_POSITIONS):
        if (word >> (pos - 1)) & 1:
            data |= 1 << i
    return data


class DecodeStatus(enum.Enum):
    """Outcome of checking one codeword."""
    CLEAN = "clean"
    CORRECTED = "corrected-single"
    UNCORRECTABLE = "detected-double"


@dataclass(frozen=True)
class DecodeResult:
    data: int
    status: DecodeStatus


def encode(data: int) -> int:
    """Compute the 8 check bits for 64 data bits."""
    if not 0 <= data < (1 << _DATA_BITS):
        raise ValueError("data must fit in 64 bits")
    word = _scatter(data)
    check = 0
    for bit, mask in enumerate(_PARITY_MASKS):
        if _parity(word & mask):
            check |= 1 << bit
            word |= 1 << (_PARITY_POSITIONS[bit] - 1)
    check |= _parity(word) << 7
    return check


def decode(data: int, check_byte: int) -> DecodeResult:
    """Check (and correct) 64 data bits against their stored check byte.

    Errors may be in the data bits *or* in the check byte; both are
    covered by the codeword.
    """
    word = _scatter(data)
    for bit in range(7):
        if (check_byte >> bit) & 1:
            word |= 1 << (_PARITY_POSITIONS[bit] - 1)
    syndrome = 0
    for bit, mask in enumerate(_PARITY_MASKS):
        if _parity(word & mask):
            syndrome |= 1 << bit
    overall_error = _parity(word) != ((check_byte >> 7) & 1)

    if syndrome == 0:
        if not overall_error:
            return DecodeResult(data, DecodeStatus.CLEAN)
        # The overall parity bit itself flipped: data is intact.
        return DecodeResult(data, DecodeStatus.CORRECTED)
    if overall_error:
        if syndrome <= _CODE_POSITIONS:
            word ^= 1 << (syndrome - 1)
            return DecodeResult(_gather(word), DecodeStatus.CORRECTED)
        return DecodeResult(data, DecodeStatus.UNCORRECTABLE)
    # Non-zero syndrome with matching overall parity: two bits flipped.
    return DecodeResult(data, DecodeStatus.UNCORRECTABLE)


# -- array SEC-DED (the vectorized hot path) ---------------------------------
#
# The syndrome of a codeword is the XOR of the *positions* of its set bits
# (bit b of a position says whether that position joins parity group b), so
# per-byte lookup tables collapse the whole scatter/parity pipeline into
# eight table gathers and an XOR fold.  For each byte lane of the 64-bit
# data word, ``_BYTE_CONTRIB[lane][value]`` carries the XOR of the codeword
# positions of the value's set bits in its low 7 bits and the plain bit
# parity of the value in bit 7 (the overall-parity contribution).

_STATUS_BY_CODE = (
    DecodeStatus.CLEAN,
    DecodeStatus.CORRECTED,
    DecodeStatus.UNCORRECTABLE,
)
STATUS_CODES = {status: code for code, status in enumerate(_STATUS_BY_CODE)}

_BYTE_CONTRIB = np.zeros((8, 256), dtype=np.uint8)
for _lane in range(8):
    for _value in range(256):
        _acc = 0
        for _k in range(8):
            if (_value >> _k) & 1:
                _acc ^= _DATA_POSITIONS[8 * _lane + _k] | 0x80
        _BYTE_CONTRIB[_lane, _value] = _acc

_PARITY8 = np.array([bin(v).count("1") & 1 for v in range(256)], dtype=np.uint8)
_LANE_INDEX = np.arange(8)


def _contrib(words: np.ndarray) -> np.ndarray:
    """Per-word XOR-fold of byte contributions: low 7 bits hold the parity
    of each Hamming group over the data bits, bit 7 the data parity."""
    lanes = words.view(np.uint8).reshape(-1, 8)
    return np.bitwise_xor.reduce(_BYTE_CONTRIB[_LANE_INDEX, lanes], axis=-1)


def encode_words(words: np.ndarray) -> np.ndarray:
    """Check bytes for an array of 64-bit data words (array ``encode``)."""
    arr = np.ascontiguousarray(words, dtype="<u8")
    acc = _contrib(arr)
    low = acc & 0x7F
    overall = (acc >> 7) ^ _PARITY8[low]
    return (low | (overall << 7)).astype(np.uint8)


def check_words(words: np.ndarray, checks: np.ndarray) -> np.ndarray:
    """Boolean CLEAN mask for an array of (data word, check byte) pairs.

    ``True`` means the word decodes with a zero syndrome and matching
    overall parity — exactly :func:`decode`'s ``CLEAN`` condition.  Words
    flagged ``False`` need the scalar decoder to classify (and possibly
    correct) them.
    """
    arr = np.ascontiguousarray(words, dtype="<u8")
    chk = np.ascontiguousarray(checks, dtype=np.uint8)
    acc = _contrib(arr)
    syndrome = (acc ^ chk) & 0x7F
    overall_error = ((acc >> 7) ^ _PARITY8[chk & 0x7F]) != (chk >> 7)
    return (syndrome == 0) & ~overall_error


def decode_words(
    words: np.ndarray, checks: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Array ``decode``: corrected data words plus per-word status codes.

    Clean words (the overwhelmingly common case) are classified entirely
    by the vectorized syndrome check; only words with a nonzero syndrome
    or an overall-parity mismatch fall back to the scalar decoder, which
    also performs the correction.  Status codes index
    ``DecodeStatus`` via ``STATUS_CODES`` (0 = CLEAN, 1 = CORRECTED,
    2 = UNCORRECTABLE).
    """
    arr = np.array(words, dtype="<u8", copy=True).reshape(-1)
    chk = np.ascontiguousarray(checks, dtype=np.uint8).reshape(-1)
    if arr.size != chk.size:
        raise ValueError("words and checks must have equal length")
    statuses = np.zeros(arr.size, dtype=np.uint8)
    clean = check_words(arr, chk)
    for i in np.nonzero(~clean)[0]:
        result = decode(int(arr[i]), int(chk[i]))
        arr[i] = result.data
        statuses[i] = STATUS_CODES[result.status]
    return arr, statuses
