"""Bit-field packing helpers for instruction and address encodings.

The PIM ISA (Table III) packs opcode, operand-space selectors and register
indices into 32-bit words; the physical address map (Fig. 15(a)) slices a
byte address into channel / pseudo-channel / bank / row / column fields.
Both are expressed as :class:`BitField` layouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

__all__ = ["BitField", "Layout", "mask", "get_bits", "set_bits"]


def mask(width: int) -> int:
    """An all-ones mask of ``width`` bits."""
    return (1 << width) - 1


def get_bits(word: int, hi: int, lo: int) -> int:
    """Extract bits ``hi..lo`` (inclusive, hi >= lo) from ``word``."""
    if hi < lo:
        raise ValueError(f"invalid bit range [{hi}:{lo}]")
    return (word >> lo) & mask(hi - lo + 1)


def set_bits(word: int, hi: int, lo: int, value: int) -> int:
    """Return ``word`` with bits ``hi..lo`` replaced by ``value``."""
    if hi < lo:
        raise ValueError(f"invalid bit range [{hi}:{lo}]")
    width = hi - lo + 1
    if value < 0 or value > mask(width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    cleared = word & ~(mask(width) << lo)
    return cleared | (value << lo)


@dataclass(frozen=True)
class BitField:
    """A named contiguous bit range ``[hi:lo]`` inside a word."""

    name: str
    hi: int
    lo: int

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1

    def extract(self, word: int) -> int:
        """Read this field's value out of ``word``."""
        return get_bits(word, self.hi, self.lo)

    def insert(self, word: int, value: int) -> int:
        """Return ``word`` with this field set to ``value``."""
        return set_bits(word, self.hi, self.lo, value)


class Layout:
    """An ordered collection of non-overlapping bit fields in a word.

    Fields are declared as ``(name, hi, lo)`` tuples.  ``pack`` builds a word
    from keyword values (unnamed bits are zero); ``unpack`` returns a dict.
    """

    def __init__(self, word_width: int, fields: Iterable[Tuple[str, int, int]]):
        self.word_width = word_width
        self.fields: Dict[str, BitField] = {}
        used = 0
        for name, hi, lo in fields:
            if hi >= word_width:
                raise ValueError(f"field {name} [{hi}:{lo}] exceeds {word_width} bits")
            field = BitField(name, hi, lo)
            overlap = used & (mask(field.width) << lo)
            if overlap:
                raise ValueError(f"field {name} overlaps an earlier field")
            used |= mask(field.width) << lo
            self.fields[name] = field

    def pack(self, **values: int) -> int:
        """Build a word from named field values (unnamed bits zero)."""
        word = 0
        for name, value in values.items():
            if name not in self.fields:
                raise KeyError(f"unknown field {name!r}")
            word = self.fields[name].insert(word, value)
        return word

    def unpack(self, word: int) -> Mapping[str, int]:
        """Split ``word`` into a name -> value mapping."""
        return {name: field.extract(word) for name, field in self.fields.items()}

    def __contains__(self, name: str) -> bool:
        return name in self.fields
