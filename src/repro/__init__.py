"""repro — a functional and performance model of Samsung's HBM-PIM.

A reproduction of "Hardware Architecture and Software Stack for PIM Based
on Commercial DRAM Technology" (ISCA 2021, Industry Track): the PIM-HBM
device (DRAM + in-bank SIMD execution units driven by standard JEDEC
commands), the full software stack (driver, runtime, BLAS, TF-style graph
framework), and the evaluation harness that regenerates every table and
figure of the paper.

Quick start::

    import numpy as np
    from repro import PimContext, SystemConfig

    w = np.random.randn(256, 128).astype(np.float16)
    x = np.random.randn(128).astype(np.float16)
    with PimContext(SystemConfig.fast_functional()) as ctx:
        y = ctx.blas.gemv(w, x)   # executed by the simulated PIM device
        print("\\n".join(ctx.report()))
"""

from .errors import (
    PimAllocationError,
    PimChannelError,
    PimDataError,
    PimError,
    PimJournalError,
    PimOverloadError,
    PimProgramError,
    PimReplayError,
    PimWorkerError,
)
from .faults import FaultConfig, FaultInjector
from .obs import MetricsRegistry, Tracer
from .stack import (
    FabricHandle,
    GraphBuilder,
    GraphExecutor,
    PimBlas,
    PimContext,
    PimFabric,
    PimServer,
    PimSystem,
    Request,
    RequestOutcome,
    ServerConfig,
    SystemConfig,
)
from .pim import PimHbmDevice, PimMode, assemble, disassemble
from .dram import HbmDevice, MemoryController, SchedulerPolicy

__version__ = "1.0.0"

__all__ = [
    "PimError",
    "PimDataError",
    "PimChannelError",
    "PimAllocationError",
    "PimOverloadError",
    "PimProgramError",
    "PimWorkerError",
    "PimJournalError",
    "PimReplayError",
    "RequestOutcome",
    "Request",
    "ServerConfig",
    "FabricHandle",
    "PimFabric",
    "FaultConfig",
    "FaultInjector",
    "MetricsRegistry",
    "Tracer",
    "GraphBuilder",
    "GraphExecutor",
    "PimBlas",
    "PimContext",
    "PimServer",
    "PimSystem",
    "SystemConfig",
    "PimHbmDevice",
    "PimMode",
    "assemble",
    "disassemble",
    "HbmDevice",
    "MemoryController",
    "SchedulerPolicy",
    "__version__",
]
