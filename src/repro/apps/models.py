"""The five evaluation applications (Section VII-A).

Layer compositions follow the paper's descriptions:

* **DS2** — Baidu DeepSpeech2: 2 convolution layers, 6 bidirectional LSTM
  layers, 1 fully connected layer; 2-second spectrogram input.
* **RNN-T** — the MLPerf variant: 5 LSTM encoder layers, 2 LSTM prediction
  layers, 2 fully connected joint layers with ReLU.
* **GNMT** — 8 LSTM encoders, 8 LSTM decoders, attention; ~50-word input.
  Decoder layers launch per step (output feeds back), which is the
  kernel-call overhead the paper highlights.
* **AlexNet** — 5 convolution + 3 FC layers, 224x224x3 input.
* **ResNet-50** — 50 conv-dominated layers with BN and identity shortcuts.

Dimensions are the published model sizes; where a paper leaves a detail
open (e.g. DS2 hidden width) we use the canonical open-source configuration
and note it in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .layers import Add, Bn, Conv, Fc, HostWork, Layer, Lstm

__all__ = ["AppModel", "DS2", "RNNT", "GNMT", "ALEXNET", "RESNET50", "ALL_APPS"]


@dataclass(frozen=True)
class AppModel:
    """One end-to-end inference workload."""

    name: str
    layers: Tuple[Layer, ...]

    def pim_layers(self) -> List[Layer]:
        """The layers the PIM preprocessor may offload."""
        return [l for l in self.layers if l.pim_eligible]


# -- DS2: 2 conv + 6 bidirectional LSTM (h=1760, the published DeepSpeech2
#    width) + 1 FC.  2 s of audio -> ~100 post-stride time steps; conv
#    front-end ~2.2 GFLOP. ----------------------------------------------------
_DS2_STEPS = 100
DS2 = AppModel(
    "DS2",
    (
        Conv("conv1", flops=1.2e9),
        Conv("conv2", flops=1.0e9),
        Lstm("lstm1", _DS2_STEPS, 1312, 1760, bidirectional=True, fused=True),
        *[
            Lstm(f"lstm{i}", _DS2_STEPS, 3520, 1760, bidirectional=True, fused=True)
            for i in range(2, 7)
        ],
        Fc("fc", 29, 3520),
        # Spectrogram extraction + CTC beam-search decode on the host CPU.
        HostWork("preprocess_ctc", ns=52e6),
    ),
)

# -- RNN-T (MLPerf): 5 encoder LSTM (h=1024), 2 prediction LSTM (h=320),
#    2 FC joint layers; prediction/joint run per emitted symbol. -------------
_RNNT_STEPS = 100
_RNNT_SYMBOLS = 40
RNNT = AppModel(
    "RNN-T",
    (
        Lstm("enc1", _RNNT_STEPS, 240, 1024, fused=True),
        Lstm("enc2", _RNNT_STEPS // 2, 2048, 1024, fused=True),
        Lstm("enc3", _RNNT_STEPS // 2, 1024, 1024, fused=True),
        Lstm("enc4", _RNNT_STEPS // 2, 1024, 1024, fused=True),
        Lstm("enc5", _RNNT_STEPS // 2, 1024, 1024, fused=True),
        Lstm("pred1", _RNNT_SYMBOLS, 320, 320, fused=False),
        Lstm("pred2", _RNNT_SYMBOLS, 320, 320, fused=False),
        Fc("joint1", 512, 1344, calls=_RNNT_SYMBOLS),
        Fc("joint2", 29, 512, calls=_RNNT_SYMBOLS),
        HostWork("preprocess_decode", ns=4e6),
    ),
)

# -- GNMT: 8 encoder + 8 decoder LSTM (h=1024), attention, projection. -------
_GNMT_STEPS = 50
GNMT = AppModel(
    "GNMT",
    (
        Lstm("enc1", _GNMT_STEPS, 1024, 1024, bidirectional=True, fused=True),
        *[
            Lstm(f"enc{i}", _GNMT_STEPS, 1024 if i > 2 else 2048, 1024, fused=True)
            for i in range(2, 9)
        ],
        *[
            Lstm(f"dec{i}", _GNMT_STEPS, 1024 if i > 1 else 2048, 1024, fused=False)
            for i in range(1, 9)
        ],
        # Attention context: small matvecs per step, kept on the host.
        Conv("attention", flops=2 * 1024 * 1024 * _GNMT_STEPS),
        # Output projection per decoded token (vocabulary 32k).
        Fc("projection", 32000, 1024, calls=_GNMT_STEPS),
        # Beam search and tokenisation on the host CPU.
        HostWork("beam_search", ns=10e6),
    ),
)

# -- AlexNet: 5 conv + 3 FC. -------------------------------------------------
ALEXNET = AppModel(
    "AlexNet",
    (
        Conv("conv1", flops=0.211e9),
        Conv("conv2", flops=0.448e9),
        Conv("conv3", flops=0.299e9),
        Conv("conv4", flops=0.449e9),
        Conv("conv5", flops=0.299e9),
        Fc("fc6", 4096, 9216),
        Fc("fc7", 4096, 4096),
        Fc("fc8", 1000, 4096),
    ),
)

# -- ResNet-50: convolution-dominated; BN + shortcut adds offloadable but
#    small.  ~4.1 GFLOP of convolutions, ~11M BN activations, 16 shortcuts. --
RESNET50 = AppModel(
    "ResNet-50",
    (
        Conv("convs", flops=4.1e9),
        Bn("bn_all", elements=11_000_000),
        Add("shortcuts", elements=2_500_000),
        Fc("fc", 1000, 2048),
    ),
)

ALL_APPS = (DS2, RNNT, GNMT, ALEXNET, RESNET50)
