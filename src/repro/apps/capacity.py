"""Capacity analysis: why recommendation models are out of scope.

Section VII-A: "the embedding look-up layer of recommendation models is
memory-bound but it also requires a large memory capacity (e.g., 256GB);
processors integrated with HBM are not suitable ... as they provide
limited memory capacity (e.g., 32GB with 4 HBM devices)."

This module quantifies that exclusion: given a system's HBM capacity and a
recommendation model's embedding-table footprint, it reports whether the
workload fits and, if not, the residency fraction — the analysis behind
the paper's decision to evaluate NLP/CV applications only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .layers import Embedding

__all__ = ["SystemCapacity", "RecommendationModel", "capacity_report", "DLRM_LIKE"]


@dataclass(frozen=True)
class SystemCapacity:
    """Memory capacity of an evaluation platform."""

    name: str
    devices: int = 4
    bytes_per_device: int = 8 * 1024**3  # 8 GB HBM2E stack

    @property
    def total_bytes(self) -> int:
        return self.devices * self.bytes_per_device


@dataclass(frozen=True)
class RecommendationModel:
    """A DLRM-style recommendation model's memory footprint."""

    name: str
    num_tables: int
    rows_per_table: int
    embedding_dim: int
    dtype_bytes: int = 4
    lookups_per_inference: int = 1024

    @property
    def table_bytes(self) -> int:
        return (
            self.num_tables * self.rows_per_table
            * self.embedding_dim * self.dtype_bytes
        )

    def embedding_layer(self) -> Embedding:
        """The model's lookup layer as a workload-model descriptor."""
        return Embedding(
            name=f"{self.name}-embedding",
            table_bytes=self.table_bytes,
            lookups=self.lookups_per_inference,
        )


# The production-scale configuration the paper cites (~256 GB of tables).
DLRM_LIKE = RecommendationModel(
    name="DLRM-production",
    num_tables=256,
    rows_per_table=6_000_000,
    embedding_dim=64,
    dtype_bytes=4,  # FP32 tables
)


def capacity_report(
    model: RecommendationModel, system: SystemCapacity
) -> Dict[str, float]:
    """Whether (and how much of) the model fits in the system's memory."""
    total = system.total_bytes
    tables = model.table_bytes
    return {
        "table_gb": tables / 1024**3,
        "capacity_gb": total / 1024**3,
        "fits": float(tables <= total),
        "residency_fraction": min(1.0, total / tables),
    }
