"""Workload models: Table VI microbenchmarks and the five applications."""

from .capacity import DLRM_LIKE, RecommendationModel, SystemCapacity, capacity_report
from .layers import Add, Bn, Conv, Embedding, Fc, HostWork, Layer, Lstm
from .microbench import ADD_SIZES, BN_SIZES, GEMV_SIZES, AddSize, GemvSize
from .models import ALEXNET, ALL_APPS, DS2, GNMT, RESNET50, RNNT, AppModel

__all__ = [
    "DLRM_LIKE", "RecommendationModel", "SystemCapacity", "capacity_report",
    "Add", "Bn", "Conv", "Embedding", "Fc", "HostWork", "Layer", "Lstm",
    "ADD_SIZES", "BN_SIZES", "GEMV_SIZES", "AddSize", "GemvSize",
    "ALEXNET", "ALL_APPS", "DS2", "GNMT", "RESNET50", "RNNT", "AppModel",
]
