"""Layer descriptors for the end-to-end application models (Section VII-A).

Each layer carries the minimal information the performance model needs:
what kernel it maps to, its dimensions, and how it is launched.  PIM
eligibility follows the paper: LSTM and FC (matrix-vector at batch 1)
layers are offloaded; convolutions stay on the host (compute-bound);
BN/ADD (residual) layers are offloadable level-1 kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = ["Conv", "Fc", "Lstm", "Bn", "Add", "Embedding", "HostWork", "Layer"]


@dataclass(frozen=True)
class Conv:
    """A convolution block: compute-bound, never offloaded."""

    name: str
    flops: float  # multiply+add counted separately, per inference

    pim_eligible = False


@dataclass(frozen=True)
class Fc:
    """A fully connected layer: GEMV at batch 1."""

    name: str
    m: int  # output features
    n: int  # input features
    calls: int = 1  # invocations per inference (e.g. per decoder step)

    pim_eligible = True

    @property
    def weight_bytes(self) -> int:
        return 2 * self.m * self.n


@dataclass(frozen=True)
class Lstm:
    """An LSTM layer: T steps of two 4H-row GEMVs plus host activations.

    ``fused`` marks encoder-style layers whose inputs are all available up
    front, letting the runtime issue the whole layer as one PIM kernel; the
    alternative (decoder-style) pays a kernel launch per step, the overhead
    the paper blames for GNMT's smaller gain (Section VII-B).
    """

    name: str
    steps: int
    input_dim: int
    hidden: int
    bidirectional: bool = False
    fused: bool = True

    pim_eligible = True

    @property
    def directions(self) -> int:
        return 2 if self.bidirectional else 1

    @property
    def weight_bytes_per_step(self) -> int:
        return 2 * 4 * self.hidden * (self.input_dim + self.hidden)

    @property
    def gate_m(self) -> int:
        return 4 * self.hidden


@dataclass(frozen=True)
class Bn:
    """Batch-normalisation over ``elements`` activations."""

    name: str
    elements: int

    pim_eligible = True


@dataclass(frozen=True)
class Add:
    """Residual/skip elementwise addition over ``elements`` activations."""

    name: str
    elements: int

    pim_eligible = True


@dataclass(frozen=True)
class HostWork:
    """Fixed host-side work outside the NN kernels (audio preprocessing,
    CTC/beam-search decoding, framework glue).  Identical on both systems;
    the paper's end-to-end measurements include these "other essential
    parts of the software stack" (Section VII-C)."""

    name: str
    ns: float  # per inference, batch 1

    pim_eligible = False


@dataclass(frozen=True)
class Embedding:
    """Embedding lookup: memory-bound but capacity-gated (Section VII-A:
    HBM systems lack the capacity, so the paper excludes RM workloads)."""

    name: str
    table_bytes: int
    lookups: int

    pim_eligible = False


Layer = Union[Conv, Fc, Lstm, Bn, Add, Embedding, HostWork]
