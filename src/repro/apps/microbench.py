"""Table VI microbenchmarks.

GEMV (matrix-vector multiply, the core of RNN/FC layers) and ADD
(elementwise addition, residual connections), at the paper's input sizes,
plus the BN kernel evaluated in the Fig. 14 design-space exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["GemvSize", "AddSize", "GEMV_SIZES", "ADD_SIZES", "BN_SIZES"]


@dataclass(frozen=True)
class GemvSize:
    """One GEMV microbenchmark: y[m] = W[m x n] @ x[n]."""

    name: str
    m: int
    n: int

    @property
    def weight_bytes(self) -> int:
        return self.m * self.n * 2

    @property
    def flops(self) -> int:
        return 2 * self.m * self.n


@dataclass(frozen=True)
class AddSize:
    """One elementwise microbenchmark over ``n`` FP16 elements."""

    name: str
    n: int

    @property
    def bytes_touched(self) -> int:
        return 3 * self.n * 2  # two reads + one write


GEMV_SIZES: Tuple[GemvSize, ...] = (
    GemvSize("GEMV1", 1024, 4096),
    GemvSize("GEMV2", 2048, 4096),
    GemvSize("GEMV3", 4096, 8192),
    GemvSize("GEMV4", 8192, 8192),
)

ADD_SIZES: Tuple[AddSize, ...] = (
    AddSize("ADD1", 2 * 1024 * 1024),
    AddSize("ADD2", 4 * 1024 * 1024),
    AddSize("ADD3", 8 * 1024 * 1024),
    AddSize("ADD4", 16 * 1024 * 1024),
)

# Fig. 14 evaluates a batch-normalisation kernel "with the same input size
# as ADD".
BN_SIZES: Tuple[AddSize, ...] = tuple(
    AddSize(name.replace("ADD", "BN"), size.n) for name, size in
    ((s.name, s) for s in ADD_SIZES)
)
