"""Unified exception taxonomy of the PIM stack.

Every failure the stack can surface derives from :class:`PimError`, so a
serving layer (or a user) can write one ``except PimError`` instead of
guessing which module raised what.  The hierarchy mirrors how the
self-healing server reacts:

* :class:`PimDataError` — stored data was lost (an uncorrectable ECC
  event).  Recoverable by re-staging operands and retrying.
* :class:`PimChannelError` — a pseudo-channel hard-failed.  Recoverable by
  quarantining the named channels and retrying on the survivors.
* :class:`PimAllocationError` — the reserved PIM region or the channel
  pool is exhausted/misused.  Not recoverable by retrying on the device.
* :class:`PimProgramError` — a malformed microkernel or API misuse.  A
  caller bug, never retried.
* :class:`PimOverloadError` — the serving layer refused work because a
  bounded queue is full.  Recoverable by backing off and resubmitting
  (the canonical reaction to backpressure).
* :class:`PimWorkerError` — a fabric worker process failed (died, or
  reported an unrecoverable serving error).  Recoverable by quarantining
  the shard and replaying its requests on the survivors.
* :class:`PimJournalError` — the durability journal could not be written
  or read (unwritable directory, corrupt non-tail record).  Recoverable
  by pointing the server at a fresh journal directory.
* :class:`PimReplayError` — a recorded run or external trace could not be
  replayed (malformed trace line, journal/trace mismatch).  A caller or
  trace-producer bug, never retried.

Subclasses keep their historical bases (``RuntimeError``, and
``ValueError`` for program errors) so pre-taxonomy ``except`` clauses and
tests continue to work unchanged.

This module deliberately imports nothing from the rest of the package:
any layer (``dram``, ``pim``, ``stack``) can depend on it without import
cycles.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "PimError",
    "PimDataError",
    "PimChannelError",
    "PimAllocationError",
    "PimProgramError",
    "PimOverloadError",
    "PimWorkerError",
    "PimJournalError",
    "PimReplayError",
]


class PimError(RuntimeError):
    """Base class of every failure raised by the PIM stack."""


class PimDataError(PimError):
    """Stored data was lost: an uncorrectable (double-bit) ECC event."""


class PimChannelError(PimError):
    """A pseudo-channel hard-failed; carries the failing channel indices."""

    def __init__(self, message: str, channels: Tuple[int, ...] = ()):
        super().__init__(message)
        #: Pseudo-channel indices implicated in the failure (may be empty
        #: when the fault could not be attributed).
        self.channels: Tuple[int, ...] = tuple(channels)


class PimAllocationError(PimError):
    """The reserved PIM memory space or channel pool is exhausted/misused."""


class PimProgramError(PimError, ValueError):
    """A malformed PIM microkernel or misused stack API (a caller bug)."""


class PimOverloadError(PimError):
    """A bounded serving queue refused work (admission-control backpressure).

    Raised synchronously by ``PimServer.submit`` in ``admission="block"``
    mode, and attached to shed requests (``request.error``) in
    ``admission="shed"`` mode.  ``lane`` names the saturated lane when the
    overload could be attributed to one.
    """

    def __init__(self, message: str, lane: int = -1):
        super().__init__(message)
        #: Index of the saturated lane (-1 when not attributable).
        self.lane = lane


class PimWorkerError(PimError):
    """A fabric worker process failed (see :mod:`repro.stack.fabric`).

    Raised inside the router when a shard's worker process dies (SIGKILL,
    crash, broken pipe) or replies with an unrecoverable serving error.
    The fabric reacts like the server reacts to a dead channel: the shard
    is quarantined and its in-flight requests are replayed on surviving
    shards (or completed on the host golden path), so the error surfaces
    to callers only through the shard-quarantine counters — never as a
    lost request.  ``shard`` names the failed shard when attributable.
    """

    def __init__(self, message: str, shard: int = -1):
        super().__init__(message)
        #: Index of the failed shard (-1 when not attributable).
        self.shard = shard


class PimJournalError(PimError):
    """The durability journal failed (see :mod:`repro.journal`).

    Raised when a write-ahead-log segment cannot be created or appended,
    or when a *non-tail* record fails its CRC on recovery (a torn tail
    write is expected after a crash and is tolerated silently; corruption
    anywhere else means the journal cannot be trusted).
    """


class PimReplayError(PimError, ValueError):
    """A recorded run or external trace could not be replayed.

    Raised by the trace-ISA frontend on a malformed HBM-PIMulator trace
    line and by the replay CLI when a journal and its replay disagree.
    Like :class:`PimProgramError` this keeps a ``ValueError`` base: it is
    a caller (or trace-producer) bug, never retried.
    """
