"""Trace-driven DRAM simulation — the role DRAMSim2 plays in the paper.

Section VII-D evaluates the 2x/2BA/SRW variants "with a modified version of
DRAMSim2", noting the results are theoretical upper bounds because the host
processor is not modelled.  This module provides the same capability:

* a tiny text trace format (one command per line);
* :class:`TraceReplayer`, which replays a trace in order against any
  :class:`~repro.dram.timing.TimingParams` at the earliest legal cycles —
  no controller, no fences, no host: the pure DRAM-side upper bound;
* generators that emit the kernel command streams of the baseline and each
  Fig. 14 variant.

Lock-step (AB-mode) streams address a single bank: per-bank and
same-bank-group constraints then coincide with the all-bank broadcast
timing, so a plain pseudo-channel replays them exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from ..dram.bank import BankConfig
from ..dram.commands import Command, CommandType
from ..dram.pseudochannel import PseudoChannel
from ..dram.timing import TimingParams
from .variants import PimVariant, VARIANTS

__all__ = [
    "TraceCommand",
    "parse_trace",
    "format_trace",
    "TraceReplayer",
    "gemv_trace",
    "elementwise_trace",
    "replay_variant_gemv",
    "replay_variant_elementwise",
]


@dataclass(frozen=True)
class TraceCommand:
    """One line of a command trace."""

    kind: str  # ACT | PRE | PREA | RD | WR | REF
    bg: int = 0
    ba: int = 0
    row: int = 0
    col: int = 0

    def to_line(self) -> str:
        """Serialise to the one-line trace format."""
        return f"{self.kind} {self.bg} {self.ba} {self.row} {self.col}"


def parse_trace(text: str) -> List[TraceCommand]:
    """Parse a trace: ``KIND bg ba row col`` per line; '#' comments."""
    out: List[TraceCommand] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        kind = parts[0].upper()
        if kind not in CommandType.__members__:
            raise ValueError(f"line {line_no}: unknown command {kind!r}")
        numbers = [int(p) for p in parts[1:]]
        numbers += [0] * (4 - len(numbers))
        out.append(TraceCommand(kind, *numbers[:4]))
    return out


def format_trace(commands: Iterable[TraceCommand]) -> str:
    """Serialise a command list to trace text (inverse of parse_trace)."""
    return "\n".join(cmd.to_line() for cmd in commands)


class TraceReplayer:
    """Replays a command trace in order at the earliest legal cycles."""

    def __init__(self, timing: TimingParams, num_rows: int = 8192):
        self.timing = timing
        self.num_rows = num_rows

    def replay(self, commands: Iterable[TraceCommand]) -> int:
        """Returns the cycle at which the last command issues."""
        channel = PseudoChannel(self.timing, BankConfig(num_rows=self.num_rows))
        dummy = np.zeros(channel.bank_config.col_bytes, dtype=np.uint8)
        cycle = 0
        last = 0
        for tc in commands:
            kind = CommandType[tc.kind]
            cmd = Command(
                kind, tc.bg, tc.ba, row=tc.row, col=tc.col,
                data=dummy if kind is CommandType.WR else None,
            )
            cycle = max(cycle, channel.earliest_issue(cmd))
            channel.issue(cmd, cycle)
            last = cycle
            cycle += 1
        return last

    def bandwidth(self, commands: List[TraceCommand], col_bytes: int = 32) -> float:
        """Average bytes/cycle over the replayed trace."""
        columns = sum(1 for c in commands if c.kind in ("RD", "WR"))
        cycles = self.replay(commands)
        return columns * col_bytes / cycles if cycles else 0.0


# ---------------------------------------------------------------------------
# Kernel trace generators (per pseudo-channel, lock-step -> single bank)
# ---------------------------------------------------------------------------


def gemv_trace(
    m: int,
    n: int,
    num_pchs: int,
    variant: Optional[PimVariant] = None,
    cols_per_row: int = 32,
) -> List[TraceCommand]:
    """The AB-PIM GEMV command stream of one pseudo-channel.

    Baseline: per 8-dim chunk, 8 staging WRs + 8 MAC RDs; SRW merges them
    into 8 combined slots (emitted as RDs — the WR data rides along);
    2x halves the tile count.
    """
    variant = variant or VARIANTS["PIM-HBM"]
    n_slice = -(-(-(-n // num_pchs)) // 8) * 8
    chunks = n_slice // 8
    tiles = -(-m // 128)
    if variant.lanes_scale > 1:
        tiles = -(-tiles // int(variant.lanes_scale))
    chunks_per_row = cols_per_row // 8
    out: List[TraceCommand] = []
    for tile in range(tiles):
        open_row = None
        for chunk in range(chunks):
            row = tile * -(-chunks // chunks_per_row) + chunk // chunks_per_row
            col_base = (chunk % chunks_per_row) * 8
            if open_row != row:
                if open_row is not None:
                    out.append(TraceCommand("PRE"))
                out.append(TraceCommand("ACT", row=row))
                open_row = row
            if variant.gemv_chunk_commands >= 16:
                for j in range(8):
                    out.append(TraceCommand("WR", row=row, col=col_base + j))
                for j in range(8):
                    out.append(TraceCommand("RD", row=row, col=col_base + j))
            else:  # SRW: one combined RD+WR slot per column
                for j in range(8):
                    out.append(TraceCommand("RD", row=row, col=col_base + j))
        out.append(TraceCommand("PRE"))
        out_row = tiles * -(-chunks // chunks_per_row) + tile // chunks_per_row
        out.append(TraceCommand("ACT", row=out_row))
        for j in range(8):
            out.append(TraceCommand("WR", row=out_row, col=(tile % chunks_per_row) * 8 + j))
        out.append(TraceCommand("PRE"))
    return out


def elementwise_trace(
    elements: int,
    num_pchs: int,
    commands_per_group: int = 24,
    lanes_scale: float = 1.0,
    cols_per_row: int = 32,
) -> List[TraceCommand]:
    """The AB-PIM elementwise stream of one pseudo-channel.

    24 commands per 8-column group (FILL RDs, op RDs, MOV WRs) in the
    baseline; 16 with 2BA (no FILL); element throughput scales with the
    variant's lane count.
    """
    per_group = int(num_pchs * 8 * 8 * 16 * lanes_scale)
    groups = -(-elements // per_group)
    in_cols = cols_per_row // 2
    groups_per_row = in_cols // 8
    out: List[TraceCommand] = []
    open_row = None
    for g in range(groups):
        row = g // groups_per_row
        col_base = (g % groups_per_row) * 8
        if open_row != row:
            if open_row is not None:
                out.append(TraceCommand("PRE"))
            out.append(TraceCommand("ACT", row=row))
            open_row = row
        read_phases = (commands_per_group - 8) // 8
        for _ in range(read_phases):
            for j in range(8):
                out.append(TraceCommand("RD", row=row, col=col_base + j))
        for j in range(8):
            out.append(TraceCommand("WR", row=row, col=in_cols + col_base + j))
    if open_row is not None:
        out.append(TraceCommand("PRE"))
    return out


def replay_variant_gemv(
    variant_name: str, m: int, n: int, num_pchs: int, timing: TimingParams
) -> int:
    """Upper-bound cycles of one variant's GEMV stream (one channel)."""
    variant = VARIANTS[variant_name]
    trace = gemv_trace(m, n, num_pchs, variant)
    return TraceReplayer(timing).replay(trace)


def replay_variant_elementwise(
    variant_name: str, elements: int, num_pchs: int, timing: TimingParams,
    bn: bool = False,
) -> int:
    """Upper-bound cycles of one variant's elementwise stream."""
    variant = VARIANTS[variant_name]
    commands, _ = variant.bn_group if bn else variant.add_group
    trace = elementwise_trace(
        elements, num_pchs, commands_per_group=commands,
        lanes_scale=variant.lanes_scale,
    )
    return TraceReplayer(timing).replay(trace)
