"""Design-space exploration of enhanced PIM microarchitectures (Fig. 14)."""

from .tracesim import (
    TraceCommand,
    TraceReplayer,
    elementwise_trace,
    format_trace,
    gemv_trace,
    parse_trace,
    replay_variant_elementwise,
    replay_variant_gemv,
)
from .variants import VARIANTS, PimVariant, VariantLatencyModel, dse_speedups

__all__ = [
    "TraceCommand",
    "TraceReplayer",
    "elementwise_trace",
    "format_trace",
    "gemv_trace",
    "parse_trace",
    "replay_variant_elementwise",
    "replay_variant_gemv",
    "VARIANTS",
    "PimVariant",
    "VariantLatencyModel",
    "dse_speedups",
]
