"""Design-space exploration: PIM-HBM-2x, -2BA and -SRW (Fig. 14).

The paper evaluates three enhanced PIM microarchitectures that could not be
built in silicon, using a modified DRAMSim2; it stresses the results are
*theoretical upper bounds* that are close to reality only for very
memory-bound kernels.  We model each variant by how it changes the kernel
command streams:

* **2x** — twice the PIM resources: one execution unit per bank (16/pCH)
  and doubled register files.  Every data command feeds twice the lanes, so
  the command-stream portion of a kernel halves (fences halve with it: the
  AAM window covers twice the work).  Cost: +24% die area (paper).
* **2BA** — one instruction reads EVEN_BANK and ODD_BANK together.  ADD/MUL
  lose their FILL phase (24 -> 16 commands per group); GEMV and BN are
  unchanged.  Cost: +60% device power (paper).
* **SRW** — a simultaneous column RD + WR: the MAC can take one operand
  from the write datapath and one from the bank, removing GEMV's staging
  WRs (16 -> 8 commands per chunk, one fence); elementwise kernels can
  overlap the MOV write-out with the next group's reads.

Fixed costs (setup, mode transitions, row switches, readback, launches) do
not scale, which is what keeps measured gains below the raw 2x bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from ..apps.microbench import ADD_SIZES, BN_SIZES, GEMV_SIZES
from ..common.units import geomean
from ..perf.latency import PIM_HBM, PROC_HBM, LatencyModel, SystemPerf

__all__ = ["PimVariant", "VARIANTS", "VariantLatencyModel", "dse_speedups"]


@dataclass(frozen=True)
class PimVariant:
    """Command-stream parameters of one PIM microarchitecture variant."""

    name: str
    # GEMV: commands per 8-dim chunk and fences per chunk.
    gemv_chunk_commands: int = 16
    gemv_chunk_fences: int = 2
    # Work per data command relative to the baseline (2x doubles it).
    lanes_scale: float = 1.0
    # Elementwise (commands, fences) per 8-column group.
    add_group: Tuple[int, int] = (24, 3)
    bn_group: Tuple[int, int] = (16, 2)
    # Elementwise bus-turnaround padding (2BA's single read phase halves it).
    turnaround_cycles: int = 20
    # Reported implementation costs (paper, Section VII-D).
    die_area_increase: float = 0.0
    power_increase: float = 0.0


VARIANTS: Dict[str, PimVariant] = {
    "PIM-HBM": PimVariant("PIM-HBM"),
    "PIM-HBM-2x": PimVariant(
        "PIM-HBM-2x",
        lanes_scale=2.0,
        die_area_increase=0.24,
    ),
    "PIM-HBM-2BA": PimVariant(
        "PIM-HBM-2BA",
        add_group=(16, 2),
        turnaround_cycles=10,
        power_increase=0.60,
    ),
    "PIM-HBM-SRW": PimVariant(
        "PIM-HBM-SRW",
        gemv_chunk_commands=8,
        gemv_chunk_fences=1,
        # AAM ordering still forces the fence cadence in the elementwise
        # kernels, so SRW's benefit is confined to GEMV's staging writes.
    ),
}


class VariantLatencyModel(LatencyModel):
    """The PIM latency model with a variant's command-stream parameters."""

    def __init__(self, system: SystemPerf, variant: PimVariant):
        super().__init__(system)
        self.variant = variant

    # GEMV: the chunk loop changes; fixed per-tile costs stay.

    def pim_gemv_cycles(self, m: int, n: int, include_setup: bool = True) -> int:
        """Per-pCH GEMV cycles under this variant's command stream."""
        cal = self.cal
        t = self.sys
        v = self.variant
        tiles, chunks = self._gemv_shape(m, n)
        # 2x units double the outputs per tile: half the tiles.
        tiles = -(-tiles // int(v.lanes_scale)) if v.lanes_scale > 1 else tiles
        chunks_per_row = t.cols_per_row // 8
        fence = cal.fence_cycles
        per_tile = (
            (8 * t.tccd_l + fence)
            + (2 * fence + 2 * t.tccd_l)
            + chunks * (v.gemv_chunk_commands * t.tccd_l + v.gemv_chunk_fences * fence)
            + (8 * t.tccd_l + fence)
            + -(-chunks // chunks_per_row) * cal.row_switch_cycles
        )
        readback = tiles * 8 * 8 * t.tccd_s * int(v.lanes_scale)
        cycles = tiles * per_tile + readback
        if include_setup:
            cycles += cal.pim_setup_cycles
        return cycles

    def pim_elementwise_cycles(
        self, elements: int, commands_per_group: int, fences_per_group: int,
        include_setup: bool = True,
    ) -> int:
        """Elementwise cycles with the variant's group shape substituted."""
        if (commands_per_group, fences_per_group) == (24, 3):
            commands_per_group, fences_per_group = self.variant.add_group
        elif (commands_per_group, fences_per_group) == (16, 2):
            commands_per_group, fences_per_group = self.variant.bn_group
        per_group_elems = int(
            self.sys.num_pchs * 8 * 8 * 16 * self.variant.lanes_scale
        )
        cal = self.cal
        t = self.sys
        groups = -(-elements // per_group_elems)
        per_group = (
            commands_per_group * t.tccd_l
            + fences_per_group * cal.fence_cycles
            + self.variant.turnaround_cycles
        )
        groups_per_row = (t.cols_per_row // 2) // 8
        cycles = groups * per_group + (groups // groups_per_row) * cal.row_switch_cycles
        if include_setup:
            cycles += cal.pim_setup_cycles
        return cycles


def dse_speedups(
    host_system: SystemPerf = PROC_HBM, pim_system: SystemPerf = PIM_HBM
) -> Dict[str, Dict[str, float]]:
    """Speedup of every variant over the HBM host, per microbenchmark.

    Returns ``{variant: {benchmark: speedup, ..., "geomean": g}}`` — the
    Fig. 14 data.
    """
    host = LatencyModel(host_system)
    results: Dict[str, Dict[str, float]] = {}
    for name, variant in VARIANTS.items():
        model = VariantLatencyModel(pim_system, variant)
        row: Dict[str, float] = {}
        for g in GEMV_SIZES:
            row[g.name] = host.host_gemv(g.m, g.n).ns / model.pim_gemv(g.m, g.n).ns
        for a in ADD_SIZES:
            row[a.name] = host.host_stream(a.n, 3).ns / model.pim_add(a.n).ns
        for b in BN_SIZES:
            row[b.name] = host.host_stream(b.n, 2).ns / model.pim_bn(b.n).ns
        row["geomean"] = geomean(v for k, v in row.items())
        results[name] = row
    return results
