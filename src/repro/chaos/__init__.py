"""Chaos engineering for the serving fabric: scripted faults, checked invariants.

The package turns the fabric's resilience claims into an executable
contract.  :mod:`repro.chaos.schedule` scripts seeded fault sequences
(worker kill/wedge/slowdown, channel death, bit flips, pipe-payload
corruption) at simulated instants; :mod:`repro.chaos.harness` replays
them against a live :class:`~repro.stack.fabric.PimFabric` alongside a
fault-free baseline; :mod:`repro.chaos.invariants` checks what must
survive: exactly one terminal outcome per request, bit-exactness against
the host golden path, a valid merged trace, ring capacity restored by
respawn, and bounded degradation (post-recovery throughput within 20% of
fault-free, p99 turnaround below 2x fault-free).

``python -m repro chaos --seed 7`` is the CLI front end; it runs the
scenario twice and additionally asserts byte-identical replay (same
profiles, same span trees) — the determinism property everything else in
this repository is built on.
"""

from .harness import ChaosReport, run_chaos
from .invariants import (
    check_bit_exactness,
    check_capacity,
    check_conservation,
    check_degradation,
    check_dropped_spans,
    check_trace,
    golden_reference,
)
from .schedule import KINDS, ChaosEvent, ChaosSchedule

__all__ = [
    "ChaosEvent",
    "ChaosReport",
    "ChaosSchedule",
    "KINDS",
    "check_bit_exactness",
    "check_capacity",
    "check_conservation",
    "check_degradation",
    "check_dropped_spans",
    "check_trace",
    "golden_reference",
    "run_chaos",
]
