"""The invariant checker of the chaos harness.

Every check returns a list of human-readable violation strings (empty =
the invariant holds), so the harness and the ``python -m repro chaos``
CLI can aggregate them and exit nonzero on any failure.  The invariants
are the fabric's contract under fault:

* **conservation** — every submitted request ends in exactly one
  terminal outcome, appearing exactly once in the merged profile:
  nothing lost off a dead shard, nothing double-served by a hedge race.
* **bit-exactness** — every completed result equals the host golden
  reference (shards replicate the device, so *which* shard served — or
  whether the host finished the job — must not change a single bit).
* **trace validity** — the merged multi-shard trace still passes
  :func:`~repro.obs.export.validate_chrome_trace`, and work that was
  dropped (shed/expired) produced zero device spans.
* **capacity recovery** — after the schedule has played out, every
  shard slot is serving again (respawned workers rejoined the ring).
* **degradation bounds** — post-recovery simulated throughput within
  20% of the fault-free baseline, and chaos p99 turnaround below 2x the
  fault-free p99 (the straggler hedge is what keeps the tail in check).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..obs.export import chrome_trace, validate_chrome_trace
from ..stack.blas import (
    add_reference,
    bn_reference,
    gemv_reference,
    mul_reference,
    relu_reference,
)
from ..stack.profiler import ServingProfile, _percentile

__all__ = [
    "check_bit_exactness",
    "check_capacity",
    "check_conservation",
    "check_degradation",
    "check_dropped_spans",
    "check_trace",
    "golden_reference",
]

#: Outcomes that return a bit-exact result to the caller.
_SERVED = ("completed", "degraded_host")
#: Outcomes for work that never ran on the device.
_DROPPED = ("rejected", "expired")


def golden_reference(request, num_pchs: int) -> np.ndarray:
    """The host golden result of one request (the bit-exactness oracle).

    ``num_pchs`` must be the *replica* channel count — the FP16 GEMV MAC
    order depends on it, and bit-exactness is defined against the order
    the device actually used.
    """
    if request.op == "gemv":
        return gemv_reference(request.weights, request.a, num_pchs)
    if request.op == "add":
        return add_reference(request.a, request.b)
    if request.op == "mul":
        return mul_reference(request.a, request.b)
    if request.op == "relu":
        return relu_reference(request.a)
    gamma, beta = request.scalars or (1.0, 0.0)
    return bn_reference(request.a, gamma, beta)


def check_conservation(handles, profile: ServingProfile) -> List[str]:
    """Exactly one terminal outcome per submitted request.

    Cross-checks the caller-visible handles against the merged profile:
    every handle must be terminal, and its request id must appear in the
    profile's per-request stats exactly once — a dead shard, a replay,
    or a hedge race must neither drop a request nor serve it twice.
    """
    violations = []
    for handle in handles:
        if handle.outcome is None:
            violations.append(
                f"request {handle.request_id} has no terminal outcome"
            )
    seen: Dict[int, int] = {}
    for stats in profile.requests:
        seen[stats.request_id] = seen.get(stats.request_id, 0) + 1
    submitted = {handle.request_id for handle in handles}
    for rid, count in sorted(seen.items()):
        if count != 1:
            violations.append(
                f"request {rid} recorded {count} times in the profile"
            )
        if rid not in submitted:
            violations.append(
                f"profile records request {rid} that was never submitted"
            )
    for rid in sorted(submitted - set(seen)):
        violations.append(f"request {rid} missing from the profile")
    return violations


def check_bit_exactness(handles, num_pchs: int) -> List[str]:
    """Every served result equals the host golden reference, bit for bit."""
    violations = []
    for handle in handles:
        if handle.outcome in _DROPPED:
            if handle.result is not None:
                violations.append(
                    f"dropped request {handle.request_id} carries a result"
                )
            continue
        if handle.result is None:
            violations.append(
                f"request {handle.request_id} ({handle.outcome}) has no result"
            )
            continue
        golden = golden_reference(handle.request, num_pchs)
        if not np.array_equal(handle.result, golden):
            violations.append(
                f"request {handle.request_id} result diverges from the host "
                f"golden path (served by shard {handle.shard})"
            )
    return violations


def check_trace(tracer) -> List[str]:
    """The merged multi-shard trace passes the Chrome-trace validator."""
    if tracer is None:
        return []
    return [
        f"merged trace invalid: {problem}"
        for problem in validate_chrome_trace(chrome_trace(tracer))
    ]


def check_dropped_spans(tracer, profile: ServingProfile) -> List[str]:
    """Dropped (shed/expired) work must have produced zero device spans."""
    if tracer is None:
        return []
    dropped = {
        stats.request_id
        for stats in profile.requests
        if stats.outcome in _DROPPED
    }
    if not dropped:
        return []
    violations = []
    for span in tracer.spans:
        rid = span.attrs.get("request_id")
        if rid in dropped and span.category in ("kernel", "device", "channel"):
            violations.append(
                f"dropped request {rid} produced device span {span.name!r}"
            )
    return violations


def check_capacity(alive_shards: List[int], workers: int) -> List[str]:
    """Every shard slot is serving again once the schedule has played out."""
    missing = sorted(set(range(workers)) - set(alive_shards))
    if missing:
        return [
            f"capacity not recovered: shards {missing} never rejoined the "
            f"ring ({len(alive_shards)}/{workers} serving)"
        ]
    return []


def check_degradation(
    profile: ServingProfile,
    baseline: ServingProfile,
    recovery_rps: float,
    baseline_recovery_rps: float,
) -> List[str]:
    """Post-recovery throughput and tail-latency bounds versus fault-free.

    Both sides are *simulated* quantities, so the gates are deterministic:
    recovery-wave throughput must be within 20% of the fault-free run of
    the same wave, and the chaos session's p99 turnaround must stay below
    2x the fault-free p99.
    """
    violations = []
    if baseline_recovery_rps > 0 and recovery_rps < 0.8 * baseline_recovery_rps:
        violations.append(
            f"post-recovery throughput {recovery_rps:,.0f} req/s fell more "
            f"than 20% below the fault-free {baseline_recovery_rps:,.0f} req/s"
        )
    chaos_p99 = _percentile(
        [r.turnaround_ns for r in profile.requests if r.outcome in _SERVED],
        0.99,
    )
    base_p99 = _percentile(
        [r.turnaround_ns for r in baseline.requests if r.outcome in _SERVED],
        0.99,
    )
    if base_p99 > 0 and chaos_p99 > 2.0 * base_p99:
        violations.append(
            f"chaos p99 turnaround {chaos_p99 / 1000:.1f}us exceeds 2x the "
            f"fault-free p99 {base_p99 / 1000:.1f}us"
        )
    return violations
