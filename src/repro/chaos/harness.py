"""Chaos orchestration: replay a fault script against a live fabric.

:func:`run_chaos` is the engine behind ``python -m repro chaos``.  It
serves one seeded request workload twice — once fault-free (the
baseline) and once with a :class:`~repro.chaos.schedule.ChaosSchedule`
playing out against the fabric — and checks the fabric's contract with
the invariant suite (:mod:`repro.chaos.invariants`): outcome
conservation, bit-exactness against the host golden path, merged-trace
validity, ring-capacity recovery, and the degradation gates
(post-recovery throughput within 20% of fault-free, p99 turnaround
below 2x fault-free).

The workload is served in *waves* — one fabric ``run()`` per arrival
window — because that is where the lifecycle manager does its work:
between waves the router heartbeats, respawns quarantined slots, and
rejoins them to the ring, so a schedule's kill in wave 2 is healed
capacity by wave 3.  The wave after the last scripted event is the
*recovery wave*: it runs on the healed fleet and supplies the
post-recovery throughput the 20% gate compares against the fault-free
baseline.

Everything is seeded and the faults are scripted with wide margins
relative to the harness's wall-clock bounds, so two runs of the same
seed produce identical profiles and span trees — the replay-determinism
property the CLI asserts by running every scenario twice.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..journal import recover
from ..stack.api import Request, ServerConfig
from ..stack.fabric import PimFabric
from ..stack.profiler import ServingProfile
from ..stack.runtime import SystemConfig
from .invariants import (
    check_bit_exactness,
    check_capacity,
    check_conservation,
    check_degradation,
    check_dropped_spans,
    check_trace,
)
from .schedule import ChaosSchedule, KINDS

__all__ = ["ChaosReport", "run_chaos"]

#: Arrival width of one request wave on the simulated clock.
WAVE_NS = 50_000.0
#: Scripted straggler stall: far past the hedge threshold, well inside
#: the heartbeat bound, so the round is hedged and the worker survives.
SLOW_DELAY_S = 1.5
#: Scripted wedge stall: past every liveness bound, so the worker is
#: detected (watchdog or heartbeat), killed, quarantined, and respawned.
WEDGE_DELAY_S = 8.0


def _chaos_server_config(transport: str = "pipe") -> ServerConfig:
    """The resilience knobs the harness runs under.

    Wall-clock bounds are compressed from the production defaults so a
    scripted wedge is detected in seconds, with wide margins between the
    tiers: normal rounds finish well under ``hedge_min_s``, a ``slow``
    stall (1.5s) sits far past the hedge threshold but inside the
    heartbeat bound once hedged, and a ``wedge`` stall (8s) overruns
    every bound.  The respawn budget is effectively unbounded — the
    harness is testing that healing *works*, not rationing it.

    ``transport`` picks the fabric payload path under test; results,
    profiles, and span trees are bit-exact across transports, so a
    schedule's report under ``"shm"`` must match its ``"pipe"`` twin —
    the differential surface the CLI asserts.  Under ``"shm"`` the
    inline threshold is forced to 0 so the harness's deliberately tiny
    tensors still cross as CRC-guarded descriptors — otherwise the
    ``corrupt_shm`` kind would never find a frame to strike.
    """
    return ServerConfig(
        reply_timeout_s=3.0,
        heartbeat_timeout_s=3.0,
        close_timeout_s=5.0,
        join_timeout_s=10.0,
        max_respawns=16,
        hedge=True,
        hedge_quantile=0.95,
        hedge_factor=4.0,
        hedge_min_s=0.5,
        pipe_checksum=True,
        transport=transport,
        shm_inline_bytes=0,
    )


@dataclass
class ChaosReport:
    """Everything one chaos scenario produced, gates included.

    ``violations`` is the aggregated invariant-checker output (empty
    means the fabric's contract held); the remaining fields are the
    evidence: merged chaos and baseline profiles, the tracers (for span
    -tree replay comparison), per-kind applied-event log, respawn/hedge
    counters, and the simulated throughput/latency numbers behind the
    degradation gates.
    """

    seed: int
    workers: int
    requests: int
    schedule: ChaosSchedule
    profile: ServingProfile
    baseline_profile: ServingProfile
    tracer: object
    baseline_tracer: object
    applied: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    alive_after: List[int] = field(default_factory=list)
    respawns: Dict[int, int] = field(default_factory=dict)
    recovery_rps: float = 0.0
    baseline_recovery_rps: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether every invariant and gate held."""
        return not self.violations

    def render(self) -> List[str]:
        """A text summary of the scenario, gates last."""
        profile = self.profile
        lines = [
            f"chaos scenario        : seed={self.seed} workers={self.workers} "
            f"requests={self.requests}",
            f"scripted events       : "
            + (", ".join(self.applied) if self.applied else "none"),
            f"quarantined shards    : "
            + (
                ",".join(str(s) for s in sorted(set(profile.quarantined_shards)))
                or "-"
            ),
            f"respawns (slot x n)   : "
            + (
                ",".join(f"{s}x{n}" for s, n in sorted(self.respawns.items()))
                or "-"
            ),
            f"replays / hedges      : {profile.replays} / {profile.hedges} "
            f"(won {profile.hedge_wins}, lost {profile.hedge_losses})",
            f"recovery throughput   : {self.recovery_rps:,.0f} req/s "
            f"(fault-free {self.baseline_recovery_rps:,.0f})",
            f"alive shards after    : {len(self.alive_after)}/{self.workers}",
        ]
        if self.violations:
            lines.append("violations:")
            lines.extend(f"  - {violation}" for violation in self.violations)
        else:
            lines.append("violations            : none")
        return lines


def _wave_requests(
    seed: int, wave: int, count: int, distinct: int
) -> List[Request]:
    """One wave's seeded GEMV stream, arrivals inside the wave's window."""
    rng = np.random.default_rng(seed * 7919 + wave)
    weights = [
        (rng.standard_normal((16, 8)) * 0.25).astype(np.float16)
        for _ in range(distinct)
    ]
    offsets = np.sort(rng.uniform(0.0, WAVE_NS * 0.8, size=count))
    return [
        Request(
            "gemv",
            weights=weights[i % distinct],
            a=(rng.standard_normal(8) * 0.25).astype(np.float16),
            arrival_ns=float(wave * WAVE_NS + offsets[i]),
            trace_id=f"chaos-w{wave}-r{i}",
        )
        for i in range(count)
    ]


def _arm_event(fabric: PimFabric, event, seed: int) -> str:
    """Fire one scripted event against the fabric, pre-wave.

    ``kill`` arms a post-dispatch hook (the worker dies with the wave
    genuinely in flight); the rest arm in-worker faults through the
    ``("chaos", spec)`` control message.  A target that is dead and out
    of respawn budget is retargeted to the lowest alive shard so the
    schedule never fizzles.  Returns a log line for the report.
    """
    shard = event.shard
    if shard not in fabric.alive_shards():
        fabric._heal()
        if shard not in fabric.alive_shards():
            alive = fabric.alive_shards()
            if not alive:
                return f"{event.kind}@skipped (no alive shard)"
            shard = alive[0]
    if event.kind == "kill":
        def hook(fab, victim=shard):
            if victim in fab.alive_shards():
                fab.kill_worker(victim)
            fab._post_dispatch_hook = None

        fabric._post_dispatch_hook = hook
        return f"kill@shard{shard}"
    spec: Dict[str, object] = {"seed": seed}
    if event.kind == "wedge":
        spec.update(delay_s=WEDGE_DELAY_S, wedge=True)
    elif event.kind == "slow":
        spec.update(delay_s=SLOW_DELAY_S)
    elif event.kind == "fail_channel":
        spec.update(fail_channel=int(event.param))
    elif event.kind == "bit_flips":
        spec.update(bit_flips=max(1, int(event.param)))
    elif event.kind == "corrupt_shm":
        # Strikes a shared-memory result frame post-checksum under
        # transport="shm"; the worker degrades it to reply-blob
        # corruption under "pipe", so schedules stay transport-portable.
        spec.update(corrupt_shm=True)
    else:  # corrupt_pipe: schedule validated the kind set already
        spec.update(corrupt_reply=True)
    fabric.inject_worker_fault(shard, spec)
    return f"{event.kind}@shard{shard}"


def _crash_and_recover(
    fabric: PimFabric,
    config: SystemConfig,
    server_config: ServerConfig,
    workers: int,
    wave_handles: List,
) -> Tuple[PimFabric, ServingProfile, List]:
    """Kill the router with ``wave_handles`` accepted but unserved.

    Emulates a router SIGKILL at the most adversarial instant the
    journal defends: the wave is admitted (accepted records on disk) but
    ``run()`` never happened, so no outcome records exist.  Every worker
    is killed, the fabric is abandoned, and
    :func:`repro.journal.recover` replays the journal through a fresh
    fabric that shares the dead router's tracer.  Returns the
    replacement fabric (rid counter continued past the journaled rids so
    later waves never collide), the replay-session profile, and the
    recovered handles that stand in for ``wave_handles``.
    """
    tracer = fabric.tracer
    journal_dir = fabric.server_config.journal_dir
    for shard in fabric.alive_shards():
        fabric.kill_worker(shard)
    fabric.close()
    report = recover(
        journal_dir,
        config=config,
        server_config=server_config,
        workers=workers,
        tracer=tracer,
    )
    wanted = {h.request.trace_id for h in wave_handles}
    recovered = [h for h in report.handles if h.request.trace_id in wanted]
    successor = PimFabric(
        config, workers=workers, server_config=server_config, tracer=tracer
    )
    successor._next_rid = (
        max((h.request_id for h in report.handles), default=-1) + 1
    )
    return successor, report.replay_profile, recovered


def _execute(
    seed: int,
    workers: int,
    num_waves: int,
    per_wave: int,
    by_wave: Dict[int, List],
    config: SystemConfig,
    server_config: ServerConfig,
    journal_dir: Optional[str] = None,
) -> Tuple:
    """Serve every wave on one fabric; returns the session's evidence.

    ``by_wave`` empty runs the fault-free baseline; otherwise each
    wave's scripted events are armed immediately before its requests are
    submitted and served.  When ``journal_dir`` is set the fabric
    journals, and a ``kill_router`` event crashes the router itself at
    its wave — the wave's outcomes then come from journal recovery and
    later waves run on a successor fabric.
    """
    if journal_dir is not None:
        server_config = server_config.replace(journal_dir=journal_dir)
    fabric = PimFabric(config, workers=workers, server_config=server_config)
    total = ServingProfile()
    handles = []
    wave_profiles = []
    applied: List[str] = []
    try:
        for wave in range(num_waves):
            events = by_wave.get(wave, ())
            router_kill = any(e.kind == "kill_router" for e in events)
            for event in events:
                if event.kind == "kill_router":
                    continue
                applied.append(_arm_event(fabric, event, seed))
            wave_handles = [
                fabric.submit(request)
                for request in _wave_requests(seed, wave, per_wave, workers)
            ]
            if router_kill:
                applied.append("kill_router@router")
                fabric, profile, wave_handles = _crash_and_recover(
                    fabric, config, server_config, workers, wave_handles
                )
            else:
                profile = fabric.run()
            handles.extend(wave_handles)
            wave_profiles.append(profile)
            total.merge(profile)
        fabric._heal()  # final rejoin pass so capacity reflects healing
        alive_after = fabric.alive_shards()
        respawns = fabric.respawns
        tracer = fabric.tracer
    finally:
        fabric.close()
    return handles, total, wave_profiles, applied, alive_after, respawns, tracer


def run_chaos(
    seed: int = 7,
    workers: int = 4,
    requests: int = 48,
    kinds: Tuple[str, ...] = KINDS,
    schedule: Optional[ChaosSchedule] = None,
    gates: bool = True,
    journal_dir: Optional[str] = None,
    transport: str = "pipe",
) -> ChaosReport:
    """Run one chaos scenario end to end; returns its :class:`ChaosReport`.

    Generates (or takes) a schedule, serves the seeded workload fault-free
    for the baseline, replays it under the schedule, and aggregates every
    invariant violation into ``report.violations`` (empty = the fabric's
    contract held).  ``gates=False`` skips the baseline comparison gates
    (and their extra fault-free session) — the fast mode the property
    tests use, where only conservation/bit-exactness/trace/capacity
    matter.

    A schedule containing ``kill_router`` needs a journal to recover
    from; ``journal_dir`` supplies one (kept for inspection), else a
    temporary directory is used and removed afterwards.

    ``transport`` selects the fabric payload path (``"pipe"`` or
    ``"shm"``); the report's profiles, results, and span trees are
    bit-exact across transports, which is the differential guarantee the
    CLI's ``--transport`` flag checks.
    """
    if schedule is None:
        schedule = ChaosSchedule.generate(
            seed, workers, kinds=kinds, wave_ns=WAVE_NS
        )
    by_wave = schedule.by_wave(WAVE_NS)
    num_waves = (max(by_wave) + 1 if by_wave else 1) + 1  # +1 recovery wave
    per_wave = max(workers, requests // num_waves)
    config = SystemConfig(
        num_pchs=2,
        num_rows=256,
        simulate_pchs=1,
        server_seed=seed,
        ecc=True,
        scrub_interval=4,
        trace=True,
    )
    server_config = _chaos_server_config(transport)
    if gates:
        (_, base_total, base_waves, _, _, _, base_tracer) = _execute(
            seed, workers, num_waves, per_wave, {}, config, server_config
        )
    else:
        base_total, base_waves, base_tracer = ServingProfile(), [], None
    needs_journal = any(
        event.kind == "kill_router" for event in schedule.events
    )
    scratch_journal = None
    if needs_journal and journal_dir is None:
        scratch_journal = tempfile.mkdtemp(prefix="repro-chaos-journal-")
        journal_dir = scratch_journal
    try:
        (handles, total, wave_profiles, applied, alive_after, respawns,
         tracer) = _execute(
            seed, workers, num_waves, per_wave, by_wave, config,
            server_config, journal_dir=journal_dir if needs_journal else None,
        )
    finally:
        if scratch_journal is not None:
            shutil.rmtree(scratch_journal, ignore_errors=True)
    report = ChaosReport(
        seed=seed,
        workers=workers,
        requests=len(handles),
        schedule=schedule,
        profile=total,
        baseline_profile=base_total,
        tracer=tracer,
        baseline_tracer=base_tracer,
        applied=applied,
        alive_after=alive_after,
        respawns=respawns,
        recovery_rps=wave_profiles[-1].throughput_rps(),
        baseline_recovery_rps=(
            base_waves[-1].throughput_rps() if base_waves else 0.0
        ),
    )
    report.violations.extend(check_conservation(handles, total))
    report.violations.extend(check_bit_exactness(handles, config.num_pchs))
    report.violations.extend(check_trace(tracer))
    report.violations.extend(check_dropped_spans(tracer, total))
    report.violations.extend(check_capacity(alive_after, workers))
    if gates:
        report.violations.extend(
            check_degradation(
                total,
                base_total,
                report.recovery_rps,
                report.baseline_recovery_rps,
            )
        )
    return report
