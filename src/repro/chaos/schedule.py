"""Seeded, scripted chaos schedules for the serving fabric.

A :class:`ChaosSchedule` is the deterministic fault script the chaos
harness (:mod:`repro.chaos.harness`) replays against a
:class:`~repro.stack.fabric.PimFabric`: a sequence of
:class:`ChaosEvent` instants on the *simulated* arrival clock, each
naming a fault kind, a target shard, and a parameter.  Two schedules
generated from the same seed are equal, and — because every fault the
events trigger is itself seeded (see :mod:`repro.faults`) — two harness
runs of the same schedule produce identical serving profiles and span
trees, which is what lets the ``python -m repro chaos`` gate assert
byte-identical replay.

The eight fault kinds cover the failure tiers the fabric defends:

========================  =====================================================
kind                      what the harness does at the event's wave
========================  =====================================================
``kill``                  SIGKILL the shard's worker *after* dispatch (the
                          most adversarial instant: work genuinely in flight)
``kill_router``           kill the *router itself* with the wave accepted but
                          unserved — the journal (:mod:`repro.journal`) is the
                          only survivor, and ``recover()`` must turn it back
                          into one bit-exact terminal outcome per request
``wedge``                 stall the worker far past the heartbeat/watchdog
                          bounds — detected, killed, quarantined, respawned
``slow``                  stall the worker into straggler territory — the
                          router hedges the group to an idle survivor
``fail_channel``          hard-fail one pseudo-channel of the shard's device
                          replica (the in-worker server quarantines it)
``bit_flips``             flip N stored data bits on the replica (SEC-DED
                          corrects or the server falls back, still bit-exact)
``corrupt_pipe``          corrupt the worker's next reply payload in transit
                          — the router's CRC32 check catches it and replays
``corrupt_shm``           corrupt a shared-memory result frame *after* the
                          reply was checksummed — only the router's
                          per-descriptor CRC32 can catch it (degrades to
                          ``corrupt_pipe`` behaviour under the pipe transport)
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["ChaosEvent", "ChaosSchedule", "KINDS"]

#: Every fault kind a schedule may script, in canonical order.
KINDS: Tuple[str, ...] = (
    "kill",
    "kill_router",
    "wedge",
    "slow",
    "fail_channel",
    "bit_flips",
    "corrupt_pipe",
    "corrupt_shm",
)


@dataclass(frozen=True)
class ChaosEvent:
    """One scripted fault at one simulated instant.

    ``at_ns`` places the event on the workload's arrival clock; the
    harness fires it immediately before serving the request wave whose
    arrival window contains it.  ``param`` is kind-specific: the channel
    index for ``fail_channel``, the flip count for ``bit_flips``, 0
    otherwise.
    """

    at_ns: float
    kind: str
    shard: int
    param: int = 0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; expected one of {KINDS}"
            )


@dataclass(frozen=True)
class ChaosSchedule:
    """An immutable, seeded script of chaos events.

    Build one with :meth:`generate` (the seeded path the CLI and tests
    use) or directly from events (hand-scripted scenarios).  Events are
    kept in ``at_ns`` order.
    """

    seed: int
    events: Tuple[ChaosEvent, ...]

    @classmethod
    def generate(
        cls,
        seed: int,
        workers: int,
        kinds: Tuple[str, ...] = KINDS,
        wave_ns: float = 50_000.0,
        num_pchs: int = 2,
    ) -> "ChaosSchedule":
        """A seeded schedule guaranteed to cover every kind in ``kinds``.

        One event per kind, each in its own wave window (so faults do
        not mask one another), kind order and shard targets shuffled by
        the seed; shards are assigned round-robin over a shuffled slot
        list so the latency kinds (kill/wedge/slow) land on distinct
        shards whenever ``workers`` allows.  The first wave window is
        always left fault-free: it warms every shard's replica and gives
        the straggler hedge a completed-reply distribution to threshold
        against.
        """
        for kind in kinds:
            if kind not in KINDS:
                raise ValueError(f"unknown chaos kind {kind!r}")
        rng = np.random.default_rng(seed)
        order = list(kinds)
        rng.shuffle(order)
        shards = list(range(int(workers)))
        rng.shuffle(shards)
        events: List[ChaosEvent] = []
        for i, kind in enumerate(order):
            shard = shards[i % len(shards)]
            if kind == "fail_channel":
                param = int(rng.integers(0, num_pchs))
            elif kind == "bit_flips":
                param = int(rng.integers(1, 3))
            else:
                param = 0
            events.append(
                ChaosEvent(
                    at_ns=float((i + 1) * wave_ns),
                    kind=kind,
                    shard=shard,
                    param=param,
                )
            )
        return cls(seed=int(seed), events=tuple(events))

    def by_wave(self, wave_ns: float) -> Dict[int, List[ChaosEvent]]:
        """Events grouped by the arrival-wave window containing them."""
        waves: Dict[int, List[ChaosEvent]] = {}
        for event in self.events:
            waves.setdefault(int(event.at_ns // wave_ns), []).append(event)
        return waves

    def kinds(self) -> Tuple[str, ...]:
        """The distinct fault kinds this schedule scripts, canonical order."""
        present = {event.kind for event in self.events}
        return tuple(kind for kind in KINDS if kind in present)
