"""Command-line entry point.

::

    python -m repro report       # full paper-vs-model reproduction report
    python -m repro demo         # quick functional demo on the simulator
    python -m repro specs        # Tables IV & V
    python -m repro trace        # a GEMV kernel's command stream, annotated
    python -m repro trace --out trace.json
                                 # serve a workload, emit a Chrome trace
                                 # (+ span JSONL / metrics dump; see -h)
    python -m repro serve-bench  # serving engine under a Poisson load
    python -m repro serve-bench --trace trace.json
                                 # same, tracing the last served session
    python -m repro chaos --seed 7
                                 # scripted fault storm against the fabric;
                                 # nonzero exit on any invariant violation
    python -m repro serve-bench --journal wal/
                                 # same load sweep, journaling every request
                                 # and outcome into a write-ahead log
    python -m repro replay --journal wal/gap-2000
                                 # recover a journal into terminal outcomes
    python -m repro replay --trace workload.trace
                                 # execute an HBM-PIMulator textual trace
                                 # against the device model (see -h)
"""

from __future__ import annotations

import sys


def _report() -> None:
    import importlib.util
    import pathlib

    # benchmarks/report.py lives outside the package; load it directly so
    # the CLI works from a source checkout.
    path = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "report.py"
    if path.exists():
        spec = importlib.util.spec_from_file_location("repro_report", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # type: ignore[union-attr]
        module.main()
    else:
        print("benchmarks/report.py not found (installed without sources); "
              "run the bench suite instead: pytest benchmarks/ --benchmark-only")


def _demo() -> None:
    import numpy as np

    from .stack import PimBlas, PimSystem, SystemConfig

    print("Building a 4-channel PIM-HBM system...")
    system = PimSystem(SystemConfig(num_pchs=4, num_rows=256))
    blas = PimBlas(system)
    rng = np.random.default_rng(0)
    w = (rng.standard_normal((512, 256)) * 0.1).astype(np.float16)
    x = (rng.standard_normal(256) * 0.1).astype(np.float16)
    y, report = blas.gemv(w, x)
    gold = w.astype(np.float32) @ x.astype(np.float32)
    print(f"GEMV 512x256 on the simulated device:")
    print(f"  max |err| vs FP32: {np.abs(y - gold).max():.2e}")
    print(f"  {report.cycles} DRAM cycles, {report.column_commands} column "
          f"commands, {report.fences} fences, {report.pim_flops} PIM FLOPs")


def _specs() -> None:
    from .perf.specs import PimDeviceSpec, PimUnitSpec

    print("Table IV — PIM execution unit")
    for key, value in PimUnitSpec().as_table().items():
        print(f"  {key}: {value}")
    print("\nTable V — PIM-HBM device")
    for key, value in PimDeviceSpec().as_table().items():
        print(f"  {key}: {value}")


def _trace(argv=None) -> int:
    """Bare ``trace``: the historical annotated command stream.  With
    ``--out PATH``: run the default serving workload with the observability
    layer enabled and emit a Chrome trace (plus optional span JSONL and
    metrics dump), checking that the request spans reconcile with the
    ``ServingProfile`` makespan within 1%.
    """
    if not argv:
        import numpy as np

        from .stack import PimBlas, PimSystem, SystemConfig
        from .tools import trace_channel

        system = PimSystem(SystemConfig(num_pchs=1, num_rows=128))
        blas = PimBlas(system)
        rng = np.random.default_rng(0)
        w = (rng.standard_normal((128, 64)) * 0.1).astype(np.float16)
        x = (rng.standard_normal(64) * 0.1).astype(np.float16)
        with trace_channel(system.device.pch(0)) as trace:
            blas.gemv(w, x)
        print(trace.summary())
        print("\nFirst 30 commands:")
        for line in trace.lines()[:30]:
            print(" ", line)
        return 0

    import argparse

    import numpy as np

    from .obs import (
        render_timeline,
        validate_chrome_trace,
        write_chrome_trace,
        write_span_jsonl,
    )
    from .stack import PimServer, PimSystem, Request, ServerConfig, SystemConfig

    parser = argparse.ArgumentParser(prog="repro trace")
    parser.add_argument(
        "--out", required=True,
        help="write the Chrome/Perfetto trace JSON here "
             "(open at chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--spans", default=None,
        help="also write a flat JSONL span/event log here",
    )
    parser.add_argument(
        "--metrics", default=None,
        help="write the text metrics dump here (default: stdout)",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="validate the emitted file against the Chrome trace-event "
             "schema (nonzero exit on violations; used by CI)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--requests", type=int, default=32,
        help="requests in the serving workload (default: 32)",
    )
    parser.add_argument(
        "--gap-ns", type=float, default=2000.0,
        help="mean Poisson arrival gap in simulated ns (default: 2000)",
    )
    args = parser.parse_args(argv)

    config = SystemConfig(
        num_pchs=4, num_rows=256, simulate_pchs=1,
        server_seed=args.seed, trace=True,
    )
    m, n, length = 64, 96, 256
    rng = np.random.default_rng(args.seed)
    w = (rng.standard_normal((m, n)) * 0.25).astype(np.float16)
    arrivals = np.cumsum(rng.exponential(args.gap_ns, size=args.requests))
    system = PimSystem(config)
    with PimServer(system, ServerConfig(lanes=2, max_batch=8)) as server:
        for i, arrival in enumerate(arrivals):
            if i % 2 == 0:
                server.submit(Request(
                    "gemv", weights=w,
                    a=(rng.standard_normal(n) * 0.25).astype(np.float16),
                    arrival_ns=float(arrival),
                ))
            else:
                server.submit(Request(
                    "add",
                    a=(rng.standard_normal(length) * 0.25).astype(np.float16),
                    b=(rng.standard_normal(length) * 0.25).astype(np.float16),
                    arrival_ns=float(arrival),
                ))
        profile = server.run()

    tracer = system.tracer
    write_chrome_trace(tracer, args.out)
    print(
        f"Wrote {len(tracer.spans)} spans and {len(tracer.events)} events "
        f"to {args.out}"
    )
    if args.spans is not None:
        lines = write_span_jsonl(tracer, args.spans)
        print(f"Wrote {lines} JSONL lines to {args.spans}")
    metrics_lines = system.metrics.render()
    if args.metrics is not None:
        with open(args.metrics, "w") as fh:
            fh.write("\n".join(metrics_lines) + "\n")
        print(f"Wrote {len(metrics_lines)} metrics to {args.metrics}")
    else:
        print("metrics:")
        for line in metrics_lines:
            print(" ", line)

    rc = 0
    requests = tracer.request_spans()
    span_extent = max(s.end_ns for s in requests) if requests else 0.0
    drift = abs(span_extent - profile.makespan_ns) / max(
        profile.makespan_ns, 1e-9
    )
    print(
        f"request spans: {len(requests)} / {profile.num_requests} requests; "
        f"extent {span_extent / 1000:.1f}us vs makespan "
        f"{profile.makespan_ns / 1000:.1f}us (drift {drift:.2%})"
    )
    if drift > 0.01 or len(requests) != profile.num_requests:
        print("  [FAIL] trace does not reconcile with the serving profile")
        rc = 1
    if args.validate:
        problems = validate_chrome_trace(args.out)
        if problems:
            rc = 1
            for problem in problems:
                print(f"  [FAIL] {problem}")
        else:
            print("  [ok] trace validates against the Chrome schema")
    print()
    for line in render_timeline(tracer, max_spans=24):
        print(line)
    return rc


def _write_trace(system, path) -> None:
    """Dump one traced system's spans as a Chrome trace file."""
    from .obs import write_chrome_trace

    tracer = getattr(system, "tracer", None)
    if tracer is None:
        return
    write_chrome_trace(tracer, path)
    print(
        f"Wrote {len(tracer.spans)} spans and {len(tracer.events)} events "
        f"to {path}"
    )


def _overload_smoke(config, w, m, n, length, seed, trace_path=None) -> int:
    """Overload-protection smoke: graceful saturation, zero silent losses.

    Serves one mixed stream at saturation through an unbounded server
    (the baseline), then offers 2x that load to a bounded-queue shedding
    server, and asserts: every submitted request carries a terminal
    ``RequestOutcome``, every completed/degraded result is bit-exact
    against the host golden path, admission actually shed load, and
    goodput stayed within 10% of the baseline (no congestion collapse).
    Returns a nonzero exit code on any regression (used by CI).
    """
    import numpy as np

    from .stack import (
        PimServer,
        PimSystem,
        Request,
        RequestOutcome,
        ServerConfig,
        add_reference,
        gemv_reference,
    )

    def workload(count, gap_ns, rng):
        arrivals = np.cumsum(rng.exponential(gap_ns, size=count))
        items = []
        for i, arrival in enumerate(arrivals):
            if i % 2 == 0:
                x = (rng.standard_normal(n) * 0.25).astype(np.float16)
                items.append(
                    Request("gemv", weights=w, a=x, arrival_ns=float(arrival))
                )
            else:
                a = (rng.standard_normal(length) * 0.25).astype(np.float16)
                b = (rng.standard_normal(length) * 0.25).astype(np.float16)
                items.append(Request("add", a=a, b=b, arrival_ns=float(arrival)))
        return items

    def serve(items, **server_knobs):
        system = PimSystem(config)
        server_config = ServerConfig(lanes=2, max_batch=8, **server_knobs)
        with PimServer(system, server_config) as srv:
            handles = [srv.submit(request) for request in items]
            profile = srv.run()
        return handles, profile, system

    def golden(request):
        if request.op == "gemv":
            return gemv_reference(request.weights, request.a, config.num_pchs)
        return add_reference(request.a, request.b)

    saturation_gap_ns = 500.0
    base_items = workload(32, saturation_gap_ns, np.random.default_rng(seed))
    _, base_profile, _ = serve(base_items)
    baseline_goodput = base_profile.goodput_rps()

    over_items = workload(
        64, saturation_gap_ns / 2.0, np.random.default_rng(seed + 1)
    )
    handles, profile, over_system = serve(
        over_items, queue_depth=8, admission="shed"
    )
    if trace_path is not None:
        _write_trace(over_system, trace_path)
    print(
        f"Overload smoke: baseline {baseline_goodput:,.0f} req/s at "
        f"{saturation_gap_ns:.0f}ns gaps; 2x load on queue_depth=8 "
        f"shed admission"
    )
    print("\n".join(profile.render()))

    served = (RequestOutcome.COMPLETED, RequestOutcome.DEGRADED_HOST)
    exact = sum(
        1
        for handle, item in zip(handles, over_items)
        if handle.outcome in served
        and handle.result is not None
        and np.array_equal(handle.result, golden(item))
    )
    num_served = sum(1 for h in handles if h.outcome in served)
    checks = {
        "every request terminal": all(h.outcome is not None for h in handles),
        "outcomes conserve requests": sum(
            profile.outcomes().values()
        ) == len(handles),
        "served results bit-exact": exact == num_served and num_served > 0,
        "admission shed load": profile.rejected > 0,
        "dropped work cost no device time": all(
            h.service_ns == 0.0
            for h in handles
            if h.outcome
            in (RequestOutcome.REJECTED, RequestOutcome.EXPIRED)
        ),
        "goodput within 10% of baseline": (
            profile.goodput_rps() >= 0.9 * baseline_goodput
        ),
    }
    failed_checks = [name for name, ok in checks.items() if not ok]
    for name, ok in checks.items():
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
    return 1 if failed_checks else 0


def _fabric_smoke(config, args) -> int:
    """Sharded-fabric smoke: scale-out throughput and kill conservation.

    Serves one GEMV-heavy stream (``--distinct-weights`` distinct weight
    matrices, so signatures spread across the hash ring) through a
    1-worker fabric and an ``--workers``-worker fabric, and compares
    *simulated* throughput (the device model's req/s; wall-clock is
    reported but not gated — CI containers may have a single core).
    With ``--min-speedup`` the run fails unless the sharded fabric beats
    the 1-worker baseline by at least that factor.  With
    ``--kill-worker`` the busiest shard is SIGKILLed after dispatch and
    the run asserts conservation: every request exactly one terminal
    outcome, bit-exact results, the dead shard quarantined.  With
    ``--transport shm`` the smoke additionally serves the workload
    through both transports and asserts the shm run is bit-exact vs the
    pipe oracle (results, outcomes, profile render), that no ``/dev/shm``
    segment outlives the fabrics (SIGKILL pass included), and — with
    ``--min-wire-reduction`` — that the resident-weight path cuts
    control-wire bytes by at least that factor over a multi-wave
    repeated-weight stream.  Nonzero exit code on any failed check
    (used by CI).
    """
    import time

    import numpy as np

    from .stack import PimFabric, Request, ServerConfig, gemv_reference
    from .stack.profiler import ServingProfile
    from .stack.shm import live_segments

    m, n = 64, 96
    count = 48
    k = max(1, args.distinct_weights)
    rng = np.random.default_rng(args.seed)
    weights = [
        (rng.standard_normal((m, n)) * 0.25).astype(np.float16)
        for _ in range(k)
    ]
    arrivals = np.cumsum(rng.exponential(200.0, size=count))
    items = [
        Request(
            "gemv",
            weights=weights[i % k],
            a=(rng.standard_normal(n) * 0.25).astype(np.float16),
            arrival_ns=float(arrivals[i]),
            trace_id=f"req{i}",
        )
        for i in range(count)
    ]
    server_config = ServerConfig(
        lanes=2, max_batch=8, transport=args.transport
    )
    segments_before = live_segments()

    def serve(workers, kill=False, transport=None, waves=1):
        # The explicit-transport passes are the pipe-vs-shm differential:
        # hedging is wall-clock-triggered (hence run-to-run timing
        # noise), so it is pinned off there — the comparison must
        # isolate the transport, and both sides get the same pinning.
        sc = (
            server_config if transport is None
            else server_config.replace(transport=transport, hedge=False)
        )
        chunk = max(1, -(-len(items) // waves))
        with PimFabric(
            config, workers=workers, server_config=sc
        ) as fabric:
            handles, profile = [], ServingProfile()
            if kill:
                def _kill_busiest(fab):
                    alive = [
                        s for s in fab.alive_shards()
                        if fab._round_assignment.get(s)
                    ]
                    victim = max(
                        alive, key=lambda s: len(fab._round_assignment[s])
                    )
                    fab.kill_worker(victim)
                    fab._post_dispatch_hook = None
                fabric._post_dispatch_hook = _kill_busiest
            t0 = time.perf_counter()
            for start in range(0, len(items), chunk):
                for request in items[start:start + chunk]:
                    handles.append(fabric.submit(request))
                profile.merge(fabric.run())
            wall_s = time.perf_counter() - t0
            bytes_tx = fabric.bytes_tx
        return handles, profile, wall_s, bytes_tx

    print(
        f"Fabric smoke: {count} gemv requests over {k} weight matrices, "
        f"{args.workers} workers, transport={args.transport}"
        + (" (killing the busiest shard mid-round)" if args.kill_worker else "")
    )
    base_handles, base_profile, base_wall, _ = serve(1)
    handles, profile, wall, _ = serve(args.workers, kill=args.kill_worker)
    print("\n".join(profile.render()))

    base_rps = base_profile.throughput_rps()
    rps = profile.throughput_rps()
    speedup = rps / base_rps if base_rps > 0 else float("inf")
    print(
        f"  simulated throughput: 1 worker {base_rps:,.0f} req/s, "
        f"{args.workers} workers {rps:,.0f} req/s "
        f"(speedup {speedup:.2f}x)"
    )
    print(
        f"  wall clock (informational): 1 worker {base_wall:.2f}s, "
        f"{args.workers} workers {wall:.2f}s"
    )

    def exact(hs):
        return all(
            h.result is not None
            and np.array_equal(
                h.result,
                gemv_reference(h.request.weights, h.request.a,
                               config.num_pchs),
            )
            for h in hs
        )

    checks = {
        "every request terminal": all(h.outcome is not None for h in handles),
        "outcomes conserve requests": (
            sum(profile.outcomes().values()) == len(handles)
        ),
        "results bit-exact vs host reference": exact(handles),
        "baseline results bit-exact": exact(base_handles),
    }
    if args.kill_worker:
        checks["dead shard quarantined"] = len(profile.quarantined_shards) == 1
        checks["killed requests replayed or host-completed"] = (
            profile.replays > 0
        )
    else:
        shards_used = {h.shard for h in handles}
        checks["all shards served work"] = shards_used == set(
            range(args.workers)
        )
    if args.min_speedup is not None:
        checks[f"simulated speedup >= {args.min_speedup:g}x"] = (
            speedup >= args.min_speedup
        )
    if args.transport == "shm":
        # Differential pass: the same multi-wave repeated-weight stream
        # through both transports.  Waves matter twice over — the
        # lifecycle manager heals between waves, and the resident-weight
        # path only saves wire bytes when weights *repeat* across
        # rounds (pipe re-ships them each wave, shm ships digests).
        p_handles, p_profile, _, pipe_bytes = serve(
            args.workers, transport="pipe", waves=4
        )
        s_handles, s_profile, _, shm_bytes = serve(
            args.workers, transport="shm", waves=4
        )
        checks["shm results bit-exact vs pipe oracle"] = all(
            a.outcome == b.outcome
            and a.result is not None
            and np.array_equal(a.result, b.result)
            for a, b in zip(p_handles, s_handles)
        )
        checks["shm profile identical to pipe oracle"] = (
            p_profile.render() == s_profile.render()
        )
        reduction = pipe_bytes / max(1, shm_bytes)
        print(
            f"  wire bytes (4 waves): pipe {pipe_bytes:,d}, "
            f"shm {shm_bytes:,d} ({reduction:.1f}x reduction)"
        )
        if args.min_wire_reduction is not None:
            checks[f"wire reduction >= {args.min_wire_reduction:g}x"] = (
                reduction >= args.min_wire_reduction
            )
        checks["no /dev/shm segment leaked"] = (
            live_segments() == segments_before
        )
    failed_checks = [name for name, ok in checks.items() if not ok]
    for name, ok in checks.items():
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
    return 1 if failed_checks else 0


def _serve_bench(argv=None) -> int:
    """Serving benchmark; ``--faults``/``--overload`` run CI smokes.

    The fault smoke hard-fails a whole lane's channels, sprinkles
    single-bit flips over the allocated rows, and then *asserts* that the
    self-healing server completed every request bit-exactly with nonzero
    corrected and fallback counters.  The overload smoke offers 2x the
    saturation load to a bounded-queue server and *asserts* that goodput
    stays within 10% of the unprotected saturation baseline and that
    every submitted request reports a terminal ``RequestOutcome`` (zero
    silent losses).  A nonzero exit code means the corresponding
    protection layer regressed (both are used by CI).
    """
    import argparse
    import os

    import numpy as np

    from .stack import (
        PimServer,
        PimSystem,
        Request,
        ServerConfig,
        SystemConfig,
        add_reference,
        gemv_reference,
    )

    parser = argparse.ArgumentParser(prog="repro serve-bench")
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run the sharded-fabric smoke: serve the workload through a "
             "PimFabric with N worker processes and compare simulated "
             "throughput against a 1-worker fabric",
    )
    parser.add_argument(
        "--kill-worker", action="store_true",
        help="with --workers: SIGKILL the busiest worker mid-round and "
             "assert conservation (every request exactly one terminal "
             "outcome, bit-exact results, dead shard quarantined)",
    )
    parser.add_argument(
        "--distinct-weights", type=int, default=8,
        help="distinct GEMV weight matrices in the fabric workload "
             "(signature spread across the hash ring; default: 8)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="with --workers: fail unless fabric simulated throughput is "
             "at least this multiple of the 1-worker fabric's",
    )
    parser.add_argument(
        "--transport", default="pipe", choices=("pipe", "shm"),
        help="fabric payload transport: 'pipe' pickles full requests "
             "through the worker pipe (the always-available differential "
             "oracle), 'shm' stages bulk tensors through shared memory "
             "with shard-resident weights; --transport shm additionally "
             "asserts bit-exactness against a pipe run and that no "
             "/dev/shm segment leaks (default: pipe)",
    )
    parser.add_argument(
        "--min-wire-reduction", type=float, default=None,
        help="with --workers and --transport shm: fail unless the pipe "
             "transport ships at least this many times more control "
             "bytes than shm over a multi-wave repeated-weight stream",
    )
    parser.add_argument(
        "--faults", action="store_true",
        help="run the fault-injection smoke instead of the load sweep",
    )
    parser.add_argument(
        "--overload", action="store_true",
        help="run the overload-protection smoke instead of the load sweep",
    )
    parser.add_argument(
        "--seed", type=int, default=7,
        help="master seed of the workload generator, the fault injector "
             "(unless --fault-seed overrides it), and the retry-backoff "
             "jitter; identical seeds replay byte-identical runs "
             "(default: 7)",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=1e-4,
        help="per-bit flip probability per injection epoch",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed of the fault injector (default: the --seed value)",
    )
    parser.add_argument(
        "--scrub-interval", type=int, default=2,
        help="run driver.scrub() every N batches (0 disables)",
    )
    parser.add_argument(
        "--fail-channels", default="0,1",
        help="comma-separated channels to hard-fail (fault mode only)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="enable the observability layer and write a Chrome trace of "
             "the last served session to PATH",
    )
    parser.add_argument(
        "--journal", default=None, metavar="DIR",
        help="journal every accepted request and terminal outcome of the "
             "load sweep into DIR (one write-ahead-log subdirectory per "
             "offered gap); 'python -m repro replay --journal DIR/gap-*' "
             "recovers it after a crash",
    )
    parser.add_argument(
        "--replay", action="store_true",
        help="run the record/replay smoke instead of the load sweep: "
             "journal one seeded session, re-serve the journaled request "
             "stream on a fresh system, and fail unless the two sessions "
             "are byte-comparable (identical profiles, identical span "
             "trees under diff_span_trees, bit-exact results)",
    )
    parser.add_argument(
        "--exec-mode", default=None, choices=("lockstep", "scalar", "fused"),
        help="how column triggers execute: the lock-step SIMD interpreter "
             "(default), the per-unit scalar oracle, or the trace-compiled "
             "fused executor (see docs/ARCHITECTURE.md)",
    )
    args = parser.parse_args(argv or [])
    fault_seed = args.seed if args.fault_seed is None else args.fault_seed

    config = SystemConfig(
        num_pchs=4, num_rows=256, simulate_pchs=1, server_seed=args.seed,
        trace=args.trace is not None, exec_mode=args.exec_mode,
    )
    m, n, length = 64, 96, 256
    rng = np.random.default_rng(args.seed)
    w = (rng.standard_normal((m, n)) * 0.25).astype(np.float16)

    if args.replay:
        return _replay_smoke(config, w, m, n, length, args)

    if args.workers is not None:
        return _fabric_smoke(config, args)

    if args.overload:
        return _overload_smoke(
            config, w, m, n, length, args.seed, trace_path=args.trace
        )

    if args.faults:
        from .faults import FaultConfig

        failed = tuple(
            int(p) for p in args.fail_channels.split(",") if p.strip() != ""
        )
        config = config.replace(
            ecc=True,
            faults=FaultConfig(
                bit_flip_rate=args.fault_rate,
                check_flip_rate=args.fault_rate,
                register_fault_rate=0.05,
                failed_channels=failed,
                seed=fault_seed,
            ),
            scrub_interval=args.scrub_interval,
        )
        print(
            f"Fault smoke: channels {failed} dead, bit flips at "
            f"{args.fault_rate:g}/bit/epoch, scrub every "
            f"{args.scrub_interval} batches"
        )
        arrivals = np.cumsum(rng.exponential(2000.0, size=24))
        system = PimSystem(config)
        requests = []
        with PimServer(system, ServerConfig(lanes=2, max_batch=8)) as server:
            for i, arrival in enumerate(arrivals):
                if i % 2 == 0:
                    x = (rng.standard_normal(n) * 0.25).astype(np.float16)
                    requests.append(
                        (server.submit(Request(
                            "gemv", weights=w, a=x,
                            arrival_ns=float(arrival))), "gemv")
                    )
                else:
                    a = (rng.standard_normal(length) * 0.25).astype(np.float16)
                    b = (rng.standard_normal(length) * 0.25).astype(np.float16)
                    requests.append(
                        (server.submit(Request(
                            "add", a=a, b=b,
                            arrival_ns=float(arrival))), "add")
                    )
            profile = server.run()
        print("\n".join(profile.render()))
        if args.trace is not None:
            _write_trace(system, args.trace)
        exact = 0
        for request, op in requests:
            if request.result is None:
                continue
            if op == "gemv":
                gold = gemv_reference(w, request.a, config.num_pchs)
            else:
                gold = add_reference(request.a, request.b)
            if np.array_equal(request.result, gold):
                exact += 1
        corrected = profile.ecc_corrected + profile.scrub_corrected
        checks = {
            "all requests completed": all(
                r.result is not None for r, _ in requests
            ),
            "all results bit-exact": exact == len(requests),
            "nonzero corrected counter": corrected > 0,
            "nonzero fallback counter": profile.fallbacks > 0,
            "failed channels quarantined": set(failed).issubset(
                set(profile.quarantined_channels)
            ),
        }
        failed_checks = [name for name, ok in checks.items() if not ok]
        for name, ok in checks.items():
            print(f"  [{'ok' if ok else 'FAIL'}] {name}")
        return 1 if failed_checks else 0

    print("Serving a mixed GEMV+ADD Poisson stream (2 lanes, max_batch=8)")
    print(f"  device: {config.num_pchs} pCH, gemv {m}x{n}, add[{length}]")
    if args.journal is not None:
        print(f"  journaling every request and outcome under {args.journal}")
    print("  offered gap     req/s   mean batch   mean wait   p95 turnaround")
    for gap_ns in (8000.0, 2000.0, 500.0):
        arrivals = np.cumsum(rng.exponential(gap_ns, size=32))
        system = PimSystem(config)
        server_config = ServerConfig(lanes=2, max_batch=8)
        if args.journal is not None:
            # One WAL per gap session: each session's request ids restart
            # at zero, and a journal's rids must be unique.
            server_config = server_config.replace(
                journal_dir=os.path.join(args.journal, f"gap-{gap_ns:.0f}")
            )
        with PimServer(system, server_config) as server:
            for i, arrival in enumerate(arrivals):
                trace_id = (
                    f"bench-s{args.seed}-g{gap_ns:.0f}-r{i}"
                    if args.journal is not None
                    else None
                )
                if i % 2 == 0:
                    server.submit(Request(
                        "gemv", weights=w,
                        a=(rng.standard_normal(n) * 0.25).astype(np.float16),
                        arrival_ns=float(arrival),
                        trace_id=trace_id,
                    ))
                else:
                    server.submit(Request(
                        "add",
                        a=(rng.standard_normal(length) * 0.25).astype(np.float16),
                        b=(rng.standard_normal(length) * 0.25).astype(np.float16),
                        arrival_ns=float(arrival),
                        trace_id=trace_id,
                    ))
            profile = server.run()
        print(
            f"  {gap_ns:8.0f}ns {profile.throughput_rps():9,.0f} "
            f"{profile.mean_batch_size():10.1f} "
            f"{profile.mean_wait_ns() / 1000:9.1f}us "
            f"{profile.p95_turnaround_ns() / 1000:13.1f}us"
        )
    if args.trace is not None:
        _write_trace(system, args.trace)
    return 0


def _replay_smoke(config, w, m, n, length, args) -> int:
    """Record one session into a journal, replay it, require byte-equality.

    Serves a seeded GEMV+ADD stream through a journaling server, then
    re-serves the *journaled* request stream (what the WAL actually
    captured, not the in-memory objects) on a fresh system.  The two
    sessions must be byte-comparable: identical profile renders,
    identical span trees under
    :func:`~repro.obs.export.diff_span_trees`, and bit-exact per-request
    results.  Nonzero exit code on any divergence (used by CI).
    """
    import os
    import shutil
    import tempfile

    import numpy as np

    from .journal.wal import read_records
    from .obs.export import diff_span_trees
    from .stack import PimServer, PimSystem, Request, ServerConfig

    config = config.replace(trace=True)
    scratch = None
    journal_root = args.journal
    if journal_root is None:
        scratch = tempfile.mkdtemp(prefix="repro-replay-")
        journal_root = scratch
    journal_dir = os.path.join(journal_root, "record")
    rng = np.random.default_rng(args.seed)
    arrivals = np.cumsum(rng.exponential(2000.0, size=32))
    requests = []
    for i, arrival in enumerate(arrivals):
        trace_id = f"replay-s{args.seed}-r{i}"
        if i % 2 == 0:
            requests.append(Request(
                "gemv", weights=w,
                a=(rng.standard_normal(n) * 0.25).astype(np.float16),
                arrival_ns=float(arrival), trace_id=trace_id,
            ))
        else:
            requests.append(Request(
                "add",
                a=(rng.standard_normal(length) * 0.25).astype(np.float16),
                b=(rng.standard_normal(length) * 0.25).astype(np.float16),
                arrival_ns=float(arrival), trace_id=trace_id,
            ))
    try:
        system = PimSystem(config)
        recorded_config = ServerConfig(
            lanes=2, max_batch=8, journal_dir=journal_dir
        )
        with PimServer(system, recorded_config) as server:
            recorded = [server.submit(request) for request in requests]
            recorded_profile = server.run()
        recorded_tracer = system.tracer

        accepted = sorted(
            (r for r in read_records(journal_dir) if r.get("kind") == "accepted"),
            key=lambda r: r["rid"],
        )
        replay_system = PimSystem(config)
        with PimServer(replay_system, ServerConfig(lanes=2, max_batch=8)) as server:
            replayed = [server.submit(r["request"]) for r in accepted]
            replayed_profile = server.run()
        replayed_tracer = replay_system.tracer

        diff = diff_span_trees(recorded_tracer, replayed_tracer)
        checks = {
            "journal captured every request": len(accepted) == len(requests),
            "replayed profile identical": (
                "\n".join(recorded_profile.render())
                == "\n".join(replayed_profile.render())
            ),
            "replayed span tree identical": diff is None,
            "replayed results bit-exact": len(recorded) == len(replayed)
            and all(
                a.result is not None
                and b.result is not None
                and np.array_equal(a.result, b.result)
                for a, b in zip(recorded, replayed)
            ),
        }
        print(
            f"Record/replay smoke: {len(accepted)} journaled requests "
            f"({journal_dir})"
        )
        if diff is not None:
            print(f"  span divergence: {diff}")
        failed = [name for name, ok in checks.items() if not ok]
        for name, ok in checks.items():
            print(f"  [{'ok' if ok else 'FAIL'}] {name}")
        return 1 if failed else 0
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


def _strip_outcomes(journal_dir: str, into: str) -> None:
    """Copy a journal with every outcome record dropped (forces replay)."""
    from .journal.wal import JournalWriter, read_records

    with JournalWriter(into) as writer:
        for record in read_records(journal_dir):
            if record.get("kind") != "outcome":
                writer.append(record)


def _crash_smoke(args) -> int:
    """SIGKILL a journaled serve-bench mid-run, recover, compare outcomes.

    Spawns ``python -m repro serve-bench --journal DIR`` as a child,
    kills it with SIGKILL as soon as the journal holds accepted records
    (the most adversarial instant recovery must handle: requests
    admitted, possibly a torn record at the tail), then for every WAL
    the child left behind:

    * ``recover()`` must terminate every journaled request exactly once
      (outcome conservation);
    * an *uninterrupted* run of the same journaled stream — a forced
      full replay through the identical recovery path — must produce
      the same outcome and bit-identical result bytes per trace id;
    * two such uninterrupted runs must agree byte-for-byte on profile
      render and span tree (replay determinism);
    * a second ``recover()`` must replay nothing (idempotence).
    """
    import os
    import shutil
    import signal
    import subprocess
    import tempfile
    import time

    import numpy as np

    from .journal import recover
    from .journal.wal import read_records
    from .obs.export import diff_span_trees

    root = tempfile.mkdtemp(prefix="repro-crash-smoke-")
    child_dir = os.path.join(root, "journal")
    checks = {}
    try:
        child = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve-bench",
             "--journal", child_dir, "--seed", str(args.seed)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

        def accepted_count() -> int:
            total = 0
            if os.path.isdir(child_dir):
                for name in os.listdir(child_dir):
                    try:
                        records = read_records(os.path.join(child_dir, name))
                    except Exception:
                        continue
                    total += sum(
                        1 for r in records if r.get("kind") == "accepted"
                    )
            return total

        deadline = time.time() + 120.0
        killed = False
        while time.time() < deadline:
            if accepted_count() > 0:
                child.kill()  # SIGKILL: no atexit, no journal close
                killed = True
                break
            if child.poll() is not None:
                break
            time.sleep(0.01)
        child.wait()
        checks["child SIGKILLed with journaled requests"] = killed

        wals = sorted(os.listdir(child_dir)) if os.path.isdir(child_dir) else []
        checks["journal left behind"] = bool(wals)
        print(
            f"Crash smoke: child killed={killed}, WALs: "
            + (", ".join(wals) or "none")
        )
        for name in wals:
            wal = os.path.join(child_dir, name)
            report = recover(wal, workers=args.workers)
            print("\n".join("  " + line for line in report.render()))
            checks[f"{name}: every request terminal"] = all(
                h.outcome is not None for h in report.handles
            )

            # Uninterrupted comparator: the same journaled stream, fully
            # replayed twice through the identical recovery path.
            runs = []
            for attempt in ("a", "b"):
                stripped = os.path.join(root, f"full-{name}-{attempt}")
                _strip_outcomes(wal, stripped)
                runs.append(recover(stripped, workers=args.workers))
            full_a, full_b = runs
            by_trace = {
                h.request.trace_id: h for h in full_a.handles
            }
            checks[f"{name}: outcomes bit-exact vs uninterrupted"] = all(
                (other := by_trace.get(h.request.trace_id)) is not None
                and h.outcome == other.outcome
                and (
                    (h.result is None and other.result is None)
                    or (
                        h.result is not None
                        and other.result is not None
                        and np.array_equal(h.result, other.result)
                    )
                )
                for h in report.handles
            )
            checks[f"{name}: replay profile byte-identical"] = (
                "\n".join(full_a.replay_profile.render())
                == "\n".join(full_b.replay_profile.render())
            )
            checks[f"{name}: replay span tree identical"] = (
                diff_span_trees(full_a.tracer, full_b.tracer) is None
                if full_a.tracer is not None and full_b.tracer is not None
                else full_a.tracer is full_b.tracer
            )
            second = recover(wal, workers=args.workers)
            checks[f"{name}: second recover replays nothing"] = (
                second.replayed == 0
                and len(second.handles) == len(report.handles)
            )
        failed = [name for name, ok in checks.items() if not ok]
        for name, ok in checks.items():
            print(f"  [{'ok' if ok else 'FAIL'}] {name}")
        return 1 if failed else 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _replay(argv=None) -> int:
    """Record/replay toolbox: journal recovery and trace-ISA interop.

    Four modes (first match wins):

    * ``--selftest`` — parse, execute, and re-emit the built-in
      ``all_inst``-style sample trace; fail unless
      ``execute(parse(emit(parse(t))))`` reproduces the device state
      digest of ``execute(parse(t))``.
    * ``--crash-smoke`` — record a journaled serve-bench in a child
      process, SIGKILL it mid-run, recover, and gate on outcome
      conservation plus byte-identical replay (see CI ``replay-smoke``).
    * ``--trace FILE`` — parse an HBM-PIMulator textual trace, execute
      it against the device model, print the op histogram and state
      digest, verify emit→parse→execute round-trips, and optionally
      ``--emit`` the canonical re-emission.
    * ``--journal DIR`` — recover a write-ahead-log directory into
      terminal outcomes (``repro.journal.recover``), print the recovery
      report, and optionally ``--export-trace`` the journaled request
      stream in the trace ISA.
    """
    import argparse

    parser = argparse.ArgumentParser(prog="repro replay")
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="parse and execute an HBM-PIMulator textual trace against "
             "the device model; nonzero exit if the trace does not "
             "round-trip through emit",
    )
    parser.add_argument(
        "--emit", default=None, metavar="OUT",
        help="with --trace/--journal: write the canonical trace-ISA "
             "emission to OUT",
    )
    parser.add_argument(
        "--journal", default=None, metavar="DIR",
        help="recover a journal directory: replay every "
             "journaled-but-unterminated request and print the recovery "
             "report; nonzero exit if any request is left non-terminal",
    )
    parser.add_argument(
        "--export-trace", default=None, metavar="OUT", dest="export_trace",
        help="with --journal: emit the recovered request stream as an "
             "HBM-PIMulator trace to OUT",
    )
    parser.add_argument(
        "--selftest", action="store_true",
        help="run the built-in trace-ISA round-trip selftest",
    )
    parser.add_argument(
        "--crash-smoke", action="store_true", dest="crash_smoke",
        help="record a journaled serve-bench in a child process, SIGKILL "
             "it mid-run, recover, and verify conservation plus "
             "byte-identical replay (used by CI)",
    )
    parser.add_argument(
        "--seed", type=int, default=7,
        help="seed of the --crash-smoke workload (default: 7)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="fabric workers used by journal recovery (default: 2)",
    )
    parser.add_argument(
        "--channels", type=int, default=2,
        help="device channels the trace executor materialises (default: 2)",
    )
    args = parser.parse_args(argv or [])

    if args.selftest:
        return _replay_selftest(args)
    if args.crash_smoke:
        return _crash_smoke(args)
    if args.trace is not None:
        return _replay_trace(args)
    if args.journal is not None:
        return _replay_journal(args)
    parser.print_help()
    return 1


def _replay_selftest(args) -> int:
    """Round-trip the built-in sample trace; nonzero exit on divergence."""
    from .tools.pimulator import (
        emit_trace,
        execute_trace,
        parse_trace,
        sample_trace,
    )

    ops = parse_trace(sample_trace())
    first = execute_trace(ops, channels=args.channels)
    emitted = emit_trace(ops)
    second = execute_trace(parse_trace(emitted), channels=args.channels)
    ok = first.state_digest() == second.state_digest()
    print(
        f"Trace-ISA selftest: {len(ops)} ops, "
        f"{first.pim_instructions} PIM instructions, "
        f"digest {first.state_digest()[:16]}"
    )
    print(f"  [{'ok' if ok else 'FAIL'}] emit/parse/execute round-trip")
    return 0 if ok else 1


def _replay_trace(args) -> int:
    """Execute an external trace file; verify it round-trips through emit."""
    from .errors import PimReplayError
    from .tools.pimulator import emit_trace, execute_trace, parse_trace

    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            text = handle.read()
        ops = parse_trace(text)
        execution = execute_trace(ops, channels=args.channels)
    except (OSError, PimReplayError) as exc:
        print(f"replay failed: {exc}")
        return 1
    histogram = {}
    for op in ops:
        key = op.kind if op.mnemonic is None else f"{op.kind} {op.mnemonic}"
        histogram[key] = histogram.get(key, 0) + 1
    print(f"Executed {len(ops)} trace ops from {args.trace}")
    for key in sorted(histogram):
        print(f"  {key:<14} : {histogram[key]}")
    print(f"  state digest   : {execution.state_digest()}")
    emitted = emit_trace(ops)
    replayed = execute_trace(parse_trace(emitted), channels=args.channels)
    ok = replayed.state_digest() == execution.state_digest()
    print(f"  [{'ok' if ok else 'FAIL'}] emit/parse/execute round-trip")
    if args.emit is not None:
        with open(args.emit, "w", encoding="utf-8") as handle:
            handle.write(emitted)
        print(f"  wrote canonical emission to {args.emit}")
    return 0 if ok else 1


def _replay_journal(args) -> int:
    """Recover a journal directory; print the report; export optionally."""
    from .errors import PimJournalError
    from .journal import recover
    from .tools.pimulator import emit_trace, requests_to_trace

    try:
        report = recover(args.journal, workers=args.workers)
    except PimJournalError as exc:
        print(f"recovery failed: {exc}")
        return 1
    print("\n".join(report.render()))
    non_terminal = [
        h.request_id for h in report.handles if h.outcome is None
    ]
    if args.export_trace is not None:
        ops = requests_to_trace([h.request for h in report.handles])
        with open(args.export_trace, "w", encoding="utf-8") as handle:
            handle.write(emit_trace(ops))
        print(
            f"  exported {len(ops)} trace-ISA ops to {args.export_trace}"
        )
    if non_terminal:
        print(f"  FAIL: requests without terminal outcome: {non_terminal}")
        return 1
    print("  every journaled request has exactly one terminal outcome")
    return 0


def _chaos(argv=None) -> int:
    """Chaos smoke: a scripted fault storm the fabric must survive.

    Generates a seeded :class:`~repro.chaos.ChaosSchedule` covering
    worker kill, wedge, slowdown, channel death, stored-bit flips, and
    pipe-payload / shared-memory-frame corruption, replays it against a
    live :class:`~repro.stack.fabric.PimFabric` alongside a fault-free
    baseline, and checks the invariant suite: every request exactly one
    terminal outcome, bit-exact results versus the host golden path, a
    valid merged Chrome trace, every respawned shard rejoined to the
    ring, post-recovery throughput within 20% of fault-free, and p99
    turnaround below 2x fault-free.  The scenario then runs a *second*
    time at the same seed and the two runs' serving profiles and span
    trees are compared — byte-identical replay is itself a gated
    invariant.  Under ``--transport shm`` the second pass runs on the
    *pipe* transport instead, turning the determinism check into a
    cross-transport differential: the shm fault storm (shm-frame
    corruption included) must be bit-exact against its pipe-oracle
    twin.  Nonzero exit code on any violation (used by CI).
    """
    import argparse

    from .chaos import run_chaos
    from .obs.export import diff_span_trees

    parser = argparse.ArgumentParser(prog="repro chaos")
    parser.add_argument(
        "--seed", type=int, default=7,
        help="seed of the chaos schedule, the workload, and every "
             "scripted fault; identical seeds replay byte-identical runs "
             "(default: 7)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="fabric worker processes (default: 4)",
    )
    parser.add_argument(
        "--requests", type=int, default=48,
        help="total requests across all waves (default: 48)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="skip the replay-determinism pass (single scenario run)",
    )
    parser.add_argument(
        "--transport", default="pipe", choices=("pipe", "shm"),
        help="fabric payload transport for the scenario; 'shm' makes "
             "the replay pass a pipe-oracle differential (default: pipe)",
    )
    args = parser.parse_args(argv or [])

    print(
        f"Chaos smoke: seed={args.seed} workers={args.workers} "
        f"requests={args.requests} transport={args.transport}"
    )
    report = run_chaos(
        seed=args.seed, workers=args.workers, requests=args.requests,
        transport=args.transport,
    )
    print("\n".join(report.render()))
    failures = list(report.violations)
    if not args.once:
        # Under shm the replay runs on the pipe transport: one pass
        # doubles as both the determinism check and the cross-transport
        # bit-exactness differential.
        oracle = "pipe" if args.transport == "shm" else args.transport
        replay = run_chaos(
            seed=args.seed, workers=args.workers, requests=args.requests,
            transport=oracle,
        )
        failures.extend(replay.violations)
        if oracle != args.transport:
            print(f"  replay pass ran on the {oracle} oracle transport")
        checks = {
            "replay profile identical": (
                "\n".join(report.profile.render())
                == "\n".join(replay.profile.render())
                and report.profile.outcomes() == replay.profile.outcomes()
                and [
                    (r.request_id, r.outcome, r.shard, r.finish_ns)
                    for r in report.profile.requests
                ]
                == [
                    (r.request_id, r.outcome, r.shard, r.finish_ns)
                    for r in replay.profile.requests
                ]
            ),
            "replay span tree identical": (
                diff_span_trees(report.tracer, replay.tracer) is None
            ),
        }
        for name, ok in checks.items():
            print(f"  [{'ok' if ok else 'FAIL'}] {name}")
            if not ok:
                failures.append(f"determinism check failed: {name}")
    if failures:
        print(f"chaos smoke FAILED ({len(failures)} violation(s))")
        return 1
    print("chaos smoke passed: every invariant held")
    return 0


_COMMANDS = {
    "report": _report,
    "demo": _demo,
    "specs": _specs,
    "trace": _trace,
    "serve-bench": _serve_bench,
    "chaos": _chaos,
    "replay": _replay,
}


def main(argv=None) -> int:
    """Dispatch a CLI subcommand; returns the process exit code.

    Arguments after the subcommand are forwarded to handlers that accept
    them (currently ``serve-bench``, ``trace``, ``chaos``, and
    ``replay``); a handler's integer return value becomes the exit code.
    """
    argv = sys.argv[1:] if argv is None else argv
    command = argv[0] if argv else "demo"
    handler = _COMMANDS.get(command)
    if handler is None:
        print(__doc__)
        return 1
    if handler in (_serve_bench, _trace, _chaos, _replay):
        result = handler(argv[1:])
    else:
        result = handler()
    return int(result) if result is not None else 0


if __name__ == "__main__":
    raise SystemExit(main())
