"""Command-line entry point.

::

    python -m repro report       # full paper-vs-model reproduction report
    python -m repro demo         # quick functional demo on the simulator
    python -m repro specs        # Tables IV & V
    python -m repro trace        # a GEMV kernel's command stream, annotated
    python -m repro trace --out trace.json
                                 # serve a workload, emit a Chrome trace
                                 # (+ span JSONL / metrics dump; see -h)
    python -m repro serve-bench  # serving engine under a Poisson load
    python -m repro serve-bench --trace trace.json
                                 # same, tracing the last served session
    python -m repro chaos --seed 7
                                 # scripted fault storm against the fabric;
                                 # nonzero exit on any invariant violation
"""

from __future__ import annotations

import sys


def _report() -> None:
    import importlib.util
    import pathlib

    # benchmarks/report.py lives outside the package; load it directly so
    # the CLI works from a source checkout.
    path = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "report.py"
    if path.exists():
        spec = importlib.util.spec_from_file_location("repro_report", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # type: ignore[union-attr]
        module.main()
    else:
        print("benchmarks/report.py not found (installed without sources); "
              "run the bench suite instead: pytest benchmarks/ --benchmark-only")


def _demo() -> None:
    import numpy as np

    from .stack import PimBlas, PimSystem, SystemConfig

    print("Building a 4-channel PIM-HBM system...")
    system = PimSystem(SystemConfig(num_pchs=4, num_rows=256))
    blas = PimBlas(system)
    rng = np.random.default_rng(0)
    w = (rng.standard_normal((512, 256)) * 0.1).astype(np.float16)
    x = (rng.standard_normal(256) * 0.1).astype(np.float16)
    y, report = blas.gemv(w, x)
    gold = w.astype(np.float32) @ x.astype(np.float32)
    print(f"GEMV 512x256 on the simulated device:")
    print(f"  max |err| vs FP32: {np.abs(y - gold).max():.2e}")
    print(f"  {report.cycles} DRAM cycles, {report.column_commands} column "
          f"commands, {report.fences} fences, {report.pim_flops} PIM FLOPs")


def _specs() -> None:
    from .perf.specs import PimDeviceSpec, PimUnitSpec

    print("Table IV — PIM execution unit")
    for key, value in PimUnitSpec().as_table().items():
        print(f"  {key}: {value}")
    print("\nTable V — PIM-HBM device")
    for key, value in PimDeviceSpec().as_table().items():
        print(f"  {key}: {value}")


def _trace(argv=None) -> int:
    """Bare ``trace``: the historical annotated command stream.  With
    ``--out PATH``: run the default serving workload with the observability
    layer enabled and emit a Chrome trace (plus optional span JSONL and
    metrics dump), checking that the request spans reconcile with the
    ``ServingProfile`` makespan within 1%.
    """
    if not argv:
        import numpy as np

        from .stack import PimBlas, PimSystem, SystemConfig
        from .tools import trace_channel

        system = PimSystem(SystemConfig(num_pchs=1, num_rows=128))
        blas = PimBlas(system)
        rng = np.random.default_rng(0)
        w = (rng.standard_normal((128, 64)) * 0.1).astype(np.float16)
        x = (rng.standard_normal(64) * 0.1).astype(np.float16)
        with trace_channel(system.device.pch(0)) as trace:
            blas.gemv(w, x)
        print(trace.summary())
        print("\nFirst 30 commands:")
        for line in trace.lines()[:30]:
            print(" ", line)
        return 0

    import argparse

    import numpy as np

    from .obs import (
        render_timeline,
        validate_chrome_trace,
        write_chrome_trace,
        write_span_jsonl,
    )
    from .stack import PimServer, PimSystem, Request, ServerConfig, SystemConfig

    parser = argparse.ArgumentParser(prog="repro trace")
    parser.add_argument(
        "--out", required=True,
        help="write the Chrome/Perfetto trace JSON here "
             "(open at chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--spans", default=None,
        help="also write a flat JSONL span/event log here",
    )
    parser.add_argument(
        "--metrics", default=None,
        help="write the text metrics dump here (default: stdout)",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="validate the emitted file against the Chrome trace-event "
             "schema (nonzero exit on violations; used by CI)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--requests", type=int, default=32,
        help="requests in the serving workload (default: 32)",
    )
    parser.add_argument(
        "--gap-ns", type=float, default=2000.0,
        help="mean Poisson arrival gap in simulated ns (default: 2000)",
    )
    args = parser.parse_args(argv)

    config = SystemConfig(
        num_pchs=4, num_rows=256, simulate_pchs=1,
        server_seed=args.seed, trace=True,
    )
    m, n, length = 64, 96, 256
    rng = np.random.default_rng(args.seed)
    w = (rng.standard_normal((m, n)) * 0.25).astype(np.float16)
    arrivals = np.cumsum(rng.exponential(args.gap_ns, size=args.requests))
    system = PimSystem(config)
    with PimServer(system, ServerConfig(lanes=2, max_batch=8)) as server:
        for i, arrival in enumerate(arrivals):
            if i % 2 == 0:
                server.submit(Request(
                    "gemv", weights=w,
                    a=(rng.standard_normal(n) * 0.25).astype(np.float16),
                    arrival_ns=float(arrival),
                ))
            else:
                server.submit(Request(
                    "add",
                    a=(rng.standard_normal(length) * 0.25).astype(np.float16),
                    b=(rng.standard_normal(length) * 0.25).astype(np.float16),
                    arrival_ns=float(arrival),
                ))
        profile = server.run()

    tracer = system.tracer
    write_chrome_trace(tracer, args.out)
    print(
        f"Wrote {len(tracer.spans)} spans and {len(tracer.events)} events "
        f"to {args.out}"
    )
    if args.spans is not None:
        lines = write_span_jsonl(tracer, args.spans)
        print(f"Wrote {lines} JSONL lines to {args.spans}")
    metrics_lines = system.metrics.render()
    if args.metrics is not None:
        with open(args.metrics, "w") as fh:
            fh.write("\n".join(metrics_lines) + "\n")
        print(f"Wrote {len(metrics_lines)} metrics to {args.metrics}")
    else:
        print("metrics:")
        for line in metrics_lines:
            print(" ", line)

    rc = 0
    requests = tracer.request_spans()
    span_extent = max(s.end_ns for s in requests) if requests else 0.0
    drift = abs(span_extent - profile.makespan_ns) / max(
        profile.makespan_ns, 1e-9
    )
    print(
        f"request spans: {len(requests)} / {profile.num_requests} requests; "
        f"extent {span_extent / 1000:.1f}us vs makespan "
        f"{profile.makespan_ns / 1000:.1f}us (drift {drift:.2%})"
    )
    if drift > 0.01 or len(requests) != profile.num_requests:
        print("  [FAIL] trace does not reconcile with the serving profile")
        rc = 1
    if args.validate:
        problems = validate_chrome_trace(args.out)
        if problems:
            rc = 1
            for problem in problems:
                print(f"  [FAIL] {problem}")
        else:
            print("  [ok] trace validates against the Chrome schema")
    print()
    for line in render_timeline(tracer, max_spans=24):
        print(line)
    return rc


def _write_trace(system, path) -> None:
    """Dump one traced system's spans as a Chrome trace file."""
    from .obs import write_chrome_trace

    tracer = getattr(system, "tracer", None)
    if tracer is None:
        return
    write_chrome_trace(tracer, path)
    print(
        f"Wrote {len(tracer.spans)} spans and {len(tracer.events)} events "
        f"to {path}"
    )


def _overload_smoke(config, w, m, n, length, seed, trace_path=None) -> int:
    """Overload-protection smoke: graceful saturation, zero silent losses.

    Serves one mixed stream at saturation through an unbounded server
    (the baseline), then offers 2x that load to a bounded-queue shedding
    server, and asserts: every submitted request carries a terminal
    ``RequestOutcome``, every completed/degraded result is bit-exact
    against the host golden path, admission actually shed load, and
    goodput stayed within 10% of the baseline (no congestion collapse).
    Returns a nonzero exit code on any regression (used by CI).
    """
    import numpy as np

    from .stack import (
        PimServer,
        PimSystem,
        Request,
        RequestOutcome,
        ServerConfig,
        add_reference,
        gemv_reference,
    )

    def workload(count, gap_ns, rng):
        arrivals = np.cumsum(rng.exponential(gap_ns, size=count))
        items = []
        for i, arrival in enumerate(arrivals):
            if i % 2 == 0:
                x = (rng.standard_normal(n) * 0.25).astype(np.float16)
                items.append(
                    Request("gemv", weights=w, a=x, arrival_ns=float(arrival))
                )
            else:
                a = (rng.standard_normal(length) * 0.25).astype(np.float16)
                b = (rng.standard_normal(length) * 0.25).astype(np.float16)
                items.append(Request("add", a=a, b=b, arrival_ns=float(arrival)))
        return items

    def serve(items, **server_knobs):
        system = PimSystem(config)
        server_config = ServerConfig(lanes=2, max_batch=8, **server_knobs)
        with PimServer(system, server_config) as srv:
            handles = [srv.submit(request) for request in items]
            profile = srv.run()
        return handles, profile, system

    def golden(request):
        if request.op == "gemv":
            return gemv_reference(request.weights, request.a, config.num_pchs)
        return add_reference(request.a, request.b)

    saturation_gap_ns = 500.0
    base_items = workload(32, saturation_gap_ns, np.random.default_rng(seed))
    _, base_profile, _ = serve(base_items)
    baseline_goodput = base_profile.goodput_rps()

    over_items = workload(
        64, saturation_gap_ns / 2.0, np.random.default_rng(seed + 1)
    )
    handles, profile, over_system = serve(
        over_items, queue_depth=8, admission="shed"
    )
    if trace_path is not None:
        _write_trace(over_system, trace_path)
    print(
        f"Overload smoke: baseline {baseline_goodput:,.0f} req/s at "
        f"{saturation_gap_ns:.0f}ns gaps; 2x load on queue_depth=8 "
        f"shed admission"
    )
    print("\n".join(profile.render()))

    served = (RequestOutcome.COMPLETED, RequestOutcome.DEGRADED_HOST)
    exact = sum(
        1
        for handle, item in zip(handles, over_items)
        if handle.outcome in served
        and handle.result is not None
        and np.array_equal(handle.result, golden(item))
    )
    num_served = sum(1 for h in handles if h.outcome in served)
    checks = {
        "every request terminal": all(h.outcome is not None for h in handles),
        "outcomes conserve requests": sum(
            profile.outcomes().values()
        ) == len(handles),
        "served results bit-exact": exact == num_served and num_served > 0,
        "admission shed load": profile.rejected > 0,
        "dropped work cost no device time": all(
            h.service_ns == 0.0
            for h in handles
            if h.outcome
            in (RequestOutcome.REJECTED, RequestOutcome.EXPIRED)
        ),
        "goodput within 10% of baseline": (
            profile.goodput_rps() >= 0.9 * baseline_goodput
        ),
    }
    failed_checks = [name for name, ok in checks.items() if not ok]
    for name, ok in checks.items():
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
    return 1 if failed_checks else 0


def _fabric_smoke(config, args) -> int:
    """Sharded-fabric smoke: scale-out throughput and kill conservation.

    Serves one GEMV-heavy stream (``--distinct-weights`` distinct weight
    matrices, so signatures spread across the hash ring) through a
    1-worker fabric and an ``--workers``-worker fabric, and compares
    *simulated* throughput (the device model's req/s; wall-clock is
    reported but not gated — CI containers may have a single core).
    With ``--min-speedup`` the run fails unless the sharded fabric beats
    the 1-worker baseline by at least that factor.  With
    ``--kill-worker`` the busiest shard is SIGKILLed after dispatch and
    the run asserts conservation: every request exactly one terminal
    outcome, bit-exact results, the dead shard quarantined.  Nonzero
    exit code on any failed check (used by CI).
    """
    import time

    import numpy as np

    from .stack import PimFabric, Request, ServerConfig, gemv_reference

    m, n = 64, 96
    count = 48
    k = max(1, args.distinct_weights)
    rng = np.random.default_rng(args.seed)
    weights = [
        (rng.standard_normal((m, n)) * 0.25).astype(np.float16)
        for _ in range(k)
    ]
    arrivals = np.cumsum(rng.exponential(200.0, size=count))
    items = [
        Request(
            "gemv",
            weights=weights[i % k],
            a=(rng.standard_normal(n) * 0.25).astype(np.float16),
            arrival_ns=float(arrivals[i]),
            trace_id=f"req{i}",
        )
        for i in range(count)
    ]
    server_config = ServerConfig(lanes=2, max_batch=8)

    def serve(workers, kill=False):
        with PimFabric(
            config, workers=workers, server_config=server_config
        ) as fabric:
            handles = [fabric.submit(request) for request in items]
            if kill:
                def _kill_busiest(fab):
                    alive = [
                        s for s in fab.alive_shards()
                        if fab._round_assignment.get(s)
                    ]
                    victim = max(
                        alive, key=lambda s: len(fab._round_assignment[s])
                    )
                    fab.kill_worker(victim)
                    fab._post_dispatch_hook = None
                fabric._post_dispatch_hook = _kill_busiest
            t0 = time.perf_counter()
            profile = fabric.run()
            wall_s = time.perf_counter() - t0
        return handles, profile, wall_s

    print(
        f"Fabric smoke: {count} gemv requests over {k} weight matrices, "
        f"{args.workers} workers"
        + (" (killing the busiest shard mid-round)" if args.kill_worker else "")
    )
    base_handles, base_profile, base_wall = serve(1)
    handles, profile, wall = serve(args.workers, kill=args.kill_worker)
    print("\n".join(profile.render()))

    base_rps = base_profile.throughput_rps()
    rps = profile.throughput_rps()
    speedup = rps / base_rps if base_rps > 0 else float("inf")
    print(
        f"  simulated throughput: 1 worker {base_rps:,.0f} req/s, "
        f"{args.workers} workers {rps:,.0f} req/s "
        f"(speedup {speedup:.2f}x)"
    )
    print(
        f"  wall clock (informational): 1 worker {base_wall:.2f}s, "
        f"{args.workers} workers {wall:.2f}s"
    )

    def exact(hs):
        return all(
            h.result is not None
            and np.array_equal(
                h.result,
                gemv_reference(h.request.weights, h.request.a,
                               config.num_pchs),
            )
            for h in hs
        )

    checks = {
        "every request terminal": all(h.outcome is not None for h in handles),
        "outcomes conserve requests": (
            sum(profile.outcomes().values()) == len(handles)
        ),
        "results bit-exact vs host reference": exact(handles),
        "baseline results bit-exact": exact(base_handles),
    }
    if args.kill_worker:
        checks["dead shard quarantined"] = len(profile.quarantined_shards) == 1
        checks["killed requests replayed or host-completed"] = (
            profile.replays > 0
        )
    else:
        shards_used = {h.shard for h in handles}
        checks["all shards served work"] = shards_used == set(
            range(args.workers)
        )
    if args.min_speedup is not None:
        checks[f"simulated speedup >= {args.min_speedup:g}x"] = (
            speedup >= args.min_speedup
        )
    failed_checks = [name for name, ok in checks.items() if not ok]
    for name, ok in checks.items():
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
    return 1 if failed_checks else 0


def _serve_bench(argv=None) -> int:
    """Serving benchmark; ``--faults``/``--overload`` run CI smokes.

    The fault smoke hard-fails a whole lane's channels, sprinkles
    single-bit flips over the allocated rows, and then *asserts* that the
    self-healing server completed every request bit-exactly with nonzero
    corrected and fallback counters.  The overload smoke offers 2x the
    saturation load to a bounded-queue server and *asserts* that goodput
    stays within 10% of the unprotected saturation baseline and that
    every submitted request reports a terminal ``RequestOutcome`` (zero
    silent losses).  A nonzero exit code means the corresponding
    protection layer regressed (both are used by CI).
    """
    import argparse

    import numpy as np

    from .stack import (
        PimServer,
        PimSystem,
        Request,
        ServerConfig,
        SystemConfig,
        add_reference,
        gemv_reference,
    )

    parser = argparse.ArgumentParser(prog="repro serve-bench")
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run the sharded-fabric smoke: serve the workload through a "
             "PimFabric with N worker processes and compare simulated "
             "throughput against a 1-worker fabric",
    )
    parser.add_argument(
        "--kill-worker", action="store_true",
        help="with --workers: SIGKILL the busiest worker mid-round and "
             "assert conservation (every request exactly one terminal "
             "outcome, bit-exact results, dead shard quarantined)",
    )
    parser.add_argument(
        "--distinct-weights", type=int, default=8,
        help="distinct GEMV weight matrices in the fabric workload "
             "(signature spread across the hash ring; default: 8)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="with --workers: fail unless fabric simulated throughput is "
             "at least this multiple of the 1-worker fabric's",
    )
    parser.add_argument(
        "--faults", action="store_true",
        help="run the fault-injection smoke instead of the load sweep",
    )
    parser.add_argument(
        "--overload", action="store_true",
        help="run the overload-protection smoke instead of the load sweep",
    )
    parser.add_argument(
        "--seed", type=int, default=7,
        help="master seed of the workload generator, the fault injector "
             "(unless --fault-seed overrides it), and the retry-backoff "
             "jitter; identical seeds replay byte-identical runs "
             "(default: 7)",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=1e-4,
        help="per-bit flip probability per injection epoch",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed of the fault injector (default: the --seed value)",
    )
    parser.add_argument(
        "--scrub-interval", type=int, default=2,
        help="run driver.scrub() every N batches (0 disables)",
    )
    parser.add_argument(
        "--fail-channels", default="0,1",
        help="comma-separated channels to hard-fail (fault mode only)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="enable the observability layer and write a Chrome trace of "
             "the last served session to PATH",
    )
    args = parser.parse_args(argv or [])
    fault_seed = args.seed if args.fault_seed is None else args.fault_seed

    config = SystemConfig(
        num_pchs=4, num_rows=256, simulate_pchs=1, server_seed=args.seed,
        trace=args.trace is not None,
    )
    m, n, length = 64, 96, 256
    rng = np.random.default_rng(args.seed)
    w = (rng.standard_normal((m, n)) * 0.25).astype(np.float16)

    if args.workers is not None:
        return _fabric_smoke(config, args)

    if args.overload:
        return _overload_smoke(
            config, w, m, n, length, args.seed, trace_path=args.trace
        )

    if args.faults:
        from .faults import FaultConfig

        failed = tuple(
            int(p) for p in args.fail_channels.split(",") if p.strip() != ""
        )
        config = config.replace(
            ecc=True,
            faults=FaultConfig(
                bit_flip_rate=args.fault_rate,
                check_flip_rate=args.fault_rate,
                register_fault_rate=0.05,
                failed_channels=failed,
                seed=fault_seed,
            ),
            scrub_interval=args.scrub_interval,
        )
        print(
            f"Fault smoke: channels {failed} dead, bit flips at "
            f"{args.fault_rate:g}/bit/epoch, scrub every "
            f"{args.scrub_interval} batches"
        )
        arrivals = np.cumsum(rng.exponential(2000.0, size=24))
        system = PimSystem(config)
        requests = []
        with PimServer(system, ServerConfig(lanes=2, max_batch=8)) as server:
            for i, arrival in enumerate(arrivals):
                if i % 2 == 0:
                    x = (rng.standard_normal(n) * 0.25).astype(np.float16)
                    requests.append(
                        (server.submit(Request(
                            "gemv", weights=w, a=x,
                            arrival_ns=float(arrival))), "gemv")
                    )
                else:
                    a = (rng.standard_normal(length) * 0.25).astype(np.float16)
                    b = (rng.standard_normal(length) * 0.25).astype(np.float16)
                    requests.append(
                        (server.submit(Request(
                            "add", a=a, b=b,
                            arrival_ns=float(arrival))), "add")
                    )
            profile = server.run()
        print("\n".join(profile.render()))
        if args.trace is not None:
            _write_trace(system, args.trace)
        exact = 0
        for request, op in requests:
            if request.result is None:
                continue
            if op == "gemv":
                gold = gemv_reference(w, request.a, config.num_pchs)
            else:
                gold = add_reference(request.a, request.b)
            if np.array_equal(request.result, gold):
                exact += 1
        corrected = profile.ecc_corrected + profile.scrub_corrected
        checks = {
            "all requests completed": all(
                r.result is not None for r, _ in requests
            ),
            "all results bit-exact": exact == len(requests),
            "nonzero corrected counter": corrected > 0,
            "nonzero fallback counter": profile.fallbacks > 0,
            "failed channels quarantined": set(failed).issubset(
                set(profile.quarantined_channels)
            ),
        }
        failed_checks = [name for name, ok in checks.items() if not ok]
        for name, ok in checks.items():
            print(f"  [{'ok' if ok else 'FAIL'}] {name}")
        return 1 if failed_checks else 0

    print("Serving a mixed GEMV+ADD Poisson stream (2 lanes, max_batch=8)")
    print(f"  device: {config.num_pchs} pCH, gemv {m}x{n}, add[{length}]")
    print("  offered gap     req/s   mean batch   mean wait   p95 turnaround")
    for gap_ns in (8000.0, 2000.0, 500.0):
        arrivals = np.cumsum(rng.exponential(gap_ns, size=32))
        system = PimSystem(config)
        with PimServer(system, ServerConfig(lanes=2, max_batch=8)) as server:
            for i, arrival in enumerate(arrivals):
                if i % 2 == 0:
                    server.submit(Request(
                        "gemv", weights=w,
                        a=(rng.standard_normal(n) * 0.25).astype(np.float16),
                        arrival_ns=float(arrival),
                    ))
                else:
                    server.submit(Request(
                        "add",
                        a=(rng.standard_normal(length) * 0.25).astype(np.float16),
                        b=(rng.standard_normal(length) * 0.25).astype(np.float16),
                        arrival_ns=float(arrival),
                    ))
            profile = server.run()
        print(
            f"  {gap_ns:8.0f}ns {profile.throughput_rps():9,.0f} "
            f"{profile.mean_batch_size():10.1f} "
            f"{profile.mean_wait_ns() / 1000:9.1f}us "
            f"{profile.p95_turnaround_ns() / 1000:13.1f}us"
        )
    if args.trace is not None:
        _write_trace(system, args.trace)
    return 0


def _chaos(argv=None) -> int:
    """Chaos smoke: a scripted fault storm the fabric must survive.

    Generates a seeded :class:`~repro.chaos.ChaosSchedule` covering
    worker kill, wedge, slowdown, channel death, stored-bit flips, and
    pipe-payload corruption, replays it against a live
    :class:`~repro.stack.fabric.PimFabric` alongside a fault-free
    baseline, and checks the invariant suite: every request exactly one
    terminal outcome, bit-exact results versus the host golden path, a
    valid merged Chrome trace, every respawned shard rejoined to the
    ring, post-recovery throughput within 20% of fault-free, and p99
    turnaround below 2x fault-free.  The scenario then runs a *second*
    time at the same seed and the two runs' serving profiles and span
    trees are compared — byte-identical replay is itself a gated
    invariant.  Nonzero exit code on any violation (used by CI).
    """
    import argparse

    from .chaos import run_chaos
    from .obs.export import diff_span_trees

    parser = argparse.ArgumentParser(prog="repro chaos")
    parser.add_argument(
        "--seed", type=int, default=7,
        help="seed of the chaos schedule, the workload, and every "
             "scripted fault; identical seeds replay byte-identical runs "
             "(default: 7)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="fabric worker processes (default: 4)",
    )
    parser.add_argument(
        "--requests", type=int, default=48,
        help="total requests across all waves (default: 48)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="skip the replay-determinism pass (single scenario run)",
    )
    args = parser.parse_args(argv or [])

    print(
        f"Chaos smoke: seed={args.seed} workers={args.workers} "
        f"requests={args.requests}"
    )
    report = run_chaos(
        seed=args.seed, workers=args.workers, requests=args.requests
    )
    print("\n".join(report.render()))
    failures = list(report.violations)
    if not args.once:
        replay = run_chaos(
            seed=args.seed, workers=args.workers, requests=args.requests
        )
        failures.extend(replay.violations)
        checks = {
            "replay profile identical": (
                "\n".join(report.profile.render())
                == "\n".join(replay.profile.render())
                and report.profile.outcomes() == replay.profile.outcomes()
                and [
                    (r.request_id, r.outcome, r.shard, r.finish_ns)
                    for r in report.profile.requests
                ]
                == [
                    (r.request_id, r.outcome, r.shard, r.finish_ns)
                    for r in replay.profile.requests
                ]
            ),
            "replay span tree identical": (
                diff_span_trees(report.tracer, replay.tracer) is None
            ),
        }
        for name, ok in checks.items():
            print(f"  [{'ok' if ok else 'FAIL'}] {name}")
            if not ok:
                failures.append(f"determinism check failed: {name}")
    if failures:
        print(f"chaos smoke FAILED ({len(failures)} violation(s))")
        return 1
    print("chaos smoke passed: every invariant held")
    return 0


_COMMANDS = {
    "report": _report,
    "demo": _demo,
    "specs": _specs,
    "trace": _trace,
    "serve-bench": _serve_bench,
    "chaos": _chaos,
}


def main(argv=None) -> int:
    """Dispatch a CLI subcommand; returns the process exit code.

    Arguments after the subcommand are forwarded to handlers that accept
    them (currently ``serve-bench`` and ``trace``); a handler's integer
    return value becomes the exit code.
    """
    argv = sys.argv[1:] if argv is None else argv
    command = argv[0] if argv else "demo"
    handler = _COMMANDS.get(command)
    if handler is None:
        print(__doc__)
        return 1
    if handler in (_serve_bench, _trace, _chaos):
        result = handler(argv[1:])
    else:
        result = handler()
    return int(result) if result is not None else 0


if __name__ == "__main__":
    raise SystemExit(main())
