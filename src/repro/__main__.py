"""Command-line entry point.

::

    python -m repro report       # full paper-vs-model reproduction report
    python -m repro demo         # quick functional demo on the simulator
    python -m repro specs        # Tables IV & V
    python -m repro trace        # a GEMV kernel's command stream, annotated
    python -m repro serve-bench  # serving engine under a Poisson load
"""

from __future__ import annotations

import sys


def _report() -> None:
    import importlib.util
    import pathlib

    # benchmarks/report.py lives outside the package; load it directly so
    # the CLI works from a source checkout.
    path = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "report.py"
    if path.exists():
        spec = importlib.util.spec_from_file_location("repro_report", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # type: ignore[union-attr]
        module.main()
    else:
        print("benchmarks/report.py not found (installed without sources); "
              "run the bench suite instead: pytest benchmarks/ --benchmark-only")


def _demo() -> None:
    import numpy as np

    from .stack import PimBlas, PimSystem, SystemConfig

    print("Building a 4-channel PIM-HBM system...")
    system = PimSystem(SystemConfig(num_pchs=4, num_rows=256))
    blas = PimBlas(system)
    rng = np.random.default_rng(0)
    w = (rng.standard_normal((512, 256)) * 0.1).astype(np.float16)
    x = (rng.standard_normal(256) * 0.1).astype(np.float16)
    y, report = blas.gemv(w, x)
    gold = w.astype(np.float32) @ x.astype(np.float32)
    print(f"GEMV 512x256 on the simulated device:")
    print(f"  max |err| vs FP32: {np.abs(y - gold).max():.2e}")
    print(f"  {report.cycles} DRAM cycles, {report.column_commands} column "
          f"commands, {report.fences} fences, {report.pim_flops} PIM FLOPs")


def _specs() -> None:
    from .perf.specs import PimDeviceSpec, PimUnitSpec

    print("Table IV — PIM execution unit")
    for key, value in PimUnitSpec().as_table().items():
        print(f"  {key}: {value}")
    print("\nTable V — PIM-HBM device")
    for key, value in PimDeviceSpec().as_table().items():
        print(f"  {key}: {value}")


def _trace() -> None:
    import numpy as np

    from .stack import PimBlas, PimSystem, SystemConfig
    from .tools import trace_channel

    system = PimSystem(SystemConfig(num_pchs=1, num_rows=128))
    blas = PimBlas(system)
    rng = np.random.default_rng(0)
    w = (rng.standard_normal((128, 64)) * 0.1).astype(np.float16)
    x = (rng.standard_normal(64) * 0.1).astype(np.float16)
    with trace_channel(system.device.pch(0)) as trace:
        blas.gemv(w, x)
    print(trace.summary())
    print("\nFirst 30 commands:")
    for line in trace.lines()[:30]:
        print(" ", line)


def _serve_bench(argv=None) -> int:
    """Serving benchmark; ``--faults`` runs the fault-injection smoke.

    The fault smoke hard-fails a whole lane's channels, sprinkles
    single-bit flips over the allocated rows, and then *asserts* that the
    self-healing server completed every request bit-exactly with nonzero
    corrected and fallback counters — a nonzero exit code means the
    fault-tolerance layer regressed (used by CI).
    """
    import argparse

    import numpy as np

    from .stack import (
        PimServer,
        PimSystem,
        SystemConfig,
        add_reference,
        gemv_reference,
    )

    parser = argparse.ArgumentParser(prog="repro serve-bench")
    parser.add_argument(
        "--faults", action="store_true",
        help="run the fault-injection smoke instead of the load sweep",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=1e-4,
        help="per-bit flip probability per injection epoch",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=7,
        help="seed of the fault injector",
    )
    parser.add_argument(
        "--scrub-interval", type=int, default=2,
        help="run driver.scrub() every N batches (0 disables)",
    )
    parser.add_argument(
        "--fail-channels", default="0,1",
        help="comma-separated channels to hard-fail (fault mode only)",
    )
    args = parser.parse_args(argv or [])

    config = SystemConfig(num_pchs=4, num_rows=256, simulate_pchs=1)
    m, n, length = 64, 96, 256
    rng = np.random.default_rng(7)
    w = (rng.standard_normal((m, n)) * 0.25).astype(np.float16)

    if args.faults:
        from .faults import FaultConfig

        failed = tuple(
            int(p) for p in args.fail_channels.split(",") if p.strip() != ""
        )
        config = config.replace(
            ecc=True,
            faults=FaultConfig(
                bit_flip_rate=args.fault_rate,
                check_flip_rate=args.fault_rate,
                register_fault_rate=0.05,
                failed_channels=failed,
                seed=args.fault_seed,
            ),
            scrub_interval=args.scrub_interval,
        )
        print(
            f"Fault smoke: channels {failed} dead, bit flips at "
            f"{args.fault_rate:g}/bit/epoch, scrub every "
            f"{args.scrub_interval} batches"
        )
        arrivals = np.cumsum(rng.exponential(2000.0, size=24))
        system = PimSystem(config)
        requests = []
        with PimServer(system, lanes=2, max_batch=8) as server:
            for i, arrival in enumerate(arrivals):
                if i % 2 == 0:
                    x = (rng.standard_normal(n) * 0.25).astype(np.float16)
                    requests.append(
                        (server.submit("gemv", weights=w, a=x,
                                       arrival_ns=float(arrival)), "gemv")
                    )
                else:
                    a = (rng.standard_normal(length) * 0.25).astype(np.float16)
                    b = (rng.standard_normal(length) * 0.25).astype(np.float16)
                    requests.append(
                        (server.submit("add", a=a, b=b,
                                       arrival_ns=float(arrival)), "add")
                    )
            profile = server.run()
        print("\n".join(profile.render()))
        exact = 0
        for request, op in requests:
            if request.result is None:
                continue
            if op == "gemv":
                gold = gemv_reference(w, request.a, config.num_pchs)
            else:
                gold = add_reference(request.a, request.b)
            if np.array_equal(request.result, gold):
                exact += 1
        corrected = profile.ecc_corrected + profile.scrub_corrected
        checks = {
            "all requests completed": all(
                r.result is not None for r, _ in requests
            ),
            "all results bit-exact": exact == len(requests),
            "nonzero corrected counter": corrected > 0,
            "nonzero fallback counter": profile.fallbacks > 0,
            "failed channels quarantined": set(failed).issubset(
                set(profile.quarantined_channels)
            ),
        }
        failed_checks = [name for name, ok in checks.items() if not ok]
        for name, ok in checks.items():
            print(f"  [{'ok' if ok else 'FAIL'}] {name}")
        return 1 if failed_checks else 0

    print("Serving a mixed GEMV+ADD Poisson stream (2 lanes, max_batch=8)")
    print(f"  device: {config.num_pchs} pCH, gemv {m}x{n}, add[{length}]")
    print("  offered gap     req/s   mean batch   mean wait   p95 turnaround")
    for gap_ns in (8000.0, 2000.0, 500.0):
        arrivals = np.cumsum(rng.exponential(gap_ns, size=32))
        system = PimSystem(config)
        with PimServer(system, lanes=2, max_batch=8) as server:
            for i, arrival in enumerate(arrivals):
                if i % 2 == 0:
                    server.submit(
                        "gemv", weights=w,
                        a=(rng.standard_normal(n) * 0.25).astype(np.float16),
                        arrival_ns=float(arrival),
                    )
                else:
                    server.submit(
                        "add",
                        a=(rng.standard_normal(length) * 0.25).astype(np.float16),
                        b=(rng.standard_normal(length) * 0.25).astype(np.float16),
                        arrival_ns=float(arrival),
                    )
            profile = server.run()
        print(
            f"  {gap_ns:8.0f}ns {profile.throughput_rps():9,.0f} "
            f"{profile.mean_batch_size():10.1f} "
            f"{profile.mean_wait_ns() / 1000:9.1f}us "
            f"{profile.p95_turnaround_ns() / 1000:13.1f}us"
        )
    return 0


_COMMANDS = {
    "report": _report,
    "demo": _demo,
    "specs": _specs,
    "trace": _trace,
    "serve-bench": _serve_bench,
}


def main(argv=None) -> int:
    """Dispatch a CLI subcommand; returns the process exit code.

    Arguments after the subcommand are forwarded to handlers that accept
    them (currently ``serve-bench``); a handler's integer return value
    becomes the exit code.
    """
    argv = sys.argv[1:] if argv is None else argv
    command = argv[0] if argv else "demo"
    handler = _COMMANDS.get(command)
    if handler is None:
        print(__doc__)
        return 1
    if handler is _serve_bench:
        result = handler(argv[1:])
    else:
        result = handler()
    return int(result) if result is not None else 0


if __name__ == "__main__":
    raise SystemExit(main())
