"""Command-line entry point.

::

    python -m repro report       # full paper-vs-model reproduction report
    python -m repro demo         # quick functional demo on the simulator
    python -m repro specs        # Tables IV & V
    python -m repro trace        # a GEMV kernel's command stream, annotated
    python -m repro serve-bench  # serving engine under a Poisson load
"""

from __future__ import annotations

import sys


def _report() -> None:
    import importlib.util
    import pathlib

    # benchmarks/report.py lives outside the package; load it directly so
    # the CLI works from a source checkout.
    path = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "report.py"
    if path.exists():
        spec = importlib.util.spec_from_file_location("repro_report", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # type: ignore[union-attr]
        module.main()
    else:
        print("benchmarks/report.py not found (installed without sources); "
              "run the bench suite instead: pytest benchmarks/ --benchmark-only")


def _demo() -> None:
    import numpy as np

    from .stack import PimBlas, PimSystem, SystemConfig

    print("Building a 4-channel PIM-HBM system...")
    system = PimSystem(SystemConfig(num_pchs=4, num_rows=256))
    blas = PimBlas(system)
    rng = np.random.default_rng(0)
    w = (rng.standard_normal((512, 256)) * 0.1).astype(np.float16)
    x = (rng.standard_normal(256) * 0.1).astype(np.float16)
    y, report = blas.gemv(w, x)
    gold = w.astype(np.float32) @ x.astype(np.float32)
    print(f"GEMV 512x256 on the simulated device:")
    print(f"  max |err| vs FP32: {np.abs(y - gold).max():.2e}")
    print(f"  {report.cycles} DRAM cycles, {report.column_commands} column "
          f"commands, {report.fences} fences, {report.pim_flops} PIM FLOPs")


def _specs() -> None:
    from .perf.specs import PimDeviceSpec, PimUnitSpec

    print("Table IV — PIM execution unit")
    for key, value in PimUnitSpec().as_table().items():
        print(f"  {key}: {value}")
    print("\nTable V — PIM-HBM device")
    for key, value in PimDeviceSpec().as_table().items():
        print(f"  {key}: {value}")


def _trace() -> None:
    import numpy as np

    from .stack import PimBlas, PimSystem, SystemConfig
    from .tools import trace_channel

    system = PimSystem(SystemConfig(num_pchs=1, num_rows=128))
    blas = PimBlas(system)
    rng = np.random.default_rng(0)
    w = (rng.standard_normal((128, 64)) * 0.1).astype(np.float16)
    x = (rng.standard_normal(64) * 0.1).astype(np.float16)
    with trace_channel(system.device.pch(0)) as trace:
        blas.gemv(w, x)
    print(trace.summary())
    print("\nFirst 30 commands:")
    for line in trace.lines()[:30]:
        print(" ", line)


def _serve_bench() -> None:
    import numpy as np

    from .stack import PimServer, PimSystem, SystemConfig

    config = SystemConfig(num_pchs=4, num_rows=256, simulate_pchs=1)
    m, n, length = 64, 96, 256
    rng = np.random.default_rng(7)
    w = (rng.standard_normal((m, n)) * 0.25).astype(np.float16)
    print("Serving a mixed GEMV+ADD Poisson stream (2 lanes, max_batch=8)")
    print(f"  device: {config.num_pchs} pCH, gemv {m}x{n}, add[{length}]")
    print("  offered gap     req/s   mean batch   mean wait   p95 turnaround")
    for gap_ns in (8000.0, 2000.0, 500.0):
        arrivals = np.cumsum(rng.exponential(gap_ns, size=32))
        system = PimSystem(config)
        with PimServer(system, lanes=2, max_batch=8) as server:
            for i, arrival in enumerate(arrivals):
                if i % 2 == 0:
                    server.submit(
                        "gemv", weights=w,
                        a=(rng.standard_normal(n) * 0.25).astype(np.float16),
                        arrival_ns=float(arrival),
                    )
                else:
                    server.submit(
                        "add",
                        a=(rng.standard_normal(length) * 0.25).astype(np.float16),
                        b=(rng.standard_normal(length) * 0.25).astype(np.float16),
                        arrival_ns=float(arrival),
                    )
            profile = server.run()
        print(
            f"  {gap_ns:8.0f}ns {profile.throughput_rps():9,.0f} "
            f"{profile.mean_batch_size():10.1f} "
            f"{profile.mean_wait_ns() / 1000:9.1f}us "
            f"{profile.p95_turnaround_ns() / 1000:13.1f}us"
        )


_COMMANDS = {
    "report": _report,
    "demo": _demo,
    "specs": _specs,
    "trace": _trace,
    "serve-bench": _serve_bench,
}


def main(argv=None) -> int:
    """Dispatch a CLI subcommand; returns the process exit code."""
    argv = sys.argv[1:] if argv is None else argv
    command = argv[0] if argv else "demo"
    handler = _COMMANDS.get(command)
    if handler is None:
        print(__doc__)
        return 1
    handler()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
