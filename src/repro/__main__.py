"""Command-line entry point.

::

    python -m repro report    # full paper-vs-model reproduction report
    python -m repro demo      # quick functional demo on the simulator
    python -m repro specs     # Tables IV & V
    python -m repro trace     # a GEMV kernel's command stream, annotated
"""

from __future__ import annotations

import sys


def _report() -> None:
    import importlib.util
    import pathlib

    # benchmarks/report.py lives outside the package; load it directly so
    # the CLI works from a source checkout.
    path = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "report.py"
    if path.exists():
        spec = importlib.util.spec_from_file_location("repro_report", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # type: ignore[union-attr]
        module.main()
    else:
        print("benchmarks/report.py not found (installed without sources); "
              "run the bench suite instead: pytest benchmarks/ --benchmark-only")


def _demo() -> None:
    import numpy as np

    from .stack import PimBlas, PimSystem

    print("Building a 4-channel PIM-HBM system...")
    system = PimSystem(num_pchs=4, num_rows=256)
    blas = PimBlas(system)
    rng = np.random.default_rng(0)
    w = (rng.standard_normal((512, 256)) * 0.1).astype(np.float16)
    x = (rng.standard_normal(256) * 0.1).astype(np.float16)
    y, report = blas.gemv(w, x)
    gold = w.astype(np.float32) @ x.astype(np.float32)
    print(f"GEMV 512x256 on the simulated device:")
    print(f"  max |err| vs FP32: {np.abs(y - gold).max():.2e}")
    print(f"  {report.cycles} DRAM cycles, {report.column_commands} column "
          f"commands, {report.fences} fences, {report.pim_flops} PIM FLOPs")


def _specs() -> None:
    from .perf.specs import PimDeviceSpec, PimUnitSpec

    print("Table IV — PIM execution unit")
    for key, value in PimUnitSpec().as_table().items():
        print(f"  {key}: {value}")
    print("\nTable V — PIM-HBM device")
    for key, value in PimDeviceSpec().as_table().items():
        print(f"  {key}: {value}")


def _trace() -> None:
    import numpy as np

    from .stack import PimBlas, PimSystem
    from .tools import trace_channel

    system = PimSystem(num_pchs=1, num_rows=128)
    blas = PimBlas(system)
    rng = np.random.default_rng(0)
    w = (rng.standard_normal((128, 64)) * 0.1).astype(np.float16)
    x = (rng.standard_normal(64) * 0.1).astype(np.float16)
    with trace_channel(system.device.pch(0)) as trace:
        blas.gemv(w, x)
    print(trace.summary())
    print("\nFirst 30 commands:")
    for line in trace.lines()[:30]:
        print(" ", line)


_COMMANDS = {"report": _report, "demo": _demo, "specs": _specs, "trace": _trace}


def main(argv=None) -> int:
    """Dispatch a CLI subcommand; returns the process exit code."""
    argv = sys.argv[1:] if argv is None else argv
    command = argv[0] if argv else "demo"
    handler = _COMMANDS.get(command)
    if handler is None:
        print(__doc__)
        return 1
    handler()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
