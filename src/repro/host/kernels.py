"""Cycle-level host (PROC-HBM) kernel streams.

These generate the *memory traffic* of an ideally-tuned host kernel on
standard HBM — reads and writes streamed through the FR-FCFS controller
with full bank-level parallelism — and measure achieved bandwidth on the
same simulator the PIM kernels run on.

This is the mechanistic baseline: comparing it against the simulated PIM
kernels isolates the pure architecture gain (on-chip bandwidth vs off-chip,
fences, staging) from the *software* gain the paper's 11.2x includes (the
vendor GEMV's poor bandwidth utilisation, which we model as a calibrated
efficiency in :mod:`repro.perf.latency`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..dram.pseudochannel import BANK_GROUPS, BANKS_PER_GROUP
from .processor import HostSystem

__all__ = ["HostKernelResult", "HostKernels"]


@dataclass(frozen=True)
class HostKernelResult:
    """Outcome of one simulated host kernel on one platform."""

    kernel: str
    cycles: int
    ns: float
    bytes_moved: int
    column_commands: int

    @property
    def achieved_bytes_per_cycle(self) -> float:
        return self.bytes_moved / self.cycles if self.cycles else 0.0

    def bandwidth_fraction(self, col_bytes: int = 32, tccd_s: int = 2) -> float:
        """Fraction of the channel's peak streaming bandwidth achieved."""
        peak = col_bytes / tccd_s
        return self.achieved_bytes_per_cycle / peak


class HostKernels:
    """Ideal host kernels over a standard HBM system (one channel timed).

    Data contents are irrelevant to timing, so streams address a synthetic
    working set walked row by row with bank-group rotation (what a tuned
    streaming kernel achieves).  ``pch`` selects the simulated channel;
    totals scale linearly over channels, exactly as for the PIM kernels.
    """

    def __init__(self, system: HostSystem, pch: int = 0):
        self.sys = system
        self.pch = pch
        self._cols_per_row = system.device.config.bank_config.cols_per_row
        self._col_bytes = system.device.config.bank_config.col_bytes
        self._num_rows = system.device.config.bank_config.num_rows

    def _locate(self, block: int, base_row: int = 0):
        """Bank-group-rotated streaming layout for block index ``block``."""
        bg = block % BANK_GROUPS
        ba = (block // BANK_GROUPS) % BANKS_PER_GROUP
        flat = block // (BANK_GROUPS * BANKS_PER_GROUP)
        row = base_row + flat // self._cols_per_row
        col = flat % self._cols_per_row
        if row >= self._num_rows:
            raise ValueError("working set exceeds the configured bank size")
        return bg, ba, row, col

    def _elapsed(self, body) -> int:
        mc = self.sys.controller(self.pch)
        mc.drain()
        start = mc.current_cycle
        body(mc)
        mc.drain()
        return mc.current_cycle - start

    # -- kernels ---------------------------------------------------------------

    def stream_read(self, nbytes: int) -> HostKernelResult:
        """A pure read stream (the GEMV weight traffic at batch 1)."""
        blocks = -(-nbytes // self._col_bytes)

        def body(mc):
            for b in range(blocks):
                bg, ba, row, col = self._locate(b)
                mc.read(bg, ba, row, col)

        cycles = self._elapsed(body)
        return HostKernelResult(
            "stream_read", cycles, cycles * self.sys.tck_ns,
            blocks * self._col_bytes, blocks,
        )

    def gemv(self, m: int, n: int) -> HostKernelResult:
        """Ideal host GEMV: stream W once; x/y traffic is negligible."""
        result = self.stream_read(2 * m * n)
        return HostKernelResult(
            f"gemv[{m}x{n}]", result.cycles, result.ns,
            result.bytes_moved, result.column_commands,
        )

    def elementwise_add(self, elements: int) -> HostKernelResult:
        """Read a, read b, write out — interleaved in row-sized batches to
        amortise write-to-read turnarounds like a tuned kernel would."""
        blocks = -(-elements * 2 // self._col_bytes)
        rows_span = -(-blocks // (BANK_GROUPS * BANKS_PER_GROUP * self._cols_per_row))
        a_base, b_base = 0, rows_span
        out_base = 2 * rows_span
        data = np.zeros(self._col_bytes, dtype=np.uint8)
        batch = BANK_GROUPS * BANKS_PER_GROUP * self._cols_per_row

        def body(mc):
            for start in range(0, blocks, batch):
                stop = min(start + batch, blocks)
                for b in range(start, stop):
                    bg, ba, row, col = self._locate(b, a_base)
                    mc.read(bg, ba, row, col)
                for b in range(start, stop):
                    bg, ba, row, col = self._locate(b, b_base)
                    mc.read(bg, ba, row, col)
                for b in range(start, stop):
                    bg, ba, row, col = self._locate(b, out_base)
                    mc.write(bg, ba, row, col, data)

        cycles = self._elapsed(body)
        moved = 3 * blocks * self._col_bytes
        return HostKernelResult(
            f"add[{elements}]", cycles, cycles * self.sys.tck_ns, moved, 3 * blocks,
        )
