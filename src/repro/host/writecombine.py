"""Cache bypassing through a write-combining buffer (Section VIII).

PIM operands must reach DRAM, not the cache, so the host uses non-temporal
loads/stores (LDNP/STNP on ARMv8) "that directly send write requests to
memory through a write-combining buffer".  The buffer coalesces the 16-byte
stores of a lock-step thread group into full 32-byte column bursts: without
it, every 16-byte store would cost a read-modify-write at the 32-byte
column granularity.

The model is a small set of combining entries with flush-on-full,
flush-on-fence, and LRU eviction, reporting how many column writes were
fully combined vs partial.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["WriteCombineStats", "WriteCombiningBuffer"]

COLUMN_BYTES = 32


@dataclass
class WriteCombineStats:
    stores: int = 0
    combined_flushes: int = 0  # full 32-byte bursts
    partial_flushes: int = 0  # required a read-modify-write
    fence_flushes: int = 0
    capacity_evictions: int = 0

    @property
    def column_writes(self) -> int:
        return self.combined_flushes + self.partial_flushes

    @property
    def combining_ratio(self) -> float:
        if not self.column_writes:
            return 0.0
        return self.combined_flushes / self.column_writes


class WriteCombiningBuffer:
    """Coalesces sub-column non-temporal stores into column bursts.

    ``flush`` callbacks receive ``(column_address, byte_mask)`` where the
    mask has one bit per byte of the 32-byte column; a full mask is a clean
    burst, anything else is a partial (read-modify-write) column write.
    """

    def __init__(self, entries: int = 8):
        if entries < 1:
            raise ValueError("need at least one combining entry")
        self.entries = entries
        # column address -> byte-presence mask
        self._open: "OrderedDict[int, int]" = OrderedDict()
        self.stats = WriteCombineStats()
        self._flushed: List[Tuple[int, int]] = []

    @property
    def flushed(self) -> List[Tuple[int, int]]:
        """(column_address, byte_mask) in flush order."""
        return list(self._flushed)

    def store(self, address: int, nbytes: int) -> None:
        """A non-temporal store of ``nbytes`` at ``address``."""
        if nbytes <= 0:
            raise ValueError("store must cover at least one byte")
        self.stats.stores += 1
        while nbytes > 0:
            column = address // COLUMN_BYTES
            offset = address % COLUMN_BYTES
            span = min(nbytes, COLUMN_BYTES - offset)
            mask_bits = ((1 << span) - 1) << offset
            if column in self._open:
                self._open.move_to_end(column)
                self._open[column] |= mask_bits
            else:
                if len(self._open) >= self.entries:
                    self._evict_lru()
                self._open[column] = mask_bits
            if self._open[column] == (1 << COLUMN_BYTES) - 1:
                self._flush(column)
            address += span
            nbytes -= span

    def fence(self) -> None:
        """A barrier drains the buffer (ordering the memory requests)."""
        for column in list(self._open):
            self._flush(column, fence=True)

    def _evict_lru(self) -> None:
        column = next(iter(self._open))
        self.stats.capacity_evictions += 1
        self._flush(column)

    def _flush(self, column: int, fence: bool = False) -> None:
        mask = self._open.pop(column)
        full = mask == (1 << COLUMN_BYTES) - 1
        if full:
            self.stats.combined_flushes += 1
        else:
            self.stats.partial_flushes += 1
        if fence:
            self.stats.fence_flushes += 1
        self._flushed.append((column * COLUMN_BYTES, mask))


def thread_group_store_pattern(
    base: int, threads: int = 16, bytes_per_thread: int = 16
) -> List[Tuple[int, int]]:
    """The Fig. 8(c) pattern: each thread of a lock-step group stores one
    16-byte half of consecutive 32-byte columns."""
    return [
        (base + t * bytes_per_thread, bytes_per_thread) for t in range(threads)
    ]
