"""Host processor model.

The paper integrates PIM-HBM with an *unmodified* commercial processor
(60 compute units at 1.725 GHz, Section VI).  For the system-level model we
need three things from the host:

* the **lock-step thread-group programming model** (Section V-B, Fig. 8):
  one thread group per pseudo-channel, 16 threads per group, barriers that
  order memory requests — modelled as per-channel request streams with
  fences;
* **roofline parameters** (peak FP16 throughput, off-chip bandwidth) for
  the layer-level performance model of the applications; and
* **software-stack overheads**: kernel-launch latency and the efficiency
  with which the host's BLAS actually uses the available bandwidth — the
  paper attributes GEMV's 11.2x largely to the host library's poor
  bandwidth utilisation (Section VII-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..dram.controller import MemoryController, SchedulerPolicy
from ..dram.device import HbmDevice
from .cache import CacheConfig

__all__ = ["HostConfig", "ThreadGroup", "HostSystem"]


@dataclass(frozen=True)
class HostConfig:
    """Host processor and software-stack parameters.

    Defaults model the evaluation system of Section VI with the
    software-stack efficiencies calibrated in ``repro.perf.calibration``.
    """

    compute_units: int = 60
    freq_ghz: float = 1.725
    fp16_flops_per_cu_per_cycle: int = 128
    llc: CacheConfig = field(default_factory=CacheConfig)
    # Latency of dispatching one kernel to the device (dominates GNMT's
    # per-step decoder launches, Section VII-B).
    kernel_launch_ns: float = 6000.0
    # Cost of one thread-group barrier (orders memory requests; PIM needs
    # one per 8 commands because AAM covers an 8-register window).
    fence_sync_ns: float = 45.0
    # Fraction of peak off-chip bandwidth the host BLAS achieves for
    # streaming level-1 kernels (ADD/BN) and level-2 kernels (GEMV).
    add_bandwidth_efficiency: float = 0.65
    gemv_bandwidth_efficiency: float = 0.18

    @property
    def peak_fp16_flops(self) -> float:
        return self.compute_units * self.fp16_flops_per_cu_per_cycle * self.freq_ghz * 1e9


@dataclass
class ThreadGroup:
    """A lock-step group of 16 threads bound to one pseudo-channel.

    Each thread issues one 16-byte access; the group of 16 covers a
    256-byte PIM chunk (8 x 32 B column bursts) per step, and a barrier
    between steps orders the requests (Fig. 8(c)-(d)).
    """

    group_id: int
    pch: int
    threads: int = 16

    @property
    def bytes_per_step(self) -> int:
        return self.threads * 16


class HostSystem:
    """A processor attached to one or more (PIM-)HBM devices.

    Owns one :class:`MemoryController` per pseudo-channel (channels are
    controlled independently — the property that lets PIM sidestep
    interleaving, Section VIII) and accounts elapsed time as the max over
    channels plus host-side overheads.
    """

    def __init__(
        self,
        device: HbmDevice,
        host: Optional[HostConfig] = None,
        policy: SchedulerPolicy = SchedulerPolicy.FRFCFS,
        fence_penalty_cycles: Optional[int] = None,
        scheduler_seed: Optional[int] = None,
        refresh: bool = False,
    ):
        self.device = device
        self.host = host or HostConfig()
        if fence_penalty_cycles is None:
            fence_penalty_cycles = round(
                self.host.fence_sync_ns / device.config.timing.tck_ns
            )
        self.controllers: List[MemoryController] = [
            MemoryController(
                device.pch(i),
                policy=policy,
                fence_penalty=fence_penalty_cycles,
                seed=None if scheduler_seed is None else scheduler_seed + i,
                refresh=refresh,
            )
            for i in range(len(device))
        ]
        self.thread_groups: List[ThreadGroup] = [
            ThreadGroup(group_id=i, pch=i) for i in range(len(device))
        ]

    @property
    def num_pchs(self) -> int:
        return len(self.controllers)

    @property
    def tck_ns(self) -> float:
        return self.device.config.timing.tck_ns

    def controller(self, pch: int) -> MemoryController:
        """The memory controller of one pseudo-channel."""
        return self.controllers[pch]

    def resolve_pchs(self, pchs: Union[None, int, Sequence[int]]) -> List[int]:
        """Normalise a channel selector to a list of channel indices.

        ``None`` means every channel, an ``int`` means the first N (the
        historical ``simulate_pchs`` convention), and a sequence names an
        explicit channel set (a serving lane).
        """
        if pchs is None:
            return list(range(len(self.controllers)))
        if isinstance(pchs, int):
            return list(range(min(pchs, len(self.controllers))))
        return list(pchs)

    def now_cycles(self, pchs: Union[None, int, Sequence[int]] = None) -> int:
        """Current time over a channel set: channels run concurrently, so
        the max front."""
        ids = self.resolve_pchs(pchs)
        return max(self.controllers[i].current_cycle for i in ids)

    def sync_set(self, pchs: Union[None, int, Sequence[int]] = None) -> int:
        """Barrier across one channel set's thread groups only.

        This is the per-channel-set fence the serving engine relies on:
        kernels bound to a lane align their own channels' clocks without
        stalling — or even observing — channels leased to other lanes.
        """
        ids = self.resolve_pchs(pchs)
        now = self.now_cycles(ids)
        for i in ids:
            controller = self.controllers[i]
            controller._next_ca = max(controller._next_ca, now)
            controller._cycle = max(controller._cycle, now)
        return now

    def sync_channels(self) -> int:
        """Barrier across all thread groups: align channel clocks."""
        return self.sync_set(None)

    def drain_set(self, pchs: Union[None, int, Sequence[int]] = None) -> int:
        """Drain one channel set's queues and align only those clocks."""
        ids = self.resolve_pchs(pchs)
        for i in ids:
            self.controllers[i].drain()
        return self.sync_set(ids)

    def fence_set(self, pchs: Union[None, int, Sequence[int]] = None) -> None:
        """Insert a fence on every controller of one channel set."""
        for i in self.resolve_pchs(pchs):
            self.controllers[i].fence()

    def drain_all(self) -> int:
        """Drain every channel's queue and align the clocks."""
        return self.drain_set(None)

    def cycles_to_ns(self, cycles: int) -> float:
        """Convert CA-clock cycles to nanoseconds."""
        return cycles * self.tck_ns
