"""A set-associative last-level cache model.

Used for the batch-size study of Fig. 10: at batch 1, GEMV weight traffic
has no reuse (LLC miss rate ~100%); batching turns GEMV into GEMM, weights
get reused across the batch, and the measured miss rate drops to 70-80% at
batch 4 — the crossover where the HBM host starts beating PIM-HBM.

The model is a plain LRU set-associative cache with a streaming interface;
``simulate_gemm_traffic`` reproduces the blocked access pattern of a
batched matrix-vector kernel without materialising data.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable

__all__ = ["CacheConfig", "Cache", "CacheStats", "simulate_gemv_batch"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of the LLC (defaults: 4 MiB, 16-way, 64 B lines)."""

    capacity_bytes: int = 4 * 1024 * 1024
    line_bytes: int = 64
    ways: int = 16

    @property
    def num_sets(self) -> int:
        sets = self.capacity_bytes // (self.line_bytes * self.ways)
        if sets == 0:
            raise ValueError("cache too small for its associativity")
        return sets


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """LRU set-associative cache over physical line addresses."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: Dict[int, OrderedDict] = {}
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Touch ``address``; returns True on hit."""
        line = address // self.config.line_bytes
        set_index = line % self.config.num_sets
        ways = self._sets.setdefault(set_index, OrderedDict())
        self.stats.accesses += 1
        if line in ways:
            ways.move_to_end(line)
            self.stats.hits += 1
            return True
        ways[line] = True
        if len(ways) > self.config.ways:
            ways.popitem(last=False)
        return False

    def access_range(self, start: int, nbytes: int) -> None:
        """Touch every line in ``[start, start+nbytes)``."""
        line_bytes = self.config.line_bytes
        first = start // line_bytes
        last = (start + nbytes - 1) // line_bytes
        for line in range(first, last + 1):
            self.access(line * line_bytes)

    def flush(self) -> None:
        """Invalidate every line."""
        self._sets.clear()


def simulate_gemv_batch(
    rows: int,
    cols: int,
    batch: int,
    cache: Cache,
    dtype_bytes: int = 2,
    row_block: int = 64,
) -> CacheStats:
    """Stream the access pattern of a batched GEMV / skinny GEMM.

    The kernel walks the weight matrix in row blocks; for each block it
    touches the block's weights once per batch element (the reuse batching
    creates), plus the input and output vectors.  Returns the cache stats
    accumulated over the run.
    """
    weight_base = 0
    x_base = rows * cols * dtype_bytes
    y_base = x_base + batch * cols * dtype_bytes
    row_bytes = cols * dtype_bytes
    for r0 in range(0, rows, row_block):
        r1 = min(r0 + row_block, rows)
        for b in range(batch):
            # Weight block touched once per batch element: reused from LLC
            # when the block survives between iterations.
            cache.access_range(weight_base + r0 * row_bytes, (r1 - r0) * row_bytes)
            cache.access_range(x_base + b * cols * dtype_bytes, cols * dtype_bytes)
            cache.access_range(
                y_base + (b * rows + r0) * dtype_bytes, (r1 - r0) * dtype_bytes
            )
    return cache.stats
