"""Physical address mapping (Fig. 15(a)).

The host's DRAM controller slices a physical byte address into channel /
pseudo-channel / bank-group / bank / row / column fields.  The PIM
architecture is deliberately *agnostic* to the exact scheme (Section VIII)
because each PIM unit accesses memory at the host's granularity and each
channel is controlled independently; the PIM BLAS only needs to know the
mapping to place operands PIM-friendly.

The default field order, LSB to MSB, matches the Fig. 15(a) example::

    | row | col_high | ba | bg | pch | ch | col_low | offset |

* ``offset`` (5 bits) — byte within one 32 B column access;
* ``col_low`` (3 bits) — 8 consecutive columns stay in one bank, so a
  256-byte chunk fills the 8 GRF registers of one unit (Section V-B);
* then the channel/pCH interleave, then bank bits, then the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["DramAddress", "AddressMap"]


@dataclass(frozen=True)
class DramAddress:
    """A fully decoded DRAM location."""

    channel: int
    pch: int
    bg: int
    ba: int
    row: int
    col: int
    offset: int = 0

    @property
    def bank_index(self) -> int:
        return self.bg * 4 + self.ba


@dataclass(frozen=True)
class AddressMap:
    """A configurable physical-to-DRAM address mapping.

    ``field_order`` lists fields from LSB upward; widths are derived from
    the geometry parameters.  ``col_low_bits`` of the column index sit below
    the interleave fields so that small contiguous regions stay inside one
    bank row (the PIM-friendly property Fig. 15(b) relies on).
    """

    channels: int = 1
    pchs: int = 16
    col_bits: int = 5  # 32 columns per 1 KiB row
    row_bits: int = 13
    offset_bits: int = 5  # 32-byte column access
    col_low_bits: int = 3
    field_order: Tuple[str, ...] = (
        "offset",
        "col_low",
        "ch",
        "pch",
        "bg",
        "ba",
        "col_high",
        "row",
    )

    def _widths(self) -> Dict[str, int]:
        return {
            "offset": self.offset_bits,
            "col_low": self.col_low_bits,
            "ch": max(self.channels - 1, 0).bit_length(),
            "pch": max(self.pchs - 1, 0).bit_length(),
            "bg": 2,
            "ba": 2,
            "col_high": self.col_bits - self.col_low_bits,
            "row": self.row_bits,
        }

    @property
    def address_bits(self) -> int:
        return sum(self._widths().values())

    @property
    def capacity_bytes(self) -> int:
        return 1 << self.address_bits

    @property
    def pim_chunk_bytes(self) -> int:
        """Contiguous bytes that land in one bank row: 8 x 32 B = 256 B."""
        return 1 << (self.offset_bits + self.col_low_bits)

    def decode(self, address: int) -> DramAddress:
        """Physical byte address -> DRAM coordinates."""
        if not 0 <= address < self.capacity_bytes:
            raise ValueError(f"address {address:#x} out of range")
        widths = self._widths()
        values: Dict[str, int] = {}
        shift = 0
        for name in self.field_order:
            width = widths[name]
            values[name] = (address >> shift) & ((1 << width) - 1)
            shift += width
        col = (values["col_high"] << self.col_low_bits) | values["col_low"]
        return DramAddress(
            channel=values["ch"],
            pch=values["pch"],
            bg=values["bg"],
            ba=values["ba"],
            row=values["row"],
            col=col,
            offset=values["offset"],
        )

    def encode(self, addr: DramAddress) -> int:
        """DRAM coordinates -> physical byte address (inverse of decode)."""
        widths = self._widths()
        values = {
            "offset": addr.offset,
            "col_low": addr.col & ((1 << self.col_low_bits) - 1),
            "ch": addr.channel,
            "pch": addr.pch,
            "bg": addr.bg,
            "ba": addr.ba,
            "col_high": addr.col >> self.col_low_bits,
            "row": addr.row,
        }
        address = 0
        shift = 0
        for name in self.field_order:
            width = widths[name]
            value = values[name]
            if value >= (1 << width):
                raise ValueError(f"field {name}={value} exceeds {width} bits")
            address |= value << shift
            shift += width
        return address

    def stride_for(self, field_name: str) -> int:
        """Byte stride that increments ``field_name`` by one."""
        shift = 0
        for name in self.field_order:
            if name == field_name:
                return 1 << shift
            shift += self._widths()[name]
        raise KeyError(field_name)
