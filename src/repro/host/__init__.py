"""Host processor substrate: address map, LLC, kernels, thread groups."""

from .cache import Cache, CacheConfig, CacheStats, simulate_gemv_batch
from .kernels import HostKernelResult, HostKernels
from .memmap import AddressMap, DramAddress
from .processor import HostConfig, HostSystem, ThreadGroup
from .writecombine import WriteCombineStats, WriteCombiningBuffer

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "simulate_gemv_batch",
    "HostKernelResult",
    "HostKernels",
    "AddressMap",
    "DramAddress",
    "HostConfig",
    "HostSystem",
    "ThreadGroup",
    "WriteCombineStats",
    "WriteCombiningBuffer",
]
