"""Developer tools: command tracing, stream inspection, trace-ISA interop."""

from .pimulator import (
    PhysicalAddress,
    TraceExecution,
    TraceOp,
    emit_trace,
    execute_trace,
    parse_trace,
    requests_to_trace,
    sample_trace,
)
from .trace import CommandTrace, TraceRecord, trace_channel

__all__ = [
    "CommandTrace",
    "PhysicalAddress",
    "TraceExecution",
    "TraceOp",
    "TraceRecord",
    "emit_trace",
    "execute_trace",
    "parse_trace",
    "requests_to_trace",
    "sample_trace",
    "trace_channel",
]
