"""Developer tools: command tracing and stream inspection."""

from .trace import CommandTrace, TraceRecord, trace_channel

__all__ = ["CommandTrace", "TraceRecord", "trace_channel"]
