"""Command-bus tracing.

Records every command a (PIM-)pseudo-channel receives — cycle, command,
the device's operation mode at that instant — in the spirit of the
FPGA-based bring-up system of Section VI, which existed precisely to watch
and verify the command stream a JEDEC controller sends to PIM-HBM.

Usage::

    from repro.tools import trace_channel

    with trace_channel(system.device.pch(0)) as trace:
        blas.gemv(w, x)
    print(trace.summary())
    for line in trace.lines()[:20]:
        print(line)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from ..dram.commands import Command, CommandType

__all__ = ["TraceRecord", "CommandTrace", "trace_channel"]


@dataclass(frozen=True)
class TraceRecord:
    """One command observed on the CA bus."""

    cycle: int
    command: str
    cmd_type: CommandType
    row: int
    col: int
    mode: str

    def __str__(self) -> str:
        return f"{self.cycle:8d}  {self.mode:12s}  {self.command}"


@dataclass
class CommandTrace:
    """A recorded command stream with summary helpers."""

    records: List[TraceRecord] = field(default_factory=list)

    def lines(self) -> List[str]:
        """Human-readable one-line-per-command rendering."""
        return [str(r) for r in self.records]

    def counts(self) -> Dict[CommandType, int]:
        """Command counts by type."""
        out: Dict[CommandType, int] = {}
        for record in self.records:
            out[record.cmd_type] = out.get(record.cmd_type, 0) + 1
        return out

    def columns_in_mode(self, mode: str) -> int:
        """Column commands observed while the device was in ``mode``."""
        return sum(
            1
            for r in self.records
            if r.cmd_type.is_column and r.mode == mode
        )

    def mode_transitions(self) -> List[str]:
        """The sequence of modes the device moved through."""
        out: List[str] = []
        for record in self.records:
            if not out or out[-1] != record.mode:
                out.append(record.mode)
        return out

    def summary(self) -> str:
        """One-line digest: counts, cycle span, mode sequence."""
        counts = ", ".join(
            f"{ct.value}:{n}" for ct, n in sorted(
                self.counts().items(), key=lambda kv: kv[0].value
            )
        )
        span = (
            f"cycles {self.records[0].cycle}..{self.records[-1].cycle}"
            if self.records
            else "empty"
        )
        return f"{len(self.records)} commands ({counts}); {span}; " \
               f"modes {' -> '.join(self.mode_transitions())}"

    def filter(self, cmd_type: CommandType) -> List[TraceRecord]:
        """Records of one command type."""
        return [r for r in self.records if r.cmd_type is cmd_type]


@contextmanager
def trace_channel(channel: Any) -> Iterator[CommandTrace]:
    """Record every command issued to ``channel`` for the block's duration.

    Works on plain :class:`~repro.dram.pseudochannel.PseudoChannel` and on
    :class:`~repro.pim.device.PimPseudoChannel` (where the current PIM mode
    is attached to each record).
    """
    trace = CommandTrace()
    had_instance_issue = "issue" in vars(channel)
    original_issue = channel.issue

    def recording_issue(cmd: Command, cycle: int):
        mode = getattr(getattr(channel, "mode", None), "value", "dram")
        result = original_issue(cmd, cycle)
        trace.records.append(
            TraceRecord(
                cycle=cycle,
                command=repr(cmd),
                cmd_type=cmd.cmd,
                row=cmd.row,
                col=cmd.col,
                mode=mode,
            )
        )
        return result

    channel.issue = recording_issue
    try:
        yield trace
    finally:
        if had_instance_issue:
            channel.issue = original_issue
        else:
            # Remove the shadowing attribute so the class method shows
            # through again (identity-preserving detach).
            del channel.issue
