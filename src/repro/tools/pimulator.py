"""HBM-PIMulator textual trace frontend: parse, execute, emit.

The simulator ecosystem around PIM-HBM exchanges workloads as plain-text
traces — one device-visible operation per line.  This module makes that
ISA a first-class input *and* output of our stack: external traces
become deterministic regression/load-test vectors executed against our
device model, and our recorded request streams can be emitted back out
in the same ISA for other simulators to consume.

Line forms accepted (comments start ``#``, blank lines are skipped)::

    SB R [PA]             single-bank read at a 35-bit physical address
    SB W [PA]             single-bank write
    R/W GPR [id]          host-side staging register (AiM frontend)
    R/W CFR [id] [data]   configuration register (0 broadcast, 1
                          EWUL_bg, 2 afm)
    R/W MEM [ch] [bank] [row]   direct bank-row access
    AB W                  enter all-bank mode
    PIM <OP> [DST] [SRC0] [SRC1]   one PIM instruction; operands are
                          ``GRF,k`` / ``BANK,k`` / ``SRF,k`` tokens
    PIM NOP|JUMP|EXIT     sequencer control (no architectural effect)
    AiM WR_SBK [gpr] [ch_mask] [bank] [row]
    AiM WR_GB  [opsize] [gpr] [ch_mask]
    AiM WR_BIAS [gpr] [ch_mask]

The 35-bit physical address packs, MSB first::

    [1 Rank][6 Channel][2 Bankgroup][2 Bank][14 Row][5 Column][5 Offset]

with rank 0 addressing the PIM die.  Trace lines carry no data payloads,
so execution synthesises deterministic column data from a running
operation counter — two executions of the same operation sequence are
bit-identical, which is what makes ``execute(parse(emit(parse(t))))``
comparable to ``execute(parse(t))`` by digest.

Malformed lines raise :class:`~repro.errors.PimReplayError` with the
1-based line number.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..dram.timing import TimingParams
from ..errors import PimReplayError
from ..pim import isa
from ..pim.device import PimPseudoChannel
from ..pim.exec_unit import ColumnTrigger
from ..pim.isa import Operand, OperandSpace

__all__ = [
    "PhysicalAddress",
    "TraceOp",
    "TraceExecution",
    "parse_trace",
    "execute_trace",
    "emit_trace",
    "requests_to_trace",
    "sample_trace",
]

# MSB-first field widths of the 35-bit physical address.
_PA_FIELDS: Tuple[Tuple[str, int], ...] = (
    ("rank", 1),
    ("channel", 6),
    ("bankgroup", 2),
    ("bank", 2),
    ("row", 14),
    ("column", 5),
    ("offset", 5),
)
PA_BITS = sum(width for _, width in _PA_FIELDS)


@dataclass(frozen=True)
class PhysicalAddress:
    """One decoded 35-bit HBM-PIMulator physical address."""

    rank: int = 0
    channel: int = 0
    bankgroup: int = 0
    bank: int = 0
    row: int = 0
    column: int = 0
    offset: int = 0

    def encode(self) -> int:
        """Pack back into the 35-bit integer form."""
        value = 0
        for name, width in _PA_FIELDS:
            part = getattr(self, name)
            if not 0 <= part < (1 << width):
                raise PimReplayError(
                    f"PA field {name}={part} does not fit {width} bits"
                )
            value = (value << width) | part
        return value

    @classmethod
    def decode(cls, value: int) -> "PhysicalAddress":
        """Unpack a 35-bit integer physical address."""
        if not 0 <= value < (1 << PA_BITS):
            raise PimReplayError(
                f"physical address {value} does not fit {PA_BITS} bits"
            )
        parts: Dict[str, int] = {}
        shift = PA_BITS
        for name, width in _PA_FIELDS:
            shift -= width
            parts[name] = (value >> shift) & ((1 << width) - 1)
        return cls(**parts)


#: PIM operand spaces a trace may name, and the mnemonics of each class.
_PIM_SPACES = ("GRF", "BANK", "SRF")
_PIM_COMPUTE = ("ADD", "MUL", "MAC", "MAD")
_PIM_MOVE = ("MOV", "FILL")
_PIM_CONTROL = ("NOP", "JUMP", "EXIT")
#: AiM mnemonics with a fixed operand count (others accept any ints).
_AIM_ARITY = {"WR_SBK": 4, "WR_GB": 3, "WR_BIAS": 2}


@dataclass(frozen=True)
class TraceOp:
    """One parsed trace line, lossless for re-emission.

    ``kind`` is the leading token class (``SB``/``GPR``/``CFR``/``MEM``/
    ``AB``/``PIM``/``AiM``); register operands of PIM lines are kept as
    ``(space, index)`` pairs exactly as written.
    """

    kind: str
    rw: Optional[str] = None
    mnemonic: Optional[str] = None
    args: Tuple[int, ...] = ()
    operands: Tuple[Tuple[str, int], ...] = ()

    @property
    def pa(self) -> Optional[PhysicalAddress]:
        """The decoded physical address of an ``SB`` op (else None)."""
        if self.kind == "SB" and self.args:
            return PhysicalAddress.decode(self.args[0])
        return None

    def emit(self) -> str:
        """The canonical text line of this operation."""
        if self.kind == "SB":
            return f"SB {self.rw} {self.args[0]}"
        if self.kind == "AB":
            return f"AB {self.rw}"
        if self.kind in ("GPR", "CFR", "MEM"):
            tail = " ".join(str(a) for a in self.args)
            return f"{self.rw} {self.kind} {tail}".rstrip()
        if self.kind == "PIM":
            tokens = [f"{space},{index}" for space, index in self.operands]
            tokens.extend(str(a) for a in self.args)
            body = " ".join(tokens)
            return f"PIM {self.mnemonic} {body}".rstrip()
        if self.kind == "AiM":
            tail = " ".join(str(a) for a in self.args)
            return f"AiM {self.mnemonic} {tail}".rstrip()
        raise PimReplayError(f"cannot emit trace op kind {self.kind!r}")


def _parse_int(token: str, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise PimReplayError(f"line {lineno}: expected an integer, got {token!r}")


def _parse_operand(token: str, lineno: int) -> Tuple[str, int]:
    space, sep, index = token.partition(",")
    if not sep or space not in _PIM_SPACES:
        raise PimReplayError(
            f"line {lineno}: bad PIM operand {token!r} "
            f"(expected SPACE,INDEX with SPACE in {_PIM_SPACES})"
        )
    return space, _parse_int(index, lineno)


def _parse_line(tokens: List[str], lineno: int) -> TraceOp:
    head = tokens[0]
    if head == "SB":
        if len(tokens) != 3 or tokens[1] not in ("R", "W"):
            raise PimReplayError(f"line {lineno}: expected 'SB R|W <pa>'")
        pa = _parse_int(tokens[2], lineno)
        try:
            PhysicalAddress.decode(pa)  # range check at parse time
        except PimReplayError as exc:
            raise PimReplayError(f"line {lineno}: {exc}")
        return TraceOp("SB", rw=tokens[1], args=(pa,))
    if head == "AB":
        if len(tokens) != 2 or tokens[1] != "W":
            raise PimReplayError(f"line {lineno}: expected 'AB W'")
        return TraceOp("AB", rw="W")
    if head in ("R", "W"):
        if len(tokens) < 2:
            raise PimReplayError(f"line {lineno}: bare {head!r}")
        target = tokens[1]
        raw = [t.strip('"') for t in tokens[2:]]
        args = tuple(_parse_int(t, lineno) for t in raw)
        if target == "GPR" and len(args) == 1:
            return TraceOp("GPR", rw=head, args=args)
        if target == "CFR" and len(args) in (1, 2):
            return TraceOp("CFR", rw=head, args=args)
        if target == "MEM" and len(args) == 3:
            return TraceOp("MEM", rw=head, args=args)
        raise PimReplayError(
            f"line {lineno}: bad {head} {target} operand count"
        )
    if head == "PIM":
        if len(tokens) < 2:
            raise PimReplayError(f"line {lineno}: PIM without a mnemonic")
        mnemonic = tokens[1]
        if mnemonic in _PIM_CONTROL:
            args = tuple(_parse_int(t, lineno) for t in tokens[2:])
            return TraceOp("PIM", mnemonic=mnemonic, args=args)
        if mnemonic not in _PIM_COMPUTE and mnemonic not in _PIM_MOVE:
            raise PimReplayError(
                f"line {lineno}: unknown PIM mnemonic {mnemonic!r}"
            )
        operands = tuple(_parse_operand(t, lineno) for t in tokens[2:])
        expected = 2 if mnemonic in _PIM_MOVE else 3
        if len(operands) != expected:
            raise PimReplayError(
                f"line {lineno}: PIM {mnemonic} takes {expected} operands, "
                f"got {len(operands)}"
            )
        return TraceOp("PIM", mnemonic=mnemonic, operands=operands)
    if head == "AiM":
        if len(tokens) < 2:
            raise PimReplayError(f"line {lineno}: AiM without a mnemonic")
        mnemonic = tokens[1]
        args = tuple(_parse_int(t, lineno) for t in tokens[2:])
        arity = _AIM_ARITY.get(mnemonic)
        if arity is not None and len(args) != arity:
            raise PimReplayError(
                f"line {lineno}: AiM {mnemonic} takes {arity} args, "
                f"got {len(args)}"
            )
        return TraceOp("AiM", mnemonic=mnemonic, args=args)
    raise PimReplayError(f"line {lineno}: unknown trace line head {head!r}")


def parse_trace(text: str) -> List[TraceOp]:
    """Parse a trace body into operations (comments/blank lines skipped)."""
    ops: List[TraceOp] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        ops.append(_parse_line(line.split(), lineno))
    return ops


def emit_trace(ops: Iterable[TraceOp]) -> str:
    """The canonical text form of ``ops`` (one line each, trailing \\n)."""
    lines = [op.emit() for op in ops]
    return "\n".join(lines) + ("\n" if lines else "")


# -- execution --------------------------------------------------------------------


def _map_operand(
    mnemonic: str, position: int, space: str, index: int
) -> Operand:
    """One trace operand token as a device ISA operand.

    ``GRF,k`` maps to GRF_A (k < 8) or GRF_B (k - 8); ``BANK,k`` maps to
    the even/odd bank of the pair by parity; ``SRF,k`` maps to the
    adder-side SRF_A for ADD and the multiplier-side SRF_M elsewhere
    (the Table II legality split of the device ISA).
    """
    if space == "GRF":
        if 0 <= index < isa.GRF_REGS:
            return Operand(OperandSpace.GRF_A, index)
        if index < 2 * isa.GRF_REGS:
            return Operand(OperandSpace.GRF_B, index - isa.GRF_REGS)
        raise PimReplayError(f"GRF index {index} out of range")
    if space == "BANK":
        return Operand(
            OperandSpace.EVEN_BANK if index % 2 == 0 else OperandSpace.ODD_BANK,
            0,
        )
    # SRF: the destination slot never takes an SRF, so position > 0 here.
    if not 0 <= index < isa.SRF_REGS:
        raise PimReplayError(f"SRF index {index} out of range")
    if mnemonic == "ADD":
        return Operand(OperandSpace.SRF_A, index)
    return Operand(OperandSpace.SRF_M, index)


def _pim_instruction(op: TraceOp) -> Optional[isa.Instruction]:
    """The device instruction of one PIM trace line (None for control)."""
    mnemonic = op.mnemonic
    if mnemonic in _PIM_CONTROL:
        return None
    mapped = [
        _map_operand(mnemonic, i, space, index)
        for i, (space, index) in enumerate(op.operands)
    ]
    try:
        if mnemonic == "MOV":
            return isa.mov(mapped[0], mapped[1])
        if mnemonic == "FILL":
            return isa.fill(mapped[0], mapped[1])
        if mnemonic == "ADD":
            return isa.add(mapped[0], mapped[1], mapped[2])
        if mnemonic == "MUL":
            return isa.mul(mapped[0], mapped[1], mapped[2])
        if mnemonic == "MAC":
            return isa.mac(mapped[0], mapped[1], mapped[2])
        # MAD: src2 carries the addend from the adder-side SRF at the
        # same index as src1 (the ISA's SRC1# == SRC2# constraint).
        src2_space = (
            OperandSpace.SRF_A
            if mapped[2].space in (OperandSpace.SRF_M, OperandSpace.SRF_A)
            else mapped[2].space
        )
        return isa.mad(
            mapped[0], mapped[1], mapped[2], Operand(src2_space, mapped[2].index)
        )
    except (ValueError, PimReplayError) as exc:
        raise PimReplayError(f"illegal PIM {mnemonic} operands: {exc}")


class TraceExecution:
    """Executes parsed trace operations against the PIM device model.

    Channels are materialised lazily as :class:`PimPseudoChannel`
    replicas (trace channel ids fold modulo ``channels``); PIM lines run
    on unit 0 of channel 0 through the real CRF-programmed sequencer
    path, at the row/column cursor of the most recent bank access.
    ``state_digest()`` summarises every device-visible effect — bank
    contents, register files, GPR/CFR/global-buffer state, and the bytes
    every read returned — so two executions agree iff the device agrees.
    """

    def __init__(self, channels: int = 2):
        if channels < 1:
            raise PimReplayError("need at least one trace channel")
        self.channels = int(channels)
        self._timing = TimingParams()
        self._pchs: Dict[int, PimPseudoChannel] = {}
        self._gpr: Dict[int, np.ndarray] = {}
        self._cfr: Dict[int, int] = {}
        self._gb: Dict[int, np.ndarray] = {}
        self._bias: Dict[int, np.ndarray] = {}
        self._hash = hashlib.sha1()
        self._counter = 0
        self._row = 0
        self._col = 0
        self.all_bank = False
        self.executed = 0
        self.pim_instructions = 0

    # -- plumbing ---------------------------------------------------------------

    def _pch(self, channel: int) -> PimPseudoChannel:
        index = channel % self.channels
        pch = self._pchs.get(index)
        if pch is None:
            pch = PimPseudoChannel(self._timing)
            self._pchs[index] = pch
        return pch

    def _bank(self, channel: int, bank: int):
        pch = self._pch(channel)
        return pch.banks[bank % len(pch.banks)]

    def _synth(self) -> np.ndarray:
        """Deterministic 32-byte column payload for the next write.

        Small-integer FP16 lanes (exact, no rounding surprises) derived
        from the running op counter — the only entropy source, so equal
        operation sequences produce equal device state.
        """
        seed = hashlib.sha1(f"pimulator:{self._counter}".encode()).digest()
        self._counter += 1
        lanes = np.array(
            [(seed[i] % 17) - 8 for i in range(16)], dtype=np.float16
        )
        return lanes.view(np.uint8).copy()

    def _fold(self, tag: str, payload: Any) -> None:
        self._hash.update(tag.encode())
        self._hash.update(np.asarray(payload).tobytes())

    # -- execution --------------------------------------------------------------

    def execute(self, ops: Iterable[TraceOp]) -> "TraceExecution":
        """Execute every op in order against the device model; returns self."""
        for op in ops:
            self._execute_one(op)
            self.executed += 1
        return self

    def _execute_one(self, op: TraceOp) -> None:
        if op.kind == "SB":
            pa = op.pa
            bank = self._bank(
                pa.channel, pa.bankgroup * 2 + pa.bank
            )
            row = pa.row % bank.config.num_rows
            col = pa.column % bank.config.cols_per_row
            if op.rw == "W":
                bank.poke(row, col, self._synth())
            else:
                self._fold("sb", bank.peek(row, col))
            self._row, self._col = row, col
            return
        if op.kind == "MEM":
            channel, bank_index, row = op.args
            bank = self._bank(channel, bank_index)
            row %= bank.config.num_rows
            if op.rw == "W":
                bank.poke(row, 0, self._synth())
            else:
                self._fold("mem", bank.peek(row, 0))
            self._row, self._col = row, 0
            return
        if op.kind == "GPR":
            (index,) = op.args
            if op.rw == "W":
                self._gpr[index] = self._synth()
            else:
                self._fold("gpr", self._gpr.get(index, np.zeros(32, np.uint8)))
            return
        if op.kind == "CFR":
            index = op.args[0]
            if op.rw == "W":
                self._cfr[index] = op.args[1] if len(op.args) > 1 else 0
            else:
                self._fold("cfr", self._cfr.get(index, 0))
            return
        if op.kind == "AB":
            self.all_bank = True
            return
        if op.kind == "PIM":
            self._execute_pim(op)
            return
        if op.kind == "AiM":
            self._execute_aim(op)
            return
        raise PimReplayError(f"cannot execute trace op kind {op.kind!r}")

    def _execute_pim(self, op: TraceOp) -> None:
        instr = _pim_instruction(op)
        if instr is None:
            return  # sequencer control: no architectural effect here
        unit = self._pch(0).units[0]
        unit.regs.crf[0] = isa.encode(instr)
        unit.regs.crf[1] = isa.encode(isa.exit_())
        unit.start()
        trig = ColumnTrigger(
            is_write=instr.dst.space.is_bank,
            row=self._row,
            col=self._col,
        )
        unit.trigger(trig)
        self.pim_instructions += 1

    def _execute_aim(self, op: TraceOp) -> None:
        mnemonic = op.mnemonic
        if mnemonic == "WR_SBK":
            gpr, ch_mask, bank_index, row = op.args
            data = self._gpr.get(gpr)
            if data is None:
                data = np.zeros(32, np.uint8)
            for channel in range(self.channels):
                if ch_mask & (1 << channel):
                    bank = self._bank(channel, bank_index)
                    bank.poke(row % bank.config.num_rows, 0, data.copy())
            return
        if mnemonic == "WR_GB":
            _opsize, gpr, ch_mask = op.args
            data = self._gpr.get(gpr, np.zeros(32, np.uint8))
            for channel in range(self.channels):
                if ch_mask & (1 << channel):
                    self._gb[channel] = data.copy()
            return
        if mnemonic == "WR_BIAS":
            gpr, ch_mask = op.args
            data = self._gpr.get(gpr, np.zeros(32, np.uint8))
            for channel in range(self.channels):
                if ch_mask & (1 << channel):
                    self._bias[channel] = data.copy()
            return
        # Unmodelled AiM extension op: deterministic no-op, folded so it
        # still participates in the digest (order matters).
        self._fold(f"aim:{mnemonic}", np.array(op.args, dtype=np.int64))

    # -- results ----------------------------------------------------------------

    def state_digest(self) -> str:
        """Hex digest over every device-visible effect of the execution."""
        digest = self._hash.copy()
        for index in sorted(self._pchs):
            pch = self._pchs[index]
            for b, bank in enumerate(pch.banks):
                for row in bank.materialized_rows():
                    digest.update(f"bank:{index}:{b}:{row}".encode())
                    for col in range(bank.config.cols_per_row):
                        digest.update(bank.peek(row, col).tobytes())
            for u, unit in enumerate(pch.units):
                digest.update(f"unit:{index}:{u}".encode())
                digest.update(unit.regs.grf_a.tobytes())
                digest.update(unit.regs.grf_b.tobytes())
                digest.update(unit.regs.srf_m.tobytes())
                digest.update(unit.regs.srf_a.tobytes())
        for store, tag in ((self._gpr, "gpr"), (self._gb, "gb"),
                           (self._bias, "bias")):
            for index in sorted(store):
                digest.update(f"{tag}:{index}".encode())
                digest.update(np.asarray(store[index]).tobytes())
        for index in sorted(self._cfr):
            digest.update(f"cfr:{index}:{self._cfr[index]}".encode())
        return digest.hexdigest()


def execute_trace(
    ops: Iterable[TraceOp], channels: int = 2
) -> TraceExecution:
    """Execute parsed trace operations; returns the finished execution."""
    return TraceExecution(channels=channels).execute(ops)


# -- our requests in their ISA ----------------------------------------------------


def requests_to_trace(requests: Iterable[Any]) -> List[TraceOp]:
    """Emit a recorded request stream as HBM-PIMulator trace operations.

    This is a *load-vector* translation, not a cycle transcript: each
    request becomes the staging writes plus the PIM instruction pattern
    its operator class issues on the device (GEMV: weight rows + MAC per
    column chunk; elementwise: operand stage + one ALU op), deterministic
    in the request's position and shapes, so the emitted trace exercises
    the same device paths with the same command mix.
    """
    ops: List[TraceOp] = []
    for rid, request in enumerate(requests):
        op_name = getattr(request, "op", "gemv")
        a = getattr(request, "a", None)
        weights = getattr(request, "weights", None)
        ops.append(TraceOp("CFR", rw="W", args=(0, rid % 256)))
        if op_name == "gemv" and weights is not None:
            chunks = min(8, max(1, (weights.shape[1] + 15) // 16))
            for c in range(chunks):
                row = (rid * 8 + c) % 8192
                ops.append(TraceOp("MEM", rw="W", args=(rid % 4, c % 4, row)))
                pa = PhysicalAddress(
                    rank=0, channel=rid % 4, bankgroup=c % 4 // 2,
                    bank=c % 2, row=row, column=c % 32,
                ).encode()
                ops.append(TraceOp("SB", rw="R", args=(pa,)))
                ops.append(
                    TraceOp(
                        "PIM", mnemonic="MAC",
                        operands=(("GRF", 0), ("BANK", c % 4), ("SRF", 0)),
                    )
                )
            ops.append(TraceOp("GPR", rw="R", args=(rid % 16,)))
            continue
        size = int(np.asarray(a).size) if a is not None else 16
        chunks = min(4, max(1, (size + 15) // 16))
        mnemonic = {"add": "ADD", "mul": "MUL", "bn": "MAD"}.get(op_name, "MOV")
        ops.append(TraceOp("GPR", rw="W", args=(rid % 16,)))
        for c in range(chunks):
            row = (rid * 4 + c) % 8192
            pa = PhysicalAddress(
                rank=0, channel=rid % 4, bankgroup=0, bank=c % 4 // 2,
                row=row, column=c % 32,
            ).encode()
            ops.append(TraceOp("SB", rw="R", args=(pa,)))
            if mnemonic == "MOV":
                operands = (("GRF", c % 8), ("BANK", c % 2))
            else:
                operands = (("GRF", c % 8), ("BANK", c % 2), ("SRF", c % 8))
            ops.append(TraceOp("PIM", mnemonic=mnemonic, operands=operands))
    return ops


def sample_trace() -> str:
    """An ``all_inst.trace``-style sample covering every line form."""
    pa_w = PhysicalAddress(rank=0, channel=1, bankgroup=1, bank=0,
                           row=12, column=3).encode()
    pa_r = PhysicalAddress(rank=0, channel=0, bankgroup=0, bank=1,
                           row=8, column=1).encode()
    return "\n".join(
        [
            "# all_inst-style sample: every line form of the frontend",
            "W CFR 0 1",
            "W GPR 0",
            "W GPR 1",
            "W MEM 0 2 8",
            "R MEM 0 2 8",
            f"SB W {pa_w}",
            f"SB R {pa_r}",
            "AB W",
            "PIM MOV GRF,0 BANK,0",
            "PIM FILL GRF,1 BANK,1",
            "PIM ADD GRF,0 BANK,1 SRF,1",
            "PIM MUL GRF,1 BANK,0 SRF,2",
            "PIM MAC GRF,0 BANK,0 SRF,0",
            "PIM MAD GRF,2 GRF,0 SRF,3",
            "PIM NOP",
            "PIM JUMP 2 4",
            "PIM EXIT",
            "AiM WR_SBK 0 1 0 0",
            "AiM WR_GB 2 2 15",
            "AiM WR_BIAS 4 15",
            "R GPR 0",
            "R CFR 0 0",
        ]
    ) + "\n"
