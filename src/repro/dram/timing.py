"""JEDEC HBM2 timing parameters.

All parameters are expressed in cycles of the command/address (CA) clock
(1 tCK).  The HBM2 CA clock runs at the external clock frequency
(1.0-1.2 GHz per Table V); data is transferred DDR, so a 256-bit (32 B)
pseudo-channel access completes as a burst of 4 64-bit beats in 2 tCK.

The values below follow JESD235 and the 20nm HBM2 die the paper builds on
[Sohn et al., JSSC 2017].  They are deliberately configurable: the paper's
Section III-B argument that AB-mode compute bandwidth scales with
``num_banks * tCCD_S / tCCD_L`` (×8, not ×16) is exercised directly by tests
that vary ``tccd_s``/``tccd_l``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "TimingParams",
    "HBM2_1GHZ",
    "HBM2_1P2GHZ",
    "DDR4_3200",
    "LPDDR4_4266",
    "GDDR6_14",
    "DRAM_FAMILIES",
]


@dataclass(frozen=True)
class TimingParams:
    """DRAM timing parameters in CA-clock cycles (tCK), plus the period.

    Attributes:
        tck_ns: CA clock period in nanoseconds.
        trcd: ACT to internal RD/WR delay.
        trp: PRE to ACT delay (same bank).
        tras: ACT to PRE delay (same bank).
        trc: ACT to ACT delay (same bank), normally tras + trp.
        tccd_s: column-to-column delay, different bank groups.
        tccd_l: column-to-column delay, same bank group.
        trrd_s: ACT to ACT, different bank groups.
        trrd_l: ACT to ACT, same bank group.
        tfaw: four-activate window.
        twr: write recovery (end of write burst to PRE).
        trtp: read to PRE delay.
        twtr: end of write burst to read command (bus turnaround).
        trtw: read command to write command (bus turnaround).
        cl: read (CAS) latency.
        cwl: write (CAS write) latency.
        burst_cycles: cycles occupied on the data bus by one column burst.
        trefi: average refresh interval.
        trfc: refresh cycle time.
    """

    tck_ns: float = 1.0
    trcd: int = 14
    trp: int = 14
    tras: int = 34
    trc: int = 48
    tccd_s: int = 2
    tccd_l: int = 4
    trrd_s: int = 4
    trrd_l: int = 6
    tfaw: int = 16
    twr: int = 16
    trtp: int = 5
    twtr: int = 8
    trtw: int = 4
    cl: int = 14
    cwl: int = 4
    burst_cycles: int = 2
    trefi: int = 3900
    trfc: int = 350

    def scaled_to(self, freq_ghz: float) -> "TimingParams":
        """Same cycle counts at a different CA clock frequency."""
        return replace(self, tck_ns=1.0 / freq_ghz)

    @property
    def column_cadence_ab(self) -> int:
        """Column-command cadence in AB mode.

        In all-bank mode every column command hits every bank group, so the
        same-bank-group constraint tCCD_L governs (Section III-B).
        """
        return self.tccd_l

    @property
    def ab_bandwidth_factor(self) -> float:
        """On-chip bandwidth gain of AB mode over the off-chip interface.

        num_banks_per_unit-pair banks transfer per command but the cadence
        slows from tCCD_S to tCCD_L; with 8 operating banks per pCH this is
        the paper's x4 on-chip/off-chip ratio (Table V).
        """
        return 8 * self.tccd_s / self.tccd_l


HBM2_1GHZ = TimingParams()
HBM2_1P2GHZ = TimingParams().scaled_to(1.2)

# -- other JEDEC DRAM families -----------------------------------------------
#
# Section III: "Although it is illustrated based on HBM2 in this paper, it is
# applicable to any standard DRAM such as DDR, LPDDR, and GDDR DRAM with a
# few changes."  These presets carry representative timing at each family's
# command clock so the cross-family study (benchmarks/bench_dram_families.py)
# can quantify what bank-level PIM buys on each substrate.  Cycle counts are
# derived from typical datasheet nanosecond values at the stated tCK.

# DDR4-3200: 1.6 GHz command clock, tCK 0.625 ns.
DDR4_3200 = TimingParams(
    tck_ns=0.625,
    trcd=22, trp=22, tras=52, trc=74,
    tccd_s=4, tccd_l=8,
    trrd_s=8, trrd_l=10, tfaw=34,
    twr=24, trtp=12, twtr=12, trtw=8,
    cl=22, cwl=16, burst_cycles=4,
    trefi=12480, trfc=560,
)

# LPDDR4X-4266: 2.13 GHz command clock, tCK 0.469 ns; mobile-class core
# timings are slower in cycles.
LPDDR4_4266 = TimingParams(
    tck_ns=0.469,
    trcd=39, trp=39, tras=91, trc=130,
    tccd_s=8, tccd_l=8,  # LPDDR4 has no bank groups: a single tCCD
    trrd_s=22, trrd_l=22, tfaw=85,
    twr=39, trtp=17, twtr=22, trtw=14,
    cl=36, cwl=18, burst_cycles=8,
    trefi=8300, trfc=594,
)

# GDDR6-14Gbps: 1.75 GHz command clock, tCK 0.571 ns.
GDDR6_14 = TimingParams(
    tck_ns=0.571,
    trcd=25, trp=25, tras=56, trc=81,
    tccd_s=2, tccd_l=4,
    trrd_s=8, trrd_l=10, tfaw=40,
    twr=28, trtp=4, twtr=9, trtw=5,
    cl=25, cwl=8, burst_cycles=4,
    trefi=6650, trfc=490,
)

DRAM_FAMILIES = {
    "HBM2": HBM2_1P2GHZ,
    "DDR4-3200": DDR4_3200,
    "LPDDR4X-4266": LPDDR4_4266,
    "GDDR6-14": GDDR6_14,
}
