"""A DRAM bank: cell array, row buffer, and per-bank timing state.

The bank is the unit the PIM architecture deliberately leaves untouched
(design philosophy (2) in Section III-A): it is a plain state machine with a
sparse backing store.  Timing legality is enforced here for per-bank
constraints (tRCD/tRP/tRAS/tRC/tWR/tRTP); shared-resource constraints
(tCCD/tRRD/tFAW/bus turnaround) live in the pseudo-channel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import PimChannelError
from .timing import TimingParams

__all__ = ["BankState", "BankConfig", "Bank", "TimingViolation"]


class TimingViolation(Exception):
    """A command was issued before the bank/channel allowed it."""


class BankState(enum.Enum):
    """Row-buffer state of one bank."""
    IDLE = "idle"  # no open row
    ACTIVE = "active"  # a row is open in the row buffer


@dataclass(frozen=True)
class BankConfig:
    """Geometry of one bank (per pseudo-channel slice).

    Defaults model a 4 Gb PIM-HBM die slice: 1 KiB row per pCH-bank,
    32-byte columns (one 256-bit access), 8192 rows.
    """

    num_rows: int = 8192
    row_bytes: int = 1024
    col_bytes: int = 32

    @property
    def cols_per_row(self) -> int:
        return self.row_bytes // self.col_bytes


class Bank:
    """One DRAM bank with a sparse row store and timing bookkeeping."""

    def __init__(self, config: BankConfig, timing: TimingParams):
        self.config = config
        self.timing = timing
        self.state = BankState.IDLE
        self.open_row: Optional[int] = None
        # Sparse backing store: rows are materialised on first touch.
        self._rows: Dict[int, np.ndarray] = {}
        # Row buffer is a *view* semantics model: reads/writes while a row is
        # open go straight to the row array (restore-on-write DRAM cells).
        # Earliest cycles at which each command class may issue.
        self.next_act = 0
        self.next_pre = 0
        self.next_rd = 0
        self.next_wr = 0
        # Statistics.
        self.act_count = 0
        self.rd_count = 0
        self.wr_count = 0
        # Hard-failure flag (fault injection): set to the owning channel's
        # index when the whole pseudo-channel is declared dead.
        self._failed_channel: Optional[int] = None

    # -- fault state --------------------------------------------------------

    def fail(self, channel_index: int) -> None:
        """Hard-fail this bank: every subsequent data access raises
        :class:`~repro.errors.PimChannelError` naming ``channel_index``."""
        self._failed_channel = channel_index

    @property
    def is_failed(self) -> bool:
        """Whether this bank belongs to a hard-failed channel."""
        return self._failed_channel is not None

    # -- backing store ------------------------------------------------------

    def _row_array(self, row: int) -> np.ndarray:
        if self._failed_channel is not None:
            raise PimChannelError(
                f"data access to a bank of failed channel {self._failed_channel}",
                channels=(self._failed_channel,),
            )
        if row < 0 or row >= self.config.num_rows:
            raise IndexError(f"row {row} out of range")
        array = self._rows.get(row)
        if array is None:
            array = np.zeros(self.config.row_bytes, dtype=np.uint8)
            self._rows[row] = array
        return array

    def peek(self, row: int, col: int) -> np.ndarray:
        """Read a column without any state/timing effect (testing/debug)."""
        start = col * self.config.col_bytes
        return self._row_array(row)[start : start + self.config.col_bytes].copy()

    def poke(self, row: int, col: int, data: np.ndarray) -> None:
        """Write a column directly, bypassing the command path (test setup)."""
        data = np.asarray(data, dtype=np.uint8)
        if data.size != self.config.col_bytes:
            raise ValueError(f"column write must be {self.config.col_bytes} bytes")
        start = col * self.config.col_bytes
        self._row_array(row)[start : start + self.config.col_bytes] = data

    def peek_columns(self, row: int, cols: np.ndarray) -> np.ndarray:
        """Read several columns of one row at once: ``(len(cols), col_bytes)``.

        The bulk counterpart of :meth:`peek` used by the trace-compiled
        fused executor (:mod:`repro.pim.fused`): one gather replaces a
        Python-level loop of single-column peeks.  Like :meth:`peek` it has
        no state or timing effect and returns a fresh copy.
        """
        grid = self._row_array(row).reshape(
            self.config.cols_per_row, self.config.col_bytes
        )
        return grid[cols].copy() if isinstance(cols, np.ndarray) else grid[list(cols)].copy()

    def poke_columns(self, row: int, cols: np.ndarray, data: np.ndarray) -> None:
        """Write several columns of one row at once (bulk :meth:`poke`).

        ``data`` must be ``(len(cols), col_bytes)`` uint8; duplicate column
        indices are rejected by the caller (the fused compiler splits
        groups with repeated columns), so scatter order never matters.
        """
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[1] != self.config.col_bytes:
            raise ValueError(f"column writes must be {self.config.col_bytes} bytes each")
        grid = self._row_array(row).reshape(
            self.config.cols_per_row, self.config.col_bytes
        )
        grid[cols] = data

    def materialized_rows(self) -> List[int]:
        """Row indices holding live (ever-written) data, sorted.

        The fault injector and the ECC scrubber walk only these: an
        unmaterialised row is all-zero and (with ``encode(0) == 0``)
        trivially consistent.
        """
        return sorted(self._rows)

    def flip_bit(self, row: int, bit: int) -> None:
        """Flip one stored data bit of ``row`` (fault injection).

        ``bit`` indexes the whole row (``row_bytes * 8`` bits).  Check
        bits, where present, are deliberately left untouched — that is
        what makes the flip an *error*.
        """
        if not 0 <= bit < self.config.row_bytes * 8:
            raise ValueError("bit index out of row range")
        self._row_array(row)[bit // 8] ^= 1 << (bit % 8)

    # -- timing queries -------------------------------------------------------

    def earliest_act(self) -> int:
        """Earliest cycle an ACT may issue (tRC/tRP bound)."""
        return self.next_act

    def earliest_pre(self) -> int:
        """Earliest cycle a PRE may issue (tRAS/tWR/tRTP bound)."""
        return self.next_pre

    def earliest_col(self, is_write: bool) -> int:
        """Earliest cycle a column command may issue (tRCD bound)."""
        return self.next_wr if is_write else self.next_rd

    # -- command execution ----------------------------------------------------

    def activate(self, row: int, cycle: int) -> None:
        """Open ``row`` into the row buffer (ACT)."""
        if self.state is not BankState.IDLE:
            raise TimingViolation("ACT to a bank with an open row")
        if cycle < self.next_act:
            raise TimingViolation(f"ACT at {cycle} before tRC/tRP bound {self.next_act}")
        t = self.timing
        self.state = BankState.ACTIVE
        self.open_row = row
        self.next_rd = max(self.next_rd, cycle + t.trcd)
        self.next_wr = max(self.next_wr, cycle + t.trcd)
        self.next_pre = max(self.next_pre, cycle + t.tras)
        self.next_act = max(self.next_act, cycle + t.trc)
        self.act_count += 1

    def precharge(self, cycle: int) -> None:
        """Close the open row (PRE).  PRE to an idle bank is a NOP."""
        if self.state is BankState.IDLE:
            return
        if cycle < self.next_pre:
            raise TimingViolation(f"PRE at {cycle} before bound {self.next_pre}")
        t = self.timing
        self.state = BankState.IDLE
        self.open_row = None
        self.next_act = max(self.next_act, cycle + t.trp)

    def force_precharge(self, cycle: int) -> None:
        """Close the bank unconditionally (channel-recovery path).

        Unlike :meth:`precharge` this ignores the tRAS/tWR/tRTP bound —
        the recovery sequence models a driver that waits out the worst
        case, so the next ACT is simply pushed past ``cycle + tRP``.
        """
        self.state = BankState.IDLE
        self.open_row = None
        self.next_act = max(self.next_act, cycle + self.timing.trp)

    def read(self, row: int, col: int, cycle: int) -> np.ndarray:
        """Column read; returns the 32-byte burst.

        ``row`` must match the open row — the model checks what silicon
        simply assumes, surfacing controller bugs loudly.
        """
        self._check_column(row, cycle, is_write=False)
        t = self.timing
        # Read-to-precharge constraint.
        self.next_pre = max(self.next_pre, cycle + t.trtp)
        self.rd_count += 1
        return self.peek(row, col)

    def write(self, row: int, col: int, data: np.ndarray, cycle: int) -> None:
        """Column write of a 32-byte burst."""
        self._check_column(row, cycle, is_write=True)
        t = self.timing
        # Write recovery before precharge.
        self.next_pre = max(self.next_pre, cycle + t.cwl + t.burst_cycles + t.twr)
        self.wr_count += 1
        self.poke(row, col, data)

    def touch_column(self, row: int, cycle: int, is_write: bool) -> None:
        """Apply the state/timing effects of a column command without moving
        data through the host datapath.

        Used in AB-PIM mode, where the column command's data flow is governed
        by the PIM instruction (the execution unit peeks/pokes the row buffer
        itself) but the bank-level timing behaviour is identical to a normal
        access.
        """
        self._check_column(row, cycle, is_write)
        t = self.timing
        if is_write:
            self.next_pre = max(self.next_pre, cycle + t.cwl + t.burst_cycles + t.twr)
        else:
            self.next_pre = max(self.next_pre, cycle + t.trtp)

    def _check_column(self, row: int, cycle: int, is_write: bool) -> None:
        if self.state is not BankState.ACTIVE:
            raise TimingViolation("column command to a bank with no open row")
        if self.open_row != row:
            raise TimingViolation(
                f"column command to row {row} but row {self.open_row} is open"
            )
        bound = self.next_wr if is_write else self.next_rd
        if cycle < bound:
            raise TimingViolation(f"column command at {cycle} before bound {bound}")
