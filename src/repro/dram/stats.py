"""Aggregated command statistics across pseudo-channels.

The energy model (:mod:`repro.perf.energy`) consumes these counters: each
command class maps to component energies (cell, IOSA/decoder, global bus,
PHY, PIM unit) following the Fig. 11 breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from .commands import CommandType
from .pseudochannel import PseudoChannel

__all__ = ["CommandStats", "collect_stats"]


@dataclass
class CommandStats:
    """Command counts plus derived byte counts for one or more channels."""

    counts: Dict[CommandType, int] = field(
        default_factory=lambda: {ct: 0 for ct in CommandType}
    )
    col_bytes: int = 32

    def add(self, other: "CommandStats") -> "CommandStats":
        """Accumulate another counter set into this one."""
        for ct, n in other.counts.items():
            self.counts[ct] = self.counts.get(ct, 0) + n
        return self

    @property
    def activates(self) -> int:
        return self.counts.get(CommandType.ACT, 0)

    @property
    def reads(self) -> int:
        return self.counts.get(CommandType.RD, 0)

    @property
    def writes(self) -> int:
        return self.counts.get(CommandType.WR, 0)

    @property
    def column_commands(self) -> int:
        return self.reads + self.writes

    @property
    def bytes_transferred(self) -> int:
        """Bytes moved over the column datapath (one burst per column cmd)."""
        return self.column_commands * self.col_bytes


def collect_stats(channels: Iterable[PseudoChannel]) -> CommandStats:
    """Sum command counters over a set of pseudo-channels."""
    total = CommandStats()
    for channel in channels:
        partial = CommandStats(counts=dict(channel.cmd_counts))
        partial.col_bytes = channel.bank_config.col_bytes
        total.col_bytes = channel.bank_config.col_bytes
        total.add(partial)
    return total
