"""A pseudo-channel: 4 bank groups x 4 banks behind one CA/data bus.

The pseudo-channel owns all *shared-resource* timing constraints: column
cadence (tCCD_S/tCCD_L), activate spacing (tRRD_S/tRRD_L, tFAW), and data-bus
turnaround (tWTR/tRTW).  It also models the middle control logic that decodes
a CA pair and routes it to the target bank (Section II-B).

:class:`repro.pim.device.PimPseudoChannel` subclasses this to add all-bank
broadcast and PIM instruction triggering; the command interface — the JEDEC
boundary — is identical in both.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Type

import numpy as np

from .bank import Bank, BankConfig, TimingViolation
from .commands import Command, CommandType
from .timing import TimingParams

__all__ = ["PseudoChannel", "BANK_GROUPS", "BANKS_PER_GROUP", "BANKS_PER_PCH"]

BANK_GROUPS = 4
BANKS_PER_GROUP = 4
BANKS_PER_PCH = BANK_GROUPS * BANKS_PER_GROUP


class PseudoChannel:
    """One HBM2 pseudo-channel with 16 banks and shared-bus timing."""

    def __init__(
        self,
        timing: TimingParams,
        bank_config: Optional[BankConfig] = None,
        bank_cls: Type[Bank] = Bank,
    ):
        self.timing = timing
        self.bank_config = bank_config or BankConfig()
        self.banks: List[Bank] = [
            bank_cls(self.bank_config, timing) for _ in range(BANKS_PER_PCH)
        ]
        # Shared-resource history.
        self._last_col_cycle: Optional[int] = None
        self._last_col_bg: Optional[int] = None
        self._last_col_was_write = False
        self._last_act_cycle: Optional[int] = None
        self._last_act_bg: Optional[int] = None
        self._act_window: Deque[int] = deque(maxlen=4)  # for tFAW
        # Statistics.
        self.cmd_counts = {ct: 0 for ct in CommandType}

    # -- helpers ------------------------------------------------------------

    def bank(self, bg: int, ba: int) -> Bank:
        """The bank addressed by (bank group, bank)."""
        return self.banks[bg * BANKS_PER_GROUP + ba]

    def hard_reset(self, cycle: int) -> None:
        """Force every bank closed (channel-recovery path).

        Models the driver's recovery sequence after a mid-kernel fault: a
        worst-case wait followed by PREA.  Timing legality is not
        re-checked; each bank's next ACT is pushed past ``cycle + tRP``.
        """
        for bank in self.banks:
            bank.force_precharge(cycle)

    def _col_bus_bound(self, cmd: Command) -> int:
        """Earliest cycle for a column command given shared-bus history."""
        t = self.timing
        bound = 0
        if self._last_col_cycle is not None:
            same_bg = self._last_col_bg == cmd.bg
            ccd = t.tccd_l if same_bg else t.tccd_s
            bound = self._last_col_cycle + ccd
            is_write = cmd.cmd is CommandType.WR
            if self._last_col_was_write and not is_write:
                # End of write burst to read command.
                bound = max(
                    bound,
                    self._last_col_cycle + t.cwl + t.burst_cycles + t.twtr,
                )
            elif not self._last_col_was_write and is_write:
                bound = max(bound, self._last_col_cycle + t.trtw)
        return bound

    def _act_bus_bound(self, cmd: Command) -> int:
        """Earliest cycle for an ACT given tRRD and tFAW history."""
        t = self.timing
        bound = 0
        if self._last_act_cycle is not None:
            same_bg = self._last_act_bg == cmd.bg
            bound = self._last_act_cycle + (t.trrd_l if same_bg else t.trrd_s)
        if len(self._act_window) == self._act_window.maxlen:
            bound = max(bound, self._act_window[0] + t.tfaw)
        return bound

    # -- command interface ----------------------------------------------------

    def earliest_issue(self, cmd: Command) -> int:
        """Earliest legal issue cycle for ``cmd`` (bank + shared bounds)."""
        if cmd.cmd is CommandType.ACT:
            bank_bound = self.bank(cmd.bg, cmd.ba).earliest_act()
            return max(bank_bound, self._act_bus_bound(cmd))
        if cmd.cmd is CommandType.PRE:
            return self.bank(cmd.bg, cmd.ba).earliest_pre()
        if cmd.cmd is CommandType.PREA:
            return max(bank.earliest_pre() for bank in self.banks)
        if cmd.cmd.is_column:
            is_write = cmd.cmd is CommandType.WR
            bank_bound = self.bank(cmd.bg, cmd.ba).earliest_col(is_write)
            return max(bank_bound, self._col_bus_bound(cmd))
        if cmd.cmd is CommandType.REF:
            return max(bank.earliest_act() for bank in self.banks)
        raise ValueError(f"unhandled command {cmd.cmd}")

    def issue(self, cmd: Command, cycle: int) -> Optional[np.ndarray]:
        """Issue ``cmd`` at ``cycle``; returns read data for RD commands."""
        if cycle < self.earliest_issue(cmd):
            raise TimingViolation(
                f"{cmd!r} at {cycle} before bound {self.earliest_issue(cmd)}"
            )
        self.cmd_counts[cmd.cmd] += 1
        if cmd.cmd is CommandType.ACT:
            self.bank(cmd.bg, cmd.ba).activate(cmd.row, cycle)
            self._record_act(cmd.bg, cycle)
            return None
        if cmd.cmd is CommandType.PRE:
            self.bank(cmd.bg, cmd.ba).precharge(cycle)
            return None
        if cmd.cmd is CommandType.PREA:
            for bank in self.banks:
                bank.precharge(cycle)
            return None
        if cmd.cmd is CommandType.RD:
            data = self.bank(cmd.bg, cmd.ba).read(cmd.row, cmd.col, cycle)
            self._record_col(cmd.bg, cycle, is_write=False)
            return data
        if cmd.cmd is CommandType.WR:
            if cmd.data is None:
                raise ValueError("WR command without data")
            self.bank(cmd.bg, cmd.ba).write(cmd.row, cmd.col, cmd.data, cycle)
            self._record_col(cmd.bg, cycle, is_write=True)
            return None
        if cmd.cmd is CommandType.REF:
            for bank in self.banks:
                bank.next_act = max(bank.next_act, cycle + self.timing.trfc)
            return None
        raise ValueError(f"unhandled command {cmd.cmd}")

    def _record_act(self, bg: int, cycle: int) -> None:
        self._last_act_cycle = cycle
        self._last_act_bg = bg
        self._act_window.append(cycle)

    def _record_col(self, bg: Optional[int], cycle: int, is_write: bool) -> None:
        self._last_col_cycle = cycle
        self._last_col_bg = bg
        self._last_col_was_write = is_write

    # -- bookkeeping ----------------------------------------------------------

    @property
    def all_banks_idle(self) -> bool:
        return all(bank.open_row is None for bank in self.banks)
