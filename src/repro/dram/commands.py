"""DRAM bus commands.

A :class:`Command` is what travels over the CA bus of one pseudo-channel.
It is the *only* interface between the memory controller and the (PIM-)DRAM
device — the paper's central constraint is that PIM is driven exclusively by
these standard JEDEC commands.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

__all__ = ["CommandType", "Command"]


class CommandType(enum.Enum):
    """Standard DRAM command types (JESD235 subset used by the model)."""

    ACT = "ACT"
    PRE = "PRE"
    PREA = "PREA"  # precharge all banks
    RD = "RD"
    WR = "WR"
    REF = "REF"

    @property
    def is_column(self) -> bool:
        return self in (CommandType.RD, CommandType.WR)


@dataclass
class Command:
    """One CA-bus command addressed to a single pseudo-channel.

    ``bg``/``ba`` select the bank group and bank; they are ignored by the
    device in all-bank (AB / AB-PIM) modes, exactly as Section III-B
    specifies.  ``data`` carries the 32-byte write burst for WR commands.
    ``tag`` is controller-side metadata (e.g. the originating request) and
    never visible to the device.
    """

    cmd: CommandType
    bg: int = 0
    ba: int = 0
    row: int = 0
    col: int = 0
    data: Optional[np.ndarray] = None
    tag: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.cmd is CommandType.WR and self.data is not None:
            self.data = np.ascontiguousarray(self.data, dtype=np.uint8)

    @property
    def bank_index(self) -> int:
        """Flat bank index within the pseudo-channel (bg*banks_per_bg+ba)."""
        return self.bg * 4 + self.ba

    def __repr__(self) -> str:  # compact, for debug traces
        if self.cmd.is_column:
            return (
                f"{self.cmd.value}(bg={self.bg},ba={self.ba},"
                f"row={self.row},col={self.col})"
            )
        if self.cmd is CommandType.ACT:
            return f"ACT(bg={self.bg},ba={self.ba},row={self.row})"
        if self.cmd is CommandType.PRE:
            return f"PRE(bg={self.bg},ba={self.ba})"
        return self.cmd.value
