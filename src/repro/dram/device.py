"""An HBM device: a stack of DRAM dies exposing 16 pseudo-channels.

An HBM2 stack exposes 16 pseudo-channels regardless of the number of stacked
dies (extra dies add ranks/capacity, not bandwidth — Section II-B).  The
model keeps one :class:`PseudoChannel` per pCH; rank stacking only scales the
capacity bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .bank import BankConfig
from .pseudochannel import BANKS_PER_PCH, PseudoChannel
from .timing import HBM2_1GHZ, TimingParams

__all__ = ["DeviceConfig", "HbmDevice", "PCHS_PER_DEVICE"]

PCHS_PER_DEVICE = 16


@dataclass(frozen=True)
class DeviceConfig:
    """Configuration of one HBM(-PIM) stack.

    ``num_pchs`` is configurable below 16 so tests can build small devices;
    the real device always has 16 (Table V).
    """

    timing: TimingParams = HBM2_1GHZ
    bank_config: BankConfig = BankConfig()
    num_pchs: int = PCHS_PER_DEVICE
    ranks: int = 1
    # On-die (72,64) SEC-DED ECC, the Section VIII extension for
    # HBM3-generation PIM (repro.dram.ecc).
    ecc: bool = False

    @property
    def capacity_bytes(self) -> int:
        per_bank = self.bank_config.num_rows * self.bank_config.row_bytes
        return per_bank * BANKS_PER_PCH * self.num_pchs * self.ranks

    @property
    def io_bandwidth_bytes_per_sec(self) -> float:
        """Peak off-chip bandwidth: one 32 B column per pCH per tCCD_S."""
        t = self.timing
        per_pch = self.bank_config.col_bytes / (t.tccd_s * t.tck_ns * 1e-9)
        return per_pch * self.num_pchs


def _bank_cls(config: "DeviceConfig"):
    if config.ecc:
        from .ecc import EccBank

        return EccBank
    from .bank import Bank

    return Bank


class HbmDevice:
    """A standard HBM2 device (the baseline the paper compares against)."""

    def __init__(
        self,
        config: Optional[DeviceConfig] = None,
        pch_factory: Optional[Callable[[DeviceConfig], PseudoChannel]] = None,
    ):
        self.config = config or DeviceConfig()
        factory = pch_factory or (
            lambda cfg: PseudoChannel(
                cfg.timing, cfg.bank_config, bank_cls=_bank_cls(cfg)
            )
        )
        self.pchs: List[PseudoChannel] = [
            factory(self.config) for _ in range(self.config.num_pchs)
        ]

    def pch(self, index: int) -> PseudoChannel:
        """The pseudo-channel at ``index``."""
        return self.pchs[index]

    def __len__(self) -> int:
        return len(self.pchs)
