"""A JEDEC-compliant per-pseudo-channel memory controller.

The controller is the component the paper insists must stay *unmodified*: it
receives read/write transactions, reorders them for row-buffer locality
(FR-FCFS [Rixner et al., ISCA 2000]), and emits standard DRAM commands.  It
has no knowledge of PIM; the only host-visible ordering control is the fence
(barrier) the programming model in Section V-B uses, modelled as epochs that
commands never cross.

Three scheduling policies are provided:

* ``frfcfs`` — first-ready, first-come-first-served: row hits first, then
  oldest.  This is the realistic baseline whose reordering Fig. 5 worries
  about and address-aligned mode (AAM) tolerates.
* ``fcfs`` — strict arrival order.  Models the paper's "processor guarantees
  the order of DRAM commands in PIM mode" study (Section VII-B, no fences).
* ``shuffle`` — adversarial random order within an epoch window, used by
  tests to show non-AAM microkernels break while AAM ones do not.
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from .bank import TimingViolation
from .commands import Command, CommandType
from .pseudochannel import PseudoChannel

__all__ = ["MemOp", "Request", "SchedulerPolicy", "ScheduleResult", "MemoryController"]


class MemOp(enum.Enum):
    """Transaction direction: read or write."""
    READ = "RD"
    WRITE = "WR"


class SchedulerPolicy(enum.Enum):
    """Command scheduling policy (see the module docstring)."""
    FRFCFS = "frfcfs"
    FCFS = "fcfs"
    SHUFFLE = "shuffle"


@dataclass
class Request:
    """One 32-byte read or write transaction to a decoded DRAM address."""

    op: MemOp
    bg: int
    ba: int
    row: int
    col: int
    data: Optional[np.ndarray] = None
    tag: Any = field(default=None, compare=False)
    epoch: int = field(default=0, compare=False)

    def __repr__(self) -> str:
        return (
            f"{self.op.value}(bg={self.bg},ba={self.ba},row={self.row},"
            f"col={self.col},epoch={self.epoch})"
        )


@dataclass
class ScheduleResult:
    """Outcome of draining a controller queue."""

    cycles: int
    issue_order: List[Tuple[int, Request]]
    read_data: Dict[Any, np.ndarray]
    command_count: Dict[CommandType, int]
    row_hits: int
    row_misses: int

    @property
    def column_commands(self) -> int:
        return self.command_count[CommandType.RD] + self.command_count[CommandType.WR]


class MemoryController:
    """FR-FCFS controller for one pseudo-channel.

    Usage: ``enqueue`` requests, interleave ``fence()`` calls to forbid
    reordering across points the programming model synchronises with
    barriers, then ``drain()`` to simulate the whole stream.
    """

    def __init__(
        self,
        channel: PseudoChannel,
        policy: SchedulerPolicy = SchedulerPolicy.FRFCFS,
        window: int = 16,
        seed: Optional[int] = None,
        start_cycle: int = 0,
        fence_penalty: int = 0,
        refresh: bool = False,
    ):
        self.channel = channel
        self.policy = policy
        self.window = window
        # Auto-refresh: a PREA+REF pair every tREFI.  JEDEC controllers must
        # keep refreshing in every mode; the PIM device broadcasts the REF
        # like any other command, and the kernel's next request re-opens its
        # row — correctness is unaffected, only timing (tested).
        self.refresh = refresh
        self._next_refresh = start_cycle + channel.timing.trefi
        self.refresh_count = 0
        # Cycles the CA bus sits idle at each fence: the cost of the
        # thread-group barrier that orders memory requests (Section V-B).
        # The paper's "processor guarantees the order of DRAM commands in
        # PIM mode" study corresponds to fence_penalty=0 with FCFS.
        self.fence_penalty = fence_penalty
        self.fence_count = 0
        self._rng = random.Random(seed)
        # Cycles this channel spent actively working through its queue,
        # summed over drains.  A serving lane's occupancy is this against
        # the session makespan; the gap is time the channel sat idle
        # waiting for requests (what pipelining across channel sets is
        # meant to eliminate).
        self.busy_cycles = 0
        self._queue: Deque[Request] = deque()
        self._epoch = 0
        self._cycle = start_cycle
        self._next_ca = start_cycle  # CA bus: one command per tCK
        # Controller-side shadow of open rows (an unmodified controller does
        # not peek into the device).
        self._open_rows: Dict[Tuple[int, int], Optional[int]] = {}
        self.row_hits = 0
        self.row_misses = 0
        # Observability hook (repro.obs): when a Tracer is attached each
        # non-empty drain records a "drain" span on this channel's
        # timeline.  None (the default) costs one attribute test.
        self.tracer = None
        self.channel_id = 0

    # -- queueing -------------------------------------------------------------

    def enqueue(self, request: Request) -> None:
        """Queue a transaction in the current fence epoch."""
        request.epoch = self._epoch
        self._queue.append(request)

    def read(self, bg: int, ba: int, row: int, col: int, tag: Any = None) -> None:
        """Queue a 32-byte read; the result is keyed by ``tag`` in drain()."""
        self.enqueue(Request(MemOp.READ, bg, ba, row, col, tag=tag))

    def write(self, bg: int, ba: int, row: int, col: int, data: np.ndarray, tag: Any = None) -> None:
        """Queue a 32-byte write."""
        self.enqueue(Request(MemOp.WRITE, bg, ba, row, col, data=data, tag=tag))

    def fence(self) -> None:
        """Commands after a fence never issue before commands preceding it."""
        self._epoch += 1
        self.fence_count += 1

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def current_cycle(self) -> int:
        return self._cycle

    # -- shadow row state -------------------------------------------------------

    def _shadow_row(self, bg: int, ba: int) -> Optional[int]:
        return self._open_rows.get((bg, ba))

    # -- scheduling ---------------------------------------------------------------

    def _window_requests(self) -> List[Request]:
        """Oldest-epoch requests, limited to the reorder window."""
        if not self._queue:
            return []
        active_epoch = self._queue[0].epoch
        window: List[Request] = []
        for request in self._queue:
            if request.epoch != active_epoch:
                break
            window.append(request)
            if len(window) >= self.window:
                break
        return window

    def _pick(self, window: List[Request]) -> Request:
        if self.policy is SchedulerPolicy.FCFS:
            return window[0]
        if self.policy is SchedulerPolicy.SHUFFLE:
            return self._rng.choice(window)
        # FR-FCFS: among row hits, the first *ready* one (earliest legal
        # column issue — this is what lets hits to other bank groups slip in
        # at tCCD_S); with no hits, the oldest request.
        best: Optional[Request] = None
        best_cycle = 0
        for request in window:
            if self._shadow_row(request.bg, request.ba) != request.row:
                continue
            cmd_type = CommandType.RD if request.op is MemOp.READ else CommandType.WR
            probe = Command(
                cmd_type, request.bg, request.ba, row=request.row, col=request.col,
                data=request.data,
            )
            cycle = self.channel.earliest_issue(probe)
            if best is None or cycle < best_cycle:
                best = request
                best_cycle = cycle
        if best is not None:
            return best
        return window[0]

    def _opportunistic_activate(self, window: List[Request], picked: Request) -> None:
        """Open another request's row while the picked column waits.

        Real FR-FCFS controllers interleave ACTs to idle banks with the
        column stream; without this, a multi-bank stream degenerates to one
        bank at a time.
        """
        cmd_type = CommandType.RD if picked.op is MemOp.READ else CommandType.WR
        probe = Command(
            cmd_type, picked.bg, picked.ba, row=picked.row, col=picked.col,
            data=picked.data,
        )
        col_cycle = max(self._next_ca, self.channel.earliest_issue(probe))
        if col_cycle <= self._next_ca:
            return  # no slack: the column goes out right now
        touched = set()
        for other in window:
            if other is picked:
                continue
            key = (other.bg, other.ba)
            if key in touched or key == (picked.bg, picked.ba):
                continue
            shadow = self._shadow_row(*key)
            if shadow == other.row:
                continue  # already open on the right row
            if shadow is not None:
                # Conflict: close the stale row early, unless a windowed
                # request still wants it.
                if any(
                    r.bg == other.bg and r.ba == other.ba and r.row == shadow
                    for r in window
                ):
                    continue
                pre = Command(CommandType.PRE, other.bg, other.ba)
                pre_cycle = max(self._next_ca, self.channel.earliest_issue(pre))
                if pre_cycle >= col_cycle:
                    continue
                self.channel.issue(pre, pre_cycle)
                self._next_ca = pre_cycle + 1
                self._open_rows[key] = None
                touched.add(key)
                continue
            act = Command(CommandType.ACT, other.bg, other.ba, row=other.row)
            act_cycle = max(self._next_ca, self.channel.earliest_issue(act))
            if act_cycle >= col_cycle:
                continue
            self.channel.issue(act, act_cycle)
            self._next_ca = act_cycle + 1
            self._open_rows[key] = other.row
            self.row_misses += 1
            touched.add(key)

    def _issue(self, cmd: Command) -> Optional[np.ndarray]:
        cycle = max(self._next_ca, self.channel.earliest_issue(cmd))
        data = self.channel.issue(cmd, cycle)
        self._next_ca = cycle + 1
        self._cycle = cycle
        return data

    def drain(self) -> ScheduleResult:
        """Simulate until the queue is empty; return the schedule outcome."""
        issue_order: List[Tuple[int, Request]] = []
        read_data: Dict[Any, np.ndarray] = {}
        start_counts = dict(self.channel.cmd_counts)
        entry_cycle = self._cycle
        active_epoch: Optional[int] = None
        while self._queue:
            head_epoch = self._queue[0].epoch
            if active_epoch is not None and head_epoch != active_epoch:
                # Crossing a fence: the barrier stalls the request stream.
                self._next_ca += self.fence_penalty
            active_epoch = head_epoch
            if self.refresh and self._cycle >= self._next_refresh:
                self._do_refresh()
            window = self._window_requests()
            request = self._pick(window)
            if self.policy is SchedulerPolicy.FRFCFS:
                self._opportunistic_activate(window, request)
            open_row = self._shadow_row(request.bg, request.ba)
            if open_row is not None and open_row != request.row:
                # Row conflict: only close a row no windowed request still
                # wants (FR-FCFS open-page policy).  The picked request
                # needs it closed regardless.
                self._issue(Command(CommandType.PRE, request.bg, request.ba))
                self._open_rows[(request.bg, request.ba)] = None
                open_row = None
            if open_row is None:
                self._issue(
                    Command(CommandType.ACT, request.bg, request.ba, row=request.row)
                )
                self._open_rows[(request.bg, request.ba)] = request.row
                self.row_misses += 1
            else:
                self.row_hits += 1
            cmd_type = (
                CommandType.RD if request.op is MemOp.READ else CommandType.WR
            )
            cmd = Command(
                cmd_type,
                request.bg,
                request.ba,
                row=request.row,
                col=request.col,
                data=request.data,
                tag=request.tag,
            )
            data = self._issue(cmd)
            if request.op is MemOp.READ and request.tag is not None and data is not None:
                read_data[request.tag] = data
            issue_order.append((self._cycle, request))
            self._queue.remove(request)
        self.busy_cycles += self._cycle - entry_cycle
        counts = {
            ct: self.channel.cmd_counts[ct] - start_counts.get(ct, 0)
            for ct in CommandType
        }
        if self.tracer is not None and issue_order:
            self.tracer.record_cycles(
                "drain",
                entry_cycle,
                self._cycle,
                category="device",
                channel=self.channel_id,
                requests=len(issue_order),
                commands=sum(counts.values()),
            )
        return ScheduleResult(
            cycles=self._cycle,
            issue_order=issue_order,
            read_data=read_data,
            command_count=counts,
            row_hits=self.row_hits,
            row_misses=self.row_misses,
        )

    def _do_refresh(self) -> None:
        """Close every row and issue REF; rows re-open on demand."""
        bound = max(bank.earliest_pre() for bank in self.channel.banks)
        self._next_ca = max(self._next_ca, bound)
        self._issue(Command(CommandType.PREA))
        self._issue(Command(CommandType.REF))
        for key in list(self._open_rows):
            self._open_rows[key] = None
        self._next_refresh += self.channel.timing.trefi
        self.refresh_count += 1

    def closed_page_access(self, bg: int, ba: int, row: int) -> None:
        """An ACT+PRE pair to ``row``, as produced by an uncacheable access
        with closed-page semantics.

        This is the PIM mode-transition sequence (Section III-B): the driver
        maps ABMR/SBMR into an uncacheable region, so a single load/store
        reaches DRAM as exactly this command pair.  The queue must be
        drained first — transitions are ordered by a fence in the kernel.
        """
        if self._queue:
            raise RuntimeError("drain the request queue before a mode transition")
        self._issue(Command(CommandType.ACT, bg, ba, row=row))
        self._issue(Command(CommandType.PRE, bg, ba))
        self._open_rows[(bg, ba)] = None

    def reset_channel(self) -> None:
        """Abandon pending work and return the channel to a clean state.

        The self-healing serving layer calls this after a mid-kernel fault
        unwound through :meth:`drain`, which leaves unissued requests
        queued and may leave the channel stranded in AB(-PIM) mode with
        open rows.  The recovery models the driver's sequence — wait out
        the worst-case bank bound, PREA, force SB mode — without moving
        data: queued requests are dropped (their kernel is being retried
        from scratch), the open-row shadow is cleared, and the CA clock
        advances past every per-bank bound so the next command is legal.
        """
        self._queue.clear()
        self._open_rows.clear()
        bound = self._cycle
        for bank in self.channel.banks:
            bound = max(
                bound, bank.next_act, bank.next_pre, bank.next_rd, bank.next_wr
            )
        self._cycle = bound
        self._next_ca = max(self._next_ca, bound + 1)
        self.channel.hard_reset(bound)

    def precharge_all(self) -> None:
        """Issue PREA (used before SB<->AB mode transitions)."""
        try:
            self._issue(Command(CommandType.PREA))
        except TimingViolation:
            # Wait for the latest per-bank bound, then retry.
            bound = max(bank.earliest_pre() for bank in self.channel.banks)
            self._next_ca = max(self._next_ca, bound)
            self._issue(Command(CommandType.PREA))
        for key in list(self._open_rows):
            self._open_rows[key] = None
