"""HBM2 DRAM functional and timing simulator (the baseline substrate).

Exposes the pieces a user composes: timing parameters, banks,
pseudo-channels, devices, and the JEDEC-compliant memory controller.
"""

from .bank import Bank, BankConfig, BankState, TimingViolation
from .commands import Command, CommandType
from .controller import (
    MemOp,
    MemoryController,
    Request,
    ScheduleResult,
    SchedulerPolicy,
)
from .device import DeviceConfig, HbmDevice, PCHS_PER_DEVICE
from .ecc import EccBank, EccStats, UncorrectableError
from .pseudochannel import BANK_GROUPS, BANKS_PER_GROUP, BANKS_PER_PCH, PseudoChannel
from .stats import CommandStats, collect_stats
from .timing import (
    DDR4_3200,
    DRAM_FAMILIES,
    GDDR6_14,
    HBM2_1GHZ,
    HBM2_1P2GHZ,
    LPDDR4_4266,
    TimingParams,
)

__all__ = [
    "Bank",
    "BankConfig",
    "BankState",
    "TimingViolation",
    "Command",
    "CommandType",
    "MemOp",
    "MemoryController",
    "Request",
    "ScheduleResult",
    "SchedulerPolicy",
    "DeviceConfig",
    "HbmDevice",
    "PCHS_PER_DEVICE",
    "EccBank",
    "EccStats",
    "UncorrectableError",
    "BANK_GROUPS",
    "BANKS_PER_GROUP",
    "BANKS_PER_PCH",
    "PseudoChannel",
    "CommandStats",
    "collect_stats",
    "HBM2_1GHZ",
    "HBM2_1P2GHZ",
    "DDR4_3200",
    "LPDDR4_4266",
    "GDDR6_14",
    "DRAM_FAMILIES",
    "TimingParams",
]
