"""An ECC-protected DRAM bank (the Section VIII extension).

:class:`EccBank` is a drop-in :class:`~repro.dram.bank.Bank` with an
on-die (72,64) SEC-DED engine: every 8-byte word of a column burst carries
a check byte in a separate ECC array.  Because both the host *and* the PIM
execution units move data through the same ``peek``/``poke`` column
accessors, PIM-mode accesses are protected identically to host accesses —
the property the paper highlights as what makes its PIM ECC-ready.

``inject_error`` flips stored bits without updating the check bits, so
tests can exercise correction and detection on live kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..common.ecc import DecodeStatus, check_words, decode, encode, encode_words
from ..errors import PimDataError
from .bank import Bank, BankConfig
from .timing import TimingParams

__all__ = ["EccBank", "EccStats", "UncorrectableError"]

_WORD_BYTES = 8


class UncorrectableError(PimDataError):
    """A double-bit error was detected in a column read."""


@dataclass
class EccStats:
    words_encoded: int = 0
    words_checked: int = 0
    corrected: int = 0
    detected_uncorrectable: int = 0


class EccBank(Bank):
    """A bank whose column path runs through an on-die SEC-DED engine.

    The column path is vectorized: a whole column (or row, for
    :meth:`scrub_row`) is syndrome-checked in one array SEC-DED call and
    only words flagged dirty fall back to the per-word scalar decoder.
    Setting ``use_vectorized = False`` forces the historical per-word
    loops everywhere — the differential oracle the vectorized paths are
    tested against (``SystemConfig(scalar_exec=True)`` arms it
    device-wide).
    """

    # Class-level default; flip per instance to force the scalar path.
    use_vectorized = True

    def __init__(self, config: BankConfig, timing: TimingParams,
                 raise_on_uncorrectable: bool = True):
        super().__init__(config, timing)
        # One check byte per 8-byte word: row -> array[words_per_row].
        self._check: Dict[int, np.ndarray] = {}
        self.ecc_stats = EccStats()
        self.raise_on_uncorrectable = raise_on_uncorrectable

    def _check_array(self, row: int) -> np.ndarray:
        array = self._check.get(row)
        if array is None:
            words = self.config.row_bytes // _WORD_BYTES
            array = np.zeros(words, dtype=np.uint8)
            # Unwritten words are all-zero data, whose check byte is 0 too
            # (encode(0) == 0), so a fresh array is consistent.
            self._check[row] = array
        return array

    # -- the protected column path --------------------------------------------

    def poke(self, row: int, col: int, data: np.ndarray) -> None:
        """Write a column and update its check bytes (the encode path).

        The stored bytes equal the written bytes, so the check bytes are
        encoded straight from the incoming burst — no read-back of the
        column just written.
        """
        data = np.ascontiguousarray(data, dtype=np.uint8)
        super().poke(row, col, data)
        words = data.view("<u8")
        checks = self._check_array(row)
        base = col * self.config.col_bytes // _WORD_BYTES
        if self.use_vectorized:
            checks[base : base + words.size] = encode_words(words)
        else:
            for i, word in enumerate(words):
                checks[base + i] = encode(int(word))
        self.ecc_stats.words_encoded += int(words.size)

    def peek(self, row: int, col: int) -> np.ndarray:
        """Read a column through the SEC-DED engine (correct + scrub)."""
        raw = super().peek(row, col)
        words = raw.view("<u8")
        checks = self._check_array(row)
        base = col * self.config.col_bytes // _WORD_BYTES
        if self.use_vectorized:
            if check_words(words, checks[base : base + words.size]).all():
                self.ecc_stats.words_checked += int(words.size)
                return raw
            # At least one dirty word: the scalar loop below classifies,
            # corrects, and counts exactly as the historical path did.
        for i in range(words.size):
            result = decode(int(words[i]), int(checks[base + i]))
            self.ecc_stats.words_checked += 1
            if result.status is DecodeStatus.CORRECTED:
                self.ecc_stats.corrected += 1
                words[i] = result.data
                # Scrub: write the corrected word back to the cells.
                row_array = self._row_array(row)
                start = col * self.config.col_bytes + i * _WORD_BYTES
                row_array[start : start + _WORD_BYTES] = (
                    np.array([result.data], dtype="<u8").view(np.uint8)
                )
            elif result.status is DecodeStatus.UNCORRECTABLE:
                self.ecc_stats.detected_uncorrectable += 1
                if self.raise_on_uncorrectable:
                    raise UncorrectableError(
                        f"double-bit error at row {row} col {col} word {i}"
                    )
        return raw

    def poke_columns(self, row: int, cols: np.ndarray, data: np.ndarray) -> None:
        """Bulk column write: one encode pass covers every written word."""
        if not self.use_vectorized:
            data = np.asarray(data, dtype=np.uint8)
            for i, col in enumerate(cols):
                self.poke(row, int(col), data[i])
            return
        data = np.ascontiguousarray(data, dtype=np.uint8)
        Bank.poke_columns(self, row, cols, data)
        words = data.view("<u8")  # (len(cols), words_per_col)
        checks = self._check_array(row)
        words_per_col = self.config.col_bytes // _WORD_BYTES
        idx = np.asarray(cols)[:, None] * words_per_col + np.arange(words_per_col)
        checks[idx.ravel()] = encode_words(words.ravel())
        self.ecc_stats.words_encoded += int(words.size)

    def peek_columns(self, row: int, cols: np.ndarray) -> np.ndarray:
        """Bulk column read: one syndrome pass; dirty columns fall back.

        The fast path checks every gathered word in a single array SEC-DED
        call.  If any word is dirty, the affected *columns* are re-read
        through the scalar :meth:`peek`, in column order — reproducing the
        historical per-word classification, correction, inline scrub, and
        raise behaviour (and stats) exactly.
        """
        if not self.use_vectorized:
            return np.stack([self.peek(row, int(col)) for col in cols])
        raw = Bank.peek_columns(self, row, cols)
        words = raw.view("<u8")  # (len(cols), words_per_col)
        checks = self._check_array(row)
        words_per_col = self.config.col_bytes // _WORD_BYTES
        idx = np.asarray(cols)[:, None] * words_per_col + np.arange(words_per_col)
        clean = check_words(words.ravel(), checks[idx].ravel())
        if clean.all():
            self.ecc_stats.words_checked += int(words.size)
            return raw
        dirty_cols = np.unique(np.asarray(cols)[np.nonzero(~clean)[0] // words_per_col])
        self.ecc_stats.words_checked += int(words.size) - int(
            np.isin(np.asarray(cols), dirty_cols).sum()
        ) * words_per_col
        out = raw
        for i, col in enumerate(cols):
            if col in dirty_cols:
                out[i] = self.peek(row, int(col))
        return out

    # -- scrubbing ---------------------------------------------------------------

    def scrub_row(self, row: int) -> Tuple[int, int, int]:
        """Decode every word of ``row``; fix correctable errors in place.

        Unlike the inline scrub of :meth:`peek` (which repairs the data
        word only), scrubbing re-encodes the check byte too, so a
        corrected error cannot later pair with a second flip into an
        uncorrectable word.  Uncorrectable words are *reported*, never
        raised — the scrubber's caller decides what to retire.

        Returns ``(words_checked, corrected, uncorrectable)``.
        """
        if row not in self._rows and row not in self._check:
            return (0, 0, 0)
        row_array = self._row_array(row)
        words = row_array.view("<u8")
        checks = self._check_array(row)
        corrected = 0
        uncorrectable = 0
        if self.use_vectorized:
            # One syndrome pass over the whole row; only dirty words (rare)
            # visit the scalar decoder for classification and repair.
            clean = check_words(words, checks)
            self.ecc_stats.words_checked += int(words.size)
            for i in np.nonzero(~clean)[0]:
                result = decode(int(words[i]), int(checks[i]))
                if result.status is DecodeStatus.CORRECTED:
                    words[i] = result.data
                    checks[i] = encode(result.data)
                    self.ecc_stats.corrected += 1
                    corrected += 1
                else:
                    self.ecc_stats.detected_uncorrectable += 1
                    uncorrectable += 1
            return (int(words.size), corrected, uncorrectable)
        for i in range(words.size):
            result = decode(int(words[i]), int(checks[i]))
            self.ecc_stats.words_checked += 1
            if result.status is DecodeStatus.CORRECTED:
                words[i] = result.data
                checks[i] = encode(result.data)
                self.ecc_stats.corrected += 1
                corrected += 1
            elif result.status is DecodeStatus.UNCORRECTABLE:
                self.ecc_stats.detected_uncorrectable += 1
                uncorrectable += 1
        return (int(words.size), corrected, uncorrectable)

    def materialized_rows(self) -> List[int]:
        """Rows live in the data *or* the check array, sorted.

        A row whose only writes so far are injected check-bit flips still
        needs scrubbing, so the union with the base store matters.
        """
        return sorted(set(self._rows) | set(self._check))

    # -- fault injection ---------------------------------------------------------

    def flip_check_bit(self, row: int, bit: int) -> None:
        """Flip one stored check bit of ``row`` (fault injection).

        ``bit`` indexes the row's whole check array (one byte per 8-byte
        data word, i.e. ``row_bytes`` check bits per row).
        """
        checks = self._check_array(row)
        if not 0 <= bit < checks.size * 8:
            raise ValueError("check-bit index out of row range")
        checks[bit // 8] ^= 1 << (bit % 8)

    def inject_error(self, row: int, col: int, bit: int) -> None:
        """Flip one stored data bit without touching the check bits."""
        if not 0 <= bit < self.config.col_bytes * 8:
            raise ValueError("bit index out of column range")
        row_array = self._row_array(row)
        byte_index = col * self.config.col_bytes + bit // 8
        row_array[byte_index] ^= 1 << (bit % 8)

    def inject_check_error(self, row: int, col: int, word: int, bit: int) -> None:
        """Flip one stored check bit (errors in the ECC array itself)."""
        checks = self._check_array(row)
        base = col * self.config.col_bytes // _WORD_BYTES
        checks[base + word] ^= 1 << bit
