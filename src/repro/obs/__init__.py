"""Observability: hierarchical tracing + metrics for the simulated stack.

See ``docs/ARCHITECTURE.md`` (Observability) for the span hierarchy and
``docs/API.md`` for the knobs.  Everything here is pure bookkeeping on
the simulated clock — no wall-clock timestamps anywhere.
"""

from .tracer import Span, TraceEvent, Tracer, span_children, span_roots
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_BUCKETS_NS,
)
from .export import (
    chrome_trace,
    write_chrome_trace,
    write_span_jsonl,
    render_timeline,
    validate_chrome_trace,
    span_tree_lines,
    diff_span_trees,
)

__all__ = [
    "Span",
    "TraceEvent",
    "Tracer",
    "span_children",
    "span_roots",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS_NS",
    "chrome_trace",
    "write_chrome_trace",
    "write_span_jsonl",
    "render_timeline",
    "validate_chrome_trace",
    "span_tree_lines",
    "diff_span_trees",
]
