"""A small counters/gauges/histograms registry for the simulated system.

:class:`MetricsRegistry` is the metrics sink every layer of the stack can
feed (behind the same ``None``-guarded hook as the tracer).  It subsumes
the ad-hoc counters of :class:`~repro.stack.profiler.ServingProfile` —
``ServingProfile.to_metrics`` exports a finished session into a registry
without changing the profile's own API — and adds live counters from the
runtime (kernel launches, cache evictions) and the driver (scrub
activity, quarantines).

Metric names are dotted paths (``serving.outcomes.completed``,
``driver.scrub.corrected``); there is no label system — encode the one
discriminating dimension in the name, which keeps the registry a plain
dict and the text dump diffable.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    help: str = ""
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (occupancy, queue depth...)."""

    name: str
    help: str = ""
    value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by ``amount``."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by ``amount``."""
        self.value -= amount


#: Default histogram buckets, in nanoseconds of simulated time: 1us ..
#: 100ms in half-decade steps (serving latencies live in this range).
DEFAULT_BUCKETS_NS: Tuple[float, ...] = (
    1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8,
)


@dataclass
class Histogram:
    """Cumulative-bucket histogram plus exact percentile support.

    Observations are kept (these are simulation-sized populations, not
    production firehoses), so :meth:`percentile` is exact nearest-rank —
    the same convention ``ServingProfile`` uses.
    """

    name: str
    help: str = ""
    buckets: Tuple[float, ...] = DEFAULT_BUCKETS_NS
    counts: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    total: float = 0.0

    def __post_init__(self) -> None:
        if tuple(sorted(self.buckets)) != tuple(self.buckets):
            raise ValueError("histogram buckets must be sorted")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.values.append(value)
        self.total += value

    @property
    def count(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile at ``q`` in [0, 1] (0.0 when empty)."""
        if not self.values:
            return 0.0
        q = max(0.0, min(1.0, q))
        ordered = sorted(self.values)
        rank = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[max(0, rank)]


class MetricsRegistry:
    """Get-or-create registry of named metrics with a text dump."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, name: str, kind, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name=name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter called ``name``."""
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> Histogram:
        """Get or create the histogram called ``name``; ``buckets`` only
        applies on creation."""
        if buckets is None:
            return self._get(name, Histogram, help=help)
        return self._get(name, Histogram, help=help, buckets=tuple(buckets))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Union[Counter, Gauge, Histogram]:
        return self._metrics[name]

    def names(self) -> List[str]:
        """Every registered metric name, sorted."""
        return sorted(self._metrics)

    def value(self, name: str) -> float:
        """Scalar value of a counter/gauge (histograms: the observation
        count)."""
        metric = self._metrics[name]
        if isinstance(metric, Histogram):
            return float(metric.count)
        return metric.value

    def as_dict(self) -> Dict[str, float]:
        """Flat ``{name: scalar}`` snapshot (histograms add .count/.mean/
        .p50/.p95/.p99 sub-keys)."""
        out: Dict[str, float] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[f"{name}.count"] = float(metric.count)
                out[f"{name}.mean"] = metric.mean()
                out[f"{name}.p50"] = metric.percentile(0.50)
                out[f"{name}.p95"] = metric.percentile(0.95)
                out[f"{name}.p99"] = metric.percentile(0.99)
            else:
                out[name] = metric.value
        return out

    def render(self) -> List[str]:
        """A sorted, diffable text dump (one metric per line)."""
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                lines.append(f"counter   {name} = {metric.value:g}")
            elif isinstance(metric, Gauge):
                lines.append(f"gauge     {name} = {metric.value:g}")
            else:
                lines.append(
                    f"histogram {name} count={metric.count} "
                    f"mean={metric.mean():g} p50={metric.percentile(0.5):g} "
                    f"p95={metric.percentile(0.95):g} "
                    f"p99={metric.percentile(0.99):g}"
                )
        return lines
