"""Trace and metrics exporters.

Three output formats cover the usual consumers:

* **Chrome / Perfetto** (:func:`chrome_trace`, :func:`write_chrome_trace`)
  — the JSON-object flavour of the Trace Event Format.  Complete (``X``)
  events carry spans, instant (``i``) events carry tracer events;
  ``pid`` is the pseudo-channel a span ran on (device work) or the
  serving-layer pseudo-process, ``tid`` is the serving lane.  Load the
  file at ``chrome://tracing`` or https://ui.perfetto.dev.
* **JSONL span log** (:func:`write_span_jsonl`) — one JSON object per
  span/event, flat, for ad-hoc ``jq``/pandas analysis.
* **text** (:func:`render_timeline`) — an ASCII span timeline for
  terminals and ``benchmarks/report.py``.

:func:`validate_chrome_trace` checks an emitted file against the trace
event schema (the subset Chrome actually requires) — CI's trace-smoke
job runs it after every ``python -m repro trace``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Union

from .tracer import Span, TraceEvent, Tracer, span_children

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_span_jsonl",
    "render_timeline",
    "validate_chrome_trace",
    "span_tree_lines",
    "diff_span_trees",
]

#: pid used for spans that did not run on any particular pseudo-channel
#: (the serving layer: request / dispatch / host spans).
SERVING_PID = 1000

#: pid base for fabric shards: a shard-tagged item lands in process
#: ``SHARD_PID_BASE + shard`` (named ``shard<N>``), so a merged
#: multi-worker trace shows one Chrome process row per shard.
SHARD_PID_BASE = 2000


def _pid(item: Union[Span, TraceEvent]) -> int:
    if item.shard is not None:
        return SHARD_PID_BASE + item.shard
    return SERVING_PID if item.channel is None else item.channel


def _tid(item: Union[Span, TraceEvent]) -> int:
    return 0 if item.lane is None else item.lane


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The tracer's content as a Chrome Trace Event Format object.

    Single-process traces keep the historical pid scheme (pseudo-channel
    pid for device spans, ``SERVING_PID`` for the serving layer).  Spans
    a :class:`~repro.stack.fabric.PimFabric` merged from its workers
    carry a ``shard`` tag and land one Chrome process per shard
    (pid = ``SHARD_PID_BASE + shard``, tid = serving lane).
    """
    events: List[Dict[str, Any]] = []
    pids = {SERVING_PID: "serving"}
    for span in tracer.spans:
        if span.shard is not None:
            pids.setdefault(SHARD_PID_BASE + span.shard, f"shard{span.shard}")
        elif span.channel is not None:
            pids.setdefault(span.channel, f"pch{span.channel}")
    for pid in sorted(pids):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": pids[pid]},
            }
        )
    for span in tracer.spans:
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": span.start_ns / 1000.0,  # Chrome wants microseconds
                "dur": span.duration_ns / 1000.0,
                "pid": _pid(span),
                "tid": _tid(span),
                "args": args,
            }
        )
    for event in tracer.events:
        args = dict(event.attrs)
        if event.parent_id is not None:
            args["parent_id"] = event.parent_id
        events.append(
            {
                "name": event.name,
                "cat": event.category or "event",
                "ph": "i",
                "ts": event.at_ns / 1000.0,
                "s": "t",  # thread-scoped instant
                "pid": _pid(event),
                "tid": _tid(event),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(tracer: Tracer, path: str) -> Dict[str, Any]:
    """Write the Chrome trace JSON to ``path``; returns the object."""
    obj = chrome_trace(tracer)
    with open(path, "w") as fh:
        json.dump(obj, fh)
    return obj


def write_span_jsonl(tracer: Tracer, path_or_file: Union[str, IO]) -> int:
    """Flat JSONL: one object per span, then one per event.

    Returns the number of lines written.
    """
    own = isinstance(path_or_file, str)
    fh = open(path_or_file, "w") if own else path_or_file
    lines = 0
    try:
        for span in tracer.spans:
            fh.write(
                json.dumps(
                    {
                        "type": "span",
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        "name": span.name,
                        "cat": span.category,
                        "start_ns": span.start_ns,
                        "end_ns": span.end_ns,
                        "lane": span.lane,
                        "channel": span.channel,
                        "shard": span.shard,
                        "attrs": span.attrs,
                    }
                )
                + "\n"
            )
            lines += 1
        for event in tracer.events:
            fh.write(
                json.dumps(
                    {
                        "type": "event",
                        "parent_id": event.parent_id,
                        "name": event.name,
                        "cat": event.category,
                        "at_ns": event.at_ns,
                        "lane": event.lane,
                        "channel": event.channel,
                        "shard": event.shard,
                        "attrs": event.attrs,
                    }
                )
                + "\n"
            )
            lines += 1
    finally:
        if own:
            fh.close()
    return lines


# -- Chrome trace-event schema validation -------------------------------------

_REQUIRED_X = ("name", "ph", "ts", "pid", "tid")
_VALID_PH = {"X", "B", "E", "i", "I", "M", "C"}


def validate_chrome_trace(path_or_obj: Union[str, Dict]) -> List[str]:
    """Validate a trace file/object against the Chrome trace-event schema.

    Returns a list of violations (empty = valid).  Checks the structural
    subset chrome://tracing requires: a ``traceEvents`` array whose
    entries carry ``name``/``ph``/``ts``/``pid``/``tid`` with the right
    types, ``X`` events a non-negative ``dur``, instant events a valid
    scope, and args JSON-serialisable objects.
    """
    problems: List[str] = []
    if isinstance(path_or_obj, str):
        try:
            with open(path_or_obj) as fh:
                obj = json.load(fh)
        except (OSError, ValueError) as err:
            return [f"unreadable trace file: {err}"]
    else:
        obj = path_or_obj
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["top level must be an object with a traceEvents array"]
    events = obj["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents must be an array"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _VALID_PH:
            problems.append(f"{where}: invalid ph {ph!r}")
            continue
        if ph == "M":
            continue  # metadata events only need name/pid
        for key in _REQUIRED_X:
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: name must be a string")
        for key in ("ts", "dur"):
            if key in event and not isinstance(event[key], (int, float)):
                problems.append(f"{where}: {key} must be a number")
        for key in ("pid", "tid"):
            if key in event and not isinstance(event[key], int):
                problems.append(f"{where}: {key} must be an integer")
        if ph == "X":
            if event.get("dur", 0) < 0:
                problems.append(f"{where}: negative dur")
            if "dur" not in event:
                problems.append(f"{where}: X event missing dur")
        if ph in ("i", "I") and event.get("s", "t") not in ("g", "p", "t"):
            problems.append(f"{where}: invalid instant scope {event.get('s')!r}")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems


# -- ASCII rendering ----------------------------------------------------------


def render_timeline(
    tracer: Tracer, width: int = 72, max_spans: int = 40
) -> List[str]:
    """An ASCII span timeline: one bar per span, indented by depth.

    Spans are ordered by start time; each line shows the span's bar on a
    common horizontal time axis plus its name and duration.  ``max_spans``
    bounds the output (deepest-first truncation keeps the request-level
    picture intact).
    """
    spans = sorted(tracer.spans, key=lambda s: (s.start_ns, s.span_id))
    if not spans:
        return ["(no spans recorded)"]
    depth: Dict[int, int] = {}
    for span in tracer.spans:
        depth[span.span_id] = (
            0 if span.parent_id is None else depth.get(span.parent_id, 0) + 1
        )
    if len(spans) > max_spans:
        # Drop the deepest spans first until the budget fits, but never
        # the top level — slice whatever still overflows.
        for level in sorted(set(depth.values()), reverse=True):
            if len(spans) <= max_spans or level == 0:
                break
            spans = [s for s in spans if depth[s.span_id] < level]
        spans = spans[:max_spans]
    t0 = min(s.start_ns for s in spans)
    t1 = max(s.end_ns for s in spans)
    extent = max(t1 - t0, 1e-9)
    label_width = max(len(_timeline_label(s, depth)) for s in spans)
    lines = [
        f"  span timeline ({(t1 - t0) / 1000.0:.1f} us total, "
        f"{len(tracer.spans)} spans, showing {len(spans)})"
    ]
    for span in spans:
        left = int((span.start_ns - t0) / extent * (width - 1))
        length = max(1, int(span.duration_ns / extent * width))
        length = min(length, width - left)
        bar = " " * left + "#" * length
        label = _timeline_label(span, depth)
        lines.append(
            f"  {label:<{label_width}s} |{bar:<{width}s}| "
            f"{span.duration_ns / 1000.0:8.1f}us"
        )
    return lines


def _timeline_label(span: Span, depth: Dict[int, int]) -> str:
    prefix = "  " * depth.get(span.span_id, 0)
    where = ""
    if span.channel is not None:
        where = f"@pch{span.channel}"
    elif span.lane is not None:
        where = f"@lane{span.lane}"
    return f"{prefix}{span.name}{where}"


def span_tree_lines(tracer: Tracer) -> List[str]:
    """The span tree as indented text (names, intervals, placement)."""
    children = span_children(tracer.spans)
    lines: List[str] = []

    def walk(parent_id: Optional[int], indent: int) -> None:
        for span in children.get(parent_id, []):
            where = (
                f" pch{span.channel}" if span.channel is not None
                else f" lane{span.lane}" if span.lane is not None
                else ""
            )
            lines.append(
                f"{'  ' * indent}{span.name}[{span.category}]{where} "
                f"{span.start_ns:.1f}..{span.end_ns:.1f}"
            )
            walk(span.span_id, indent + 1)

    walk(None, 0)
    return lines


def _tree_key(span: Span):
    return (
        span.name,
        span.category,
        span.lane,
        span.channel,
        round(span.start_ns, 3),
        round(span.end_ns, 3),
    )


def diff_span_trees(a: Tracer, b: Tracer) -> Optional[str]:
    """First divergence between two tracers' span trees (None if equal).

    Compares the trees structurally — name, category, lane, channel, and
    interval (to 1e-3 ns) of every span, in tree order — which is what
    the determinism regression asserts: two identically-seeded runs must
    produce byte-identical trace trees.
    """
    children_a = span_children(a.spans)
    children_b = span_children(b.spans)

    def walk(pa: Optional[int], pb: Optional[int], path: str) -> Optional[str]:
        kids_a = children_a.get(pa, [])
        kids_b = children_b.get(pb, [])
        for i in range(max(len(kids_a), len(kids_b))):
            here = f"{path}/{i}"
            if i >= len(kids_a):
                return f"{here}: only in second trace: {_tree_key(kids_b[i])}"
            if i >= len(kids_b):
                return f"{here}: only in first trace: {_tree_key(kids_a[i])}"
            ka, kb = _tree_key(kids_a[i]), _tree_key(kids_b[i])
            if ka != kb:
                return f"{here}: {ka} != {kb}"
            deeper = walk(kids_a[i].span_id, kids_b[i].span_id, here)
            if deeper is not None:
                return deeper
        return None

    return walk(None, None, "")
