"""Hierarchical tracing on the simulated clock.

A :class:`Tracer` records *spans* — named intervals of simulated time,
nested into a tree — and *events* — instants annotated with attributes.
Every layer of the stack carries an optional tracer hook that defaults to
``None``; with tracing disabled the only cost anywhere is one attribute
test per hook site (the zero-overhead-when-disabled contract the serving
benchmarks rely on).

The span hierarchy mirrors how a request travels through the system
(see the "Observability" section of ``docs/ARCHITECTURE.md``)::

    request                      # arrival -> terminal outcome
      dispatch                   # one fused batch on one lane
        kernel:<op>              # one device attempt (launch + streams)
          drain                  # one controller's command burst
        host:<op>                # golden-path completion (fallback etc.)

plus instant events (``retry``, ``fallback``, ``breaker:<state>``,
``scrub``, ``faults``, ``mode:<mode>``, ``quarantine``) attached to
whatever span was open when they fired.

Two clock domains feed one timeline: the serving layer works in simulated
nanoseconds (request arrivals), the device layers in DRAM CA-bus cycles.
:meth:`Tracer.set_clock` re-bases the cycle domain — the serving engine
pins ``(base_ns, base_cycle)`` before every device attempt, so controller
bursts land inside their kernel span on the request timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Span", "TraceEvent", "Tracer", "span_children", "span_roots"]


@dataclass
class Span:
    """One named interval of simulated time in the trace tree."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start_ns: float = 0.0
    end_ns: float = 0.0
    #: Serving lane that produced the span (None below the serving layer).
    lane: Optional[int] = None
    #: Pseudo-channel the span ran on (None above the controller layer).
    channel: Optional[int] = None
    #: Fabric shard the span came from (None outside a sharded fabric).
    #: Set by the fabric when it merges worker traces, never by the
    #: producers themselves, so single-process traces are unchanged.
    shard: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class TraceEvent:
    """One instant on the simulated clock (retry, breaker flip, scrub...)."""

    name: str
    at_ns: float
    category: str = ""
    parent_id: Optional[int] = None
    lane: Optional[int] = None
    channel: Optional[int] = None
    #: Fabric shard the event came from (None outside a sharded fabric).
    shard: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects spans and events on the simulated clock.

    ``tck_ns`` converts DRAM CA-bus cycles to nanoseconds for the
    cycle-domain hooks (controllers, PIM channels); re-base the cycle
    clock with :meth:`set_clock`.

    Spans nest by call order: :meth:`begin` pushes onto an open-span
    stack and the span's parent is whatever was on top.  :meth:`finish`
    pops (by identity, so an exception that skips a child's ``finish``
    cannot corrupt an ancestor's).  Times are filled at ``finish`` —
    most producers only know a span's interval after it completed.
    """

    def __init__(self, tck_ns: float = 1.0):
        self.tck_ns = float(tck_ns)
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self._base_ns = 0.0
        self._base_cycle = 0

    # -- clock ----------------------------------------------------------------

    def set_clock(self, base_ns: float, base_cycle: int) -> None:
        """Pin the cycle->ns mapping: ``base_cycle`` corresponds to
        ``base_ns`` until the next re-base."""
        self._base_ns = float(base_ns)
        self._base_cycle = int(base_cycle)

    def cycles_ns(self, cycle: int) -> float:
        """Simulated-ns position of a device cycle under the current base.

        Cycles before the base clamp to ``base_ns``: a channel whose clock
        lagged the lane front when the base was pinned still lands inside
        the enclosing span.
        """
        return self._base_ns + max(0, cycle - self._base_cycle) * self.tck_ns

    @property
    def now_ns(self) -> float:
        """The current clock base (where unanchored events land)."""
        return self._base_ns

    # -- spans ----------------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or None at the top level."""
        return self._stack[-1] if self._stack else None

    def begin(
        self,
        name: str,
        category: str = "",
        lane: Optional[int] = None,
        channel: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span under the current one; times are set by finish()."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent,
            name=name,
            category=category,
            lane=lane,
            channel=channel,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def finish(
        self, span: Span, start_ns: float, end_ns: float, **attrs: Any
    ) -> Span:
        """Close ``span`` with its simulated interval and record it."""
        span.start_ns = float(start_ns)
        span.end_ns = max(float(end_ns), span.start_ns)
        span.attrs.update(attrs)
        # Pop by identity: a crash that skipped a child's finish() must
        # not leave that child masquerading as the parent.
        while self._stack:
            popped = self._stack.pop()
            if popped is span:
                break
        self.spans.append(span)
        return span

    def record(
        self,
        name: str,
        start_ns: float,
        end_ns: float,
        category: str = "",
        lane: Optional[int] = None,
        channel: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """A complete span (no stack push) under the current open span."""
        span = self.begin(name, category, lane=lane, channel=channel, **attrs)
        return self.finish(span, start_ns, end_ns)

    def record_cycles(
        self,
        name: str,
        start_cycle: int,
        end_cycle: int,
        category: str = "",
        lane: Optional[int] = None,
        channel: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """A complete span given in device cycles (converted via the base)."""
        return self.record(
            name,
            self.cycles_ns(start_cycle),
            self.cycles_ns(end_cycle),
            category=category,
            lane=lane,
            channel=channel,
            **attrs,
        )

    def mark(self) -> Tuple[int, int]:
        """A position in the record streams, for :meth:`clamp_since`."""
        return (len(self.spans), len(self.events))

    def clamp_since(
        self, mark: Tuple[int, int], min_ns: float, max_ns: float
    ) -> None:
        """Clamp everything recorded since ``mark`` into an interval.

        The serving engine uses this to keep device-clock children inside
        their attempt's serving-clock window: device work the serving
        accounting does not charge to the batch (e.g. first-use weight
        staging) would otherwise overhang the parent span.
        """
        span_mark, event_mark = mark
        for span in self.spans[span_mark:]:
            span.start_ns = min(max(span.start_ns, min_ns), max_ns)
            span.end_ns = min(max(span.end_ns, span.start_ns), max_ns)
        for i in range(event_mark, len(self.events)):
            event = self.events[i]
            at = min(max(event.at_ns, min_ns), max_ns)
            if at != event.at_ns:
                self.events[i] = TraceEvent(
                    name=event.name,
                    at_ns=at,
                    category=event.category,
                    parent_id=event.parent_id,
                    lane=event.lane,
                    channel=event.channel,
                    shard=event.shard,
                    attrs=event.attrs,
                )

    # -- events ---------------------------------------------------------------

    def event(
        self,
        name: str,
        at_ns: Optional[float] = None,
        category: str = "",
        lane: Optional[int] = None,
        channel: Optional[int] = None,
        **attrs: Any,
    ) -> TraceEvent:
        """Record an instant; ``at_ns=None`` lands it on the clock base."""
        event = TraceEvent(
            name=name,
            at_ns=self._base_ns if at_ns is None else float(at_ns),
            category=category,
            parent_id=self._stack[-1].span_id if self._stack else None,
            lane=lane,
            channel=channel,
            attrs=dict(attrs),
        )
        self.events.append(event)
        return event

    # -- introspection --------------------------------------------------------

    def reset(self) -> None:
        """Drop every recorded span and event (open spans included)."""
        self.spans.clear()
        self.events.clear()
        self._stack.clear()
        self._next_id = 1
        self._base_ns = 0.0
        self._base_cycle = 0

    def request_spans(self) -> List[Span]:
        """Every request-category span, in recording order."""
        return [s for s in self.spans if s.category == "request"]


def span_children(spans: List[Span]) -> Dict[Optional[int], List[Span]]:
    """Children of each span id (None = roots), in recording order."""
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    return children


def span_roots(spans: List[Span]) -> List[Span]:
    """Top-level spans, in recording order."""
    return [s for s in spans if s.parent_id is None]
