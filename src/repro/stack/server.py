"""A pipelined multi-request serving engine over the PIM runtime.

Section V of the paper describes a software stack whose device driver and
runtime let *multiple* user-level workloads share one PIM-HBM device.  This
module models that serving layer:

* **lanes** — the device's pseudo-channels are split into disjoint
  :class:`~repro.stack.driver.ChannelSet` leases ("lanes").  Channels are
  controlled independently (Section VIII), so lanes advance on independent
  clocks: a GEMV batch on lane 0 overlaps — in simulated time — with an
  elementwise batch on lane 1.  Per-channel-set fences
  (:meth:`~repro.host.processor.HostSystem.drain_set`) keep each lane's
  stream ordered without ever stalling another lane.
* **batching** — contiguous same-operator requests queued on a lane are
  fused into one kernel launch: one SB->AB transition, one CRF broadcast,
  and one kernel-launch overhead cover up to ``max_batch`` requests
  (:meth:`GemvKernel.batched(fused=True) <repro.stack.kernels.GemvKernel.batched>`
  and :meth:`ElementwiseKernel.batched
  <repro.stack.kernels.ElementwiseKernel.batched>`).  Results are
  bit-identical to sequential calls; only the setup overheads amortise.
* **accounting** — every request's wait / service / turnaround time and the
  aggregate throughput and per-channel occupancy land in a
  :class:`~repro.stack.profiler.ServingProfile`.

The arrival process is externally supplied (``submit`` takes an
``arrival_ns``), so offered load is entirely under the caller's control —
see ``benchmarks/bench_serving.py``.

**Self-healing** — a batch that hits a fault is not lost (see the "Fault
tolerance" section of ``docs/ARCHITECTURE.md``).  Uncorrectable ECC
events (:class:`~repro.errors.PimDataError`) and channel hard failures
(:class:`~repro.errors.PimChannelError`) are caught per batch; the lane
is healed (kernels rebuilt, failed channels quarantined through the
driver, surviving channels reset out of any stranded AB-PIM state) and
the batch retried up to ``max_retries`` times.  A batch that exhausts its
retries — or lands on a lane with no channels left — completes on the
bit-exact host golden path (the ``*_reference`` functions of
:mod:`repro.stack.blas`), so every submitted request always finishes.
Between batches the server runs one fault-injection epoch (when the
system carries a :class:`~repro.faults.FaultInjector`) and a background
ECC scrub every ``scrub_interval`` batches.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..errors import PimChannelError, PimDataError, PimError, PimProgramError
from .blas import (
    add_reference,
    bn_reference,
    gemv_reference,
    mul_reference,
    relu_reference,
)
from .driver import ChannelSet
from .kernels import (
    ELEMENTWISE_OPS,
    ElementwiseKernel,
    ExecutionReport,
    GemvKernel,
)
from .profiler import Profiler, RequestStats, ServingProfile
from .runtime import PimSystem

__all__ = ["PimRequest", "PimServer"]


@dataclass
class PimRequest:
    """One operation submitted to the serving engine.

    ``op`` is ``"gemv"`` or one of the elementwise operators
    (``add``/``mul``/``relu``/``bn``).  After :meth:`PimServer.run` the
    request carries its result, execution report, and queueing timestamps.
    """

    request_id: int
    op: str
    arrival_ns: float = 0.0
    a: Optional[np.ndarray] = None
    b: Optional[np.ndarray] = None
    weights: Optional[np.ndarray] = None
    scalars: Optional[Tuple[float, float]] = None
    # Filled in by the server.
    result: Optional[np.ndarray] = None
    report: object = None
    start_ns: float = 0.0
    finish_ns: float = 0.0
    batch_size: int = 1
    lane: int = 0
    # Fault-tolerance outcome: device retries consumed, and whether the
    # request completed on the host golden path.
    retries: int = 0
    fallback: bool = False
    _signature: Optional[Tuple] = field(
        default=None, repr=False, compare=False
    )

    @property
    def signature(self) -> Tuple:
        """Requests with equal signatures may share one fused launch.

        GEMV requests key on weight *content* (shape, dtype, and a digest
        of the bytes), never on object identity: a freed array's ``id()``
        can be reused by a later allocation, and the resident kernel only
        holds a padded copy — an identity key would silently serve the
        stale weights.  Equal-content matrices share one resident kernel,
        which keeps results bit-exact by construction.
        """
        if self._signature is None:
            if self.op == "gemv":
                w = np.ascontiguousarray(self.weights)
                digest = hashlib.sha1(w.tobytes()).hexdigest()
                self._signature = ("gemv", w.shape, str(w.dtype), digest)
            else:
                scalar_key = (
                    None
                    if self.scalars is None
                    else tuple(float(s) for s in self.scalars)
                )
                self._signature = (
                    self.op,
                    int(np.asarray(self.a).size),
                    scalar_key,
                )
        return self._signature

    @property
    def wait_ns(self) -> float:
        return self.start_ns - self.arrival_ns

    @property
    def service_ns(self) -> float:
        return self.finish_ns - self.start_ns

    @property
    def turnaround_ns(self) -> float:
        return self.finish_ns - self.arrival_ns

    def stats(self) -> RequestStats:
        """This request's queueing statistics for the serving profile."""
        return RequestStats(
            request_id=self.request_id,
            op=self.op,
            arrival_ns=self.arrival_ns,
            start_ns=self.start_ns,
            finish_ns=self.finish_ns,
            batch_size=self.batch_size,
            lane=self.lane,
            retries=self.retries,
            fallback=self.fallback,
        )


@dataclass
class _Lane:
    """One leased channel set with its FIFO and clock.

    ``channels`` becomes ``None`` when healing quarantined the lane's last
    channel — a *dead* lane, whose batches complete on the host path.
    """

    index: int
    channels: Optional[ChannelSet]
    queue: Deque[PimRequest] = field(default_factory=deque)
    ready_ns: float = 0.0
    # Resident kernels keyed by request signature.
    gemv_kernels: Dict[Tuple, GemvKernel] = field(default_factory=dict)
    elementwise_kernels: Dict[Tuple, ElementwiseKernel] = field(
        default_factory=dict
    )


class PimServer:
    """Serves concurrent PIM requests with batching and lane pipelining.

    ::

        server = PimServer(system, lanes=2, max_batch=8)
        for i in range(64):
            server.submit("gemv", weights=w, a=x[i], arrival_ns=i * 2000.0)
        profile = server.run()
        print("\\n".join(profile.render()))

    Lanes lease disjoint channel sets from the device driver; operator
    signatures are bound to lanes round-robin in first-seen order, so two
    independent operators pipeline across channel sets instead of
    serialising behind a global drain.
    """

    def __init__(
        self,
        system: PimSystem,
        lanes: int = 2,
        max_batch: int = 8,
        simulate_pchs: Optional[int] = None,
        profiler: Optional[Profiler] = None,
        max_retries: int = 2,
        scrub_interval: Optional[int] = None,
    ):
        driver = getattr(system, "driver", None)
        if driver is None:
            raise TypeError("PimServer needs a PimSystem with a device driver")
        if lanes < 1:
            raise ValueError("need at least one lane")
        free = len(driver.channels_free)
        per_lane, extra = divmod(free, lanes)
        if per_lane < 1:
            raise ValueError(
                f"cannot split {free} free channels into {lanes} lanes"
            )
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.sys = system
        self.max_batch = max_batch
        self.max_retries = max_retries
        config = getattr(system, "config", None)
        if simulate_pchs is None:
            simulate_pchs = config.simulate_pchs if config is not None else None
        if scrub_interval is None:
            scrub_interval = config.scrub_interval if config is not None else 0
        self.simulate_pchs = simulate_pchs
        self.scrub_interval = scrub_interval
        self.injector = getattr(system, "fault_injector", None)
        self.profiler = profiler
        # When lanes does not divide the free channel count, spread the
        # remainder over the first lanes so no channel sits permanently
        # idle (3 lanes on 4 channels -> 2+1+1, not 1+1+1 with one dark).
        self.lanes: List[_Lane] = [
            _Lane(
                index=i,
                channels=driver.alloc_channels(
                    per_lane + (1 if i < extra else 0)
                ),
            )
            for i in range(lanes)
        ]
        self._affinity: Dict[Tuple, int] = {}
        self._next_lane = 0
        self._next_id = 0
        self._pending: List[PimRequest] = []
        self._batches_since_scrub = 0
        self._closed = False

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Release kernel rows and return leased channels to the driver.

        Idempotent, and exactly-once even when :meth:`run` raised
        mid-batch: each lane's lease is dropped the moment it is released
        (``lane.channels = None``), and a kernel whose release fails
        cannot strand the remaining lanes' channels — every lease is
        returned before the first error (if any) propagates.
        """
        if self._closed:
            return
        self._closed = True
        driver = self.sys.driver
        first_error: Optional[BaseException] = None
        for lane in self.lanes:
            kernels = list(lane.gemv_kernels.values())
            kernels.extend(lane.elementwise_kernels.values())
            lane.gemv_kernels.clear()
            lane.elementwise_kernels.clear()
            for kernel in kernels:
                try:
                    kernel.release()
                except PimError as err:
                    if first_error is None:
                        first_error = err
            if lane.channels is not None:
                try:
                    driver.release_channels(lane.channels)
                except PimError as err:
                    if first_error is None:
                        first_error = err
                lane.channels = None
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "PimServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        op: str,
        a: Optional[np.ndarray] = None,
        b: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
        scalars: Optional[Tuple[float, float]] = None,
        arrival_ns: float = 0.0,
    ) -> PimRequest:
        """Queue one request; returns the (not yet served) request object.

        Misuse raises :class:`~repro.errors.PimProgramError` (a
        ``ValueError``/``RuntimeError`` subclass, so historical ``except``
        clauses keep working).
        """
        if self._closed:
            raise PimProgramError("server is closed")
        if op == "gemv":
            if weights is None or a is None:
                raise PimProgramError("gemv needs weights and an input vector")
        elif op in ELEMENTWISE_OPS:
            if a is None:
                raise PimProgramError(f"{op} needs an input vector")
            if ELEMENTWISE_OPS[op].uses_second_operand and b is None:
                raise PimProgramError(f"{op} needs a second operand")
        else:
            raise PimProgramError(f"unknown op {op!r}")
        request = PimRequest(
            request_id=self._next_id,
            op=op,
            arrival_ns=float(arrival_ns),
            a=a,
            b=b,
            weights=weights,
            scalars=scalars,
        )
        self._next_id += 1
        self._pending.append(request)
        return request

    def _lane_for(self, signature: Tuple) -> _Lane:
        lane_index = self._affinity.get(signature)
        if lane_index is None:
            # Round-robin in first-seen order: independent operators land
            # on different lanes and pipeline across channel sets.
            lane_index = self._next_lane % len(self.lanes)
            self._next_lane += 1
            self._affinity[signature] = lane_index
        return self.lanes[lane_index]

    # -- execution ----------------------------------------------------------------

    def run(self) -> ServingProfile:
        """Serve every pending request and return the session's profile.

        Requests drain in arrival order per lane.  A dispatch takes the
        head of the lane's queue plus any queued same-signature requests
        that have arrived by dispatch time, up to ``max_batch``; requests
        of other signatures keep their relative order.
        """
        serving = ServingProfile()
        controllers = self.sys.controllers
        busy_before = [mc.busy_cycles for mc in controllers]
        cycle_before = max(mc.current_cycle for mc in controllers)
        ecc_before = self._device_ecc_corrected()
        scrub_corrected_before = serving.scrub_corrected
        touched: set = {
            p
            for lane in self.lanes
            if lane.channels is not None
            for p in lane.channels
        }

        for request in sorted(
            self._pending, key=lambda r: (r.arrival_ns, r.request_id)
        ):
            self._lane_for(request.signature).queue.append(request)
        self._pending = []

        for lane in self.lanes:
            while lane.queue:
                head = lane.queue.popleft()
                t0 = max(lane.ready_ns, head.arrival_ns)
                batch = [head]
                skipped: Deque[PimRequest] = deque()
                while lane.queue and len(batch) < self.max_batch:
                    candidate = lane.queue.popleft()
                    if (
                        candidate.signature == head.signature
                        and candidate.arrival_ns <= t0
                    ):
                        batch.append(candidate)
                    else:
                        skipped.append(candidate)
                while skipped:
                    lane.queue.appendleft(skipped.pop())
                report, penalty_ns = self._execute_resilient(
                    lane, batch, serving
                )
                finish = t0 + penalty_ns + report.ns
                for member in batch:
                    member.start_ns = t0
                    member.finish_ns = finish
                    member.report = report
                    member.batch_size = len(batch)
                    member.lane = lane.index
                    serving.record(member.stats())
                lane.ready_ns = finish
                serving.batches += 1
                serving.launches += int(report.notes.get("launches", 1))
                if self.profiler is not None:
                    self.profiler.record(report)
                if lane.channels is not None:
                    touched.update(lane.channels)
                self._after_batch(serving)

        serving.makespan_cycles = (
            max(mc.current_cycle for mc in controllers) - cycle_before
        )
        for pch in sorted(touched):
            serving.channel_busy_cycles[pch] = (
                controllers[pch].busy_cycles - busy_before[pch]
            )
        # Inline corrections are the device-wide delta minus what the
        # background scrub repaired this session.
        scrubbed = serving.scrub_corrected - scrub_corrected_before
        serving.ecc_corrected += max(
            0, self._device_ecc_corrected() - ecc_before - scrubbed
        )
        if self.profiler is not None:
            self.profiler.record_serving(serving)
        return serving

    # -- fault tolerance ----------------------------------------------------------

    def _device_ecc_corrected(self) -> int:
        """Device-wide count of words corrected by the banks' SEC-DED."""
        total = 0
        for pch in range(self.sys.num_pchs):
            for bank in self.sys.device.pch(pch).banks:
                stats = getattr(bank, "ecc_stats", None)
                if stats is not None:
                    total += stats.corrected
        return total

    def _lane_cycle(self, lane: _Lane) -> int:
        if lane.channels is None:
            return 0
        controllers = self.sys.controllers
        return max(controllers[p].current_cycle for p in lane.channels)

    def _after_batch(self, serving: ServingProfile) -> None:
        """Between batches: one injection epoch, plus scrub when due."""
        if self.injector is not None:
            serving.faults_injected += self.injector.tick()
        if self.scrub_interval <= 0:
            return
        self._batches_since_scrub += 1
        if self._batches_since_scrub < self.scrub_interval:
            return
        self._batches_since_scrub = 0
        result = self.sys.driver.scrub()
        serving.scrubs += 1
        serving.scrub_corrected += result.corrected
        serving.scrub_uncorrectable += result.uncorrectable_words

    def _execute_resilient(
        self, lane: _Lane, batch: List[PimRequest], serving: ServingProfile
    ) -> Tuple[ExecutionReport, float]:
        """Execute a batch, healing and retrying on recoverable faults.

        Returns ``(report, penalty_ns)`` where ``penalty_ns`` is the
        simulated time wasted by failed attempts (the batch's finish time
        includes it).  The device path is retried up to ``max_retries``
        times; exhaustion — or a dead lane — falls back to the bit-exact
        host golden path, so the batch *always* completes.
        """
        failures = 0
        penalty_ns = 0.0
        while lane.channels is not None:
            cycle_start = self._lane_cycle(lane)
            try:
                return self._execute(lane, batch), penalty_ns
            except (PimChannelError, PimDataError) as err:
                failures += 1
                wasted = self._lane_cycle(lane) - cycle_start
                penalty_ns += self.sys.cycles_to_ns(max(0, wasted))
                self._heal_lane(lane, err, serving)
                if failures > self.max_retries:
                    break
                serving.retries += 1
                for member in batch:
                    member.retries += 1
        report = self._execute_host(batch)
        serving.fallbacks += len(batch)
        for member in batch:
            member.fallback = True
        return report, penalty_ns

    def _heal_lane(
        self, lane: _Lane, error: PimError, serving: ServingProfile
    ) -> None:
        """Recover a lane after a fault unwound through a kernel.

        1. Release every resident kernel (their rows may hold the
           corruption; a retry re-stages from the host copy).
        2. On a channel hard failure, quarantine the named channels
           through the driver (unattributable channel failures retire the
           whole set) and try to backfill the lane from the free pool.
        3. Reset every surviving channel: abandon queued requests and
           force the way out of any stranded AB(-PIM) state.

        A lane whose last channel is quarantined becomes *dead*
        (``channels = None``); its traffic completes on the host path.
        """
        driver = self.sys.driver
        kernels = list(lane.gemv_kernels.values())
        kernels.extend(lane.elementwise_kernels.values())
        lane.gemv_kernels.clear()
        lane.elementwise_kernels.clear()
        for kernel in kernels:
            try:
                kernel.release()
            except PimError:
                pass  # rows already reclaimed; nothing else to free
        channels = tuple(lane.channels) if lane.channels is not None else ()
        bad = tuple(
            p for p in getattr(error, "channels", ()) if p in channels
        )
        if isinstance(error, PimChannelError) and not bad:
            bad = channels
        if bad:
            driver.quarantine_channels(bad)
            serving.quarantined_channels.extend(bad)
        survivors = [p for p in channels if p not in bad]
        deficit = len(channels) - len(survivors)
        if deficit > 0:
            available = len(driver.channels_free)
            if available > 0:
                leased = driver.alloc_channels(min(deficit, available))
                survivors.extend(leased.channels)
        for p in survivors:
            self.sys.controllers[p].reset_channel()
        lane.channels = (
            ChannelSet(tuple(survivors)) if survivors else None
        )

    def _host_ns(self, batch: List[PimRequest]) -> float:
        """Simulated duration of a host-fallback batch.

        The host re-reads the operands over the off-chip interface at the
        workload's achievable bandwidth efficiency (the same model
        :mod:`repro.host.processor` uses for host baselines) plus one
        kernel-launch overhead for the batch.
        """
        host = self.sys.host
        head = batch[0]
        io_bw = self.sys.device.config.io_bandwidth_bytes_per_sec
        if head.op == "gemv":
            efficiency = host.gemv_bandwidth_efficiency
            nbytes = head.weights.size * 2  # weights stream once per batch
            for member in batch:
                nbytes += np.asarray(member.a).size * 2  # x in
                nbytes += head.weights.shape[0] * 4  # fp32 y out
        else:
            efficiency = host.add_bandwidth_efficiency
            operands = 3 if ELEMENTWISE_OPS[head.op].uses_second_operand else 2
            nbytes = sum(
                np.asarray(member.a).size * 2 * operands for member in batch
            )
        return host.kernel_launch_ns + nbytes / (io_bw * efficiency) * 1e9

    def _execute_host(self, batch: List[PimRequest]) -> ExecutionReport:
        """Serve a batch on the host golden path (bit-exact fallback).

        The references in :mod:`repro.stack.blas` reproduce the device's
        exact arithmetic (FP16 MAC order for GEMV, FP16 rounding for the
        elementwise ops), so a request completed here is indistinguishable
        from one served by a healthy device.
        """
        head = batch[0]
        for member in batch:
            if head.op == "gemv":
                member.result = gemv_reference(
                    member.weights, member.a, self.sys.num_pchs
                )
            elif head.op == "add":
                member.result = add_reference(member.a, member.b)
            elif head.op == "mul":
                member.result = mul_reference(member.a, member.b)
            elif head.op == "relu":
                member.result = relu_reference(member.a)
            elif head.op == "bn":
                gamma, beta = member.scalars or (1.0, 0.0)
                member.result = bn_reference(member.a, gamma, beta)
            else:  # pragma: no cover - submit() validated the op already
                raise PimProgramError(f"unknown op {head.op!r}")
        ns = self._host_ns(batch)
        if head.op == "gemv":
            host_bytes = head.weights.size * 2 + sum(
                np.asarray(m.a).size * 2 + head.weights.shape[0] * 4
                for m in batch
            )
        else:
            operands = 3 if ELEMENTWISE_OPS[head.op].uses_second_operand else 2
            host_bytes = sum(
                np.asarray(m.a).size * 2 * operands for m in batch
            )
        return ExecutionReport(
            kernel=f"host-fallback:{head.op}",
            ns=ns,
            host_bytes=int(host_bytes),
            total_pchs=self.sys.num_pchs,
            notes={"launches": 0, "host_fallback": float(len(batch))},
        )

    def _execute(self, lane: _Lane, batch: List[PimRequest]):
        head = batch[0]
        if head.op == "gemv":
            kernel = lane.gemv_kernels.get(head.signature)
            if kernel is None:
                kernel = GemvKernel(
                    self.sys,
                    head.weights.shape[0],
                    head.weights.shape[1],
                    channels=lane.channels.channels,
                    max_batch=self.max_batch,
                )
                try:
                    kernel.load_weights(head.weights)
                except BaseException:
                    # Staging failed (e.g. a dead channel): free the
                    # kernel's rows before the fault propagates, or every
                    # retry would leak a fresh allocation.
                    kernel.release()
                    raise
                lane.gemv_kernels[head.signature] = kernel
            xs = np.stack([np.asarray(r.a, dtype=np.float16) for r in batch])
            ys, report = kernel.batched(
                xs, simulate_pchs=self.simulate_pchs, fused=True
            )
            for request, y in zip(batch, ys):
                request.result = y
        else:
            kernel = lane.elementwise_kernels.get(head.signature)
            if kernel is None:
                kernel = ElementwiseKernel(
                    self.sys,
                    head.op,
                    int(np.asarray(head.a).size),
                    channels=lane.channels.channels,
                )
                lane.elementwise_kernels[head.signature] = kernel
            items = [(r.a, r.b, r.scalars) for r in batch]
            results, report = kernel.batched(
                items, simulate_pchs=self.simulate_pchs
            )
            for request, result in zip(batch, results):
                request.result = result
        return report
