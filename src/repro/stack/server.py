"""A pipelined multi-request serving engine over the PIM runtime.

Section V of the paper describes a software stack whose device driver and
runtime let *multiple* user-level workloads share one PIM-HBM device.  This
module models that serving layer:

* **lanes** — the device's pseudo-channels are split into disjoint
  :class:`~repro.stack.driver.ChannelSet` leases ("lanes").  Channels are
  controlled independently (Section VIII), so lanes advance on independent
  clocks: a GEMV batch on lane 0 overlaps — in simulated time — with an
  elementwise batch on lane 1.  Per-channel-set fences
  (:meth:`~repro.host.processor.HostSystem.drain_set`) keep each lane's
  stream ordered without ever stalling another lane.
* **batching** — contiguous same-operator requests queued on a lane are
  fused into one kernel launch: one SB->AB transition, one CRF broadcast,
  and one kernel-launch overhead cover up to ``max_batch`` requests
  (:meth:`GemvKernel.batched(fused=True) <repro.stack.kernels.GemvKernel.batched>`
  and :meth:`ElementwiseKernel.batched
  <repro.stack.kernels.ElementwiseKernel.batched>`).  Results are
  bit-identical to sequential calls; only the setup overheads amortise.
* **accounting** — every request's wait / service / turnaround time and the
  aggregate throughput and per-channel occupancy land in a
  :class:`~repro.stack.profiler.ServingProfile`.

The arrival process is externally supplied (``submit`` takes an
``arrival_ns``), so offered load is entirely under the caller's control —
see ``benchmarks/bench_serving.py``.

**Self-healing** — a batch that hits a fault is not lost (see the "Fault
tolerance" section of ``docs/ARCHITECTURE.md``).  Uncorrectable ECC
events (:class:`~repro.errors.PimDataError`) and channel hard failures
(:class:`~repro.errors.PimChannelError`) are caught per batch; the lane
is healed (kernels rebuilt, failed channels quarantined through the
driver, surviving channels reset out of any stranded AB-PIM state) and
the batch retried.  A batch that exhausts its retries — or lands on a
lane with no channels left — completes on the bit-exact host golden path
(the ``*_reference`` functions of :mod:`repro.stack.blas`).  Between
batches the server runs one fault-injection epoch (when the system
carries a :class:`~repro.faults.FaultInjector`) and a background ECC
scrub every ``scrub_interval`` batches.

**Overload protection** — PIM is a shared, capacity-limited resource, so
the server never grows backlog silently (see "Overload protection" in
``docs/ARCHITECTURE.md``):

* *bounded lane queues* — ``queue_depth`` caps each lane's queue; the
  ``admission`` policy decides what happens to excess load: ``"block"``
  makes :meth:`submit` raise :class:`~repro.errors.PimOverloadError`
  (backpressure to the producer), ``"shed"`` drops the arrival with a
  terminal ``rejected`` outcome, ``"degrade"`` completes it immediately
  on the bit-exact host path (``degraded_host``).
* *deadlines and priorities* — ``submit(..., deadline_ns=...,
  priority=...)``.  A request whose deadline passes before its batch
  dispatches is dropped *before* it consumes any device cycles
  (``expired``); higher ``priority`` dispatches first, and waiting
  requests gain one effective level per ``aging_ns`` of simulated time so
  low-priority work is never starved.
* *retry budget* — device retries draw from one seeded token bucket per
  server (``retry_budget`` capacity, ``retry_refill`` per successful
  batch) with deterministic exponential backoff plus jitter, so a
  flapping channel cannot amplify offered load into a retry storm.
* *circuit breakers* — per lane: ``closed`` → ``open`` after
  ``breaker_threshold`` consecutive device batch failures (batches route
  straight to the host path while open) → ``half_open`` probe after
  ``breaker_cooldown_ns`` → ``closed`` on a successful probe.

Every submitted request ends in exactly one terminal
:class:`RequestOutcome`; dropped work costs zero device time.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import (
    PimChannelError,
    PimDataError,
    PimError,
    PimOverloadError,
    PimProgramError,
)
from .api import Request, ServerConfig, request_signature
from .blas import (
    add_reference,
    bn_reference,
    gemv_reference,
    mul_reference,
    relu_reference,
)
from .driver import ChannelSet
from .kernels import (
    ELEMENTWISE_OPS,
    ElementwiseKernel,
    ExecutionReport,
    GemvKernel,
)
from .profiler import Profiler, RequestStats, ServingProfile
from .runtime import PimSystem

__all__ = ["PimRequest", "PimServer", "Request", "RequestOutcome", "ServerConfig"]

#: Valid ``admission`` policies for a bounded lane queue.
ADMISSION_POLICIES = ("block", "shed", "degrade")


def _trace_attrs(request: "PimRequest") -> Dict[str, str]:
    """Span attributes carrying the caller's correlation id.

    Empty when the request has no ``trace_id``, so traces from callers
    that never set one stay byte-identical to the pre-fabric exports.
    """
    if request.trace_id is None:
        return {}
    return {"trace_id": request.trace_id}


class RequestOutcome(str, Enum):
    """Terminal disposition of one submitted request.

    Exactly one outcome is assigned to every request a :class:`PimServer`
    accepted (the conservation invariant the overload tests enforce):

    * ``COMPLETED`` — served by the PIM device.
    * ``REJECTED`` — shed at admission because the lane queue was full.
    * ``EXPIRED`` — its deadline passed before dispatch; zero device time.
    * ``DEGRADED_HOST`` — completed bit-exactly on the host golden path
      (admission degrade, open circuit breaker, retry exhaustion, or a
      dead lane).
    * ``FAILED`` — an unexpected error aborted the serving session before
      this request could finish.
    """

    COMPLETED = "completed"
    REJECTED = "rejected"
    EXPIRED = "expired"
    DEGRADED_HOST = "degraded_host"
    FAILED = "failed"


@dataclass
class PimRequest:
    """One operation submitted to the serving engine.

    ``op`` is ``"gemv"`` or one of the elementwise operators
    (``add``/``mul``/``relu``/``bn``).  After :meth:`PimServer.run` the
    request carries its result, execution report, queueing timestamps,
    and a terminal :class:`RequestOutcome`.
    """

    request_id: int
    op: str
    arrival_ns: float = 0.0
    a: Optional[np.ndarray] = None
    b: Optional[np.ndarray] = None
    weights: Optional[np.ndarray] = None
    scalars: Optional[Tuple[float, float]] = None
    # Scheduling class: higher dispatches first (aging prevents
    # starvation), and an absolute simulated-clock dispatch deadline
    # (None = never expires).
    priority: int = 0
    deadline_ns: Optional[float] = None
    # Caller-supplied correlation id, stamped on every span this request
    # produces (the key that reassembles a request across fabric shards).
    trace_id: Optional[str] = None
    # Filled in by the server.
    result: Optional[np.ndarray] = None
    report: object = None
    start_ns: float = 0.0
    finish_ns: float = 0.0
    batch_size: int = 1
    lane: int = 0
    # Fabric shard that served this request (0 outside a fabric).
    shard: int = 0
    # Fault-tolerance outcome: device retries consumed, and whether the
    # request completed on the host golden path.
    retries: int = 0
    fallback: bool = False
    # Terminal disposition (None until the server decides), and the
    # overload error attached to a shed request.
    outcome: Optional[RequestOutcome] = None
    error: Optional[Exception] = None
    _signature: Optional[Tuple] = field(
        default=None, repr=False, compare=False
    )

    @property
    def signature(self) -> Tuple:
        """Requests with equal signatures may share one fused launch.

        GEMV requests key on weight *content* (shape, dtype, and a digest
        of the bytes), never on object identity: a freed array's ``id()``
        can be reused by a later allocation, and the resident kernel only
        holds a padded copy — an identity key would silently serve the
        stale weights.  Equal-content matrices share one resident kernel,
        which keeps results bit-exact by construction.
        """
        if self._signature is None:
            self._signature = request_signature(
                self.op, a=self.a, weights=self.weights, scalars=self.scalars
            )
        return self._signature

    @property
    def wait_ns(self) -> float:
        return self.start_ns - self.arrival_ns

    @property
    def service_ns(self) -> float:
        return self.finish_ns - self.start_ns

    @property
    def turnaround_ns(self) -> float:
        return self.finish_ns - self.arrival_ns

    def stats(self) -> RequestStats:
        """This request's queueing statistics for the serving profile."""
        return RequestStats(
            request_id=self.request_id,
            op=self.op,
            arrival_ns=self.arrival_ns,
            start_ns=self.start_ns,
            finish_ns=self.finish_ns,
            batch_size=self.batch_size,
            lane=self.lane,
            retries=self.retries,
            fallback=self.fallback,
            priority=self.priority,
            shard=self.shard,
            trace_id=self.trace_id,
            outcome=(
                self.outcome.value
                if self.outcome is not None
                else RequestOutcome.COMPLETED.value
            ),
        )


@dataclass
class _Lane:
    """One leased channel set with its FIFO, clock, and circuit breaker.

    ``channels`` becomes ``None`` when healing quarantined the lane's last
    channel — a *dead* lane, whose batches complete on the host path.
    """

    index: int
    channels: Optional[ChannelSet]
    queue: Deque[PimRequest] = field(default_factory=deque)
    ready_ns: float = 0.0
    # Resident kernels keyed by request signature.
    gemv_kernels: Dict[Tuple, GemvKernel] = field(default_factory=dict)
    elementwise_kernels: Dict[Tuple, ElementwiseKernel] = field(
        default_factory=dict
    )
    # Submissions bound to this lane that run() has not yet consumed
    # (the quantity "block" admission bounds).
    backlog: int = 0
    # Circuit breaker: closed -> open after N consecutive device batch
    # failures -> half_open probe once the cooldown elapses -> closed.
    breaker_state: str = "closed"
    breaker_failures: int = 0
    breaker_open_until_ns: float = 0.0


#: Legacy keyword arguments of the pre-ServerConfig PimServer.__init__,
#: mapped 1:1 onto ServerConfig fields by the deprecation shim.
_LEGACY_SERVER_KWARGS = (
    "lanes",
    "max_batch",
    "simulate_pchs",
    "max_retries",
    "scrub_interval",
    "queue_depth",
    "admission",
    "aging_ns",
    "retry_budget",
    "retry_refill",
    "backoff_base_ns",
    "backoff_jitter",
    "breaker_threshold",
    "breaker_cooldown_ns",
    "seed",
)


class PimServer:
    """Serves concurrent PIM requests with batching and lane pipelining.

    ::

        server = PimServer(system, ServerConfig(lanes=2, max_batch=8))
        for i in range(64):
            server.submit(
                Request("gemv", weights=w, a=x[i], arrival_ns=i * 2000.0)
            )
        profile = server.run()
        print("\\n".join(profile.render()))

    Lanes lease disjoint channel sets from the device driver; operator
    signatures are bound to lanes round-robin in first-seen order, so two
    independent operators pipeline across channel sets instead of
    serialising behind a global drain.

    Configuration is one :class:`~repro.stack.api.ServerConfig`; knobs
    left at ``None`` inherit the system config's values (see the module
    docstring and ``docs/API.md`` for their semantics, and
    ``docs/MIGRATION.md`` for the old-to-new mapping).  ``queue_depth=0``
    forces an unbounded queue even when the config bounds it.  The
    historical keyword form ``PimServer(system, lanes=2, queue_depth=8,
    ...)`` still works behind a ``DeprecationWarning``.
    """

    def __init__(
        self,
        system: PimSystem,
        config: Optional[ServerConfig] = None,
        *,
        profiler: Optional[Profiler] = None,
        **legacy,
    ):
        driver = getattr(system, "driver", None)
        if driver is None:
            raise TypeError("PimServer needs a PimSystem with a device driver")
        if legacy:
            unknown = set(legacy) - set(_LEGACY_SERVER_KWARGS)
            if unknown:
                raise TypeError(f"unexpected arguments: {sorted(unknown)}")
            if config is not None:
                raise TypeError(
                    "pass either a ServerConfig or legacy kwargs, not both"
                )
            warnings.warn(
                "PimServer(lanes=..., max_batch=..., ...) is deprecated; "
                "pass a ServerConfig (see docs/MIGRATION.md)",
                DeprecationWarning,
                stacklevel=2,
            )
            config = ServerConfig(**legacy)
        elif config is None:
            config = ServerConfig()
        config = config.resolve(getattr(system, "config", None))
        if config.lanes < 1:
            raise ValueError("need at least one lane")
        free = len(driver.channels_free)
        per_lane, extra = divmod(free, config.lanes)
        if per_lane < 1:
            raise ValueError(
                f"cannot split {free} free channels into {config.lanes} lanes"
            )
        if config.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if config.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if config.admission not in ADMISSION_POLICIES:
            raise PimProgramError(
                f"admission must be one of {ADMISSION_POLICIES}, "
                f"got {config.admission!r}"
            )
        self.sys = system
        #: The fully-resolved serving configuration of this server.
        self.server_config = config
        lanes = config.lanes
        self.max_batch = config.max_batch
        self.max_retries = config.max_retries
        self.simulate_pchs = config.simulate_pchs
        self.scrub_interval = config.scrub_interval
        queue_depth = config.queue_depth
        if queue_depth is not None and queue_depth <= 0:
            queue_depth = None  # 0 forces the unbounded historical mode
        self.queue_depth = queue_depth
        self.admission = config.admission
        self.aging_ns = float(config.aging_ns)
        self.retry_budget = float(config.retry_budget)
        self.retry_refill = float(config.retry_refill)
        self.backoff_base_ns = float(config.backoff_base_ns)
        self.backoff_jitter = float(config.backoff_jitter)
        self.breaker_threshold = int(config.breaker_threshold)
        self.breaker_cooldown_ns = float(config.breaker_cooldown_ns)
        self._rng = np.random.default_rng(config.seed)
        self._retry_tokens = self.retry_budget
        self.injector = getattr(system, "fault_injector", None)
        self.profiler = profiler
        # Observability (repro.obs): both hooks come from the system
        # (SystemConfig.trace builds them) and default to None — every
        # hook site below costs one attribute test when disabled.
        self.tracer = getattr(system, "tracer", None)
        self.metrics = getattr(system, "metrics", None)
        # When lanes does not divide the free channel count, spread the
        # remainder over the first lanes so no channel sits permanently
        # idle (3 lanes on 4 channels -> 2+1+1, not 1+1+1 with one dark).
        self.lanes: List[_Lane] = [
            _Lane(
                index=i,
                channels=driver.alloc_channels(
                    per_lane + (1 if i < extra else 0)
                ),
            )
            for i in range(lanes)
        ]
        self._affinity: Dict[Tuple, int] = {}
        self._next_lane = 0
        self._next_id = 0
        self._pending: List[PimRequest] = []
        self._batches_since_scrub = 0
        self._closed = False
        # Durability (repro.journal): with journal_dir set, every
        # accepted request and every terminal outcome is appended to the
        # write-ahead log so recover(journal_dir) can rebuild the
        # session after a SIGKILL.  Imported lazily — the journal
        # package depends on the stack, not the other way around.
        self._journal = None
        if config.journal_dir:
            from ..journal.wal import JournalWriter

            self._journal = JournalWriter(
                config.journal_dir, sync=config.journal_sync
            )
            self._journal.append_meta(getattr(system, "config", None), config)

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Release kernel rows and return leased channels to the driver.

        Idempotent, and exactly-once even when :meth:`run` raised
        mid-batch: each lane's lease is dropped the moment it is released
        (``lane.channels = None``), and a kernel whose release fails
        cannot strand the remaining lanes' channels — every lease is
        returned before the first error (if any) propagates.
        """
        if self._closed:
            return
        self._closed = True
        if self._journal is not None:
            self._journal.close()
        driver = self.sys.driver
        first_error: Optional[BaseException] = None
        for lane in self.lanes:
            kernels = list(lane.gemv_kernels.values())
            kernels.extend(lane.elementwise_kernels.values())
            lane.gemv_kernels.clear()
            lane.elementwise_kernels.clear()
            for kernel in kernels:
                try:
                    kernel.release()
                except PimError as err:
                    if first_error is None:
                        first_error = err
            if lane.channels is not None:
                try:
                    driver.release_channels(lane.channels)
                except PimError as err:
                    if first_error is None:
                        first_error = err
                lane.channels = None
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "PimServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        request: Union[Request, str],
        a: Optional[np.ndarray] = None,
        b: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
        scalars: Optional[Tuple[float, float]] = None,
        arrival_ns: float = 0.0,
        priority: int = 0,
        deadline_ns: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> PimRequest:
        """Queue one request; returns the (not yet served) request handle.

        The blessed form takes one :class:`~repro.stack.api.Request`::

            server.submit(Request("gemv", weights=w, a=x, priority=1))

        The historical form ``submit("gemv", weights=w, a=x, ...)`` with
        a bare op string and operand keywords still works behind a
        ``DeprecationWarning`` (see ``docs/MIGRATION.md``).

        ``priority`` dispatches higher classes first (aging prevents
        starvation); ``deadline_ns`` is an absolute simulated-clock bound
        on *dispatch* — a request still queued past it is dropped with
        outcome ``expired`` before consuming any device cycles.

        With a bounded queue (``queue_depth``) in ``"block"`` mode this
        raises :class:`~repro.errors.PimOverloadError` once the target
        lane's backlog is full — synchronous backpressure to the
        producer.  Misuse raises :class:`~repro.errors.PimProgramError`
        (a ``ValueError``/``RuntimeError`` subclass, so historical
        ``except`` clauses keep working).
        """
        if self._closed:
            raise PimProgramError("server is closed")
        if isinstance(request, Request):
            req = request
        else:
            warnings.warn(
                "submit(op, a=..., weights=..., ...) is deprecated; pass a "
                "Request (see docs/MIGRATION.md)",
                DeprecationWarning,
                stacklevel=2,
            )
            req = Request(
                op=request,
                a=a,
                b=b,
                weights=weights,
                scalars=scalars,
                arrival_ns=float(arrival_ns),
                priority=int(priority),
                deadline_ns=(
                    None if deadline_ns is None else float(deadline_ns)
                ),
                trace_id=trace_id,
            )
        req.validate()
        request = PimRequest(
            request_id=self._next_id,
            op=req.op,
            arrival_ns=float(req.arrival_ns),
            a=req.a,
            b=req.b,
            weights=req.weights,
            scalars=req.scalars,
            priority=int(req.priority),
            deadline_ns=(
                None if req.deadline_ns is None else float(req.deadline_ns)
            ),
            trace_id=req.trace_id,
        )
        lane = self._lane_for(request.signature)
        if (
            self.queue_depth is not None
            and self.admission == "block"
            and lane.backlog >= self.queue_depth
        ):
            raise PimOverloadError(
                f"lane {lane.index} queue full "
                f"({lane.backlog}/{self.queue_depth}); back off and "
                f"resubmit after run()",
                lane=lane.index,
            )
        lane.backlog += 1
        self._next_id += 1
        self._pending.append(request)
        if self._journal is not None:
            # Journal the frozen Request (picklable, content-hashed) at
            # admission — before any placement or device work, so a
            # crash at any later instant still finds it on recovery.
            self._journal.append_accepted(request.request_id, req)
        return request

    def _journal_outcome(self, request: PimRequest) -> None:
        """Append one terminal outcome (result bytes included) to the WAL."""
        if self._journal is not None and request.outcome is not None:
            self._journal.append_outcome(
                request.request_id,
                request.trace_id,
                request.outcome.value,
                request.shard,
                request.result,
            )

    def _lane_for(self, signature: Tuple) -> _Lane:
        lane_index = self._affinity.get(signature)
        if lane_index is None:
            # Round-robin in first-seen order: independent operators land
            # on different lanes and pipeline across channel sets.
            lane_index = self._next_lane % len(self.lanes)
            self._next_lane += 1
            self._affinity[signature] = lane_index
        return self.lanes[lane_index]

    # -- execution ----------------------------------------------------------------

    def run(self) -> ServingProfile:
        """Serve every pending request and return the session's profile.

        Requests drain per lane in arrival order, reordered only by
        priority (with aging).  A dispatch takes the highest-effective-
        priority arrived request plus any queued same-signature requests
        that have arrived by dispatch time, up to ``max_batch``; requests
        of other signatures keep their relative order.  Expired and shed
        requests terminate without touching the device; every submitted
        request ends in exactly one terminal :class:`RequestOutcome`.
        """
        serving = ServingProfile()
        controllers = self.sys.controllers
        busy_before = [mc.busy_cycles for mc in controllers]
        cycle_before = max(mc.current_cycle for mc in controllers)
        ecc_before = self._device_ecc_corrected()
        scrub_corrected_before = serving.scrub_corrected
        touched: set = set()

        session = sorted(
            self._pending, key=lambda r: (r.arrival_ns, r.request_id)
        )
        for request in session:
            self.lanes[self._affinity[request.signature]].queue.append(request)
        self._pending = []

        try:
            for lane in self.lanes:
                self._drain_lane(lane, serving, touched)
        except BaseException:
            # Conservation even through a crash: anything the session did
            # not finish is terminally FAILED before the error surfaces.
            for request in session:
                if request.outcome is None:
                    request.outcome = RequestOutcome.FAILED
                    self._journal_outcome(request)
            raise
        finally:
            for lane in self.lanes:
                lane.queue.clear()
                lane.backlog = 0

        serving.makespan_cycles = (
            max(mc.current_cycle for mc in controllers) - cycle_before
        )
        for pch in sorted(touched):
            serving.channel_busy_cycles[pch] = (
                controllers[pch].busy_cycles - busy_before[pch]
            )
        # Inline corrections are the device-wide delta minus what the
        # background scrub repaired this session.
        scrubbed = serving.scrub_corrected - scrub_corrected_before
        serving.ecc_corrected += max(
            0, self._device_ecc_corrected() - ecc_before - scrubbed
        )
        if self.metrics is not None:
            serving.to_metrics(self.metrics)
        if self.profiler is not None:
            self.profiler.record_serving(serving)
        return serving

    # -- scheduling ---------------------------------------------------------------

    def _drain_lane(
        self, lane: _Lane, serving: ServingProfile, touched: set
    ) -> None:
        """Chronologically admit and dispatch one lane's request stream.

        ``lane.queue`` holds this run's arrivals in ``(arrival, id)``
        order; requests move through admission (where shed/degrade
        policies apply on the simulated clock) into the bounded
        ``admitted`` queue, and leave it in priority-with-aging order as
        batches — or as ``expired`` drops, before any device work.
        """
        inbox = lane.queue
        admitted: List[PimRequest] = []
        while inbox or admitted:
            if admitted:
                next_ns = max(
                    lane.ready_ns, min(r.arrival_ns for r in admitted)
                )
            else:
                next_ns = max(lane.ready_ns, inbox[0].arrival_ns)
            moved = False
            while inbox and inbox[0].arrival_ns <= next_ns:
                self._admit(lane, inbox.popleft(), admitted, serving)
                moved = True
            if moved:
                continue  # admissions may move the dispatch point
            if admitted:
                self._dispatch(lane, admitted, serving, touched)

    def _admit(
        self,
        lane: _Lane,
        request: PimRequest,
        admitted: List[PimRequest],
        serving: ServingProfile,
    ) -> None:
        """Admission control at one request's simulated arrival time."""
        if (
            request.deadline_ns is not None
            and request.arrival_ns > request.deadline_ns
        ):
            self._drop(
                lane, request, RequestOutcome.EXPIRED,
                request.arrival_ns, serving,
            )
            return
        if (
            self.queue_depth is not None
            and len(admitted) >= self.queue_depth
            and self.admission in ("shed", "degrade")
        ):
            if self.admission == "shed":
                request.error = PimOverloadError(
                    f"lane {lane.index} queue full at arrival "
                    f"({self.queue_depth} waiting)",
                    lane=lane.index,
                )
                self._drop(
                    lane, request, RequestOutcome.REJECTED,
                    request.arrival_ns, serving,
                )
            else:
                self._degrade_to_host(lane, request, serving)
            return
        admitted.append(request)

    def _drop(
        self,
        lane: _Lane,
        request: PimRequest,
        outcome: RequestOutcome,
        at_ns: float,
        serving: ServingProfile,
    ) -> None:
        """Terminate ``request`` without device work (shed or expired)."""
        request.start_ns = at_ns
        request.finish_ns = at_ns
        request.batch_size = 0
        request.lane = lane.index
        request.outcome = outcome
        serving.record(request.stats())
        self._journal_outcome(request)
        if self.tracer is not None:
            # A dropped request's span is a leaf: record() opens and
            # closes in one step, so no device span can ever nest in it.
            self.tracer.record(
                f"request:{request.op}",
                request.arrival_ns,
                at_ns,
                category="request",
                lane=lane.index,
                request_id=request.request_id,
                outcome=outcome.value,
                priority=request.priority,
                **_trace_attrs(request),
            )

    def _degrade_to_host(
        self, lane: _Lane, request: PimRequest, serving: ServingProfile
    ) -> None:
        """Serve one over-admission request immediately on the host path.

        The host starts at the request's arrival (no queueing — the point
        of degrading is to bypass the saturated lane) and the lane's
        clock is untouched: degraded work costs zero device time.
        """
        tracer = self.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                f"request:{request.op}",
                category="request",
                lane=lane.index,
                request_id=request.request_id,
                priority=request.priority,
                **_trace_attrs(request),
            )
        report = self._execute_host([request])
        request.report = report
        request.start_ns = request.arrival_ns
        request.finish_ns = request.arrival_ns + report.ns
        request.batch_size = 1
        request.lane = lane.index
        request.outcome = RequestOutcome.DEGRADED_HOST
        serving.record(request.stats())
        self._journal_outcome(request)
        serving.batches += 1
        if tracer is not None:
            tracer.record(
                f"host:{request.op}",
                request.start_ns,
                request.finish_ns,
                category="host",
                lane=lane.index,
                reason="admission_degrade",
            )
            tracer.finish(
                span,
                request.arrival_ns,
                request.finish_ns,
                outcome=RequestOutcome.DEGRADED_HOST.value,
            )

    def _effective_priority(self, request: PimRequest, now_ns: float) -> float:
        """Priority plus aging: one level per ``aging_ns`` of waiting."""
        if self.aging_ns <= 0:
            return float(request.priority)
        return request.priority + (now_ns - request.arrival_ns) / self.aging_ns

    def _dispatch(
        self,
        lane: _Lane,
        admitted: List[PimRequest],
        serving: ServingProfile,
        touched: set,
    ) -> None:
        """Form and execute one batch from the lane's admitted queue.

        Expired requests are purged first (zero device cycles); the head
        is the arrived request with the highest effective priority, and
        same-signature arrived requests join its fused launch up to
        ``max_batch``.
        """
        t0 = max(lane.ready_ns, min(r.arrival_ns for r in admitted))
        # Purge expirations among the arrived set (a deadline can only
        # pass after arrival, so unarrived requests cannot have expired).
        expired = [
            r
            for r in admitted
            if r.arrival_ns <= t0
            and r.deadline_ns is not None
            and t0 > r.deadline_ns
        ]
        for request in expired:
            admitted.remove(request)
            self._drop(
                lane, request, RequestOutcome.EXPIRED,
                max(request.arrival_ns, request.deadline_ns), serving,
            )
        eligible = [r for r in admitted if r.arrival_ns <= t0]
        if not eligible:
            return  # the dispatch point moved; the drain loop recomputes
        head = max(
            eligible,
            key=lambda r: (
                self._effective_priority(r, t0),
                -r.arrival_ns,
                -r.request_id,
            ),
        )
        batch = [head]
        for candidate in eligible:
            if len(batch) >= self.max_batch:
                break
            if candidate is head:
                continue
            if candidate.signature == head.signature:
                batch.append(candidate)
        for member in batch:
            admitted.remove(member)

        tracer = self.tracer
        head_span = dispatch_span = None
        if tracer is not None:
            # The batch span parents under the *head* request's span
            # (head.arrival_ns <= t0 by eligibility, so it nests); the
            # other members get sibling request spans referencing the
            # batch by id once the outcome is known.
            head_span = tracer.begin(
                f"request:{head.op}",
                category="request",
                lane=lane.index,
                request_id=head.request_id,
                priority=head.priority,
                **_trace_attrs(head),
            )
            dispatch_span = tracer.begin(
                "dispatch",
                category="dispatch",
                lane=lane.index,
                op=head.op,
                batch=len(batch),
            )
        before = tuple(lane.channels) if lane.channels is not None else ()
        report, penalty_ns, device_ok = self._execute_protected(
            lane, batch, serving, t0
        )
        after = tuple(lane.channels) if lane.channels is not None else ()
        if before or after:
            touched.update(before)
            touched.update(after)
        finish = t0 + penalty_ns + report.ns
        outcome = (
            RequestOutcome.COMPLETED if device_ok
            else RequestOutcome.DEGRADED_HOST
        )
        for member in batch:
            member.start_ns = t0
            member.finish_ns = finish
            member.report = report
            member.batch_size = len(batch)
            member.lane = lane.index
            member.outcome = outcome
            serving.record(member.stats())
            self._journal_outcome(member)
        if tracer is not None:
            tracer.finish(dispatch_span, t0, finish, device_ok=device_ok)
            tracer.finish(
                head_span, head.arrival_ns, finish, outcome=outcome.value
            )
            for member in batch:
                if member is head:
                    continue
                tracer.record(
                    f"request:{member.op}",
                    member.arrival_ns,
                    finish,
                    category="request",
                    lane=lane.index,
                    request_id=member.request_id,
                    outcome=outcome.value,
                    priority=member.priority,
                    batch_span=dispatch_span.span_id,
                    **_trace_attrs(member),
                )
        lane.ready_ns = finish
        serving.batches += 1
        serving.launches += int(report.notes.get("launches", 1))
        if self.profiler is not None:
            self.profiler.record(report)
        self._breaker_after_batch(lane, device_ok, finish, serving)
        if tracer is not None:
            # Between-batch housekeeping (injection epoch, scrub) lands
            # at the batch's finish on the serving clock.
            tracer.set_clock(finish, self._lane_cycle(lane))
        self._after_batch(serving)

    # -- circuit breaker ----------------------------------------------------------

    def _breaker_transition(
        self, lane: _Lane, state: str, at_ns: float, serving: ServingProfile
    ) -> None:
        """Move ``lane``'s breaker to ``state`` and log the transition."""
        serving.record_breaker(lane.index, lane.breaker_state, state, at_ns)
        if self.tracer is not None:
            self.tracer.event(
                f"breaker:{state}",
                at_ns=at_ns,
                category="breaker",
                lane=lane.index,
                previous=lane.breaker_state,
            )
        lane.breaker_state = state

    def _breaker_after_batch(
        self,
        lane: _Lane,
        device_ok: bool,
        finish_ns: float,
        serving: ServingProfile,
    ) -> None:
        """Update the lane's breaker with one batch's device verdict."""
        if self.breaker_threshold <= 0 or lane.channels is None:
            return
        if device_ok:
            lane.breaker_failures = 0
            if lane.breaker_state == "half_open":
                self._breaker_transition(lane, "closed", finish_ns, serving)
            return
        lane.breaker_failures += 1
        if lane.breaker_state == "half_open":
            # The probe failed: re-open and restart the cooldown.
            self._breaker_transition(lane, "open", finish_ns, serving)
            lane.breaker_open_until_ns = finish_ns + self.breaker_cooldown_ns
        elif (
            lane.breaker_state == "closed"
            and lane.breaker_failures >= self.breaker_threshold
        ):
            self._breaker_transition(lane, "open", finish_ns, serving)
            lane.breaker_open_until_ns = finish_ns + self.breaker_cooldown_ns

    def _execute_protected(
        self,
        lane: _Lane,
        batch: List[PimRequest],
        serving: ServingProfile,
        t0: float,
    ) -> Tuple[ExecutionReport, float, bool]:
        """Route one batch through the lane's circuit breaker.

        An open breaker short-circuits the device entirely (host path,
        zero device cycles) until the cooldown elapses; the first batch
        after it becomes a half-open probe with a single device attempt.
        Returns ``(report, penalty_ns, device_ok)``.
        """
        attempts: Optional[int] = None
        if (
            self.breaker_threshold > 0
            and lane.channels is not None
            and lane.breaker_state == "open"
        ):
            if t0 < lane.breaker_open_until_ns:
                serving.breaker_short_circuits += 1
                report = self._execute_host(batch)
                if self.tracer is not None:
                    self.tracer.event(
                        "breaker:short_circuit",
                        at_ns=t0,
                        category="breaker",
                        lane=lane.index,
                    )
                    self.tracer.record(
                        f"host:{batch[0].op}",
                        t0,
                        t0 + report.ns,
                        category="host",
                        lane=lane.index,
                        reason="breaker_open",
                    )
                return report, 0.0, False
            self._breaker_transition(lane, "half_open", t0, serving)
        if lane.breaker_state == "half_open":
            attempts = 1  # one probe attempt, no retries
        return self._execute_resilient(
            lane, batch, serving, t0, attempts_allowed=attempts
        )

    # -- fault tolerance ----------------------------------------------------------

    def _device_ecc_corrected(self) -> int:
        """Device-wide count of words corrected by the banks' SEC-DED."""
        total = 0
        for pch in range(self.sys.num_pchs):
            for bank in self.sys.device.pch(pch).banks:
                stats = getattr(bank, "ecc_stats", None)
                if stats is not None:
                    total += stats.corrected
        return total

    def _lane_cycle(self, lane: _Lane) -> int:
        if lane.channels is None:
            return 0
        controllers = self.sys.controllers
        return max(controllers[p].current_cycle for p in lane.channels)

    def _after_batch(self, serving: ServingProfile) -> None:
        """Between batches: one injection epoch, plus scrub when due."""
        if self.injector is not None:
            injected = self.injector.tick()
            serving.faults_injected += injected
            if injected and self.tracer is not None:
                self.tracer.event(
                    "faults", category="fault", injected=injected
                )
        if self.scrub_interval <= 0:
            return
        self._batches_since_scrub += 1
        if self._batches_since_scrub < self.scrub_interval:
            return
        self._batches_since_scrub = 0
        result = self.sys.driver.scrub()
        serving.scrubs += 1
        serving.scrub_corrected += result.corrected
        serving.scrub_uncorrectable += result.uncorrectable_words

    def _backoff_ns(self, attempt: int) -> float:
        """Deterministic exponential backoff with seeded jitter.

        ``attempt`` counts from 1; the delay doubles per attempt and is
        jittered by up to ±``backoff_jitter`` of itself, drawn from the
        server's seeded generator so runs replay byte-identically.
        """
        backoff = self.backoff_base_ns * (2.0 ** (attempt - 1))
        if self.backoff_jitter > 0.0:
            backoff *= 1.0 + self.backoff_jitter * (
                2.0 * float(self._rng.random()) - 1.0
            )
        return backoff

    def _execute_resilient(
        self,
        lane: _Lane,
        batch: List[PimRequest],
        serving: ServingProfile,
        t0: float,
        attempts_allowed: Optional[int] = None,
    ) -> Tuple[ExecutionReport, float, bool]:
        """Execute a batch, healing and retrying on recoverable faults.

        Returns ``(report, penalty_ns, device_ok)`` where ``penalty_ns``
        is the simulated time lost to failed attempts and retry backoff
        (the batch's finish time includes it) and ``device_ok`` tells
        whether the device — rather than the host golden path — produced
        the result.  Retries beyond the first attempt spend one token
        each from the server-wide seeded budget and pay exponential
        backoff with jitter; exhaustion of either bound — or a dead lane
        — falls back to the bit-exact host golden path, so the batch
        *always* completes.  ``t0`` is the batch's dispatch time on the
        serving clock, used only to place trace spans.
        """
        if attempts_allowed is None:
            attempts_allowed = self.max_retries + 1
        tracer = self.tracer
        failures = 0
        penalty_ns = 0.0
        while lane.channels is not None:
            cycle_start = self._lane_cycle(lane)
            attempt_ns = t0 + penalty_ns
            kernel_span = mark = None
            if tracer is not None:
                # Re-base the cycle clock so this attempt's controller
                # bursts land inside the kernel span on the request
                # timeline (channels lagging the lane front clamp to the
                # attempt start).
                tracer.set_clock(attempt_ns, cycle_start)
                mark = tracer.mark()
                kernel_span = tracer.begin(
                    f"kernel:{batch[0].op}",
                    category="kernel",
                    lane=lane.index,
                    attempt=failures + 1,
                )
            try:
                report = self._execute(lane, batch)
            except (PimChannelError, PimDataError) as err:
                failures += 1
                wasted = self._lane_cycle(lane) - cycle_start
                wasted_ns = self.sys.cycles_to_ns(max(0, wasted))
                penalty_ns += wasted_ns
                if tracer is not None:
                    end_ns = attempt_ns + wasted_ns
                    tracer.finish(
                        kernel_span,
                        attempt_ns,
                        end_ns,
                        ok=False,
                        error=type(err).__name__,
                    )
                    tracer.clamp_since(mark, attempt_ns, end_ns)
                    tracer.event(
                        "fault",
                        at_ns=end_ns,
                        category="fault",
                        lane=lane.index,
                        error=type(err).__name__,
                        attempt=failures,
                    )
                self._heal_lane(lane, err, serving)
                if failures >= attempts_allowed:
                    break
                if self._retry_tokens < 1.0:
                    serving.retry_budget_exhausted += 1
                    break
                self._retry_tokens -= 1.0
                backoff = self._backoff_ns(failures)
                penalty_ns += backoff
                serving.retries += 1
                for member in batch:
                    member.retries += 1
                if tracer is not None:
                    tracer.event(
                        "retry",
                        at_ns=t0 + penalty_ns,
                        category="retry",
                        lane=lane.index,
                        attempt=failures,
                        backoff_ns=backoff,
                    )
            else:
                # A successful device batch earns back part of a token.
                self._retry_tokens = min(
                    self.retry_budget, self._retry_tokens + self.retry_refill
                )
                if tracer is not None:
                    end_ns = attempt_ns + report.ns
                    tracer.finish(kernel_span, attempt_ns, end_ns, ok=True)
                    tracer.clamp_since(mark, attempt_ns, end_ns)
                return report, penalty_ns, True
        report = self._execute_host(batch)
        serving.fallbacks += len(batch)
        for member in batch:
            member.fallback = True
        if tracer is not None:
            fallback_ns = t0 + penalty_ns
            tracer.event(
                "fallback",
                at_ns=fallback_ns,
                category="fallback",
                lane=lane.index,
                reason="dead_lane" if lane.channels is None else "retries",
            )
            tracer.record(
                f"host:{batch[0].op}",
                fallback_ns,
                fallback_ns + report.ns,
                category="host",
                lane=lane.index,
                reason="fallback",
            )
        return report, penalty_ns, False

    def _heal_lane(
        self, lane: _Lane, error: PimError, serving: ServingProfile
    ) -> None:
        """Recover a lane after a fault unwound through a kernel.

        1. Release every resident kernel (their rows may hold the
           corruption; a retry re-stages from the host copy).
        2. On a channel hard failure, quarantine the named channels
           through the driver (unattributable channel failures retire the
           whole set) and try to backfill the lane from the free pool.
        3. Reset every surviving channel: abandon queued requests and
           force the way out of any stranded AB(-PIM) state.

        A lane whose last channel is quarantined becomes *dead*
        (``channels = None``); its traffic completes on the host path.
        """
        driver = self.sys.driver
        kernels = list(lane.gemv_kernels.values())
        kernels.extend(lane.elementwise_kernels.values())
        lane.gemv_kernels.clear()
        lane.elementwise_kernels.clear()
        for kernel in kernels:
            try:
                kernel.release()
            except PimError:
                pass  # rows already reclaimed; nothing else to free
        channels = tuple(lane.channels) if lane.channels is not None else ()
        bad = tuple(
            p for p in getattr(error, "channels", ()) if p in channels
        )
        if isinstance(error, PimChannelError) and not bad:
            bad = channels
        if bad:
            driver.quarantine_channels(bad)
            serving.quarantined_channels.extend(bad)
        survivors = [p for p in channels if p not in bad]
        deficit = len(channels) - len(survivors)
        if deficit > 0:
            available = len(driver.channels_free)
            if available > 0:
                leased = driver.alloc_channels(min(deficit, available))
                survivors.extend(leased.channels)
        for p in survivors:
            self.sys.controllers[p].reset_channel()
        lane.channels = (
            ChannelSet(tuple(survivors)) if survivors else None
        )

    def _host_ns(self, batch: List[PimRequest]) -> float:
        """Simulated duration of a host-fallback batch.

        The host re-reads the operands over the off-chip interface at the
        workload's achievable bandwidth efficiency (the same model
        :mod:`repro.host.processor` uses for host baselines) plus one
        kernel-launch overhead for the batch.
        """
        host = self.sys.host
        head = batch[0]
        io_bw = self.sys.device.config.io_bandwidth_bytes_per_sec
        if head.op == "gemv":
            efficiency = host.gemv_bandwidth_efficiency
            nbytes = head.weights.size * 2  # weights stream once per batch
            for member in batch:
                nbytes += np.asarray(member.a).size * 2  # x in
                nbytes += head.weights.shape[0] * 4  # fp32 y out
        else:
            efficiency = host.add_bandwidth_efficiency
            operands = 3 if ELEMENTWISE_OPS[head.op].uses_second_operand else 2
            nbytes = sum(
                np.asarray(member.a).size * 2 * operands for member in batch
            )
        return host.kernel_launch_ns + nbytes / (io_bw * efficiency) * 1e9

    def _execute_host(self, batch: List[PimRequest]) -> ExecutionReport:
        """Serve a batch on the host golden path (bit-exact fallback).

        The references in :mod:`repro.stack.blas` reproduce the device's
        exact arithmetic (FP16 MAC order for GEMV, FP16 rounding for the
        elementwise ops), so a request completed here is indistinguishable
        from one served by a healthy device.
        """
        head = batch[0]
        for member in batch:
            if head.op == "gemv":
                member.result = gemv_reference(
                    member.weights, member.a, self.sys.num_pchs
                )
            elif head.op == "add":
                member.result = add_reference(member.a, member.b)
            elif head.op == "mul":
                member.result = mul_reference(member.a, member.b)
            elif head.op == "relu":
                member.result = relu_reference(member.a)
            elif head.op == "bn":
                gamma, beta = member.scalars or (1.0, 0.0)
                member.result = bn_reference(member.a, gamma, beta)
            else:  # pragma: no cover - submit() validated the op already
                raise PimProgramError(f"unknown op {head.op!r}")
        ns = self._host_ns(batch)
        if head.op == "gemv":
            host_bytes = head.weights.size * 2 + sum(
                np.asarray(m.a).size * 2 + head.weights.shape[0] * 4
                for m in batch
            )
        else:
            operands = 3 if ELEMENTWISE_OPS[head.op].uses_second_operand else 2
            host_bytes = sum(
                np.asarray(m.a).size * 2 * operands for m in batch
            )
        return ExecutionReport(
            kernel=f"host-fallback:{head.op}",
            ns=ns,
            host_bytes=int(host_bytes),
            total_pchs=self.sys.num_pchs,
            notes={"launches": 0, "host_fallback": float(len(batch))},
        )

    def _execute(self, lane: _Lane, batch: List[PimRequest]):
        head = batch[0]
        if head.op == "gemv":
            kernel = lane.gemv_kernels.get(head.signature)
            if kernel is None:
                kernel = GemvKernel(
                    self.sys,
                    head.weights.shape[0],
                    head.weights.shape[1],
                    channels=lane.channels.channels,
                    max_batch=self.max_batch,
                )
                try:
                    kernel.load_weights(head.weights)
                except BaseException:
                    # Staging failed (e.g. a dead channel): free the
                    # kernel's rows before the fault propagates, or every
                    # retry would leak a fresh allocation.
                    kernel.release()
                    raise
                lane.gemv_kernels[head.signature] = kernel
            xs = np.stack([np.asarray(r.a, dtype=np.float16) for r in batch])
            ys, report = kernel.batched(
                xs, simulate_pchs=self.simulate_pchs, fused=True
            )
            for request, y in zip(batch, ys):
                request.result = y
        else:
            kernel = lane.elementwise_kernels.get(head.signature)
            if kernel is None:
                kernel = ElementwiseKernel(
                    self.sys,
                    head.op,
                    int(np.asarray(head.a).size),
                    channels=lane.channels.channels,
                )
                lane.elementwise_kernels[head.signature] = kernel
            items = [(r.a, r.b, r.scalars) for r in batch]
            results, report = kernel.batched(
                items, simulate_pchs=self.simulate_pchs
            )
            for request, result in zip(batch, results):
                request.result = result
        return report
