"""A pipelined multi-request serving engine over the PIM runtime.

Section V of the paper describes a software stack whose device driver and
runtime let *multiple* user-level workloads share one PIM-HBM device.  This
module models that serving layer:

* **lanes** — the device's pseudo-channels are split into disjoint
  :class:`~repro.stack.driver.ChannelSet` leases ("lanes").  Channels are
  controlled independently (Section VIII), so lanes advance on independent
  clocks: a GEMV batch on lane 0 overlaps — in simulated time — with an
  elementwise batch on lane 1.  Per-channel-set fences
  (:meth:`~repro.host.processor.HostSystem.drain_set`) keep each lane's
  stream ordered without ever stalling another lane.
* **batching** — contiguous same-operator requests queued on a lane are
  fused into one kernel launch: one SB->AB transition, one CRF broadcast,
  and one kernel-launch overhead cover up to ``max_batch`` requests
  (:meth:`GemvKernel.batched(fused=True) <repro.stack.kernels.GemvKernel.batched>`
  and :meth:`ElementwiseKernel.batched
  <repro.stack.kernels.ElementwiseKernel.batched>`).  Results are
  bit-identical to sequential calls; only the setup overheads amortise.
* **accounting** — every request's wait / service / turnaround time and the
  aggregate throughput and per-channel occupancy land in a
  :class:`~repro.stack.profiler.ServingProfile`.

The arrival process is externally supplied (``submit`` takes an
``arrival_ns``), so offered load is entirely under the caller's control —
see ``benchmarks/bench_serving.py``.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from .driver import ChannelSet
from .kernels import ELEMENTWISE_OPS, ElementwiseKernel, GemvKernel
from .profiler import Profiler, RequestStats, ServingProfile
from .runtime import PimSystem

__all__ = ["PimRequest", "PimServer"]


@dataclass
class PimRequest:
    """One operation submitted to the serving engine.

    ``op`` is ``"gemv"`` or one of the elementwise operators
    (``add``/``mul``/``relu``/``bn``).  After :meth:`PimServer.run` the
    request carries its result, execution report, and queueing timestamps.
    """

    request_id: int
    op: str
    arrival_ns: float = 0.0
    a: Optional[np.ndarray] = None
    b: Optional[np.ndarray] = None
    weights: Optional[np.ndarray] = None
    scalars: Optional[Tuple[float, float]] = None
    # Filled in by the server.
    result: Optional[np.ndarray] = None
    report: object = None
    start_ns: float = 0.0
    finish_ns: float = 0.0
    batch_size: int = 1
    lane: int = 0
    _signature: Optional[Tuple] = field(
        default=None, repr=False, compare=False
    )

    @property
    def signature(self) -> Tuple:
        """Requests with equal signatures may share one fused launch.

        GEMV requests key on weight *content* (shape, dtype, and a digest
        of the bytes), never on object identity: a freed array's ``id()``
        can be reused by a later allocation, and the resident kernel only
        holds a padded copy — an identity key would silently serve the
        stale weights.  Equal-content matrices share one resident kernel,
        which keeps results bit-exact by construction.
        """
        if self._signature is None:
            if self.op == "gemv":
                w = np.ascontiguousarray(self.weights)
                digest = hashlib.sha1(w.tobytes()).hexdigest()
                self._signature = ("gemv", w.shape, str(w.dtype), digest)
            else:
                scalar_key = (
                    None
                    if self.scalars is None
                    else tuple(float(s) for s in self.scalars)
                )
                self._signature = (
                    self.op,
                    int(np.asarray(self.a).size),
                    scalar_key,
                )
        return self._signature

    @property
    def wait_ns(self) -> float:
        return self.start_ns - self.arrival_ns

    @property
    def service_ns(self) -> float:
        return self.finish_ns - self.start_ns

    @property
    def turnaround_ns(self) -> float:
        return self.finish_ns - self.arrival_ns

    def stats(self) -> RequestStats:
        """This request's queueing statistics for the serving profile."""
        return RequestStats(
            request_id=self.request_id,
            op=self.op,
            arrival_ns=self.arrival_ns,
            start_ns=self.start_ns,
            finish_ns=self.finish_ns,
            batch_size=self.batch_size,
            lane=self.lane,
        )


@dataclass
class _Lane:
    """One leased channel set with its FIFO and clock."""

    index: int
    channels: ChannelSet
    queue: Deque[PimRequest] = field(default_factory=deque)
    ready_ns: float = 0.0
    # Resident kernels keyed by request signature.
    gemv_kernels: Dict[Tuple, GemvKernel] = field(default_factory=dict)
    elementwise_kernels: Dict[Tuple, ElementwiseKernel] = field(
        default_factory=dict
    )


class PimServer:
    """Serves concurrent PIM requests with batching and lane pipelining.

    ::

        server = PimServer(system, lanes=2, max_batch=8)
        for i in range(64):
            server.submit("gemv", weights=w, a=x[i], arrival_ns=i * 2000.0)
        profile = server.run()
        print("\\n".join(profile.render()))

    Lanes lease disjoint channel sets from the device driver; operator
    signatures are bound to lanes round-robin in first-seen order, so two
    independent operators pipeline across channel sets instead of
    serialising behind a global drain.
    """

    def __init__(
        self,
        system: PimSystem,
        lanes: int = 2,
        max_batch: int = 8,
        simulate_pchs: Optional[int] = None,
        profiler: Optional[Profiler] = None,
    ):
        driver = getattr(system, "driver", None)
        if driver is None:
            raise TypeError("PimServer needs a PimSystem with a device driver")
        if lanes < 1:
            raise ValueError("need at least one lane")
        free = len(driver.channels_free)
        per_lane, extra = divmod(free, lanes)
        if per_lane < 1:
            raise ValueError(
                f"cannot split {free} free channels into {lanes} lanes"
            )
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.sys = system
        self.max_batch = max_batch
        if simulate_pchs is None:
            config = getattr(system, "config", None)
            simulate_pchs = config.simulate_pchs if config is not None else None
        self.simulate_pchs = simulate_pchs
        self.profiler = profiler
        # When lanes does not divide the free channel count, spread the
        # remainder over the first lanes so no channel sits permanently
        # idle (3 lanes on 4 channels -> 2+1+1, not 1+1+1 with one dark).
        self.lanes: List[_Lane] = [
            _Lane(
                index=i,
                channels=driver.alloc_channels(
                    per_lane + (1 if i < extra else 0)
                ),
            )
            for i in range(lanes)
        ]
        self._affinity: Dict[Tuple, int] = {}
        self._next_lane = 0
        self._next_id = 0
        self._pending: List[PimRequest] = []
        self._closed = False

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Release kernel rows and return leased channels to the driver."""
        if self._closed:
            return
        self._closed = True
        driver = self.sys.driver
        for lane in self.lanes:
            for kernel in lane.gemv_kernels.values():
                kernel.release()
            for kernel in lane.elementwise_kernels.values():
                kernel.release()
            driver.release_channels(lane.channels)

    def __enter__(self) -> "PimServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        op: str,
        a: Optional[np.ndarray] = None,
        b: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
        scalars: Optional[Tuple[float, float]] = None,
        arrival_ns: float = 0.0,
    ) -> PimRequest:
        """Queue one request; returns the (not yet served) request object."""
        if self._closed:
            raise RuntimeError("server is closed")
        if op == "gemv":
            if weights is None or a is None:
                raise ValueError("gemv needs weights and an input vector")
        elif op in ELEMENTWISE_OPS:
            if a is None:
                raise ValueError(f"{op} needs an input vector")
            if ELEMENTWISE_OPS[op].uses_second_operand and b is None:
                raise ValueError(f"{op} needs a second operand")
        else:
            raise ValueError(f"unknown op {op!r}")
        request = PimRequest(
            request_id=self._next_id,
            op=op,
            arrival_ns=float(arrival_ns),
            a=a,
            b=b,
            weights=weights,
            scalars=scalars,
        )
        self._next_id += 1
        self._pending.append(request)
        return request

    def _lane_for(self, signature: Tuple) -> _Lane:
        lane_index = self._affinity.get(signature)
        if lane_index is None:
            # Round-robin in first-seen order: independent operators land
            # on different lanes and pipeline across channel sets.
            lane_index = self._next_lane % len(self.lanes)
            self._next_lane += 1
            self._affinity[signature] = lane_index
        return self.lanes[lane_index]

    # -- execution ----------------------------------------------------------------

    def run(self) -> ServingProfile:
        """Serve every pending request and return the session's profile.

        Requests drain in arrival order per lane.  A dispatch takes the
        head of the lane's queue plus any queued same-signature requests
        that have arrived by dispatch time, up to ``max_batch``; requests
        of other signatures keep their relative order.
        """
        serving = ServingProfile()
        controllers = self.sys.controllers
        busy_before = [mc.busy_cycles for mc in controllers]
        cycle_before = max(mc.current_cycle for mc in controllers)

        for request in sorted(
            self._pending, key=lambda r: (r.arrival_ns, r.request_id)
        ):
            self._lane_for(request.signature).queue.append(request)
        self._pending = []

        for lane in self.lanes:
            while lane.queue:
                head = lane.queue.popleft()
                t0 = max(lane.ready_ns, head.arrival_ns)
                batch = [head]
                skipped: Deque[PimRequest] = deque()
                while lane.queue and len(batch) < self.max_batch:
                    candidate = lane.queue.popleft()
                    if (
                        candidate.signature == head.signature
                        and candidate.arrival_ns <= t0
                    ):
                        batch.append(candidate)
                    else:
                        skipped.append(candidate)
                while skipped:
                    lane.queue.appendleft(skipped.pop())
                report = self._execute(lane, batch)
                finish = t0 + report.ns
                for member in batch:
                    member.start_ns = t0
                    member.finish_ns = finish
                    member.report = report
                    member.batch_size = len(batch)
                    member.lane = lane.index
                    serving.record(member.stats())
                lane.ready_ns = finish
                serving.batches += 1
                serving.launches += int(report.notes.get("launches", 1))
                if self.profiler is not None:
                    self.profiler.record(report)

        serving.makespan_cycles = (
            max(mc.current_cycle for mc in controllers) - cycle_before
        )
        for lane in self.lanes:
            for pch in lane.channels:
                serving.channel_busy_cycles[pch] = (
                    controllers[pch].busy_cycles - busy_before[pch]
                )
        if self.profiler is not None:
            self.profiler.record_serving(serving)
        return serving

    def _execute(self, lane: _Lane, batch: List[PimRequest]):
        head = batch[0]
        if head.op == "gemv":
            kernel = lane.gemv_kernels.get(head.signature)
            if kernel is None:
                kernel = GemvKernel(
                    self.sys,
                    head.weights.shape[0],
                    head.weights.shape[1],
                    channels=lane.channels.channels,
                    max_batch=self.max_batch,
                )
                kernel.load_weights(head.weights)
                lane.gemv_kernels[head.signature] = kernel
            xs = np.stack([np.asarray(r.a, dtype=np.float16) for r in batch])
            ys, report = kernel.batched(
                xs, simulate_pchs=self.simulate_pchs, fused=True
            )
            for request, y in zip(batch, ys):
                request.result = y
        else:
            kernel = lane.elementwise_kernels.get(head.signature)
            if kernel is None:
                kernel = ElementwiseKernel(
                    self.sys,
                    head.op,
                    int(np.asarray(head.a).size),
                    channels=lane.channels.channels,
                )
                lane.elementwise_kernels[head.signature] = kernel
            items = [(r.a, r.b, r.scalars) for r in batch]
            results, report = kernel.batched(
                items, simulate_pchs=self.simulate_pchs
            )
            for request, result in zip(batch, results):
                request.result = result
        return report
