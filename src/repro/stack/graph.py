"""A miniature TensorFlow-style graph framework with PIM support (Fig. 6).

The point the paper demonstrates is that *unmodified application source*
runs on PIM: the user builds a graph from generic ops, and the **PIM
preprocessor** rewrites eligible ops to PIM BLAS calls at runtime (the
orange "native execution path" of Fig. 6).  Power users can instead call
**PIM custom ops** explicitly (the "PIM-direct execution path" of Fig. 7).

Supported generic ops: ``matvec`` (dense matrix x vector), ``add``, ``mul``,
``relu``, ``batch_norm``, ``lstm``, ``sigmoid``, ``tanh``.  Custom ops:
``pim_gemv``, ``pim_add``, ``pim_mul``, ``pim_relu``, ``pim_bn``,
``pim_lstm`` — the six custom TF operations of Section V-A.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .blas import PimBlas
from .kernels import ExecutionReport
from .runtime import PimSystem

__all__ = [
    "Node",
    "GraphBuilder",
    "GraphExecutor",
    "RunReport",
    "PIM_ELIGIBLE_OPS",
    "PIM_CUSTOM_OPS",
]

_counter = itertools.count()

# Generic ops the preprocessor may offload, and their custom-op equivalents.
PIM_ELIGIBLE_OPS = {
    "matvec": "pim_gemv",
    "add": "pim_add",
    "mul": "pim_mul",
    "relu": "pim_relu",
    "batch_norm": "pim_bn",
    "lstm": "pim_lstm",
}
PIM_CUSTOM_OPS = set(PIM_ELIGIBLE_OPS.values())

# Below this many elements, offload overhead dominates and the preprocessor
# leaves the op on the host.
PIM_MIN_ELEMENTS = 256


@dataclass
class Node:
    """One graph node: an op applied to input nodes with constant params."""

    op: str
    inputs: List["Node"] = field(default_factory=list)
    params: Dict[str, np.ndarray] = field(default_factory=dict)
    attrs: Dict[str, Any] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"{self.op}_{next(_counter)}"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


class GraphBuilder:
    """Convenience constructors for graph nodes (the user-facing API)."""

    @staticmethod
    def placeholder(name: str) -> Node:
        return Node("placeholder", attrs={"key": name}, name=name)

    @staticmethod
    def matvec(w: np.ndarray, x: Node, name: str = "") -> Node:
        return Node("matvec", [x], params={"w": np.asarray(w, np.float16)}, name=name)

    @staticmethod
    def add(a: Node, b: Node, name: str = "") -> Node:
        return Node("add", [a, b], name=name)

    @staticmethod
    def mul(a: Node, b: Node, name: str = "") -> Node:
        return Node("mul", [a, b], name=name)

    @staticmethod
    def relu(x: Node, name: str = "") -> Node:
        return Node("relu", [x], name=name)

    @staticmethod
    def batch_norm(x: Node, gamma: float, beta: float, name: str = "") -> Node:
        return Node("batch_norm", [x], attrs={"gamma": gamma, "beta": beta}, name=name)

    @staticmethod
    def last(x: Node, name: str = "") -> Node:
        """Select the last time step of a sequence (host-only op)."""
        return Node("last", [x], name=name)

    @staticmethod
    def sigmoid(x: Node, name: str = "") -> Node:
        return Node("sigmoid", [x], name=name)

    @staticmethod
    def tanh(x: Node, name: str = "") -> Node:
        return Node("tanh", [x], name=name)

    @staticmethod
    def lstm(
        x_seq: Node,
        w_ih: np.ndarray,
        w_hh: np.ndarray,
        bias: np.ndarray,
        name: str = "",
    ) -> Node:
        return Node(
            "lstm",
            [x_seq],
            params={
                "w_ih": np.asarray(w_ih, np.float16),
                "w_hh": np.asarray(w_hh, np.float16),
                "bias": np.asarray(bias, np.float32),
            },
            name=name,
        )

    # -- explicit PIM custom ops (the PIM-direct path) ----------------------------

    @staticmethod
    def custom(op: str, *inputs: Node, **kwargs: Any) -> Node:
        if op not in PIM_CUSTOM_OPS:
            raise ValueError(f"{op!r} is not a PIM custom op")
        params = {k: v for k, v in kwargs.items() if isinstance(v, np.ndarray)}
        attrs = {k: v for k, v in kwargs.items() if not isinstance(v, np.ndarray)}
        return Node(op, list(inputs), params=params, attrs=attrs)


@dataclass
class RunReport:
    """Aggregate of one graph execution."""

    pim_reports: List[ExecutionReport] = field(default_factory=list)
    offloaded_nodes: List[str] = field(default_factory=list)
    host_nodes: List[str] = field(default_factory=list)

    @property
    def pim_cycles(self) -> int:
        return sum(r.cycles for r in self.pim_reports)

    @property
    def pim_launches(self) -> int:
        return len(self.pim_reports)


class GraphExecutor:
    """Runs a graph on the host, optionally offloading to PIM.

    ``backend='host'`` computes everything in numpy (FP16 elementwise /
    FP32 accumulation — the precision a real host kernel would use).
    ``backend='pim'`` applies the preprocessor: every eligible op above the
    size threshold is dispatched to the PIM BLAS, without any change to the
    graph the user built.
    """

    def __init__(
        self,
        outputs: Sequence[Node],
        backend: str = "host",
        system: Optional[PimSystem] = None,
        simulate_pchs: Optional[int] = None,
        min_elements: int = PIM_MIN_ELEMENTS,
    ):
        if backend not in ("host", "pim"):
            raise ValueError("backend must be 'host' or 'pim'")
        if backend == "pim" and system is None:
            raise ValueError("the pim backend needs a PimSystem")
        self.outputs = list(outputs)
        self.backend = backend
        self.blas = PimBlas(system, simulate_pchs=simulate_pchs) if system else None
        self.min_elements = min_elements
        self.order = self._toposort(self.outputs)

    @staticmethod
    def _toposort(outputs: Sequence[Node]) -> List[Node]:
        seen: Dict[Node, bool] = {}
        order: List[Node] = []

        def visit(node: Node) -> None:
            state = seen.get(node)
            if state is True:
                return
            if state is False:
                raise ValueError("graph contains a cycle")
            seen[node] = False
            for parent in node.inputs:
                visit(parent)
            seen[node] = True
            order.append(node)

        for node in outputs:
            visit(node)
        return order

    # -- the preprocessor's offload decision ---------------------------------------

    def _offloads(self, node: Node, values: List[np.ndarray]) -> bool:
        if self.backend != "pim":
            return False
        op = node.op
        if op in PIM_CUSTOM_OPS:
            return True  # explicit custom op: always PIM
        if op not in PIM_ELIGIBLE_OPS:
            return False
        size = max((v.size for v in values), default=0)
        for param in node.params.values():
            size = max(size, param.size)
        return size >= self.min_elements

    # -- execution -------------------------------------------------------------------

    def run(
        self, feeds: Optional[Dict[str, np.ndarray]] = None
    ) -> Tuple[List[np.ndarray], RunReport]:
        """Execute the graph; returns output values and a run report."""
        feeds = feeds or {}
        report = RunReport()
        values: Dict[Node, np.ndarray] = {}
        for node in self.order:
            ins = [values[p] for p in node.inputs]
            if self._offloads(node, ins):
                values[node] = self._run_pim(node, ins, report)
                report.offloaded_nodes.append(node.name)
            else:
                values[node] = self._run_host(node, ins, feeds)
                if node.op != "placeholder":
                    report.host_nodes.append(node.name)
        return [values[n] for n in self.outputs], report

    def _run_host(
        self, node: Node, ins: List[np.ndarray], feeds: Dict[str, np.ndarray]
    ) -> np.ndarray:
        op = node.op
        if op == "placeholder":
            key = node.attrs["key"]
            if key not in feeds:
                raise KeyError(f"missing feed for placeholder {key!r}")
            return np.asarray(feeds[key], dtype=np.float16)
        if op in ("matvec", "pim_gemv"):
            w = node.params["w"]
            return (w.astype(np.float32) @ ins[0].astype(np.float32)).astype(np.float32)
        if op in ("add", "pim_add"):
            return (ins[0].astype(np.float16) + ins[1].astype(np.float16)).astype(np.float16)
        if op in ("mul", "pim_mul"):
            return (ins[0].astype(np.float16) * ins[1].astype(np.float16)).astype(np.float16)
        if op in ("relu", "pim_relu"):
            return np.maximum(ins[0], 0).astype(ins[0].dtype)
        if op in ("batch_norm", "pim_bn"):
            gamma = np.float16(node.attrs["gamma"])
            beta = np.float16(node.attrs["beta"])
            x = ins[0].astype(np.float16)
            return ((x * gamma).astype(np.float16) + beta).astype(np.float16)
        if op == "last":
            return np.asarray(ins[0])[-1]
        if op == "sigmoid":
            return (1.0 / (1.0 + np.exp(-ins[0].astype(np.float32)))).astype(np.float32)
        if op == "tanh":
            return np.tanh(ins[0].astype(np.float32)).astype(np.float32)
        if op in ("lstm", "pim_lstm"):
            return self._host_lstm(node, ins[0])
        raise ValueError(f"unknown op {op!r}")

    def _host_lstm(self, node: Node, x_seq: np.ndarray) -> np.ndarray:
        w_ih = node.params["w_ih"].astype(np.float32)
        w_hh = node.params["w_hh"].astype(np.float32)
        bias = node.params["bias"].astype(np.float32)
        hidden = w_hh.shape[1]
        h = np.zeros(hidden, dtype=np.float32)
        c = np.zeros(hidden, dtype=np.float32)
        outs = []
        for x in np.asarray(x_seq, dtype=np.float32):
            gates = w_ih @ x + w_hh @ h + bias
            i, f, g, o = np.split(1.0 * gates, 4)
            i, f, o = _sig(i), _sig(f), _sig(o)
            g = np.tanh(g)
            c = f * c + i * g
            h = o * np.tanh(c)
            outs.append(h.copy())
        return np.stack(outs).astype(np.float16)

    def _run_pim(
        self, node: Node, ins: List[np.ndarray], report: RunReport
    ) -> np.ndarray:
        assert self.blas is not None
        op = PIM_ELIGIBLE_OPS.get(node.op, node.op)
        if op == "pim_gemv":
            y, rep = self.blas.gemv(node.params["w"], ins[0].astype(np.float16))
            report.pim_reports.append(rep)
            return y
        if op == "pim_add":
            out, rep = self.blas.add(ins[0], ins[1])
            report.pim_reports.append(rep)
            return out.reshape(np.asarray(ins[0]).shape)
        if op == "pim_mul":
            out, rep = self.blas.mul(ins[0], ins[1])
            report.pim_reports.append(rep)
            return out.reshape(np.asarray(ins[0]).shape)
        if op == "pim_relu":
            out, rep = self.blas.relu(ins[0])
            report.pim_reports.append(rep)
            return out.reshape(np.asarray(ins[0]).shape)
        if op == "pim_bn":
            out, rep = self.blas.bn(ins[0], node.attrs["gamma"], node.attrs["beta"])
            report.pim_reports.append(rep)
            return out.reshape(np.asarray(ins[0]).shape)
        if op == "pim_lstm":
            return self._pim_lstm(node, ins[0], report)
        raise ValueError(f"cannot offload {node.op!r}")

    def _pim_lstm(self, node: Node, x_seq: np.ndarray, report: RunReport) -> np.ndarray:
        w_ih = node.params["w_ih"]
        w_hh = node.params["w_hh"]
        bias = node.params["bias"]
        hidden = w_hh.shape[1]
        h = np.zeros(hidden, dtype=np.float16)
        c = np.zeros(hidden, dtype=np.float16)
        outs = []
        for x in np.asarray(x_seq, dtype=np.float16):
            h, c, reps = self.blas.lstm_cell(w_ih, w_hh, bias, x, h, c)
            report.pim_reports.extend(reps)
            outs.append(h.copy())
        return np.stack(outs)


def _sig(v: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-v))
