"""The PIM memory manager (Section V-A) and data-layout helpers (Fig. 15).

Three responsibilities from the paper:

* govern the memory the driver reserved (delegated to
  :class:`repro.stack.driver.PimDeviceDriver`);
* cache generated **microkernel code** so repeated invocations skip the CRF
  reprogramming commands ("stores not only generated PIM microkernel code
  ... in cache area for later use");
* place operand data **PIM-friendly**: Fig. 15(b) requires elementwise
  operands at 128-byte-aligned boundaries with vectors padded ("concatenate
  dummy values") to the PIM chunk multiple.

The layout helpers reason about *physical addresses* through
:class:`repro.host.memmap.AddressMap`, demonstrating the paper's claim that
the architecture is agnostic to the host's interleaving scheme as long as
the BLAS knows it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..host.memmap import AddressMap, DramAddress
from ..pim.assembler import assemble_words

__all__ = [
    "MicrokernelCache",
    "PimLayout",
    "aligned_size",
    "pad_vector",
    "chunk_locations",
]


class MicrokernelCache:
    """Caches assembled CRF images by source text.

    The runtime consults this before programming the CRF; a hit means the
    device already holds the microkernel and the register writes can be
    skipped entirely (the PIM memory manager's "cache area").
    """

    def __init__(self) -> None:
        self._images: Dict[str, List[int]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, source: str) -> List[int]:
        """The CRF image for ``source``, assembling on first use."""
        words = self._images.get(source)
        if words is None:
            self.misses += 1
            words = assemble_words(source)
            self._images[source] = words
        else:
            self.hits += 1
        return words

    def __len__(self) -> int:
        return len(self._images)


def aligned_size(num_elements: int, chunk_bytes: int = 256, dtype_bytes: int = 2) -> int:
    """Elements after padding to the PIM chunk multiple (Fig. 15(b)).

    A 256-byte chunk is 8 columns x 32 bytes — the GRF capacity one AAM
    window covers.  Vectors that are not a multiple get dummy elements
    concatenated; the paper notes the overhead is negligible for the large
    vectors PIM targets.
    """
    chunk_elems = chunk_bytes // dtype_bytes
    return -(-num_elements // chunk_elems) * chunk_elems


def pad_vector(values: np.ndarray, chunk_bytes: int = 256) -> np.ndarray:
    """Pad an FP16 vector with dummy zeros to the PIM chunk multiple."""
    values = np.asarray(values, dtype=np.float16).reshape(-1)
    total = aligned_size(values.size, chunk_bytes)
    if total == values.size:
        return values.copy()
    out = np.zeros(total, dtype=np.float16)
    out[: values.size] = values
    return out


@dataclass(frozen=True)
class PimLayout:
    """Physical placement of one operand vector under an address map.

    ``base`` must be aligned to the PIM chunk (128-byte boundaries in the
    paper's Fig. 15(b) example with 4-column chunks; 256 bytes with our
    8-column GRF window) so that every chunk occupies whole columns of a
    single bank row.
    """

    amap: AddressMap
    base: int
    num_elements: int
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if self.base % self.chunk_bytes:
            raise ValueError(
                f"operand base {self.base:#x} is not {self.chunk_bytes}-byte aligned"
            )

    @property
    def chunk_bytes(self) -> int:
        return self.amap.pim_chunk_bytes

    @property
    def padded_elements(self) -> int:
        return aligned_size(self.num_elements, self.chunk_bytes, self.dtype_bytes)

    @property
    def num_chunks(self) -> int:
        return self.padded_elements * self.dtype_bytes // self.chunk_bytes

    def chunk_address(self, index: int) -> DramAddress:
        """DRAM coordinates of chunk ``index`` (its first column)."""
        if not 0 <= index < self.num_chunks:
            raise IndexError(f"chunk {index} out of range")
        return self.amap.decode(self.base + index * self.chunk_bytes)

    def element_address(self, index: int) -> DramAddress:
        """DRAM coordinates of one element."""
        if not 0 <= index < self.num_elements:
            raise IndexError(f"element {index} out of range")
        return self.amap.decode(self.base + index * self.dtype_bytes)

    def chunks_are_bank_local(self) -> bool:
        """True iff every chunk's 8 columns share one (pch, bank, row) —
        the property the Fig. 15(a) mapping guarantees and PIM requires."""
        for chunk in range(self.num_chunks):
            first = self.chunk_address(chunk)
            for col in range(1, self.chunk_bytes // 32):
                addr = self.amap.decode(self.base + chunk * self.chunk_bytes + col * 32)
                if (addr.pch, addr.bg, addr.ba, addr.row) != (
                    first.pch, first.bg, first.ba, first.row,
                ):
                    return False
        return True


def chunk_locations(layout: PimLayout) -> List[Tuple[int, int, int, int]]:
    """(pch, bank_index, row, col_base) of each chunk — what a kernel needs
    to build its lock-step command stream for this operand."""
    out = []
    for chunk in range(layout.num_chunks):
        addr = layout.chunk_address(chunk)
        out.append((addr.pch, addr.bank_index, addr.row, addr.col))
    return out
