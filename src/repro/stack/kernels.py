"""PIM microkernels, data layouts, and host command-stream generation.

This module is the "PIM kernel" layer of Fig. 7: given operands laid out in
the PIM region, it programs a microkernel into the CRF and generates the
DRAM request stream (with thread-group fences) whose column commands trigger
the microkernel's instructions.

Layout conventions (chosen to match the architecture's constraints and
documented in DESIGN.md):

* **GEMV** ``y = W @ x`` — outputs are tiled across units and lanes
  (8 units x 16 lanes = 128 outputs per tile per pCH); the input dimension
  is sliced across pseudo-channels and swept in chunks of 8.  Weights live
  in each unit's EVEN bank, one 16-lane output group per 32-byte column.
  Per chunk the host WRs the 8 replicated x values (triggering
  ``MOV GRF_A[A] <- HOST``) and then RDs the 8 weight columns (triggering
  ``MAC GRF_B[A] += EVEN_BANK * GRF_A[A]``) — the 50% staging commands the
  SRW variant of Fig. 14 eliminates.  Partial sums are written back with a
  ``MOV EVEN_BANK[A] <- GRF_B[A]`` epilogue and reduced by the host
  (8 sub-accumulators per lane, one slice per pCH).
* **Elementwise** (ADD/MUL/ReLU/BN) — operand A in EVEN banks, operand B at
  the same (row, col) of ODD banks, results at column+16 of EVEN banks, so
  one lock-step address stream feeds both operands and the output.

Every 8-command run is followed by a fence: address-aligned mode can absorb
reordering only within the 8-register GRF window (Section IV-C / VII-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dram.pseudochannel import BANKS_PER_PCH
from ..pim.device import UNITS_PER_PCH, PimPseudoChannel
from ..pim.registers import GRF_REG_BYTES, LANES
from ..pim.isa import GRF_REGS
from ..pim.assembler import assemble_words
from ..host.processor import HostSystem

__all__ = [
    "ExecutionReport",
    "PimSession",
    "GemvKernel",
    "ElementwiseKernel",
    "ELEMENTWISE_OPS",
]

_COL_GROUP = GRF_REGS  # 8 columns per AAM window / fence interval


@dataclass
class ExecutionReport:
    """What one PIM kernel invocation did and how long it took."""

    kernel: str
    cycles: int = 0
    ns: float = 0.0
    column_commands: int = 0
    activates: int = 0
    fences: int = 0
    pim_instructions: int = 0
    pim_flops: int = 0
    host_bytes: int = 0  # bytes that crossed the off-chip interface
    simulated_pchs: int = 0
    total_pchs: int = 0
    notes: Dict[str, float] = field(default_factory=dict)

    def scale_factor(self) -> float:
        """Commands of one simulated pCH represent this many device-wide."""
        if self.simulated_pchs == 0:
            return 1.0
        return self.total_pchs / self.simulated_pchs


def _alloc_rows(system: HostSystem, count: int):
    """Allocate row sets through the system's PIM device driver.

    Kernels never hard-code placements: physically contiguous row sets come
    from the driver (Section V-A), which also keeps the register-mapped
    region off limits.  Systems without a driver (bare test rigs) fall back
    to a per-system bump allocator with the same semantics.
    """
    driver = getattr(system, "driver", None)
    if driver is None:
        from .driver import PimDeviceDriver

        driver = PimDeviceDriver(system.device)
        system.driver = driver  # type: ignore[attr-defined]
    return driver.alloc_rows(count)


def _bank_coords(bank_index: int) -> Tuple[int, int]:
    return bank_index // 4, bank_index % 4


def _dummy_column() -> np.ndarray:
    return np.zeros(GRF_REG_BYTES, dtype=np.uint8)


class PimSession:
    """Mode transitions and register programming over standard commands.

    All methods run through the memory controllers, so their cost lands in
    the same cycle accounting as the data phases.
    """

    def __init__(self, system: HostSystem):
        self.sys = system
        channel = system.device.pch(0)
        if not isinstance(channel, PimPseudoChannel):
            raise TypeError("PimSession requires a PIM-HBM device")
        self.map = channel.memory_map

    def _each(self, count: Optional[int] = None):
        controllers = self.sys.controllers
        if count is not None:
            controllers = controllers[:count]
        return controllers

    # -- mode transitions ------------------------------------------------------

    def enter_ab(self, pchs: Optional[int] = None) -> None:
        """PREA + (ACT, PRE) to the ABMR row on every channel."""
        for mc in self._each(pchs):
            mc.drain()
            mc.precharge_all()
            mc.closed_page_access(0, 0, self.map.abmr_row)

    def exit_to_sb(self, pchs: Optional[int] = None) -> None:
        """PREA + (ACT, PRE) to the SBMR row: back to standard DRAM."""
        for mc in self._each(pchs):
            mc.drain()
            mc.precharge_all()
            mc.closed_page_access(0, 0, self.map.sbmr_row)

    def set_pim_op_mode(self, mc, enable: bool) -> None:
        """Queue the PIM_OP_MODE register write on one controller."""
        data = _dummy_column()
        data[0] = 1 if enable else 0
        mc.fence()
        mc.write(0, 0, self.map.conf_row, self.map.PIM_OP_MODE_COL, data)
        mc.fence()

    # -- register programming ----------------------------------------------------

    def program_crf(self, source: str, pchs: Optional[int] = None) -> None:
        """Assemble and broadcast a microkernel into every unit's CRF.

        The memory manager caches microkernel code (Section V-A): when a
        channel already holds this exact program, the register writes are
        skipped entirely.
        """
        from .memory import MicrokernelCache

        cache = getattr(self.sys, "_microkernel_cache", None)
        if cache is None:
            cache = MicrokernelCache()
            self.sys._microkernel_cache = cache  # type: ignore[attr-defined]
        loaded = getattr(self.sys, "_crf_loaded", None)
        if loaded is None:
            loaded = {}
            self.sys._crf_loaded = loaded  # type: ignore[attr-defined]
        words = cache.get(source)
        image = np.array(words, dtype="<u4").view(np.uint8)
        cols = len(image) // GRF_REG_BYTES
        for index, mc in enumerate(self._each(pchs)):
            if loaded.get(index) == source:
                continue  # the CRF already holds this microkernel
            for col in range(cols):
                chunk = image[col * GRF_REG_BYTES : (col + 1) * GRF_REG_BYTES]
                mc.write(0, 0, self.map.crf_row, col, chunk)
            mc.fence()
            loaded[index] = source

    def zero_grf_b(self, mc) -> None:
        """Clear the 8 GRF_B accumulators via register-mapped writes."""
        for col in range(GRF_REGS, 2 * GRF_REGS):
            mc.write(0, 0, self.map.grf_row, col, _dummy_column())
        mc.fence()

    def write_srf(
        self,
        mul_scalars: Optional[np.ndarray] = None,
        add_scalars: Optional[np.ndarray] = None,
        pchs: Optional[int] = None,
    ) -> None:
        """Program SRF_M / SRF_A (each 8 FP16 scalars, zero-padded)."""
        for mc in self._each(pchs):
            for col, values in ((0, mul_scalars), (1, add_scalars)):
                if values is None:
                    continue
                payload = np.zeros(GRF_REG_BYTES, dtype=np.uint8)
                scalars = np.asarray(values, dtype=np.float16)
                payload[: scalars.size * 2] = scalars.view(np.uint8)
                mc.write(0, 0, self.map.srf_row, col, payload)
            mc.fence()


# ---------------------------------------------------------------------------
# GEMV
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GemvPlan:
    """Placement plan for one GEMV operand set."""

    m: int
    n: int
    num_pchs: int
    n_slice: int  # padded input dims per pCH
    chunks: int  # n_slice // 8
    tiles: int  # output tiles of 128
    chunks_per_row: int
    rows_per_tile: int
    weight_base_row: int
    out_base_row: int

    @property
    def outputs_per_tile(self) -> int:
        return UNITS_PER_PCH * LANES

    def weight_location(self, tile: int, chunk: int) -> Tuple[int, int]:
        """(row, column base) of a weight chunk for one tile."""
        row = self.weight_base_row + tile * self.rows_per_tile + chunk // self.chunks_per_row
        col_base = (chunk % self.chunks_per_row) * _COL_GROUP
        return row, col_base

    def out_location(self, tile: int) -> Tuple[int, int]:
        """(row, column base) of a tile's 8 partial-sum columns."""
        tiles_per_row = self.chunks_per_row
        row = self.out_base_row + tile // tiles_per_row
        col_base = (tile % tiles_per_row) * _COL_GROUP
        return row, col_base


class GemvKernel:
    """A resident GEMV operator: weights staged once, invoked per input.

    This mirrors the PIM memory manager's behaviour (Section V-A): the
    weight matrix is rearranged into the PIM-friendly layout when the model
    is loaded, and each invocation only streams the input vector and the
    triggering commands.
    """

    MICROKERNEL = """
    MOV  GRF_A[A], HOST            ; stage 8 replicated x values (WR)
    JUMP -1, 7
    MAC  GRF_B[A], EVEN_BANK, GRF_A[A]  ; 8 weight columns (RD)
    JUMP -1, 7
    JUMP -4, {reps}                ; one iteration per input chunk
    MOV  EVEN_BANK[A], GRF_B[A]    ; write 8 partial-sum registers (WR)
    JUMP -1, 7
    EXIT
    """

    def __init__(self, system: HostSystem, m: int, n: int):
        self.sys = system
        self.session = PimSession(system)
        self.m = m
        self.n = n
        self.plan = self._plan(m, n)
        self._weights: Optional[np.ndarray] = None  # padded, fp16

    def _plan(self, m: int, n: int) -> GemvPlan:
        num_pchs = self.sys.num_pchs
        cols_per_row = self.sys.device.config.bank_config.cols_per_row
        chunks_per_row = cols_per_row // _COL_GROUP
        n_slice = -(-n // num_pchs)
        n_slice = -(-n_slice // _COL_GROUP) * _COL_GROUP
        chunks = n_slice // _COL_GROUP
        tiles = -(-m // (UNITS_PER_PCH * LANES))
        rows_per_tile = -(-chunks // chunks_per_row)
        weight_rows = tiles * rows_per_tile
        out_rows = -(-tiles // chunks_per_row)
        block = _alloc_rows(self.sys, weight_rows + out_rows)
        return GemvPlan(
            m=m,
            n=n,
            num_pchs=num_pchs,
            n_slice=n_slice,
            chunks=chunks,
            tiles=tiles,
            chunks_per_row=chunks_per_row,
            rows_per_tile=rows_per_tile,
            weight_base_row=block.start,
            out_base_row=block.start + weight_rows,
        )

    # -- staging ------------------------------------------------------------------

    def load_weights(self, w: np.ndarray) -> None:
        """Rearrange and stage the weight matrix into the PIM region.

        Performed by the PIM BLAS when weights are first brought to memory
        (Section VIII); not part of per-invocation timing.
        """
        w = np.asarray(w, dtype=np.float16)
        if w.shape != (self.m, self.n):
            raise ValueError(f"expected {(self.m, self.n)} weights, got {w.shape}")
        plan = self.plan
        padded = np.zeros(
            (plan.tiles * plan.outputs_per_tile, plan.num_pchs * plan.n_slice),
            dtype=np.float16,
        )
        padded[: self.m, : self.n] = w
        self._weights = padded
        for p in range(plan.num_pchs):
            channel = self.sys.device.pch(p)
            for tile in range(plan.tiles):
                for chunk in range(plan.chunks):
                    row, col_base = plan.weight_location(tile, chunk)
                    for j in range(_COL_GROUP):
                        dim = p * plan.n_slice + chunk * _COL_GROUP + j
                        for unit in range(UNITS_PER_PCH):
                            out0 = tile * plan.outputs_per_tile + unit * LANES
                            column = np.ascontiguousarray(
                                padded[out0 : out0 + LANES, dim]
                            )
                            channel.banks[2 * unit].poke(
                                row, col_base + j, column.view(np.uint8)
                            )

    # -- invocation ---------------------------------------------------------------

    def __call__(
        self, x: np.ndarray, simulate_pchs: Optional[int] = None
    ) -> Tuple[np.ndarray, ExecutionReport]:
        """Run ``y = W @ x`` on the PIM device.

        ``simulate_pchs`` limits cycle-accurate simulation to the first N
        pseudo-channels (all channels execute identical streams, so the
        timing is exact); the remaining slices are computed with the
        bit-equivalent vectorised model and their results staged so the
        device state matches a full run.
        """
        if self._weights is None:
            raise RuntimeError("load_weights() before invoking the kernel")
        x = np.asarray(x, dtype=np.float16)
        if x.shape != (self.n,):
            raise ValueError(f"expected input of shape ({self.n},)")
        plan = self.plan
        nsim = plan.num_pchs if simulate_pchs is None else min(simulate_pchs, plan.num_pchs)
        x_padded = np.zeros(plan.num_pchs * plan.n_slice, dtype=np.float16)
        x_padded[: self.n] = x

        report = ExecutionReport(
            kernel=f"gemv[{self.m}x{self.n}]",
            simulated_pchs=nsim,
            total_pchs=plan.num_pchs,
        )
        start = self.sys.drain_all()
        self.session.enter_ab(pchs=nsim)
        self.session.program_crf(
            self.MICROKERNEL.format(reps=plan.chunks - 1), pchs=nsim
        )
        for p in range(nsim):
            self._stream_pch(p, x_padded)
        self.session.exit_to_sb(pchs=nsim)
        for p in range(nsim, plan.num_pchs):
            self._shortcut_pch(p, x_padded)
        partials = self._read_partials(nsim)
        end = self.sys.drain_all()

        y = partials.astype(np.float32).sum(axis=(0, 1))[: self.m]
        self._fill_report(report, start, end)
        return y, report

    def batched(
        self, xs: np.ndarray, simulate_pchs: Optional[int] = None
    ) -> Tuple[np.ndarray, ExecutionReport]:
        """Run a batch of inputs through the resident operator.

        PIM processes batch elements *sequentially* (the device has no
        batch dimension), which is exactly why Fig. 10 shows the speedup
        shrinking with batch size while the host amortises into GEMM.
        The operator setup (weights, microkernel cache) is shared.
        """
        xs = np.asarray(xs, dtype=np.float16)
        if xs.ndim != 2 or xs.shape[1] != self.n:
            raise ValueError(f"expected batch of shape (B, {self.n})")
        outputs = []
        merged = ExecutionReport(
            kernel=f"gemv[{self.m}x{self.n}]xB{xs.shape[0]}",
            total_pchs=self.plan.num_pchs,
        )
        for x in xs:
            y, report = self(x, simulate_pchs=simulate_pchs)
            outputs.append(y)
            merged.cycles += report.cycles
            merged.ns += report.ns
            merged.column_commands += report.column_commands
            merged.fences += report.fences
            merged.pim_instructions += report.pim_instructions
            merged.pim_flops += report.pim_flops
            merged.host_bytes += report.host_bytes
            merged.simulated_pchs = report.simulated_pchs
        return np.stack(outputs), merged

    def _stream_pch(self, p: int, x_padded: np.ndarray) -> None:
        plan = self.plan
        mc = self.sys.controller(p)
        for tile in range(plan.tiles):
            self.session.zero_grf_b(mc)
            self.session.set_pim_op_mode(mc, True)
            for chunk in range(plan.chunks):
                row, col_base = plan.weight_location(tile, chunk)
                for j in range(_COL_GROUP):
                    value = x_padded[p * plan.n_slice + chunk * _COL_GROUP + j]
                    burst = np.full(LANES, value, dtype=np.float16).view(np.uint8)
                    mc.write(0, 0, row, col_base + j, burst)
                mc.fence()
                for j in range(_COL_GROUP):
                    mc.read(0, 0, row, col_base + j)
                mc.fence()
            out_row, out_base = plan.out_location(tile)
            for j in range(_COL_GROUP):
                mc.write(0, 0, out_row, out_base + j, _dummy_column())
            mc.fence()
            self.session.set_pim_op_mode(mc, False)
            mc.drain()

    def _shortcut_pch(self, p: int, x_padded: np.ndarray) -> None:
        """Bit-equivalent functional model of one pCH's slice.

        Reproduces the sequential FP16 MAC order (one MAC per chunk into
        each sub-accumulator) and pokes the partial sums where the epilogue
        MOV would have written them.
        """
        plan = self.plan
        channel = self.sys.device.pch(p)
        w = self._weights
        for tile in range(plan.tiles):
            out0 = tile * plan.outputs_per_tile
            acc = np.zeros((plan.outputs_per_tile, _COL_GROUP), dtype=np.float16)
            for chunk in range(plan.chunks):
                dims = p * plan.n_slice + chunk * _COL_GROUP
                wk = w[out0 : out0 + plan.outputs_per_tile, dims : dims + _COL_GROUP]
                xk = x_padded[dims : dims + _COL_GROUP]
                prod = (wk * xk[np.newaxis, :]).astype(np.float16)
                acc = (acc + prod).astype(np.float16)
            out_row, out_base = plan.out_location(tile)
            for unit in range(UNITS_PER_PCH):
                for j in range(_COL_GROUP):
                    column = np.ascontiguousarray(
                        acc[unit * LANES : (unit + 1) * LANES, j]
                    )
                    channel.banks[2 * unit].poke(
                        out_row, out_base + j, column.view(np.uint8)
                    )

    def _read_partials(self, nsim: int) -> np.ndarray:
        """Read partial sums back (timed SB-mode reads on simulated pCHs)."""
        plan = self.plan
        partials = np.zeros(
            (plan.num_pchs, _COL_GROUP, plan.tiles * plan.outputs_per_tile),
            dtype=np.float16,
        )
        for p in range(plan.num_pchs):
            mc = self.sys.controller(p)
            timed = p < nsim
            columns = {}
            for tile in range(plan.tiles):
                out_row, out_base = plan.out_location(tile)
                for unit in range(UNITS_PER_PCH):
                    bg, ba = _bank_coords(2 * unit)
                    for j in range(_COL_GROUP):
                        if timed:
                            mc.read(bg, ba, out_row, out_base + j, tag=(tile, unit, j))
            if timed:
                columns = mc.drain().read_data
            channel = self.sys.device.pch(p)
            for tile in range(plan.tiles):
                out_row, out_base = plan.out_location(tile)
                out0 = tile * plan.outputs_per_tile
                for unit in range(UNITS_PER_PCH):
                    for j in range(_COL_GROUP):
                        if timed:
                            raw = columns[(tile, unit, j)]
                        else:
                            raw = channel.banks[2 * unit].peek(out_row, out_base + j)
                        partials[p, j, out0 + unit * LANES : out0 + (unit + 1) * LANES] = (
                            raw.view(np.float16)
                        )
        return partials

    def _fill_report(self, report: ExecutionReport, start: int, end: int) -> None:
        report.cycles = end - start
        report.ns = (
            self.sys.cycles_to_ns(report.cycles) + self.sys.host.kernel_launch_ns
        )
        plan = self.plan
        per_pch_cols = plan.tiles * (plan.chunks * 2 * _COL_GROUP + _COL_GROUP)
        report.column_commands = per_pch_cols * report.simulated_pchs
        report.fences = plan.tiles * (plan.chunks * 2 + 3) * report.simulated_pchs
        units = UNITS_PER_PCH
        report.pim_instructions = per_pch_cols * units * report.simulated_pchs
        report.pim_flops = (
            plan.tiles * plan.chunks * _COL_GROUP * units * LANES * 2
        ) * report.simulated_pchs
        # Off-chip traffic: the staged x bursts plus partial-sum readback.
        report.host_bytes = (
            plan.tiles * plan.chunks * _COL_GROUP * GRF_REG_BYTES
            + plan.tiles * units * _COL_GROUP * GRF_REG_BYTES
        ) * report.simulated_pchs


# ---------------------------------------------------------------------------
# Elementwise kernels (ADD / MUL / ReLU / BN)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ElementwiseOp:
    """Shape of one elementwise microkernel."""

    name: str
    microkernel: str
    uses_second_operand: bool
    commands_per_group: int  # column commands per 8-column group
    fences_per_group: int
    instructions_per_group: int
    flops_per_element: int


ELEMENTWISE_OPS: Dict[str, ElementwiseOp] = {
    "add": ElementwiseOp(
        name="add",
        microkernel="""
        FILL GRF_A[A], EVEN_BANK       ; operand A (8 RDs)
        JUMP -1, 7
        ADD  GRF_B[A], GRF_A[A], ODD_BANK  ; operand B (8 RDs)
        JUMP -1, 7
        MOV  EVEN_BANK[A], GRF_B[A]    ; result (8 WRs)
        JUMP -1, 7
        JUMP -6, {reps}
        EXIT
        """,
        uses_second_operand=True,
        commands_per_group=24,
        fences_per_group=3,
        instructions_per_group=24,
        flops_per_element=1,
    ),
    "mul": ElementwiseOp(
        name="mul",
        microkernel="""
        FILL GRF_A[A], EVEN_BANK
        JUMP -1, 7
        MUL  GRF_B[A], GRF_A[A], ODD_BANK
        JUMP -1, 7
        MOV  EVEN_BANK[A], GRF_B[A]
        JUMP -1, 7
        JUMP -6, {reps}
        EXIT
        """,
        uses_second_operand=True,
        commands_per_group=24,
        fences_per_group=3,
        instructions_per_group=24,
        flops_per_element=1,
    ),
    "relu": ElementwiseOp(
        name="relu",
        microkernel="""
        FILL GRF_A[A], EVEN_BANK
        JUMP -1, 7
        MOV(RELU) EVEN_BANK[A], GRF_A[A]
        JUMP -1, 7
        JUMP -4, {reps}
        EXIT
        """,
        uses_second_operand=False,
        commands_per_group=16,
        fences_per_group=2,
        instructions_per_group=16,
        flops_per_element=0,
    ),
    "bn": ElementwiseOp(
        name="bn",
        # Inference batch-norm folded to y = gamma' * x + beta'
        # (Section II-A); scalars broadcast from SRF_M / SRF_A.
        microkernel="""
        MAD  GRF_B[A], EVEN_BANK, SRF_M[A], SRF_A[A]
        JUMP -1, 7
        MOV  EVEN_BANK[A], GRF_B[A]
        JUMP -1, 7
        JUMP -4, {reps}
        EXIT
        """,
        uses_second_operand=False,
        commands_per_group=16,
        fences_per_group=2,
        instructions_per_group=16,
        flops_per_element=2,
    ),
}


@dataclass(frozen=True)
class ElementwisePlan:
    length: int
    num_pchs: int
    blocks: int  # padded 16-element blocks, total
    seq_per_unit: int  # blocks per unit stream (padded to 8)
    groups: int  # 8-column groups per unit stream
    base_row: int
    in_cols: int  # input columns per row (outputs at +in_cols)

    def location(self, seq: int) -> Tuple[int, int]:
        """(row, column) of block ``seq`` within a unit's stream."""
        row = self.base_row + seq // self.in_cols
        col = seq % self.in_cols
        return row, col


class ElementwiseKernel:
    """Elementwise vector operator over the PIM region."""

    def __init__(self, system: HostSystem, op: str, length: int):
        if op not in ELEMENTWISE_OPS:
            raise ValueError(f"unknown elementwise op {op!r}")
        self.sys = system
        self.session = PimSession(system)
        self.op = ELEMENTWISE_OPS[op]
        self.length = length
        self.plan = self._plan(length)
        self.srf_scalars: Tuple[float, float] = (1.0, 0.0)  # gamma, beta for BN

    def _plan(self, length: int) -> ElementwisePlan:
        num_pchs = self.sys.num_pchs
        cols_per_row = self.sys.device.config.bank_config.cols_per_row
        in_cols = cols_per_row // 2  # half the row for inputs, half for results
        stride = num_pchs * UNITS_PER_PCH
        blocks = -(-length // LANES)
        blocks = -(-blocks // stride) * stride
        seq = blocks // stride
        seq = -(-seq // _COL_GROUP) * _COL_GROUP
        blocks = seq * stride
        groups = seq // _COL_GROUP
        rows = -(-seq // in_cols)
        block = _alloc_rows(self.sys, rows)
        return ElementwisePlan(
            length=length,
            num_pchs=num_pchs,
            blocks=blocks,
            seq_per_unit=seq,
            groups=groups,
            base_row=block.start,
            in_cols=in_cols,
        )

    # -- staging -------------------------------------------------------------------

    def _scatter(self, values: np.ndarray, odd: bool) -> None:
        """Place a padded vector into the even (or odd) banks."""
        plan = self.plan
        padded = np.zeros(plan.blocks * LANES, dtype=np.float16)
        padded[: self.length] = values
        blocks = padded.reshape(plan.blocks, LANES)
        for b in range(plan.blocks):
            p = b % plan.num_pchs
            rest = b // plan.num_pchs
            unit = rest % UNITS_PER_PCH
            seq = rest // UNITS_PER_PCH
            row, col = plan.location(seq)
            bank_index = 2 * unit + (1 if odd else 0)
            self.sys.device.pch(p).banks[bank_index].poke(
                row, col, blocks[b].view(np.uint8)
            )

    def _gather_result(self) -> np.ndarray:
        plan = self.plan
        out = np.zeros(plan.blocks * LANES, dtype=np.float16)
        blocks = out.reshape(plan.blocks, LANES)
        for b in range(plan.blocks):
            p = b % plan.num_pchs
            rest = b // plan.num_pchs
            unit = rest % UNITS_PER_PCH
            seq = rest // UNITS_PER_PCH
            row, col = plan.location(seq)
            raw = self.sys.device.pch(p).banks[2 * unit].peek(row, col + plan.in_cols)
            blocks[b] = raw.view(np.float16)
        return out[: self.length]

    # -- invocation -----------------------------------------------------------------

    def __call__(
        self,
        a: np.ndarray,
        b: Optional[np.ndarray] = None,
        scalars: Optional[Tuple[float, float]] = None,
        simulate_pchs: Optional[int] = None,
    ) -> Tuple[np.ndarray, ExecutionReport]:
        a = np.asarray(a, dtype=np.float16).reshape(-1)
        if a.size != self.length:
            raise ValueError(f"expected {self.length} elements")
        if self.op.uses_second_operand:
            if b is None:
                raise ValueError(f"{self.op.name} needs a second operand")
            b = np.asarray(b, dtype=np.float16).reshape(-1)
            if b.size != self.length:
                raise ValueError("operand shapes differ")
        plan = self.plan
        nsim = plan.num_pchs if simulate_pchs is None else min(simulate_pchs, plan.num_pchs)

        self._scatter(a, odd=False)
        if self.op.uses_second_operand:
            self._scatter(b, odd=True)

        report = ExecutionReport(
            kernel=f"{self.op.name}[{self.length}]",
            simulated_pchs=nsim,
            total_pchs=plan.num_pchs,
        )
        start = self.sys.drain_all()
        self.session.enter_ab(pchs=nsim)
        self.session.program_crf(
            self.op.microkernel.format(reps=plan.groups - 1), pchs=nsim
        )
        if self.op.name == "bn" and scalars is not None:
            gamma, beta = scalars
            self.session.write_srf(
                mul_scalars=np.full(_COL_GROUP, gamma, dtype=np.float16),
                add_scalars=np.full(_COL_GROUP, beta, dtype=np.float16),
                pchs=nsim,
            )
        for p in range(nsim):
            self._stream_pch(p)
        self.session.exit_to_sb(pchs=nsim)
        for p in range(nsim, plan.num_pchs):
            self._shortcut_pch(p, a, b, scalars)
        end = self.sys.drain_all()
        result = self._gather_result()
        self._fill_report(report, start, end)
        return result, report

    def _stream_pch(self, p: int) -> None:
        plan = self.plan
        mc = self.sys.controller(p)
        self.session.set_pim_op_mode(mc, True)
        groups_per_row = plan.in_cols // _COL_GROUP
        for g in range(plan.groups):
            row = plan.base_row + g // groups_per_row
            col_base = (g % groups_per_row) * _COL_GROUP
            for j in range(_COL_GROUP):
                mc.read(0, 0, row, col_base + j)
            mc.fence()
            if self.op.uses_second_operand:
                for j in range(_COL_GROUP):
                    mc.read(0, 0, row, col_base + j)
                mc.fence()
            for j in range(_COL_GROUP):
                mc.write(0, 0, row, plan.in_cols + col_base + j, _dummy_column())
            mc.fence()
        self.session.set_pim_op_mode(mc, False)
        mc.drain()

    def _shortcut_pch(
        self,
        p: int,
        a: np.ndarray,
        b: Optional[np.ndarray],
        scalars: Optional[Tuple[float, float]],
    ) -> None:
        """Functional model for non-simulated channels (bit-equivalent)."""
        plan = self.plan
        padded_a = np.zeros(plan.blocks * LANES, dtype=np.float16)
        padded_a[: self.length] = a
        if b is not None:
            padded_b = np.zeros(plan.blocks * LANES, dtype=np.float16)
            padded_b[: self.length] = b
        name = self.op.name
        if name == "add":
            result = (padded_a + padded_b).astype(np.float16)
        elif name == "mul":
            result = (padded_a * padded_b).astype(np.float16)
        elif name == "relu":
            from ..common.fp16 import vec_relu

            result = vec_relu(padded_a)
        elif name == "bn":
            gamma, beta = scalars if scalars is not None else (1.0, 0.0)
            gamma16 = np.float16(gamma)
            beta16 = np.float16(beta)
            result = ((padded_a * gamma16).astype(np.float16) + beta16).astype(
                np.float16
            )
        else:
            raise AssertionError(name)
        blocks = result.reshape(plan.blocks, LANES)
        for block_index in range(plan.blocks):
            if block_index % plan.num_pchs != p:
                continue
            rest = block_index // plan.num_pchs
            unit = rest % UNITS_PER_PCH
            seq = rest // UNITS_PER_PCH
            row, col = plan.location(seq)
            self.sys.device.pch(p).banks[2 * unit].poke(
                row, col + plan.in_cols, blocks[block_index].view(np.uint8)
            )

    def _fill_report(self, report: ExecutionReport, start: int, end: int) -> None:
        plan = self.plan
        report.cycles = end - start
        report.ns = (
            self.sys.cycles_to_ns(report.cycles) + self.sys.host.kernel_launch_ns
        )
        report.column_commands = (
            plan.groups * self.op.commands_per_group * report.simulated_pchs
        )
        report.fences = plan.groups * self.op.fences_per_group * report.simulated_pchs
        report.pim_instructions = (
            plan.groups
            * self.op.instructions_per_group
            * UNITS_PER_PCH
            * report.simulated_pchs
        )
        elements = plan.groups * _COL_GROUP * LANES * UNITS_PER_PCH
        report.pim_flops = (
            elements * self.op.flops_per_element * report.simulated_pchs
        )
        report.host_bytes = 0  # operands and results stay in memory
