"""PIM microkernels, data layouts, and host command-stream generation.

This module is the "PIM kernel" layer of Fig. 7: given operands laid out in
the PIM region, it programs a microkernel into the CRF and generates the
DRAM request stream (with thread-group fences) whose column commands trigger
the microkernel's instructions.

Layout conventions (chosen to match the architecture's constraints and
documented in DESIGN.md):

* **GEMV** ``y = W @ x`` — outputs are tiled across units and lanes
  (8 units x 16 lanes = 128 outputs per tile per pCH); the input dimension
  is sliced across pseudo-channels and swept in chunks of 8.  Weights live
  in each unit's EVEN bank, one 16-lane output group per 32-byte column.
  Per chunk the host WRs the 8 replicated x values (triggering
  ``MOV GRF_A[A] <- HOST``) and then RDs the 8 weight columns (triggering
  ``MAC GRF_B[A] += EVEN_BANK * GRF_A[A]``) — the 50% staging commands the
  SRW variant of Fig. 14 eliminates.  Partial sums are written back with a
  ``MOV EVEN_BANK[A] <- GRF_B[A]`` epilogue and reduced by the host
  (8 sub-accumulators per lane, one slice per pCH).
* **Elementwise** (ADD/MUL/ReLU/BN) — operand A in EVEN banks, operand B at
  the same (row, col) of ODD banks, results at column+16 of EVEN banks, so
  one lock-step address stream feeds both operands and the output.

Every 8-command run is followed by a fence: address-aligned mode can absorb
reordering only within the 8-register GRF window (Section IV-C / VII-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..dram.pseudochannel import BANKS_PER_PCH
from ..pim.device import UNITS_PER_PCH, PimPseudoChannel
from ..pim.registers import GRF_REG_BYTES, LANES
from ..pim.isa import GRF_REGS
from ..pim.assembler import assemble_words
from ..host.processor import HostSystem

__all__ = [
    "ExecutionReport",
    "PimSession",
    "GemvKernel",
    "ElementwiseKernel",
    "ELEMENTWISE_OPS",
]

_COL_GROUP = GRF_REGS  # 8 columns per AAM window / fence interval

# A channel selector: None = all channels, int = the first N (the
# historical ``simulate_pchs`` convention), or an explicit sequence of
# channel indices (a serving lane's channel set).
ChannelSelector = Union[None, int, Sequence[int]]


@dataclass
class ExecutionReport:
    """What one PIM kernel invocation did and how long it took."""

    kernel: str
    cycles: int = 0
    ns: float = 0.0
    column_commands: int = 0
    activates: int = 0
    fences: int = 0
    pim_instructions: int = 0
    pim_flops: int = 0
    host_bytes: int = 0  # bytes that crossed the off-chip interface
    simulated_pchs: int = 0
    total_pchs: int = 0
    notes: Dict[str, float] = field(default_factory=dict)

    def scale_factor(self) -> float:
        """Commands of one simulated pCH represent this many device-wide."""
        if self.simulated_pchs == 0:
            return 1.0
        return self.total_pchs / self.simulated_pchs


def _alloc_rows(system: HostSystem, count: int):
    """Allocate row sets through the system's PIM device driver.

    Kernels never hard-code placements: physically contiguous row sets come
    from the driver (Section V-A), which also keeps the register-mapped
    region off limits.  Systems without a driver (bare test rigs) fall back
    to a per-system bump allocator with the same semantics.
    """
    driver = getattr(system, "driver", None)
    if driver is None:
        from .driver import PimDeviceDriver

        driver = PimDeviceDriver(system.device)
        system.driver = driver  # type: ignore[attr-defined]
    return driver.alloc_rows(count)


def _bank_coords(bank_index: int) -> Tuple[int, int]:
    return bank_index // 4, bank_index % 4


def _dummy_column() -> np.ndarray:
    return np.zeros(GRF_REG_BYTES, dtype=np.uint8)


class PimSession:
    """Mode transitions and register programming over standard commands.

    All methods run through the memory controllers, so their cost lands in
    the same cycle accounting as the data phases.
    """

    def __init__(self, system: HostSystem):
        self.sys = system
        channel = system.device.pch(0)
        if not isinstance(channel, PimPseudoChannel):
            raise TypeError("PimSession requires a PIM-HBM device")
        self.map = channel.memory_map

    def _ids(self, pchs: ChannelSelector = None) -> List[int]:
        resolve = getattr(self.sys, "resolve_pchs", None)
        if resolve is not None:
            return resolve(pchs)
        count = len(self.sys.controllers)
        if pchs is None:
            return list(range(count))
        if isinstance(pchs, int):
            return list(range(min(pchs, count)))
        return list(pchs)

    def _each(self, pchs: ChannelSelector = None):
        return [self.sys.controllers[i] for i in self._ids(pchs)]

    # -- mode transitions ------------------------------------------------------

    def enter_ab(self, pchs: ChannelSelector = None) -> None:
        """PREA + (ACT, PRE) to the ABMR row on the selected channels."""
        for mc in self._each(pchs):
            mc.drain()
            mc.precharge_all()
            mc.closed_page_access(0, 0, self.map.abmr_row)

    def exit_to_sb(self, pchs: ChannelSelector = None) -> None:
        """PREA + (ACT, PRE) to the SBMR row: back to standard DRAM."""
        for mc in self._each(pchs):
            mc.drain()
            mc.precharge_all()
            mc.closed_page_access(0, 0, self.map.sbmr_row)

    def set_pim_op_mode(self, mc, enable: bool) -> None:
        """Queue the PIM_OP_MODE register write on one controller."""
        data = _dummy_column()
        data[0] = 1 if enable else 0
        mc.fence()
        mc.write(0, 0, self.map.conf_row, self.map.PIM_OP_MODE_COL, data)
        mc.fence()

    # -- register programming ----------------------------------------------------

    def program_crf(self, source: str, pchs: ChannelSelector = None) -> None:
        """Assemble and broadcast a microkernel into every unit's CRF.

        The memory manager caches microkernel code (Section V-A): when a
        channel already holds this exact program, the register writes are
        skipped entirely.
        """
        from .memory import MicrokernelCache

        cache = getattr(self.sys, "_microkernel_cache", None)
        if cache is None:
            cache = MicrokernelCache()
            self.sys._microkernel_cache = cache  # type: ignore[attr-defined]
        loaded = getattr(self.sys, "_crf_loaded", None)
        if loaded is None:
            loaded = {}
            self.sys._crf_loaded = loaded  # type: ignore[attr-defined]
        words = cache.get(source)
        image = np.array(words, dtype="<u4").view(np.uint8)
        cols = len(image) // GRF_REG_BYTES
        for index in self._ids(pchs):
            mc = self.sys.controllers[index]
            if loaded.get(index) == source:
                continue  # the CRF already holds this microkernel
            for col in range(cols):
                chunk = image[col * GRF_REG_BYTES : (col + 1) * GRF_REG_BYTES]
                mc.write(0, 0, self.map.crf_row, col, chunk)
            mc.fence()
            loaded[index] = source

    def zero_grf_b(self, mc) -> None:
        """Clear the 8 GRF_B accumulators via register-mapped writes."""
        for col in range(GRF_REGS, 2 * GRF_REGS):
            mc.write(0, 0, self.map.grf_row, col, _dummy_column())
        mc.fence()

    def write_srf(
        self,
        mul_scalars: Optional[np.ndarray] = None,
        add_scalars: Optional[np.ndarray] = None,
        pchs: ChannelSelector = None,
    ) -> None:
        """Program SRF_M / SRF_A (each 8 FP16 scalars, zero-padded)."""
        for mc in self._each(pchs):
            for col, values in ((0, mul_scalars), (1, add_scalars)):
                if values is None:
                    continue
                payload = np.zeros(GRF_REG_BYTES, dtype=np.uint8)
                scalars = np.asarray(values, dtype=np.float16)
                payload[: scalars.size * 2] = scalars.view(np.uint8)
                mc.write(0, 0, self.map.srf_row, col, payload)
            mc.fence()


# ---------------------------------------------------------------------------
# GEMV
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GemvPlan:
    """Placement plan for one GEMV operand set.

    The *layout* is expressed in **slices** of the input dimension, not in
    physical channels: the FP16 MAC grouping (and therefore the bit-exact
    result) depends only on ``num_slices``.  A kernel bound to a channel
    set smaller than ``num_slices`` runs several slices per channel in
    consecutive *passes*, so a serving lane on 2 of 4 channels still
    produces results bit-identical to a whole-device invocation.
    """

    m: int
    n: int
    num_slices: int  # input-dimension slices (canonical math shape)
    n_slice: int  # padded input dims per slice
    chunks: int  # n_slice // 8
    tiles: int  # output tiles of 128
    chunks_per_row: int
    rows_per_tile: int
    passes: int  # slices executed per channel (ceil(num_slices / channels))
    batch_slots: int  # independent partial-sum areas for fused batching
    weight_base_row: int
    out_base_row: int

    @property
    def num_pchs(self) -> int:
        """Historical alias: slices coincided with channels before lanes."""
        return self.num_slices

    @property
    def outputs_per_tile(self) -> int:
        return UNITS_PER_PCH * LANES

    @property
    def weight_rows_per_pass(self) -> int:
        return self.tiles * self.rows_per_tile

    @property
    def out_rows_per_pass(self) -> int:
        return -(-self.tiles // self.chunks_per_row)

    def weight_location(self, tile: int, chunk: int, pass_: int = 0) -> Tuple[int, int]:
        """(row, column base) of a weight chunk for one tile."""
        row = (
            self.weight_base_row
            + pass_ * self.weight_rows_per_pass
            + tile * self.rows_per_tile
            + chunk // self.chunks_per_row
        )
        col_base = (chunk % self.chunks_per_row) * _COL_GROUP
        return row, col_base

    def out_location(self, tile: int, pass_: int = 0, slot: int = 0) -> Tuple[int, int]:
        """(row, column base) of a tile's 8 partial-sum columns."""
        tiles_per_row = self.chunks_per_row
        row = (
            self.out_base_row
            + (slot * self.passes + pass_) * self.out_rows_per_pass
            + tile // tiles_per_row
        )
        col_base = (tile % tiles_per_row) * _COL_GROUP
        return row, col_base


class GemvKernel:
    """A resident GEMV operator: weights staged once, invoked per input.

    This mirrors the PIM memory manager's behaviour (Section V-A): the
    weight matrix is rearranged into the PIM-friendly layout when the model
    is loaded, and each invocation only streams the input vector and the
    triggering commands.
    """

    MICROKERNEL = """
    MOV  GRF_A[A], HOST            ; stage 8 replicated x values (WR)
    JUMP -1, 7
    MAC  GRF_B[A], EVEN_BANK, GRF_A[A]  ; 8 weight columns (RD)
    JUMP -1, 7
    JUMP -4, {reps}                ; one iteration per input chunk
    MOV  EVEN_BANK[A], GRF_B[A]    ; write 8 partial-sum registers (WR)
    JUMP -1, 7
    EXIT
    """

    def __init__(
        self,
        system: HostSystem,
        m: int,
        n: int,
        channels: Optional[Sequence[int]] = None,
        layout_pchs: Optional[int] = None,
        max_batch: int = 1,
    ):
        self.sys = system
        self.session = PimSession(system)
        self.m = m
        self.n = n
        if channels is None:
            channels = range(system.num_pchs)
        self.channels: Tuple[int, ...] = tuple(channels)
        if not self.channels:
            raise ValueError("GemvKernel needs at least one channel")
        for p in self.channels:
            if not 0 <= p < system.num_pchs:
                raise ValueError(f"channel {p} out of range")
        # The layout slice count fixes the FP16 accumulation grouping, so
        # results are independent of which (and how many) channels execute
        # the kernel; it defaults to the whole device's channel count.
        self.layout_pchs = system.num_pchs if layout_pchs is None else layout_pchs
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = max_batch
        self._block = None  # RowSetRange, set by _plan via the driver
        self.plan = self._plan(m, n)
        self._weights: Optional[np.ndarray] = None  # padded, fp16
        self._released = False

    def _plan(self, m: int, n: int) -> GemvPlan:
        num_slices = self.layout_pchs
        cols_per_row = self.sys.device.config.bank_config.cols_per_row
        chunks_per_row = cols_per_row // _COL_GROUP
        n_slice = -(-n // num_slices)
        n_slice = -(-n_slice // _COL_GROUP) * _COL_GROUP
        chunks = n_slice // _COL_GROUP
        tiles = -(-m // (UNITS_PER_PCH * LANES))
        rows_per_tile = -(-chunks // chunks_per_row)
        passes = -(-num_slices // len(self.channels))
        weight_rows = passes * tiles * rows_per_tile
        out_rows_per_pass = -(-tiles // chunks_per_row)
        out_rows = self.max_batch * passes * out_rows_per_pass
        block = _alloc_rows(self.sys, weight_rows + out_rows)
        self._block = block
        return GemvPlan(
            m=m,
            n=n,
            num_slices=num_slices,
            n_slice=n_slice,
            chunks=chunks,
            tiles=tiles,
            chunks_per_row=chunks_per_row,
            rows_per_tile=rows_per_tile,
            passes=passes,
            batch_slots=self.max_batch,
            weight_base_row=block.start,
            out_base_row=block.start + weight_rows,
        )

    def _slice_channel(self, s: int) -> Tuple[int, int]:
        """(channel index, pass) executing slice ``s``."""
        k = len(self.channels)
        return self.channels[s % k], s // k

    def release(self) -> None:
        """Return the kernel's rows to the driver (cache eviction)."""
        if self._released:
            return
        self._released = True
        driver = getattr(self.sys, "driver", None)
        if driver is not None and self._block is not None:
            driver.free(self._block)

    def _check_alive(self) -> None:
        if self._released:
            raise RuntimeError("kernel was evicted; its rows were reclaimed")

    # -- staging ------------------------------------------------------------------

    def load_weights(self, w: np.ndarray) -> None:
        """Rearrange and stage the weight matrix into the PIM region.

        Performed by the PIM BLAS when weights are first brought to memory
        (Section VIII); not part of per-invocation timing.
        """
        self._check_alive()
        w = np.asarray(w, dtype=np.float16)
        if w.shape != (self.m, self.n):
            raise ValueError(f"expected {(self.m, self.n)} weights, got {w.shape}")
        plan = self.plan
        padded = np.zeros(
            (plan.tiles * plan.outputs_per_tile, plan.num_slices * plan.n_slice),
            dtype=np.float16,
        )
        padded[: self.m, : self.n] = w
        self._weights = padded
        for s in range(plan.num_slices):
            pch, pass_ = self._slice_channel(s)
            channel = self.sys.device.pch(pch)
            for tile in range(plan.tiles):
                for chunk in range(plan.chunks):
                    row, col_base = plan.weight_location(tile, chunk, pass_)
                    for j in range(_COL_GROUP):
                        dim = s * plan.n_slice + chunk * _COL_GROUP + j
                        for unit in range(UNITS_PER_PCH):
                            out0 = tile * plan.outputs_per_tile + unit * LANES
                            column = np.ascontiguousarray(
                                padded[out0 : out0 + LANES, dim]
                            )
                            channel.banks[2 * unit].poke(
                                row, col_base + j, column.view(np.uint8)
                            )

    # -- invocation ---------------------------------------------------------------

    def __call__(
        self, x: np.ndarray, simulate_pchs: Optional[int] = None
    ) -> Tuple[np.ndarray, ExecutionReport]:
        """Run ``y = W @ x`` on the PIM device.

        ``simulate_pchs`` limits cycle-accurate simulation to the first N
        pseudo-channels (all channels execute identical streams, so the
        timing is exact); the remaining slices are computed with the
        bit-equivalent vectorised model and their results staged so the
        device state matches a full run.
        """
        self._check_alive()
        if self._weights is None:
            raise RuntimeError("load_weights() before invoking the kernel")
        x = np.asarray(x, dtype=np.float16)
        if x.shape != (self.n,):
            raise ValueError(f"expected input of shape ({self.n},)")
        plan = self.plan
        k = len(self.channels)
        nsim_ch = k if simulate_pchs is None else min(simulate_pchs, k)
        sim_channels = self.channels[:nsim_ch]
        x_padded = np.zeros(plan.num_slices * plan.n_slice, dtype=np.float16)
        x_padded[: self.n] = x

        report = ExecutionReport(
            kernel=f"gemv[{self.m}x{self.n}]",
            simulated_pchs=self._simulated_slices(nsim_ch),
            total_pchs=plan.num_slices,
        )
        start = self.sys.drain_set(self.channels)
        self.session.enter_ab(pchs=sim_channels)
        self.session.program_crf(
            self.MICROKERNEL.format(reps=plan.chunks - 1), pchs=sim_channels
        )
        for s in range(plan.num_slices):
            if s % k < nsim_ch:
                self._stream_slice(s, x_padded)
        self.session.exit_to_sb(pchs=sim_channels)
        for s in range(plan.num_slices):
            if s % k >= nsim_ch:
                self._shortcut_slice(s, x_padded)
        partials = self._read_partials(nsim_ch)
        end = self.sys.drain_set(self.channels)

        y = partials.astype(np.float32).sum(axis=(0, 1))[: self.m]
        self._account_commands(report)
        self._fill_timing(report, start, end, launches=1)
        return y, report

    def batched(
        self,
        xs: np.ndarray,
        simulate_pchs: Optional[int] = None,
        fused: bool = False,
    ) -> Tuple[np.ndarray, ExecutionReport]:
        """Run a batch of inputs through the resident operator.

        PIM processes batch elements *sequentially* (the device has no
        batch dimension), which is exactly why Fig. 10 shows the speedup
        shrinking with batch size while the host amortises into GEMM.
        The operator setup (weights, microkernel cache) is shared.

        With ``fused=True`` — the serving engine's batched entry point —
        the whole batch runs as *one* kernel launch: one SB->AB transition
        and one CRF broadcast cover up to ``max_batch`` inputs, each batch
        element writing its partial sums to its own out-row slot (larger
        batches are processed in groups of ``max_batch``).  The outputs
        are bit-identical to ``fused=False``; only the setup overheads are
        amortised.
        """
        xs = np.asarray(xs, dtype=np.float16)
        if xs.ndim != 2 or xs.shape[1] != self.n:
            raise ValueError(f"expected batch of shape (B, {self.n})")
        if fused:
            return self._batched_fused(xs, simulate_pchs)
        outputs = []
        merged = ExecutionReport(
            kernel=f"gemv[{self.m}x{self.n}]xB{xs.shape[0]}",
            total_pchs=self.plan.num_slices,
        )
        for x in xs:
            y, report = self(x, simulate_pchs=simulate_pchs)
            outputs.append(y)
            merged.cycles += report.cycles
            merged.ns += report.ns
            merged.column_commands += report.column_commands
            merged.fences += report.fences
            merged.pim_instructions += report.pim_instructions
            merged.pim_flops += report.pim_flops
            merged.host_bytes += report.host_bytes
            merged.simulated_pchs = report.simulated_pchs
        return np.stack(outputs), merged

    def _batched_fused(
        self, xs: np.ndarray, simulate_pchs: Optional[int]
    ) -> Tuple[np.ndarray, ExecutionReport]:
        self._check_alive()
        if self._weights is None:
            raise RuntimeError("load_weights() before invoking the kernel")
        plan = self.plan
        k = len(self.channels)
        nsim_ch = k if simulate_pchs is None else min(simulate_pchs, k)
        sim_channels = self.channels[:nsim_ch]
        batch = xs.shape[0]
        merged = ExecutionReport(
            kernel=f"gemv[{self.m}x{self.n}]xB{batch}",
            simulated_pchs=self._simulated_slices(nsim_ch),
            total_pchs=plan.num_slices,
        )
        outputs: List[np.ndarray] = []
        launches = 0
        start = self.sys.drain_set(self.channels)
        for base in range(0, batch, plan.batch_slots):
            group = xs[base : base + plan.batch_slots]
            padded = []
            for x in group:
                xp = np.zeros(plan.num_slices * plan.n_slice, dtype=np.float16)
                xp[: self.n] = x
                padded.append(xp)
            launches += 1
            self.session.enter_ab(pchs=sim_channels)
            self.session.program_crf(
                self.MICROKERNEL.format(reps=plan.chunks - 1), pchs=sim_channels
            )
            for slot, xp in enumerate(padded):
                for s in range(plan.num_slices):
                    if s % k < nsim_ch:
                        self._stream_slice(s, xp, slot=slot)
            self.session.exit_to_sb(pchs=sim_channels)
            for slot, xp in enumerate(padded):
                for s in range(plan.num_slices):
                    if s % k >= nsim_ch:
                        self._shortcut_slice(s, xp, slot=slot)
                partials = self._read_partials(nsim_ch, slot=slot)
                outputs.append(partials.astype(np.float32).sum(axis=(0, 1))[: self.m])
        end = self.sys.drain_set(self.channels)
        self._account_commands(merged, invocations=batch)
        self._fill_timing(merged, start, end, launches=launches)
        return np.stack(outputs), merged

    def _stream_slice(self, s: int, x_padded: np.ndarray, slot: int = 0) -> None:
        plan = self.plan
        pch, pass_ = self._slice_channel(s)
        mc = self.sys.controller(pch)
        for tile in range(plan.tiles):
            self.session.zero_grf_b(mc)
            self.session.set_pim_op_mode(mc, True)
            for chunk in range(plan.chunks):
                row, col_base = plan.weight_location(tile, chunk, pass_)
                for j in range(_COL_GROUP):
                    value = x_padded[s * plan.n_slice + chunk * _COL_GROUP + j]
                    burst = np.full(LANES, value, dtype=np.float16).view(np.uint8)
                    mc.write(0, 0, row, col_base + j, burst)
                mc.fence()
                for j in range(_COL_GROUP):
                    mc.read(0, 0, row, col_base + j)
                mc.fence()
            out_row, out_base = plan.out_location(tile, pass_, slot)
            for j in range(_COL_GROUP):
                mc.write(0, 0, out_row, out_base + j, _dummy_column())
            mc.fence()
            self.session.set_pim_op_mode(mc, False)
            mc.drain()

    def _shortcut_slice(self, s: int, x_padded: np.ndarray, slot: int = 0) -> None:
        """Bit-equivalent functional model of one input slice.

        Reproduces the sequential FP16 MAC order (one MAC per chunk into
        each sub-accumulator) and pokes the partial sums where the epilogue
        MOV would have written them.
        """
        plan = self.plan
        pch, pass_ = self._slice_channel(s)
        channel = self.sys.device.pch(pch)
        w = self._weights
        for tile in range(plan.tiles):
            out0 = tile * plan.outputs_per_tile
            acc = np.zeros((plan.outputs_per_tile, _COL_GROUP), dtype=np.float16)
            for chunk in range(plan.chunks):
                dims = s * plan.n_slice + chunk * _COL_GROUP
                wk = w[out0 : out0 + plan.outputs_per_tile, dims : dims + _COL_GROUP]
                xk = x_padded[dims : dims + _COL_GROUP]
                prod = (wk * xk[np.newaxis, :]).astype(np.float16)
                acc = (acc + prod).astype(np.float16)
            out_row, out_base = plan.out_location(tile, pass_, slot)
            for unit in range(UNITS_PER_PCH):
                for j in range(_COL_GROUP):
                    column = np.ascontiguousarray(
                        acc[unit * LANES : (unit + 1) * LANES, j]
                    )
                    channel.banks[2 * unit].poke(
                        out_row, out_base + j, column.view(np.uint8)
                    )

    def _read_partials(self, nsim_ch: int, slot: int = 0) -> np.ndarray:
        """Read partial sums back (timed SB-mode reads on simulated pCHs)."""
        plan = self.plan
        k = len(self.channels)
        partials = np.zeros(
            (plan.num_slices, _COL_GROUP, plan.tiles * plan.outputs_per_tile),
            dtype=np.float16,
        )
        for pos, pch in enumerate(self.channels):
            mc = self.sys.controller(pch)
            timed = pos < nsim_ch
            slices = range(pos, plan.num_slices, k)
            columns = {}
            if timed:
                for s in slices:
                    pass_ = s // k
                    for tile in range(plan.tiles):
                        out_row, out_base = plan.out_location(tile, pass_, slot)
                        for unit in range(UNITS_PER_PCH):
                            bg, ba = _bank_coords(2 * unit)
                            for j in range(_COL_GROUP):
                                mc.read(
                                    bg, ba, out_row, out_base + j,
                                    tag=(s, tile, unit, j),
                                )
                columns = mc.drain().read_data
            channel = self.sys.device.pch(pch)
            for s in slices:
                pass_ = s // k
                for tile in range(plan.tiles):
                    out_row, out_base = plan.out_location(tile, pass_, slot)
                    out0 = tile * plan.outputs_per_tile
                    for unit in range(UNITS_PER_PCH):
                        for j in range(_COL_GROUP):
                            if timed:
                                raw = columns[(s, tile, unit, j)]
                            else:
                                raw = channel.banks[2 * unit].peek(
                                    out_row, out_base + j
                                )
                            partials[
                                s, j, out0 + unit * LANES : out0 + (unit + 1) * LANES
                            ] = raw.view(np.float16)
        return partials

    def _simulated_slices(self, nsim_ch: int) -> int:
        k = len(self.channels)
        return sum(1 for s in range(self.plan.num_slices) if s % k < nsim_ch)

    def _account_commands(self, report: ExecutionReport, invocations: int = 1) -> None:
        """Fill the command/FLOP/traffic counters (per simulated slice)."""
        plan = self.plan
        scale = report.simulated_pchs * invocations
        per_slice_cols = plan.tiles * (plan.chunks * 2 * _COL_GROUP + _COL_GROUP)
        report.column_commands = per_slice_cols * scale
        report.fences = plan.tiles * (plan.chunks * 2 + 3) * scale
        units = UNITS_PER_PCH
        report.pim_instructions = per_slice_cols * units * scale
        report.pim_flops = (
            plan.tiles * plan.chunks * _COL_GROUP * units * LANES * 2
        ) * scale
        # Off-chip traffic: the staged x bursts plus partial-sum readback.
        report.host_bytes = (
            plan.tiles * plan.chunks * _COL_GROUP * GRF_REG_BYTES
            + plan.tiles * units * _COL_GROUP * GRF_REG_BYTES
        ) * scale

    def _fill_timing(
        self, report: ExecutionReport, start: int, end: int, launches: int = 1
    ) -> None:
        report.cycles = end - start
        report.ns = (
            self.sys.cycles_to_ns(report.cycles)
            + launches * self.sys.host.kernel_launch_ns
        )
        report.notes["launches"] = launches


# ---------------------------------------------------------------------------
# Elementwise kernels (ADD / MUL / ReLU / BN)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ElementwiseOp:
    """Shape of one elementwise microkernel."""

    name: str
    microkernel: str
    uses_second_operand: bool
    commands_per_group: int  # column commands per 8-column group
    fences_per_group: int
    instructions_per_group: int
    flops_per_element: int


ELEMENTWISE_OPS: Dict[str, ElementwiseOp] = {
    "add": ElementwiseOp(
        name="add",
        microkernel="""
        FILL GRF_A[A], EVEN_BANK       ; operand A (8 RDs)
        JUMP -1, 7
        ADD  GRF_B[A], GRF_A[A], ODD_BANK  ; operand B (8 RDs)
        JUMP -1, 7
        MOV  EVEN_BANK[A], GRF_B[A]    ; result (8 WRs)
        JUMP -1, 7
        JUMP -6, {reps}
        EXIT
        """,
        uses_second_operand=True,
        commands_per_group=24,
        fences_per_group=3,
        instructions_per_group=24,
        flops_per_element=1,
    ),
    "mul": ElementwiseOp(
        name="mul",
        microkernel="""
        FILL GRF_A[A], EVEN_BANK
        JUMP -1, 7
        MUL  GRF_B[A], GRF_A[A], ODD_BANK
        JUMP -1, 7
        MOV  EVEN_BANK[A], GRF_B[A]
        JUMP -1, 7
        JUMP -6, {reps}
        EXIT
        """,
        uses_second_operand=True,
        commands_per_group=24,
        fences_per_group=3,
        instructions_per_group=24,
        flops_per_element=1,
    ),
    "relu": ElementwiseOp(
        name="relu",
        microkernel="""
        FILL GRF_A[A], EVEN_BANK
        JUMP -1, 7
        MOV(RELU) EVEN_BANK[A], GRF_A[A]
        JUMP -1, 7
        JUMP -4, {reps}
        EXIT
        """,
        uses_second_operand=False,
        commands_per_group=16,
        fences_per_group=2,
        instructions_per_group=16,
        flops_per_element=0,
    ),
    "bn": ElementwiseOp(
        name="bn",
        # Inference batch-norm folded to y = gamma' * x + beta'
        # (Section II-A); scalars broadcast from SRF_M / SRF_A.
        microkernel="""
        MAD  GRF_B[A], EVEN_BANK, SRF_M[A], SRF_A[A]
        JUMP -1, 7
        MOV  EVEN_BANK[A], GRF_B[A]
        JUMP -1, 7
        JUMP -4, {reps}
        EXIT
        """,
        uses_second_operand=False,
        commands_per_group=16,
        fences_per_group=2,
        instructions_per_group=16,
        flops_per_element=2,
    ),
}


@dataclass(frozen=True)
class ElementwisePlan:
    length: int
    num_pchs: int  # channel *slots* of the executing set, not device channels
    blocks: int  # padded 16-element blocks, total
    seq_per_unit: int  # blocks per unit stream (padded to 8)
    groups: int  # 8-column groups per unit stream
    base_row: int
    in_cols: int  # input columns per row (outputs at +in_cols)

    def location(self, seq: int) -> Tuple[int, int]:
        """(row, column) of block ``seq`` within a unit's stream."""
        row = self.base_row + seq // self.in_cols
        col = seq % self.in_cols
        return row, col


class ElementwiseKernel:
    """Elementwise vector operator over the PIM region.

    ``channels`` binds the operator to a subset of pseudo-channels (a
    serving lane); elementwise math is per-block, so the result is
    bit-identical regardless of the executing channel set.
    """

    def __init__(
        self,
        system: HostSystem,
        op: str,
        length: int,
        channels: Optional[Sequence[int]] = None,
    ):
        if op not in ELEMENTWISE_OPS:
            raise ValueError(f"unknown elementwise op {op!r}")
        self.sys = system
        self.session = PimSession(system)
        self.op = ELEMENTWISE_OPS[op]
        self.length = length
        if channels is None:
            channels = range(system.num_pchs)
        self.channels: Tuple[int, ...] = tuple(channels)
        if not self.channels:
            raise ValueError("ElementwiseKernel needs at least one channel")
        for p in self.channels:
            if not 0 <= p < system.num_pchs:
                raise ValueError(f"channel {p} out of range")
        self._block = None
        self.plan = self._plan(length)
        self.srf_scalars: Tuple[float, float] = (1.0, 0.0)  # gamma, beta for BN
        self._released = False

    def _plan(self, length: int) -> ElementwisePlan:
        num_pchs = len(self.channels)
        cols_per_row = self.sys.device.config.bank_config.cols_per_row
        in_cols = cols_per_row // 2  # half the row for inputs, half for results
        stride = num_pchs * UNITS_PER_PCH
        blocks = -(-length // LANES)
        blocks = -(-blocks // stride) * stride
        seq = blocks // stride
        seq = -(-seq // _COL_GROUP) * _COL_GROUP
        blocks = seq * stride
        groups = seq // _COL_GROUP
        rows = -(-seq // in_cols)
        block = _alloc_rows(self.sys, rows)
        self._block = block
        return ElementwisePlan(
            length=length,
            num_pchs=num_pchs,
            blocks=blocks,
            seq_per_unit=seq,
            groups=groups,
            base_row=block.start,
            in_cols=in_cols,
        )

    def release(self) -> None:
        """Return the kernel's rows to the driver (cache eviction)."""
        if self._released:
            return
        self._released = True
        driver = getattr(self.sys, "driver", None)
        if driver is not None and self._block is not None:
            driver.free(self._block)

    def _check_alive(self) -> None:
        if self._released:
            raise RuntimeError("kernel was evicted; its rows were reclaimed")

    # -- staging -------------------------------------------------------------------

    def _scatter(self, values: np.ndarray, odd: bool) -> None:
        """Place a padded vector into the even (or odd) banks."""
        plan = self.plan
        padded = np.zeros(plan.blocks * LANES, dtype=np.float16)
        padded[: self.length] = values
        blocks = padded.reshape(plan.blocks, LANES)
        for b in range(plan.blocks):
            pch = self.channels[b % plan.num_pchs]
            rest = b // plan.num_pchs
            unit = rest % UNITS_PER_PCH
            seq = rest // UNITS_PER_PCH
            row, col = plan.location(seq)
            bank_index = 2 * unit + (1 if odd else 0)
            self.sys.device.pch(pch).banks[bank_index].poke(
                row, col, blocks[b].view(np.uint8)
            )

    def _gather_result(self) -> np.ndarray:
        plan = self.plan
        out = np.zeros(plan.blocks * LANES, dtype=np.float16)
        blocks = out.reshape(plan.blocks, LANES)
        for b in range(plan.blocks):
            pch = self.channels[b % plan.num_pchs]
            rest = b // plan.num_pchs
            unit = rest % UNITS_PER_PCH
            seq = rest // UNITS_PER_PCH
            row, col = plan.location(seq)
            raw = self.sys.device.pch(pch).banks[2 * unit].peek(row, col + plan.in_cols)
            blocks[b] = raw.view(np.float16)
        return out[: self.length]

    # -- invocation -----------------------------------------------------------------

    def __call__(
        self,
        a: np.ndarray,
        b: Optional[np.ndarray] = None,
        scalars: Optional[Tuple[float, float]] = None,
        simulate_pchs: Optional[int] = None,
    ) -> Tuple[np.ndarray, ExecutionReport]:
        self._check_alive()
        a, b = self._validate(a, b)
        plan = self.plan
        nsim = plan.num_pchs if simulate_pchs is None else min(simulate_pchs, plan.num_pchs)
        sim_channels = self.channels[:nsim]

        self._scatter(a, odd=False)
        if self.op.uses_second_operand:
            self._scatter(b, odd=True)

        report = ExecutionReport(
            kernel=f"{self.op.name}[{self.length}]",
            simulated_pchs=nsim,
            total_pchs=plan.num_pchs,
        )
        start = self.sys.drain_set(self.channels)
        self.session.enter_ab(pchs=sim_channels)
        self.session.program_crf(
            self.op.microkernel.format(reps=plan.groups - 1), pchs=sim_channels
        )
        self._program_srf(scalars, sim_channels)
        for pos in range(nsim):
            self._stream_pch(pos)
        self.session.exit_to_sb(pchs=sim_channels)
        for pos in range(nsim, plan.num_pchs):
            self._shortcut_pch(pos, a, b, scalars)
        end = self.sys.drain_set(self.channels)
        result = self._gather_result()
        self._fill_report(report, start, end)
        return result, report

    def batched(
        self,
        items: Sequence[Tuple],
        simulate_pchs: Optional[int] = None,
    ) -> Tuple[List[np.ndarray], ExecutionReport]:
        """Run a batch of operand sets as one fused kernel launch.

        ``items`` is a sequence of ``(a,)``, ``(a, b)`` or ``(a, b, scalars)``
        tuples.  The batch shares one SB->AB transition and one CRF
        broadcast; each element streams its operands through the resident
        layout in turn, so outputs are bit-identical to sequential calls.
        """
        self._check_alive()
        plan = self.plan
        nsim = plan.num_pchs if simulate_pchs is None else min(simulate_pchs, plan.num_pchs)
        sim_channels = self.channels[:nsim]
        normalised = []
        for item in items:
            a = item[0]
            b = item[1] if len(item) > 1 else None
            scalars = item[2] if len(item) > 2 else None
            normalised.append((*self._validate(a, b), scalars))

        merged = ExecutionReport(
            kernel=f"{self.op.name}[{self.length}]xB{len(normalised)}",
            simulated_pchs=nsim,
            total_pchs=plan.num_pchs,
        )
        results: List[np.ndarray] = []
        start = self.sys.drain_set(self.channels)
        self.session.enter_ab(pchs=sim_channels)
        self.session.program_crf(
            self.op.microkernel.format(reps=plan.groups - 1), pchs=sim_channels
        )
        for a, b, scalars in normalised:
            self._program_srf(scalars, sim_channels)
            self._scatter(a, odd=False)
            if self.op.uses_second_operand:
                self._scatter(b, odd=True)
            for pos in range(nsim):
                self._stream_pch(pos)
            for pos in range(nsim, plan.num_pchs):
                self._shortcut_pch(pos, a, b, scalars)
            self.sys.drain_set(sim_channels)
            results.append(self._gather_result())
        self.session.exit_to_sb(pchs=sim_channels)
        end = self.sys.drain_set(self.channels)
        self._fill_report(merged, start, end, invocations=len(normalised), launches=1)
        return results, merged

    def _validate(
        self, a: np.ndarray, b: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        a = np.asarray(a, dtype=np.float16).reshape(-1)
        if a.size != self.length:
            raise ValueError(f"expected {self.length} elements")
        if self.op.uses_second_operand:
            if b is None:
                raise ValueError(f"{self.op.name} needs a second operand")
            b = np.asarray(b, dtype=np.float16).reshape(-1)
            if b.size != self.length:
                raise ValueError("operand shapes differ")
        return a, b

    def _program_srf(self, scalars, sim_channels) -> None:
        if self.op.name == "bn" and scalars is not None:
            gamma, beta = scalars
            self.session.write_srf(
                mul_scalars=np.full(_COL_GROUP, gamma, dtype=np.float16),
                add_scalars=np.full(_COL_GROUP, beta, dtype=np.float16),
                pchs=sim_channels,
            )

    def _stream_pch(self, pos: int) -> None:
        plan = self.plan
        mc = self.sys.controller(self.channels[pos])
        self.session.set_pim_op_mode(mc, True)
        groups_per_row = plan.in_cols // _COL_GROUP
        for g in range(plan.groups):
            row = plan.base_row + g // groups_per_row
            col_base = (g % groups_per_row) * _COL_GROUP
            for j in range(_COL_GROUP):
                mc.read(0, 0, row, col_base + j)
            mc.fence()
            if self.op.uses_second_operand:
                for j in range(_COL_GROUP):
                    mc.read(0, 0, row, col_base + j)
                mc.fence()
            for j in range(_COL_GROUP):
                mc.write(0, 0, row, plan.in_cols + col_base + j, _dummy_column())
            mc.fence()
        self.session.set_pim_op_mode(mc, False)
        mc.drain()

    def _shortcut_pch(
        self,
        pos: int,
        a: np.ndarray,
        b: Optional[np.ndarray],
        scalars: Optional[Tuple[float, float]],
    ) -> None:
        """Functional model for non-simulated channels (bit-equivalent)."""
        plan = self.plan
        padded_a = np.zeros(plan.blocks * LANES, dtype=np.float16)
        padded_a[: self.length] = a
        if b is not None:
            padded_b = np.zeros(plan.blocks * LANES, dtype=np.float16)
            padded_b[: self.length] = b
        name = self.op.name
        if name == "add":
            result = (padded_a + padded_b).astype(np.float16)
        elif name == "mul":
            result = (padded_a * padded_b).astype(np.float16)
        elif name == "relu":
            from ..common.fp16 import vec_relu

            result = vec_relu(padded_a)
        elif name == "bn":
            gamma, beta = scalars if scalars is not None else (1.0, 0.0)
            gamma16 = np.float16(gamma)
            beta16 = np.float16(beta)
            result = ((padded_a * gamma16).astype(np.float16) + beta16).astype(
                np.float16
            )
        else:
            raise AssertionError(name)
        blocks = result.reshape(plan.blocks, LANES)
        pch = self.channels[pos]
        for block_index in range(plan.blocks):
            if block_index % plan.num_pchs != pos:
                continue
            rest = block_index // plan.num_pchs
            unit = rest % UNITS_PER_PCH
            seq = rest // UNITS_PER_PCH
            row, col = plan.location(seq)
            self.sys.device.pch(pch).banks[2 * unit].poke(
                row, col + plan.in_cols, blocks[block_index].view(np.uint8)
            )

    def _fill_report(
        self,
        report: ExecutionReport,
        start: int,
        end: int,
        invocations: int = 1,
        launches: int = 1,
    ) -> None:
        plan = self.plan
        report.cycles = end - start
        report.ns = (
            self.sys.cycles_to_ns(report.cycles)
            + launches * self.sys.host.kernel_launch_ns
        )
        report.notes["launches"] = launches
        scale = report.simulated_pchs * invocations
        report.column_commands = plan.groups * self.op.commands_per_group * scale
        report.fences = plan.groups * self.op.fences_per_group * scale
        report.pim_instructions = (
            plan.groups * self.op.instructions_per_group * UNITS_PER_PCH * scale
        )
        elements = plan.groups * _COL_GROUP * LANES * UNITS_PER_PCH
        report.pim_flops = elements * self.op.flops_per_element * scale
        report.host_bytes = 0  # operands and results stay in memory
