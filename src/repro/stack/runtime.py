"""The PIM runtime (Section V-A): system assembly, executor, kernel cache.

The runtime owns three user-level modules:

* **preprocessor** — finds ops suitable for PIM acceleration and rewrites
  them to PIM custom ops; lives in :mod:`repro.stack.graph` because it
  operates on the graph framework's representation.
* **memory manager** — keeps resident PIM operators (weights stay laid out
  in the PIM region across invocations) and caches generated microkernels.
  Both operator caches are LRU-bounded so long-running serving sessions
  don't grow without limit; evicted kernels return their rows to the
  driver.
* **executor** — configures a PIM kernel and invokes it, accounting the
  per-launch overhead.

:class:`SystemConfig` is the single configuration surface: one dataclass
(with ``fast_functional`` / ``paper_scale`` presets) assembles the whole
evaluation platform — a PIM-HBM device behind per-channel JEDEC
controllers with a host model.  The legacy kwarg-soup ``PimSystem(...)``
constructor still works through a thin shim that emits a
``DeprecationWarning``.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..dram.bank import BankConfig
from ..dram.controller import SchedulerPolicy
from ..dram.device import DeviceConfig
from ..dram.timing import HBM2_1GHZ, TimingParams
from ..faults import FaultConfig, FaultInjector
from ..host.processor import HostConfig, HostSystem
from ..pim.device import PimHbmDevice
from .driver import PimDeviceDriver
from .kernels import ElementwiseKernel, ExecutionReport, GemvKernel

__all__ = ["SystemConfig", "PimSystem", "PimExecutor"]


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to assemble one PIM evaluation platform.

    Replaces the nine keyword arguments of the historical
    ``PimSystem.__init__``; pass it to :class:`PimSystem` (or, preferably,
    to :class:`repro.stack.context.PimContext`).
    """

    num_pchs: int = 4
    num_rows: int = 256
    timing: TimingParams = HBM2_1GHZ
    host: Optional[HostConfig] = None
    policy: SchedulerPolicy = SchedulerPolicy.FRFCFS
    fence_penalty_cycles: Optional[int] = None
    scheduler_seed: Optional[int] = None
    refresh: bool = False
    ecc: bool = False
    # Default per-call sampling: cycle-simulate only the first N channels
    # of a kernel's set (None = all).  Used by PimBlas/PimContext.
    simulate_pchs: Optional[int] = None
    # LRU bounds of the executor's operator caches.
    gemv_cache_size: int = 32
    elementwise_cache_size: int = 64
    # Fault model (see repro.faults): None disables injection entirely.
    faults: Optional[FaultConfig] = None
    # Background ECC scrub cadence for the serving engine: run
    # driver.scrub() every N batches (0 disables scrubbing).
    scrub_interval: int = 0
    # -- overload protection (PimServer; docs/ARCHITECTURE.md) ----------
    # Bound of each serving lane's queue (None = unbounded, the
    # historical behaviour).
    queue_depth: Optional[int] = None
    # What happens to an arrival that finds its lane queue full:
    # "block" — submit() raises PimOverloadError (backpressure to the
    # producer); "shed" — the request is dropped with outcome "rejected";
    # "degrade" — it completes immediately on the bit-exact host path.
    admission: str = "block"
    # Simulated-time quantum after which a waiting request gains one
    # effective priority level (anti-starvation aging; 0 disables).
    aging_ns: float = 50_000.0
    # Server-wide retry token bucket: capacity, and tokens returned per
    # successful device batch.  Each fault retry spends one token; a dry
    # bucket routes the batch straight to the host path so a flapping
    # channel cannot amplify load.
    retry_budget: float = 8.0
    retry_refill: float = 0.5
    # Deterministic exponential backoff before each retry:
    # base * 2^attempt, jittered by up to +/- backoff_jitter (seeded).
    backoff_base_ns: float = 2_000.0
    backoff_jitter: float = 0.5
    # Per-lane circuit breaker: open after N consecutive device batch
    # failures (0 disables), stay open for the cooldown, then half-open
    # probe one batch on the device.
    breaker_threshold: int = 3
    breaker_cooldown_ns: float = 100_000.0
    # Seed of the server's (non-fault) randomness, i.e. retry jitter.
    server_seed: int = 0
    # Observability (repro.obs): build a Tracer + MetricsRegistry and
    # thread them through every layer.  Off by default — with trace=False
    # the only cost anywhere is one attribute test per hook site.
    trace: bool = False
    # How column triggers execute, from slowest-and-simplest to fastest:
    #   "scalar"   — the per-unit loop plus per-word scalar SEC-DED
    #                everywhere (the historical path; differential oracle).
    #   "lockstep" — one stacked SIMD op per broadcast column command
    #                (the PR 5 default; also an oracle for "fused").
    #   "fused"    — trace-compile whole AB-PIM trigger windows into
    #                grouped array ops, cached by content signature
    #                (repro.pim.fused).  Falls back to lockstep/scalar
    #                for anything irregular, so all three are bit-exact.
    # None means "lockstep".  The historical ``scalar_exec`` bool is a
    # deprecated alias (see docs/MIGRATION.md); mixing both is an error.
    exec_mode: Optional[str] = None
    scalar_exec: Optional[bool] = None
    # LRU bound of the fused executor's compiled-trace cache.
    trace_cache_size: int = 128

    def __post_init__(self) -> None:
        if self.scalar_exec is not None:
            if self.exec_mode is not None:
                raise TypeError(
                    "SystemConfig(scalar_exec=...) and exec_mode=... are "
                    "mutually exclusive; scalar_exec is deprecated — use "
                    'exec_mode="scalar"/"lockstep" (docs/MIGRATION.md)'
                )
            warnings.warn(
                "SystemConfig(scalar_exec=...) is deprecated; use "
                'exec_mode="scalar" (or "lockstep") instead — see '
                "docs/MIGRATION.md",
                DeprecationWarning,
                stacklevel=3,
            )
            object.__setattr__(
                self, "exec_mode", "scalar" if self.scalar_exec else "lockstep"
            )
            object.__setattr__(self, "scalar_exec", None)
        if self.exec_mode not in (None, "lockstep", "scalar", "fused"):
            raise ValueError(
                f"unknown exec_mode {self.exec_mode!r}: expected "
                '"lockstep", "scalar" or "fused"'
            )

    @property
    def execution_mode(self) -> str:
        """The resolved execution mode ("lockstep" when unset)."""
        return self.exec_mode or "lockstep"

    def replace(self, **overrides) -> "SystemConfig":
        """A copy with ``overrides`` applied (dataclasses.replace)."""
        return replace(self, **overrides)

    @classmethod
    def fast_functional(cls, **overrides) -> "SystemConfig":
        """Small device, single-channel sampling: fast functional runs."""
        base = cls(num_pchs=4, num_rows=256, simulate_pchs=1)
        return base.replace(**overrides) if overrides else base

    @classmethod
    def paper_scale(cls, **overrides) -> "SystemConfig":
        """The Table V device shape: 16 pCHs, 8192 rows per bank.

        Rows are backed sparsely, so construction is cheap; full
        cycle-accurate runs at this scale are slow — combine with
        ``simulate_pchs`` sampling for tractable experiments.
        """
        base = cls(num_pchs=16, num_rows=8192, simulate_pchs=1)
        return base.replace(**overrides) if overrides else base

    @classmethod
    def overload_hardened(cls, **overrides) -> "SystemConfig":
        """The serving shape with every protection layer armed.

        Bounded lane queues that shed excess load, ECC with background
        scrubbing, and the default retry budget / circuit breaker — the
        configuration ``serve-bench --overload`` and the goodput sweep in
        ``benchmarks/bench_serving.py`` exercise.
        """
        base = cls(
            num_pchs=4,
            num_rows=256,
            simulate_pchs=1,
            ecc=True,
            scrub_interval=4,
            queue_depth=16,
            admission="shed",
        )
        return base.replace(**overrides) if overrides else base


_LEGACY_KWARGS = (
    "num_pchs",
    "num_rows",
    "timing",
    "host",
    "policy",
    "fence_penalty_cycles",
    "scheduler_seed",
    "refresh",
    "ecc",
)


class PimSystem(HostSystem):
    """A host with PIM-HBM devices, the device driver, and the runtime.

    Configure with one :class:`SystemConfig`::

        system = PimSystem(SystemConfig.fast_functional())

    The historical keyword form ``PimSystem(num_pchs=4, num_rows=256, ...)``
    still works but is deprecated.
    """

    def __init__(self, config: Optional[SystemConfig] = None, **legacy):
        if isinstance(config, int):
            # Historical positional form: PimSystem(4, 256, ...).
            legacy["num_pchs"] = config
            config = None
        if legacy:
            unknown = set(legacy) - set(_LEGACY_KWARGS)
            if unknown:
                raise TypeError(f"unexpected arguments: {sorted(unknown)}")
            if config is not None:
                raise TypeError("pass either a SystemConfig or legacy kwargs, not both")
            warnings.warn(
                "PimSystem(num_pchs=..., ...) is deprecated; pass a "
                "SystemConfig (or use PimContext) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = SystemConfig(**legacy)
        elif config is None:
            config = SystemConfig()
        self.config = config
        device_config = DeviceConfig(
            timing=config.timing,
            bank_config=BankConfig(num_rows=config.num_rows),
            num_pchs=config.num_pchs,
            ecc=config.ecc,
        )
        device = PimHbmDevice(device_config)
        mode = config.execution_mode
        self._trace_cache = None
        if mode == "scalar":
            from ..dram.ecc import EccBank

            for channel in device.pchs:
                channel.lockstep.enabled = False
                for bank in channel.banks:
                    if isinstance(bank, EccBank):
                        bank.use_vectorized = False
        elif mode == "fused":
            from ..pim.fused import FusedLockstepGroup, TraceCache

            # One content-keyed cache shared by every channel; the fault
            # injector and driver invalidate per channel on CRF upsets
            # and quarantine.
            self._trace_cache = TraceCache(limit=config.trace_cache_size)
            for i, channel in enumerate(device.pchs):
                channel.lockstep = FusedLockstepGroup(
                    channel.units, cache=self._trace_cache, channel_id=i
                )
        super().__init__(
            device,
            host=config.host,
            policy=config.policy,
            fence_penalty_cycles=config.fence_penalty_cycles,
            scheduler_seed=config.scheduler_seed,
            refresh=config.refresh,
        )
        self.driver = PimDeviceDriver(device)
        self.driver.trace_cache = self._trace_cache
        # An active fault model attaches a seeded injector; channels listed
        # in faults.failed_channels are dead before the first access.
        self.fault_injector: Optional[FaultInjector] = None
        if config.faults is not None and config.faults.active:
            self.fault_injector = FaultInjector(self, config.faults)
        # Observability: with trace=True every layer below gets the same
        # tracer/metrics pair; with trace=False the hooks stay None and
        # each hook site costs one attribute test.
        self.tracer: Optional["Tracer"] = None
        self.metrics: Optional["MetricsRegistry"] = None
        if config.trace:
            from ..obs import MetricsRegistry, Tracer

            self.tracer = Tracer(tck_ns=self.tck_ns)
            self.metrics = MetricsRegistry()
            for pch, controller in enumerate(self.controllers):
                controller.tracer = self.tracer
                controller.channel_id = pch
            for pch, channel in enumerate(device.pchs):
                channel.tracer = self.tracer
                channel.channel_id = pch
            self.driver.tracer = self.tracer
            self.driver.metrics = self.metrics
        self.executor = PimExecutor(
            self,
            gemv_cache_size=config.gemv_cache_size,
            elementwise_cache_size=config.elementwise_cache_size,
        )


class PimExecutor:
    """The runtime executor plus memory-manager operator cache.

    Both caches are LRU-bounded: a long-running serving session touching
    many distinct operators evicts the least recently used kernel and
    returns its rows to the driver instead of growing without limit.
    """

    def __init__(
        self,
        system: PimSystem,
        gemv_cache_size: int = 32,
        elementwise_cache_size: int = 64,
    ):
        self.sys = system
        self.gemv_cache_size = gemv_cache_size
        self.elementwise_cache_size = elementwise_cache_size
        self._gemv_cache: "OrderedDict[Tuple, GemvKernel]" = OrderedDict()
        self._elementwise_cache: "OrderedDict[Tuple, ElementwiseKernel]" = OrderedDict()
        self.evictions = 0
        self.launch_count = 0

    # -- resident operators -----------------------------------------------------

    def _cache_get(self, cache: OrderedDict, key, factory, limit: int):
        kernel = cache.get(key)
        if kernel is not None:
            cache.move_to_end(key)
            return kernel
        kernel = factory()
        cache[key] = kernel
        metrics = self.sys.metrics
        if metrics is not None:
            metrics.counter(
                "runtime.cache.builds", "operator kernels built"
            ).inc()
        while len(cache) > limit:
            _, evicted = cache.popitem(last=False)
            evicted.release()  # rows go back to the driver
            self.evictions += 1
            if metrics is not None:
                metrics.counter(
                    "runtime.cache.evictions", "operator kernels evicted"
                ).inc()
        return kernel

    def gemv_operator(
        self,
        w: np.ndarray,
        channels: Optional[Sequence[int]] = None,
        max_batch: int = 1,
    ) -> GemvKernel:
        """A resident GEMV with ``w`` staged; cached by identity and shape.

        The memory manager keeps operand data "in cache area for later use"
        (Section V-A): repeated inference steps reuse the staged weights.
        The cached kernel pins a reference to ``w`` so the ``id()`` in the
        cache key cannot be recycled by a later same-shape allocation while
        the entry is alive (the kernel itself stages only a padded copy).
        """
        channel_key = None if channels is None else tuple(channels)
        key = (id(w), w.shape[0], w.shape[1], channel_key, max_batch)

        def build():
            kernel = GemvKernel(
                self.sys, w.shape[0], w.shape[1],
                channels=channels, max_batch=max_batch,
            )
            kernel.load_weights(w)
            kernel.source_weights = w
            return kernel

        return self._cache_get(self._gemv_cache, key, build, self.gemv_cache_size)

    def elementwise_operator(
        self,
        op: str,
        length: int,
        scalars: Optional[Tuple[float, float]] = None,
        channels: Optional[Sequence[int]] = None,
    ) -> ElementwiseKernel:
        """A resident elementwise operator.

        The cache key includes the scalar-register signature: two BN
        operators with different ``(gamma, beta)`` must not share an entry,
        or a cached kernel could run with a stale SRF on part of the
        device.
        """
        channel_key = None if channels is None else tuple(channels)
        scalar_key = None if scalars is None else tuple(float(s) for s in scalars)
        key = (op, length, scalar_key, channel_key)

        def build():
            return ElementwiseKernel(self.sys, op, length, channels=channels)

        return self._cache_get(
            self._elementwise_cache, key, build, self.elementwise_cache_size
        )

    # -- invocations ---------------------------------------------------------------

    def _launch(self, name: str, invoke):
        """Run one kernel invocation with the launch-count/trace hooks."""
        self.launch_count += 1
        metrics = self.sys.metrics
        if metrics is not None:
            metrics.counter(
                "runtime.kernel.launches", "executor kernel launches"
            ).inc()
        tracer = self.sys.tracer
        if tracer is None:
            return invoke()
        span = tracer.begin(name, category="kernel")
        start_ns = tracer.cycles_ns(self.sys.now_cycles())
        result, report = invoke()
        tracer.finish(span, start_ns, start_ns + report.ns)
        return result, report

    def gemv(
        self, w: np.ndarray, x: np.ndarray, simulate_pchs: Optional[int] = None
    ) -> Tuple[np.ndarray, ExecutionReport]:
        """Invoke a (cached) GEMV operator on ``x``."""
        return self._launch(
            "kernel:gemv",
            lambda: self.gemv_operator(w)(x, simulate_pchs=simulate_pchs),
        )

    def elementwise(
        self,
        op: str,
        a: np.ndarray,
        b: Optional[np.ndarray] = None,
        scalars: Optional[Tuple[float, float]] = None,
        simulate_pchs: Optional[int] = None,
    ) -> Tuple[np.ndarray, ExecutionReport]:
        """Invoke a (cached) elementwise operator."""
        kernel = self.elementwise_operator(
            op, int(np.asarray(a).size), scalars=scalars
        )
        return self._launch(
            f"kernel:{op}",
            lambda: kernel(a, b, scalars=scalars, simulate_pchs=simulate_pchs),
        )
