"""The PIM runtime (Section V-A): system assembly, executor, kernel cache.

The runtime owns three user-level modules:

* **preprocessor** — finds ops suitable for PIM acceleration and rewrites
  them to PIM custom ops; lives in :mod:`repro.stack.graph` because it
  operates on the graph framework's representation.
* **memory manager** — keeps resident PIM operators (weights stay laid out
  in the PIM region across invocations) and caches generated microkernels.
* **executor** — configures a PIM kernel and invokes it, accounting the
  per-launch overhead.

:class:`PimSystem` assembles a full evaluation platform: a PIM-HBM device
behind per-channel JEDEC controllers with a host model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..dram.bank import BankConfig
from ..dram.controller import SchedulerPolicy
from ..dram.device import DeviceConfig
from ..dram.timing import HBM2_1GHZ, TimingParams
from ..host.processor import HostConfig, HostSystem
from ..pim.device import PimHbmDevice
from .driver import PimDeviceDriver
from .kernels import ElementwiseKernel, ExecutionReport, GemvKernel

__all__ = ["PimSystem", "PimExecutor"]


class PimSystem(HostSystem):
    """A host with PIM-HBM devices, the device driver, and the runtime.

    ``num_pchs``/``num_rows`` default small enough for fast functional
    simulation; benchmarks scale them up or use per-channel sampling.
    """

    def __init__(
        self,
        num_pchs: int = 4,
        num_rows: int = 256,
        timing: TimingParams = HBM2_1GHZ,
        host: Optional[HostConfig] = None,
        policy: SchedulerPolicy = SchedulerPolicy.FRFCFS,
        fence_penalty_cycles: Optional[int] = None,
        scheduler_seed: Optional[int] = None,
        refresh: bool = False,
        ecc: bool = False,
    ):
        config = DeviceConfig(
            timing=timing,
            bank_config=BankConfig(num_rows=num_rows),
            num_pchs=num_pchs,
            ecc=ecc,
        )
        device = PimHbmDevice(config)
        super().__init__(
            device,
            host=host,
            policy=policy,
            fence_penalty_cycles=fence_penalty_cycles,
            scheduler_seed=scheduler_seed,
            refresh=refresh,
        )
        self.driver = PimDeviceDriver(device)
        self.executor = PimExecutor(self)


class PimExecutor:
    """The runtime executor plus memory-manager operator cache."""

    def __init__(self, system: PimSystem):
        self.sys = system
        self._gemv_cache: Dict[Tuple[int, int, int], GemvKernel] = {}
        self._elementwise_cache: Dict[Tuple[str, int], ElementwiseKernel] = {}
        self.launch_count = 0

    # -- resident operators -----------------------------------------------------

    def gemv_operator(self, w: np.ndarray) -> GemvKernel:
        """A resident GEMV with ``w`` staged; cached by identity and shape.

        The memory manager keeps operand data "in cache area for later use"
        (Section V-A): repeated inference steps reuse the staged weights.
        """
        key = (id(w), w.shape[0], w.shape[1])
        kernel = self._gemv_cache.get(key)
        if kernel is None:
            kernel = GemvKernel(self.sys, w.shape[0], w.shape[1])
            kernel.load_weights(w)
            self._gemv_cache[key] = kernel
        return kernel

    def elementwise_operator(self, op: str, length: int) -> ElementwiseKernel:
        """A resident elementwise operator, cached by (op, length)."""
        key = (op, length)
        kernel = self._elementwise_cache.get(key)
        if kernel is None:
            kernel = ElementwiseKernel(self.sys, op, length)
            self._elementwise_cache[key] = kernel
        return kernel

    # -- invocations ---------------------------------------------------------------

    def gemv(
        self, w: np.ndarray, x: np.ndarray, simulate_pchs: Optional[int] = None
    ) -> Tuple[np.ndarray, ExecutionReport]:
        """Invoke a (cached) GEMV operator on ``x``."""
        self.launch_count += 1
        return self.gemv_operator(w)(x, simulate_pchs=simulate_pchs)

    def elementwise(
        self,
        op: str,
        a: np.ndarray,
        b: Optional[np.ndarray] = None,
        scalars: Optional[Tuple[float, float]] = None,
        simulate_pchs: Optional[int] = None,
    ) -> Tuple[np.ndarray, ExecutionReport]:
        """Invoke a (cached) elementwise operator."""
        self.launch_count += 1
        kernel = self.elementwise_operator(op, int(np.asarray(a).size))
        return kernel(a, b, scalars=scalars, simulate_pchs=simulate_pchs)
