"""The fused LSTM operator (the paper's LSTM custom op, Section V-A).

The encoder-style LSTM layers of DS2/RNN-T/GNMT are what PIM accelerates
most; the runtime fuses a whole layer into one operator so the device is
configured once (one AB entry, one CRF program, weights resident) and each
step only streams its two GEMVs plus the host-side gate nonlinearities —
the "reduced number of kernel calls" that gives the GNMT *encoder* its
6.2x while the per-step decoder path lags (Section VII-B).

Functionally the gates are computed by the simulated PIM device in FP16;
sigmoid/tanh and the cell update run on the host in FP32 (PIM supports only
ReLU), exactly the split the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .kernels import ExecutionReport, GemvKernel
from .runtime import PimSystem

__all__ = ["LstmLayerOperator", "LstmStepReport"]


@dataclass
class LstmStepReport:
    """Timing of one LSTM step (two gate GEMVs)."""

    step: int
    cycles: int
    column_commands: int


class LstmLayerOperator:
    """A resident, fused LSTM layer on the PIM device.

    Weights ``w_ih`` (4H x D) and ``w_hh`` (4H x H) are staged once; each
    ``__call__`` runs the full sequence.  Returns the hidden-state sequence
    and a merged execution report.
    """

    def __init__(
        self,
        system: PimSystem,
        input_dim: int,
        hidden: int,
        simulate_pchs: Optional[int] = None,
    ):
        self.sys = system
        self.input_dim = input_dim
        self.hidden = hidden
        self.simulate_pchs = simulate_pchs
        self._gemv_x = GemvKernel(system, 4 * hidden, input_dim)
        self._gemv_h = GemvKernel(system, 4 * hidden, hidden)
        self._loaded = False

    def load_weights(
        self, w_ih: np.ndarray, w_hh: np.ndarray, bias: np.ndarray
    ) -> None:
        """Stage both weight matrices into the PIM region."""
        w_ih = np.asarray(w_ih, dtype=np.float16)
        w_hh = np.asarray(w_hh, dtype=np.float16)
        if w_ih.shape != (4 * self.hidden, self.input_dim):
            raise ValueError(f"w_ih must be {(4 * self.hidden, self.input_dim)}")
        if w_hh.shape != (4 * self.hidden, self.hidden):
            raise ValueError(f"w_hh must be {(4 * self.hidden, self.hidden)}")
        self._gemv_x.load_weights(w_ih)
        self._gemv_h.load_weights(w_hh)
        self.bias = np.asarray(bias, dtype=np.float32)
        if self.bias.shape != (4 * self.hidden,):
            raise ValueError("bias must be (4H,)")
        self._loaded = True

    def __call__(
        self,
        x_seq: np.ndarray,
        h0: Optional[np.ndarray] = None,
        c0: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, ExecutionReport, List[LstmStepReport]]:
        """Run the layer over ``x_seq`` of shape (T, input_dim)."""
        if not self._loaded:
            raise RuntimeError("load_weights() before invoking the layer")
        x_seq = np.asarray(x_seq, dtype=np.float16)
        if x_seq.ndim != 2 or x_seq.shape[1] != self.input_dim:
            raise ValueError(f"x_seq must be (T, {self.input_dim})")
        hidden = self.hidden
        h = (np.zeros(hidden, dtype=np.float16) if h0 is None
             else np.asarray(h0, dtype=np.float16))
        c = (np.zeros(hidden, dtype=np.float32) if c0 is None
             else np.asarray(c0, dtype=np.float32))

        merged = ExecutionReport(
            kernel=f"lstm[{self.input_dim}->{hidden}]x{x_seq.shape[0]}",
            total_pchs=self.sys.num_pchs,
            simulated_pchs=(
                self.sys.num_pchs if self.simulate_pchs is None
                else min(self.simulate_pchs, self.sys.num_pchs)
            ),
        )
        steps: List[LstmStepReport] = []
        outputs = []
        for t, x in enumerate(x_seq):
            gates_x, rep_x = self._gemv_x(x, simulate_pchs=self.simulate_pchs)
            gates_h, rep_h = self._gemv_h(h, simulate_pchs=self.simulate_pchs)
            gates = gates_x + gates_h + self.bias
            i, f, g, o = np.split(gates, 4)
            i, f, o = _sigmoid(i), _sigmoid(f), _sigmoid(o)
            g = np.tanh(g)
            c = f * c + i * g
            h = (o * np.tanh(c)).astype(np.float16)
            outputs.append(h.copy())
            cycles = rep_x.cycles + rep_h.cycles
            merged.cycles += cycles
            merged.ns += rep_x.ns + rep_h.ns
            merged.column_commands += rep_x.column_commands + rep_h.column_commands
            merged.fences += rep_x.fences + rep_h.fences
            merged.pim_instructions += rep_x.pim_instructions + rep_h.pim_instructions
            merged.pim_flops += rep_x.pim_flops + rep_h.pim_flops
            steps.append(LstmStepReport(
                t, cycles, rep_x.column_commands + rep_h.column_commands,
            ))
        # Fused layer = one launch: a single launch overhead, not 2T.
        merged.ns -= (2 * x_seq.shape[0] - 1) * self.sys.host.kernel_launch_ns
        return np.stack(outputs), merged, steps

    def reference(
        self,
        w_ih: np.ndarray,
        w_hh: np.ndarray,
        bias: np.ndarray,
        x_seq: np.ndarray,
    ) -> np.ndarray:
        """FP32 host reference of the same layer."""
        w_ih = np.asarray(w_ih, dtype=np.float32)
        w_hh = np.asarray(w_hh, dtype=np.float32)
        bias = np.asarray(bias, dtype=np.float32)
        h = np.zeros(self.hidden, dtype=np.float32)
        c = np.zeros(self.hidden, dtype=np.float32)
        out = []
        for x in np.asarray(x_seq, dtype=np.float32):
            gates = w_ih @ x + w_hh @ h + bias
            i, f, g, o = np.split(gates, 4)
            i, f, o = _sigmoid(i), _sigmoid(f), _sigmoid(o)
            g = np.tanh(g)
            c = f * c + i * g
            h = o * np.tanh(c)
            out.append(h.copy())
        return np.stack(out)


def _sigmoid(v: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-v))
