"""One-object entry point to the whole software stack.

The historical way to stand up the evaluation platform was to assemble
``PimSystem`` + ``PimBlas`` + ``Profiler`` by hand and thread nine keyword
arguments through.  :class:`PimContext` replaces that with a single
context-managed object configured by one :class:`~repro.stack.runtime.SystemConfig`::

    from repro.stack import PimContext, SystemConfig

    with PimContext(SystemConfig.fast_functional()) as ctx:
        y = ctx.blas.gemv(w, x)           # reports="profile": result only
        with ctx.server(lanes=2) as srv:  # serving engine on the same device
            ...
        print("\\n".join(ctx.report()))

Inside the context the BLAS runs in ``reports="profile"`` mode: calls
return plain results and every execution report is folded into the
context's profiler.  Pass ``reports="attach"`` to keep the historical
``(result, report)`` tuples while still using the new assembly.
"""

from __future__ import annotations

from typing import List, Optional

from .api import ServerConfig
from .blas import PimBlas
from .profiler import Profiler
from .runtime import PimSystem, SystemConfig
from .server import PimServer

__all__ = ["PimContext"]


class PimContext:
    """The assembled platform: system + driver + BLAS + profiler."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        reports: str = "profile",
    ):
        self.config = config or SystemConfig()
        self.system = PimSystem(self.config)
        # Observability passthrough (None unless config.trace is set).
        self.tracer = self.system.tracer
        self.metrics = self.system.metrics
        self.profiler = Profiler()
        self.blas = PimBlas(
            self.system,
            simulate_pchs=self.config.simulate_pchs,
            reports=reports,
            profiler=self.profiler if reports == "profile" else None,
        )
        self._servers: List[PimServer] = []
        self._fabrics: List = []

    def __enter__(self) -> "PimContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release serving lanes and shut down any fabrics' workers."""
        for server in self._servers:
            server.close()
        self._servers = []
        for fabric in self._fabrics:
            fabric.close()
        self._fabrics = []

    # -- factories ----------------------------------------------------------------

    def server(self, config: Optional[ServerConfig] = None, **legacy) -> PimServer:
        """A serving engine over this context's device and profiler.

        Configure with one :class:`~repro.stack.api.ServerConfig`
        (``ctx.server(ServerConfig(lanes=2, max_batch=4))``); knobs left
        at ``None`` inherit this context's config.  The server's
        per-request statistics and batch reports land in the context's
        profiler; its channel leases are released when the server (or the
        context) closes.

        The historical keyword form ``ctx.server(lanes=2, queue_depth=8,
        ...)`` still works behind one consolidated ``DeprecationWarning``
        (see ``docs/MIGRATION.md``).
        """
        server = PimServer(
            self.system, config, profiler=self.profiler, **legacy
        )
        self._servers.append(server)
        return server

    def fabric(self, workers: int = 2, config: Optional[ServerConfig] = None):
        """A sharded multi-process serving fabric over this config.

        The blessed entry point to scale-out serving: spawns ``workers``
        worker processes, each owning a full device replica configured
        exactly like this context's system, and routes
        :class:`~repro.stack.api.Request` submissions across them (see
        :class:`~repro.stack.fabric.PimFabric`).  Merged serving
        profiles land in this context's profiler, shard-tagged trace
        spans in its tracer, and counters in its metrics registry.  The
        workers are shut down when the fabric (or the context) closes.
        """
        from .fabric import PimFabric  # local: fabric->worker->context cycle

        fabric = PimFabric(
            self.config,
            workers=workers,
            server_config=config,
            profiler=self.profiler,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self._fabrics.append(fabric)
        return fabric

    # -- reporting ----------------------------------------------------------------

    def report(self, tccd_l: int = 4) -> List[str]:
        """Render the profiler's kernel table plus any serving session."""
        lines = ["kernel profile:"]
        lines.extend(self.profiler.profile.render(tccd_l=tccd_l))
        if self.profiler.serving is not None:
            lines.append("serving profile:")
            lines.extend(self.profiler.serving.render())
        if self.metrics is not None and self.metrics.names():
            lines.append("metrics:")
            lines.extend("  " + line for line in self.metrics.render())
        return lines
