"""One-object entry point to the whole software stack.

The historical way to stand up the evaluation platform was to assemble
``PimSystem`` + ``PimBlas`` + ``Profiler`` by hand and thread nine keyword
arguments through.  :class:`PimContext` replaces that with a single
context-managed object configured by one :class:`~repro.stack.runtime.SystemConfig`::

    from repro.stack import PimContext, SystemConfig

    with PimContext(SystemConfig.fast_functional()) as ctx:
        y = ctx.blas.gemv(w, x)           # reports="profile": result only
        with ctx.server(lanes=2) as srv:  # serving engine on the same device
            ...
        print("\\n".join(ctx.report()))

Inside the context the BLAS runs in ``reports="profile"`` mode: calls
return plain results and every execution report is folded into the
context's profiler.  Pass ``reports="attach"`` to keep the historical
``(result, report)`` tuples while still using the new assembly.
"""

from __future__ import annotations

from typing import List, Optional

from .blas import PimBlas
from .profiler import Profiler
from .runtime import PimSystem, SystemConfig
from .server import PimServer

__all__ = ["PimContext"]


class PimContext:
    """The assembled platform: system + driver + BLAS + profiler."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        reports: str = "profile",
    ):
        self.config = config or SystemConfig()
        self.system = PimSystem(self.config)
        # Observability passthrough (None unless config.trace is set).
        self.tracer = self.system.tracer
        self.metrics = self.system.metrics
        self.profiler = Profiler()
        self.blas = PimBlas(
            self.system,
            simulate_pchs=self.config.simulate_pchs,
            reports=reports,
            profiler=self.profiler if reports == "profile" else None,
        )
        self._servers: List[PimServer] = []

    def __enter__(self) -> "PimContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release any serving lanes still leased from the driver."""
        for server in self._servers:
            server.close()
        self._servers = []

    # -- factories ----------------------------------------------------------------

    def server(
        self,
        lanes: int = 2,
        max_batch: int = 8,
        simulate_pchs: Optional[int] = None,
        max_retries: int = 2,
        scrub_interval: Optional[int] = None,
        **overload_knobs,
    ) -> PimServer:
        """A serving engine over this context's device and profiler.

        The server's per-request statistics and batch reports land in this
        context's profiler; its channel leases are released when the server
        (or the context) closes.  ``max_retries`` and ``scrub_interval``
        configure the self-healing layer (the latter defaults to the
        config's ``scrub_interval``).  Any overload-protection knob of
        :class:`~repro.stack.server.PimServer` (``queue_depth``,
        ``admission``, ``aging_ns``, ``retry_budget``, ``retry_refill``,
        ``backoff_base_ns``, ``backoff_jitter``, ``breaker_threshold``,
        ``breaker_cooldown_ns``, ``seed``) passes through unchanged;
        unset knobs inherit this context's config.
        """
        server = PimServer(
            self.system,
            lanes=lanes,
            max_batch=max_batch,
            simulate_pchs=(
                simulate_pchs
                if simulate_pchs is not None
                else self.config.simulate_pchs
            ),
            profiler=self.profiler,
            max_retries=max_retries,
            scrub_interval=scrub_interval,
            **overload_knobs,
        )
        self._servers.append(server)
        return server

    # -- reporting ----------------------------------------------------------------

    def report(self, tccd_l: int = 4) -> List[str]:
        """Render the profiler's kernel table plus any serving session."""
        lines = ["kernel profile:"]
        lines.extend(self.profiler.profile.render(tccd_l=tccd_l))
        if self.profiler.serving is not None:
            lines.append("serving profile:")
            lines.extend(self.profiler.serving.render())
        if self.metrics is not None and self.metrics.names():
            lines.append("metrics:")
            lines.extend("  " + line for line in self.metrics.render())
        return lines
