"""Session-level profiling of PIM execution reports.

Collects the :class:`~repro.stack.kernels.ExecutionReport` objects a
workload produces and aggregates them into the quantities an operator of
the real system would watch: device-time share per kernel, command-stream
utilisation against the tCCD_L floor, fence share, and achieved on-chip
compute bandwidth versus the Table V peak.

The serving layer (:mod:`repro.stack.server`) additionally feeds
per-request queueing statistics into a :class:`ServingProfile`:
wait/service/turnaround per request, aggregate throughput, and per-channel
occupancy over the session makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .kernels import ExecutionReport

__all__ = [
    "BreakerTransition",
    "KernelProfile",
    "SessionProfile",
    "Profiler",
    "RequestStats",
    "ServingProfile",
]


@dataclass
class KernelProfile:
    """Aggregated statistics for one kernel name."""

    kernel: str
    invocations: int = 0
    cycles: int = 0
    ns: float = 0.0
    column_commands: int = 0
    fences: int = 0
    pim_flops: int = 0

    def merge(self, report: ExecutionReport) -> None:
        """Fold one execution report into this profile."""
        self.invocations += 1
        self.cycles += report.cycles
        self.ns += report.ns
        self.column_commands += report.column_commands
        self.fences += report.fences
        self.pim_flops += report.pim_flops

    def command_utilisation(self, tccd_l: int = 4) -> float:
        """Fraction of cycles spent at the column-command floor.

        1.0 means the stream ran back-to-back at tCCD_L; the shortfall is
        fences, row switches, turnarounds and mode transitions.
        """
        if self.cycles == 0:
            return 0.0
        return min(1.0, self.column_commands * tccd_l / self.cycles)

    def gflops(self) -> float:
        """Achieved PIM compute throughput over the kernel's wall time."""
        if self.ns == 0:
            return 0.0
        return self.pim_flops / self.ns


@dataclass
class SessionProfile:
    """All kernels of one profiled session."""

    kernels: Dict[str, KernelProfile] = field(default_factory=dict)

    @property
    def total_ns(self) -> float:
        return sum(k.ns for k in self.kernels.values())

    def time_share(self) -> Dict[str, float]:
        """Per-kernel fraction of total device time."""
        total = self.total_ns
        if total == 0:
            return {}
        return {name: k.ns / total for name, k in self.kernels.items()}

    def render(self, tccd_l: int = 4) -> List[str]:
        """A text table, widest consumers first."""
        shares = self.time_share()
        lines = [
            f"  {'kernel':24s} {'calls':>5s} {'time':>8s} {'share':>6s} "
            f"{'util':>5s} {'GFLOP/s':>8s}"
        ]
        for name, k in sorted(
            self.kernels.items(), key=lambda kv: -kv[1].ns
        ):
            lines.append(
                f"  {name:24s} {k.invocations:5d} {k.ns / 1000:7.1f}u "
                f"{shares.get(name, 0):6.1%} "
                f"{k.command_utilisation(tccd_l):5.0%} {k.gflops():8.2f}"
            )
        return lines


@dataclass
class RequestStats:
    """Queueing statistics of one served request.

    Requests that never left the queue (shed at admission, or expired
    before dispatch) carry ``start_ns == finish_ns``: their ``wait_ns`` is
    the time they sat queued before being dropped and their ``service_ns``
    is exactly 0 — dropped work must cost zero device time.
    """

    request_id: int
    op: str
    arrival_ns: float
    start_ns: float
    finish_ns: float
    batch_size: int = 1
    lane: int = 0
    # Which fabric shard served the request (0 outside a fabric).
    shard: int = 0
    # How many times this request's batch was retried after a fault, and
    # whether it ultimately completed on the host golden path.
    retries: int = 0
    fallback: bool = False
    # Scheduling class and terminal disposition (see RequestOutcome in
    # repro.stack.server): "completed", "rejected", "expired",
    # "degraded_host", or "failed".
    priority: int = 0
    outcome: str = "completed"
    # Caller-supplied correlation id (None when the caller set none).
    trace_id: Optional[str] = None
    # True when this entry came out of a crash-recovery session
    # (repro.journal): either restored from a journaled outcome
    # (batch_size == 0, no re-execution) or replayed through the
    # recovery fabric.  Recovered entries never count toward goodput —
    # the work was already acknowledged to the original caller.
    recovered: bool = False

    @property
    def wait_ns(self) -> float:
        return self.start_ns - self.arrival_ns

    @property
    def service_ns(self) -> float:
        return self.finish_ns - self.start_ns

    @property
    def turnaround_ns(self) -> float:
        return self.finish_ns - self.arrival_ns


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` at quantile ``q`` in [0, 1].

    Returns 0.0 for an empty list; ``q`` is clamped into [0, 1] so callers
    passing 0/100-style percentages out of range degrade to the extremes
    instead of indexing out of bounds.  No numpy dependency: this sits on
    the serving hot path.
    """
    if not values:
        return 0.0
    q = max(0.0, min(1.0, q))
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass(frozen=True)
class BreakerTransition:
    """One circuit-breaker state change of one serving lane.

    ``shard`` names the fabric worker whose lane transitioned (0 outside
    a fabric), so merged multi-shard logs stay attributable.
    """

    lane: int
    previous: str
    state: str
    at_ns: float
    shard: int = 0


@dataclass
class ServingProfile:
    """Aggregate statistics of one serving session."""

    requests: List[RequestStats] = field(default_factory=list)
    makespan_ns: float = 0.0
    makespan_cycles: int = 0
    # channel index -> cycles its controller spent working its queue.
    channel_busy_cycles: Dict[int, int] = field(default_factory=dict)
    batches: int = 0
    launches: int = 0
    # -- fault tolerance (see docs/ARCHITECTURE.md, "Fault tolerance") --
    # Batch re-executions after a recoverable fault.
    retries: int = 0
    # Requests completed on the host golden path after device retries
    # were exhausted (or the lane died).
    fallbacks: int = 0
    # Channels the server retired through driver.quarantine_channels().
    quarantined_channels: List[int] = field(default_factory=list)
    # Fabric shards quarantined after their worker process died (see
    # repro.stack.fabric) and requests replayed off dead shards onto
    # survivors or the host golden path.
    quarantined_shards: List[int] = field(default_factory=list)
    replays: int = 0
    # -- fabric self-healing (see docs/ARCHITECTURE.md, "Fabric
    #    resilience & chaos") --
    # shard slot -> times its worker was respawned after dying/wedging.
    respawns: Dict[int, int] = field(default_factory=dict)
    # Straggler hedges the router dispatched, and how the races ended:
    # a win means the hedge's reply landed first (the origin was
    # cancelled), a loss means the origin outran its hedge.  An in-
    # flight hedge whose origin died resolves as neither (the hedge
    # simply becomes the serving shard).
    hedges: int = 0
    hedge_wins: int = 0
    hedge_losses: int = 0
    # Background-scrub activity between batches.
    scrubs: int = 0
    scrub_corrected: int = 0
    scrub_uncorrectable: int = 0
    # Single-bit errors corrected inline by the banks' SEC-DED engines
    # during this session (delta of the device-wide counter).
    ecc_corrected: int = 0
    # Faults the session's injector introduced while serving.
    faults_injected: int = 0
    # -- overload protection (see docs/ARCHITECTURE.md, "Overload
    #    protection") --
    # Requests shed at admission because a bounded lane queue was full.
    rejected: int = 0
    # Requests dropped at dispatch because their deadline had passed.
    expired: int = 0
    # Requests completed on the bit-exact host path for *any* reason
    # (admission degrade, open circuit breaker, retry exhaustion, dead
    # lane); ``fallbacks`` remains the fault-driven subset.
    degraded: int = 0
    # Device retries refused because the server-wide token bucket was dry.
    retry_budget_exhausted: int = 0
    # -- durability (see docs/ARCHITECTURE.md, "Durability & replay") --
    # Entries tagged RequestStats.recovered: terminal outcomes restored
    # or replayed by repro.journal.recover().  Kept as a distinct
    # counter so recovery sessions never silently inflate goodput.
    recovered: int = 0
    # Circuit-breaker activity: per-transition log plus quick counters.
    breaker_transitions: List[BreakerTransition] = field(default_factory=list)
    breaker_opens: int = 0
    # Batches served by host because their lane's breaker was open.
    breaker_short_circuits: int = 0

    def record(self, stats: RequestStats) -> None:
        """Fold one terminal request into the session statistics."""
        self.requests.append(stats)
        self.makespan_ns = max(self.makespan_ns, stats.finish_ns)
        if stats.recovered:
            self.recovered += 1
        if stats.outcome == "rejected":
            self.rejected += 1
        elif stats.outcome == "expired":
            self.expired += 1
        elif stats.outcome == "degraded_host":
            self.degraded += 1

    def record_breaker(
        self, lane: int, previous: str, state: str, at_ns: float,
        shard: int = 0,
    ) -> None:
        """Log one circuit-breaker state change of ``lane``."""
        self.breaker_transitions.append(
            BreakerTransition(lane, previous, state, at_ns, shard=shard)
        )
        if state == "open":
            self.breaker_opens += 1

    def merge(self, other: "ServingProfile") -> "ServingProfile":
        """Fold ``other`` into this profile; returns ``self``.

        Carries *everything* a combined session would have recorded —
        including the per-request stats that feed the per-priority
        percentiles and the breaker transition log, which ad-hoc merging
        historically dropped.  Sessions merged into one profile ran
        back-to-back on the same device, so ``makespan_cycles`` and the
        per-channel busy numerators add, while ``makespan_ns`` (the latest
        finish on the serving clock) takes the max.

        Merging is associative and commutative: the scalar folds are
        sums/maxes, and the three event lists (requests, breaker
        transitions, quarantined channels/shards) are re-sorted into a
        canonical total order after every merge, so N shard profiles
        combined in *any* order — pairwise, left fold, right fold —
        produce identical counters, percentiles, and transition logs.
        The fabric relies on this to merge per-shard profiles as workers
        finish, in whatever order they finish.
        """
        self.requests.extend(other.requests)
        self.makespan_ns = max(self.makespan_ns, other.makespan_ns)
        self.makespan_cycles += other.makespan_cycles
        self.batches += other.batches
        self.launches += other.launches
        self.retries += other.retries
        self.fallbacks += other.fallbacks
        self.quarantined_channels.extend(other.quarantined_channels)
        self.quarantined_shards.extend(other.quarantined_shards)
        self.replays += other.replays
        for shard, count in other.respawns.items():
            self.respawns[shard] = self.respawns.get(shard, 0) + count
        self.hedges += other.hedges
        self.hedge_wins += other.hedge_wins
        self.hedge_losses += other.hedge_losses
        self.scrubs += other.scrubs
        self.scrub_corrected += other.scrub_corrected
        self.scrub_uncorrectable += other.scrub_uncorrectable
        self.ecc_corrected += other.ecc_corrected
        self.faults_injected += other.faults_injected
        self.rejected += other.rejected
        self.expired += other.expired
        self.degraded += other.degraded
        self.retry_budget_exhausted += other.retry_budget_exhausted
        self.recovered += other.recovered
        self.breaker_transitions.extend(other.breaker_transitions)
        self.breaker_opens += other.breaker_opens
        self.breaker_short_circuits += other.breaker_short_circuits
        for p, busy in other.channel_busy_cycles.items():
            self.channel_busy_cycles[p] = (
                self.channel_busy_cycles.get(p, 0) + busy
            )
        # Canonical total orders make list-carrying merges order-free.
        self.requests.sort(
            key=lambda r: (r.arrival_ns, r.finish_ns, r.shard, r.request_id)
        )
        self.breaker_transitions.sort(
            key=lambda t: (t.at_ns, t.shard, t.lane, t.previous, t.state)
        )
        self.quarantined_channels.sort()
        self.quarantined_shards.sort()
        return self

    def to_metrics(self, registry) -> None:
        """Export this profile into a
        :class:`~repro.obs.MetricsRegistry` (additive: counters
        accumulate across sessions exported into the same registry).
        """
        scalars = {
            "serving.batches": self.batches,
            "serving.launches": self.launches,
            "serving.retries": self.retries,
            "serving.fallbacks": self.fallbacks,
            "serving.scrubs": self.scrubs,
            "serving.scrub.corrected": self.scrub_corrected,
            "serving.scrub.uncorrectable": self.scrub_uncorrectable,
            "serving.ecc.corrected": self.ecc_corrected,
            "serving.faults.injected": self.faults_injected,
            "serving.retry_budget.exhausted": self.retry_budget_exhausted,
            "serving.breaker.opens": self.breaker_opens,
            "serving.breaker.short_circuits": self.breaker_short_circuits,
            "serving.replays": self.replays,
            "serving.quarantined.shards": len(self.quarantined_shards),
            "serving.respawns": sum(self.respawns.values()),
            "serving.hedges": self.hedges,
            "serving.hedge.wins": self.hedge_wins,
            "serving.hedge.losses": self.hedge_losses,
            "serving.recovered": self.recovered,
        }
        for name, value in scalars.items():
            registry.counter(name).inc(value)
        for outcome, count in sorted(self.outcomes().items()):
            registry.counter(f"serving.outcomes.{outcome}").inc(count)
        registry.gauge("serving.makespan_ns").set(self.makespan_ns)
        registry.gauge("serving.makespan_cycles").set(self.makespan_cycles)
        registry.gauge("serving.throughput_rps").set(self.throughput_rps())
        registry.gauge("serving.goodput_rps").set(self.goodput_rps())
        wait = registry.histogram("serving.wait_ns")
        service = registry.histogram("serving.service_ns")
        turnaround = registry.histogram("serving.turnaround_ns")
        for r in self.requests:
            wait.observe(r.wait_ns)
            service.observe(r.service_ns)
            turnaround.observe(r.turnaround_ns)
        for p, occupancy in self.channel_occupancy().items():
            registry.gauge(f"serving.occupancy.pch{p}").set(occupancy)

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    def outcomes(self) -> Dict[str, int]:
        """Terminal-outcome histogram of every recorded request."""
        counts: Dict[str, int] = {}
        for stats in self.requests:
            counts[stats.outcome] = counts.get(stats.outcome, 0) + 1
        return counts

    def throughput_rps(self) -> float:
        """Terminal requests per (simulated) second (0.0 when empty)."""
        if self.makespan_ns <= 0 or not self.requests:
            return 0.0
        return self.num_requests / (self.makespan_ns * 1e-9)

    def goodput_rps(self) -> float:
        """Usefully *completed* requests per (simulated) second.

        Counts ``completed`` and ``degraded_host`` outcomes (both return a
        bit-exact result to the caller); shed, expired, and failed
        requests are offered load that produced no value.  Entries
        tagged ``recovered`` (terminal outcomes a crash-recovery session
        restored or replayed — see :mod:`repro.journal`) are excluded:
        the original session already took credit for that work, so a
        recovery pass must never inflate goodput.  0.0 when the profile
        is empty or the makespan is 0 (e.g. every request shed).
        """
        if self.makespan_ns <= 0 or not self.requests:
            return 0.0
        good = sum(
            1
            for r in self.requests
            if r.outcome in ("completed", "degraded_host")
            and not r.recovered
        )
        return good / (self.makespan_ns * 1e-9)

    def mean_wait_ns(self) -> float:
        """Average time requests spent queued before dispatch."""
        if not self.requests:
            return 0.0
        return sum(r.wait_ns for r in self.requests) / len(self.requests)

    def mean_service_ns(self) -> float:
        """Average in-service (dispatch to finish) time."""
        if not self.requests:
            return 0.0
        return sum(r.service_ns for r in self.requests) / len(self.requests)

    def mean_turnaround_ns(self) -> float:
        """Average arrival-to-finish latency."""
        if not self.requests:
            return 0.0
        return sum(r.turnaround_ns for r in self.requests) / len(self.requests)

    def p95_turnaround_ns(self) -> float:
        """95th-percentile arrival-to-finish latency (nearest rank)."""
        return _percentile([r.turnaround_ns for r in self.requests], 0.95)

    def turnaround_percentiles_by_priority(
        self, qs: Tuple[float, ...] = (0.5, 0.95, 0.99)
    ) -> Dict[int, Dict[float, float]]:
        """Per-priority turnaround percentiles of *served* requests.

        Only requests that actually ran (``completed``/``degraded_host``)
        enter the distribution — a shed request's zero-length turnaround
        would otherwise flatter the latency of the class that shed it.
        Returns ``{priority: {q: ns}}``, empty when nothing was served.
        """
        by_priority: Dict[int, List[float]] = {}
        for r in self.requests:
            if r.outcome not in ("completed", "degraded_host"):
                continue
            by_priority.setdefault(r.priority, []).append(r.turnaround_ns)
        return {
            priority: {q: _percentile(values, q) for q in qs}
            for priority, values in sorted(by_priority.items())
        }

    def mean_batch_size(self) -> float:
        """Average number of requests fused per dispatched batch.

        Shed and expired requests never joined a batch (their
        ``batch_size`` is 0), so they do not inflate the average.
        """
        if self.batches == 0:
            return 0.0
        dispatched = sum(1 for r in self.requests if r.batch_size > 0)
        return dispatched / self.batches

    def channel_occupancy(self) -> Dict[int, float]:
        """Per-channel busy fraction over the session makespan."""
        if self.makespan_cycles <= 0:
            return {p: 0.0 for p in self.channel_busy_cycles}
        return {
            p: min(1.0, busy / self.makespan_cycles)
            for p, busy in sorted(self.channel_busy_cycles.items())
        }

    def render(self) -> List[str]:
        """A text table summarising the serving session."""
        lines = [
            f"  requests served        : {self.num_requests}",
            f"  batches (launches)     : {self.batches} ({self.launches})",
            f"  mean batch size        : {self.mean_batch_size():.2f}",
            f"  makespan               : {self.makespan_ns / 1000:.1f} us",
            f"  throughput             : {self.throughput_rps():,.0f} req/s",
            f"  mean wait / service    : {self.mean_wait_ns() / 1000:.1f} / "
            f"{self.mean_service_ns() / 1000:.1f} us",
            f"  mean / p95 turnaround  : {self.mean_turnaround_ns() / 1000:.1f} / "
            f"{self.p95_turnaround_ns() / 1000:.1f} us",
        ]
        occupancy = self.channel_occupancy()
        if occupancy:
            shares = " ".join(f"pch{p}:{o:4.0%}" for p, o in occupancy.items())
            lines.append(f"  channel occupancy      : {shares}")
        if self.rejected or self.expired or self.degraded:
            lines.append(
                f"  goodput                : {self.goodput_rps():,.0f} req/s"
            )
            lines.append(
                f"  rejected/expired/degr. : {self.rejected} / "
                f"{self.expired} / {self.degraded}"
            )
        if self.recovered:
            lines.append(
                f"  recovered (journal)    : {self.recovered} "
                f"(excluded from goodput)"
            )
        if self.breaker_transitions or self.retry_budget_exhausted:
            lines.append(
                f"  breaker opens (shorts) : {self.breaker_opens} "
                f"({self.breaker_short_circuits})"
            )
            lines.append(
                f"  retry budget exhausted : {self.retry_budget_exhausted}"
            )
        by_priority = self.turnaround_percentiles_by_priority((0.5, 0.95))
        if len(by_priority) > 1:
            for priority, pcts in by_priority.items():
                lines.append(
                    f"  prio {priority:>3d} p50/p95      : "
                    f"{pcts[0.5] / 1000:.1f} / {pcts[0.95] / 1000:.1f} us"
                )
        if self.quarantined_shards or self.replays:
            shards = (
                ",".join(str(s) for s in sorted(set(self.quarantined_shards)))
                or "-"
            )
            lines.append(f"  quarantined shards     : {shards}")
            lines.append(f"  requests replayed      : {self.replays}")
        if self.respawns:
            respawned = ",".join(
                f"{s}x{n}" for s, n in sorted(self.respawns.items())
            )
            lines.append(f"  shards respawned       : {respawned}")
        if self.hedges:
            lines.append(
                f"  hedges (won/lost)      : {self.hedges} "
                f"({self.hedge_wins}/{self.hedge_losses})"
            )
        if (
            self.retries
            or self.fallbacks
            or self.quarantined_channels
            or self.scrubs
            or self.ecc_corrected
            or self.faults_injected
        ):
            quarantined = (
                ",".join(str(p) for p in sorted(set(self.quarantined_channels)))
                or "-"
            )
            lines.append(f"  faults injected        : {self.faults_injected}")
            lines.append(
                f"  retries / fallbacks    : {self.retries} / {self.fallbacks}"
            )
            lines.append(f"  quarantined channels   : {quarantined}")
            lines.append(f"  ecc corrected inline   : {self.ecc_corrected}")
            lines.append(
                f"  scrubs (fixed/fatal)   : {self.scrubs} "
                f"({self.scrub_corrected}/{self.scrub_uncorrectable})"
            )
        return lines


class Profiler:
    """Collects execution reports, optionally wrapping a
    :class:`~repro.stack.blas.PimBlas` (or any object whose methods return
    ``(result, ExecutionReport)``).

    Standalone form (``Profiler()``) is the report sink the
    ``reports="profile"`` BLAS mode and the serving engine feed through
    :meth:`record`.
    """

    def __init__(self, blas=None):
        self._blas = blas
        self.profile = SessionProfile()
        self.serving: Optional[ServingProfile] = None

    def __getattr__(self, name: str):
        if self._blas is None:
            raise AttributeError(name)
        target = getattr(self._blas, name)
        if not callable(target):
            return target

        def wrapped(*args, **kwargs):
            result = target(*args, **kwargs)
            self._record(result)
            return result

        return wrapped

    def record(self, report: ExecutionReport) -> None:
        """Fold one execution report into the session profile."""
        profile = self.profile.kernels.get(report.kernel)
        if profile is None:
            profile = KernelProfile(report.kernel)
            self.profile.kernels[report.kernel] = profile
        profile.merge(report)

    def record_serving(self, serving: "ServingProfile") -> None:
        """Attach (or merge) a serving session's queueing statistics."""
        if self.serving is None:
            self.serving = serving
            return
        self.serving.merge(serving)

    def _record(self, result) -> None:
        reports: List[ExecutionReport] = []
        if isinstance(result, tuple):
            for item in result:
                if isinstance(item, ExecutionReport):
                    reports.append(item)
                elif isinstance(item, list) and item and isinstance(
                    item[0], ExecutionReport
                ):
                    reports.extend(item)
        for report in reports:
            self.record(report)
