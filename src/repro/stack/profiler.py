"""Session-level profiling of PIM execution reports.

Collects the :class:`~repro.stack.kernels.ExecutionReport` objects a
workload produces and aggregates them into the quantities an operator of
the real system would watch: device-time share per kernel, command-stream
utilisation against the tCCD_L floor, fence share, and achieved on-chip
compute bandwidth versus the Table V peak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .kernels import ExecutionReport

__all__ = ["KernelProfile", "SessionProfile", "Profiler"]


@dataclass
class KernelProfile:
    """Aggregated statistics for one kernel name."""

    kernel: str
    invocations: int = 0
    cycles: int = 0
    ns: float = 0.0
    column_commands: int = 0
    fences: int = 0
    pim_flops: int = 0

    def merge(self, report: ExecutionReport) -> None:
        """Fold one execution report into this profile."""
        self.invocations += 1
        self.cycles += report.cycles
        self.ns += report.ns
        self.column_commands += report.column_commands
        self.fences += report.fences
        self.pim_flops += report.pim_flops

    def command_utilisation(self, tccd_l: int = 4) -> float:
        """Fraction of cycles spent at the column-command floor.

        1.0 means the stream ran back-to-back at tCCD_L; the shortfall is
        fences, row switches, turnarounds and mode transitions.
        """
        if self.cycles == 0:
            return 0.0
        return min(1.0, self.column_commands * tccd_l / self.cycles)

    def gflops(self) -> float:
        """Achieved PIM compute throughput over the kernel's wall time."""
        if self.ns == 0:
            return 0.0
        return self.pim_flops / self.ns


@dataclass
class SessionProfile:
    """All kernels of one profiled session."""

    kernels: Dict[str, KernelProfile] = field(default_factory=dict)

    @property
    def total_ns(self) -> float:
        return sum(k.ns for k in self.kernels.values())

    def time_share(self) -> Dict[str, float]:
        """Per-kernel fraction of total device time."""
        total = self.total_ns
        if total == 0:
            return {}
        return {name: k.ns / total for name, k in self.kernels.items()}

    def render(self, tccd_l: int = 4) -> List[str]:
        """A text table, widest consumers first."""
        shares = self.time_share()
        lines = [
            f"  {'kernel':24s} {'calls':>5s} {'time':>8s} {'share':>6s} "
            f"{'util':>5s} {'GFLOP/s':>8s}"
        ]
        for name, k in sorted(
            self.kernels.items(), key=lambda kv: -kv[1].ns
        ):
            lines.append(
                f"  {name:24s} {k.invocations:5d} {k.ns / 1000:7.1f}u "
                f"{shares.get(name, 0):6.1%} "
                f"{k.command_utilisation(tccd_l):5.0%} {k.gflops():8.2f}"
            )
        return lines


class Profiler:
    """Wraps a :class:`~repro.stack.blas.PimBlas` (or any object whose
    methods return ``(result, ExecutionReport)``) and records every call."""

    def __init__(self, blas):
        self._blas = blas
        self.profile = SessionProfile()

    def __getattr__(self, name: str):
        target = getattr(self._blas, name)
        if not callable(target):
            return target

        def wrapped(*args, **kwargs):
            result = target(*args, **kwargs)
            self._record(result)
            return result

        return wrapped

    def _record(self, result) -> None:
        reports: List[ExecutionReport] = []
        if isinstance(result, tuple):
            for item in result:
                if isinstance(item, ExecutionReport):
                    reports.append(item)
                elif isinstance(item, list) and item and isinstance(
                    item[0], ExecutionReport
                ):
                    reports.extend(item)
        for report in reports:
            profile = self.profile.kernels.get(report.kernel)
            if profile is None:
                profile = KernelProfile(report.kernel)
                self.profile.kernels[report.kernel] = profile
            profile.merge(report)
