"""Session-level profiling of PIM execution reports.

Collects the :class:`~repro.stack.kernels.ExecutionReport` objects a
workload produces and aggregates them into the quantities an operator of
the real system would watch: device-time share per kernel, command-stream
utilisation against the tCCD_L floor, fence share, and achieved on-chip
compute bandwidth versus the Table V peak.

The serving layer (:mod:`repro.stack.server`) additionally feeds
per-request queueing statistics into a :class:`ServingProfile`:
wait/service/turnaround per request, aggregate throughput, and per-channel
occupancy over the session makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .kernels import ExecutionReport

__all__ = [
    "KernelProfile",
    "SessionProfile",
    "Profiler",
    "RequestStats",
    "ServingProfile",
]


@dataclass
class KernelProfile:
    """Aggregated statistics for one kernel name."""

    kernel: str
    invocations: int = 0
    cycles: int = 0
    ns: float = 0.0
    column_commands: int = 0
    fences: int = 0
    pim_flops: int = 0

    def merge(self, report: ExecutionReport) -> None:
        """Fold one execution report into this profile."""
        self.invocations += 1
        self.cycles += report.cycles
        self.ns += report.ns
        self.column_commands += report.column_commands
        self.fences += report.fences
        self.pim_flops += report.pim_flops

    def command_utilisation(self, tccd_l: int = 4) -> float:
        """Fraction of cycles spent at the column-command floor.

        1.0 means the stream ran back-to-back at tCCD_L; the shortfall is
        fences, row switches, turnarounds and mode transitions.
        """
        if self.cycles == 0:
            return 0.0
        return min(1.0, self.column_commands * tccd_l / self.cycles)

    def gflops(self) -> float:
        """Achieved PIM compute throughput over the kernel's wall time."""
        if self.ns == 0:
            return 0.0
        return self.pim_flops / self.ns


@dataclass
class SessionProfile:
    """All kernels of one profiled session."""

    kernels: Dict[str, KernelProfile] = field(default_factory=dict)

    @property
    def total_ns(self) -> float:
        return sum(k.ns for k in self.kernels.values())

    def time_share(self) -> Dict[str, float]:
        """Per-kernel fraction of total device time."""
        total = self.total_ns
        if total == 0:
            return {}
        return {name: k.ns / total for name, k in self.kernels.items()}

    def render(self, tccd_l: int = 4) -> List[str]:
        """A text table, widest consumers first."""
        shares = self.time_share()
        lines = [
            f"  {'kernel':24s} {'calls':>5s} {'time':>8s} {'share':>6s} "
            f"{'util':>5s} {'GFLOP/s':>8s}"
        ]
        for name, k in sorted(
            self.kernels.items(), key=lambda kv: -kv[1].ns
        ):
            lines.append(
                f"  {name:24s} {k.invocations:5d} {k.ns / 1000:7.1f}u "
                f"{shares.get(name, 0):6.1%} "
                f"{k.command_utilisation(tccd_l):5.0%} {k.gflops():8.2f}"
            )
        return lines


@dataclass
class RequestStats:
    """Queueing statistics of one served request."""

    request_id: int
    op: str
    arrival_ns: float
    start_ns: float
    finish_ns: float
    batch_size: int = 1
    lane: int = 0
    # How many times this request's batch was retried after a fault, and
    # whether it ultimately completed on the host golden path.
    retries: int = 0
    fallback: bool = False

    @property
    def wait_ns(self) -> float:
        return self.start_ns - self.arrival_ns

    @property
    def service_ns(self) -> float:
        return self.finish_ns - self.start_ns

    @property
    def turnaround_ns(self) -> float:
        return self.finish_ns - self.arrival_ns


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (no numpy dependency for the hot path)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class ServingProfile:
    """Aggregate statistics of one serving session."""

    requests: List[RequestStats] = field(default_factory=list)
    makespan_ns: float = 0.0
    makespan_cycles: int = 0
    # channel index -> cycles its controller spent working its queue.
    channel_busy_cycles: Dict[int, int] = field(default_factory=dict)
    batches: int = 0
    launches: int = 0
    # -- fault tolerance (see docs/ARCHITECTURE.md, "Fault tolerance") --
    # Batch re-executions after a recoverable fault.
    retries: int = 0
    # Requests completed on the host golden path after device retries
    # were exhausted (or the lane died).
    fallbacks: int = 0
    # Channels the server retired through driver.quarantine_channels().
    quarantined_channels: List[int] = field(default_factory=list)
    # Background-scrub activity between batches.
    scrubs: int = 0
    scrub_corrected: int = 0
    scrub_uncorrectable: int = 0
    # Single-bit errors corrected inline by the banks' SEC-DED engines
    # during this session (delta of the device-wide counter).
    ecc_corrected: int = 0
    # Faults the session's injector introduced while serving.
    faults_injected: int = 0

    def record(self, stats: RequestStats) -> None:
        """Fold one served request into the session statistics."""
        self.requests.append(stats)
        self.makespan_ns = max(self.makespan_ns, stats.finish_ns)

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    def throughput_rps(self) -> float:
        """Served requests per (simulated) second."""
        if self.makespan_ns == 0:
            return 0.0
        return self.num_requests / (self.makespan_ns * 1e-9)

    def mean_wait_ns(self) -> float:
        """Average time requests spent queued before dispatch."""
        if not self.requests:
            return 0.0
        return sum(r.wait_ns for r in self.requests) / len(self.requests)

    def mean_service_ns(self) -> float:
        """Average in-service (dispatch to finish) time."""
        if not self.requests:
            return 0.0
        return sum(r.service_ns for r in self.requests) / len(self.requests)

    def mean_turnaround_ns(self) -> float:
        """Average arrival-to-finish latency."""
        if not self.requests:
            return 0.0
        return sum(r.turnaround_ns for r in self.requests) / len(self.requests)

    def p95_turnaround_ns(self) -> float:
        """95th-percentile arrival-to-finish latency (nearest rank)."""
        return _percentile([r.turnaround_ns for r in self.requests], 0.95)

    def mean_batch_size(self) -> float:
        """Average number of requests fused per dispatched batch."""
        if self.batches == 0:
            return 0.0
        return self.num_requests / self.batches

    def channel_occupancy(self) -> Dict[int, float]:
        """Per-channel busy fraction over the session makespan."""
        if self.makespan_cycles <= 0:
            return {p: 0.0 for p in self.channel_busy_cycles}
        return {
            p: min(1.0, busy / self.makespan_cycles)
            for p, busy in sorted(self.channel_busy_cycles.items())
        }

    def render(self) -> List[str]:
        """A text table summarising the serving session."""
        lines = [
            f"  requests served        : {self.num_requests}",
            f"  batches (launches)     : {self.batches} ({self.launches})",
            f"  mean batch size        : {self.mean_batch_size():.2f}",
            f"  makespan               : {self.makespan_ns / 1000:.1f} us",
            f"  throughput             : {self.throughput_rps():,.0f} req/s",
            f"  mean wait / service    : {self.mean_wait_ns() / 1000:.1f} / "
            f"{self.mean_service_ns() / 1000:.1f} us",
            f"  mean / p95 turnaround  : {self.mean_turnaround_ns() / 1000:.1f} / "
            f"{self.p95_turnaround_ns() / 1000:.1f} us",
        ]
        occupancy = self.channel_occupancy()
        if occupancy:
            shares = " ".join(f"pch{p}:{o:4.0%}" for p, o in occupancy.items())
            lines.append(f"  channel occupancy      : {shares}")
        if (
            self.retries
            or self.fallbacks
            or self.quarantined_channels
            or self.scrubs
            or self.ecc_corrected
            or self.faults_injected
        ):
            quarantined = (
                ",".join(str(p) for p in sorted(set(self.quarantined_channels)))
                or "-"
            )
            lines.append(f"  faults injected        : {self.faults_injected}")
            lines.append(
                f"  retries / fallbacks    : {self.retries} / {self.fallbacks}"
            )
            lines.append(f"  quarantined channels   : {quarantined}")
            lines.append(f"  ecc corrected inline   : {self.ecc_corrected}")
            lines.append(
                f"  scrubs (fixed/fatal)   : {self.scrubs} "
                f"({self.scrub_corrected}/{self.scrub_uncorrectable})"
            )
        return lines


class Profiler:
    """Collects execution reports, optionally wrapping a
    :class:`~repro.stack.blas.PimBlas` (or any object whose methods return
    ``(result, ExecutionReport)``).

    Standalone form (``Profiler()``) is the report sink the
    ``reports="profile"`` BLAS mode and the serving engine feed through
    :meth:`record`.
    """

    def __init__(self, blas=None):
        self._blas = blas
        self.profile = SessionProfile()
        self.serving: Optional[ServingProfile] = None

    def __getattr__(self, name: str):
        if self._blas is None:
            raise AttributeError(name)
        target = getattr(self._blas, name)
        if not callable(target):
            return target

        def wrapped(*args, **kwargs):
            result = target(*args, **kwargs)
            self._record(result)
            return result

        return wrapped

    def record(self, report: ExecutionReport) -> None:
        """Fold one execution report into the session profile."""
        profile = self.profile.kernels.get(report.kernel)
        if profile is None:
            profile = KernelProfile(report.kernel)
            self.profile.kernels[report.kernel] = profile
        profile.merge(report)

    def record_serving(self, serving: "ServingProfile") -> None:
        """Attach (or merge) a serving session's queueing statistics."""
        if self.serving is None:
            self.serving = serving
            return
        merged = self.serving
        merged.requests.extend(serving.requests)
        merged.makespan_ns = max(merged.makespan_ns, serving.makespan_ns)
        # Sessions recorded into one profiler ran back-to-back on the
        # device, so their device-time denominators add — as their
        # channel_busy_cycles numerators do.  Taking max() here would
        # inflate channel_occupancy() for multi-session runs.
        merged.makespan_cycles += serving.makespan_cycles
        merged.batches += serving.batches
        merged.launches += serving.launches
        merged.retries += serving.retries
        merged.fallbacks += serving.fallbacks
        merged.quarantined_channels.extend(serving.quarantined_channels)
        merged.scrubs += serving.scrubs
        merged.scrub_corrected += serving.scrub_corrected
        merged.scrub_uncorrectable += serving.scrub_uncorrectable
        merged.ecc_corrected += serving.ecc_corrected
        merged.faults_injected += serving.faults_injected
        for p, busy in serving.channel_busy_cycles.items():
            merged.channel_busy_cycles[p] = (
                merged.channel_busy_cycles.get(p, 0) + busy
            )

    def _record(self, result) -> None:
        reports: List[ExecutionReport] = []
        if isinstance(result, tuple):
            for item in result:
                if isinstance(item, ExecutionReport):
                    reports.append(item)
                elif isinstance(item, list) and item and isinstance(
                    item[0], ExecutionReport
                ):
                    reports.extend(item)
        for report in reports:
            self.record(report)
