"""The PIM BLAS (Section V-A): the public linear-algebra API.

Users call these functions with ordinary numpy arrays and get numerically
faithful results computed *by the simulated PIM device* plus an execution
report.  The BLAS hides everything below it: layouts, microkernels, mode
transitions, fences.

Reference models (``gemv_reference`` etc.) reproduce the device's exact
FP16 rounding behaviour in vectorised numpy; tests assert bit-equality
between the two paths.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..common.fp16 import vec_relu
from ..pim.registers import LANES
from ..pim.isa import GRF_REGS
from .kernels import ExecutionReport
from .runtime import PimSystem

__all__ = [
    "PimBlas",
    "gemv_reference",
    "add_reference",
    "mul_reference",
    "relu_reference",
    "bn_reference",
]


class PimBlas:
    """PIM BLAS bound to one :class:`PimSystem`.

    ``reports`` selects how execution reports are delivered:

    * ``"attach"`` (default, historical) — every call returns
      ``(result, ExecutionReport)``;
    * ``"profile"`` — calls return just the result and the report is fed
      to ``profiler.record`` (any object with a ``record(report)`` method,
      typically :class:`repro.stack.profiler.Profiler`).
    """

    def __init__(
        self,
        system: PimSystem,
        simulate_pchs: Optional[int] = None,
        reports: str = "attach",
        profiler=None,
    ):
        if reports not in ("attach", "profile"):
            raise ValueError('reports must be "attach" or "profile"')
        if reports == "profile" and profiler is None:
            raise ValueError('reports="profile" needs a profiler sink')
        self.sys = system
        self.simulate_pchs = simulate_pchs
        self.reports = reports
        self.profiler = profiler

    def _emit(self, result, report):
        if self.reports == "profile":
            self.profiler.record(report)
            return result
        return result, report

    # -- level-2 ------------------------------------------------------------------

    def gemv(self, w: np.ndarray, x: np.ndarray):
        """``y = W @ x`` with FP16 PIM MACs, FP32 host reduction."""
        return self._emit(
            *self.sys.executor.gemv(w, x, simulate_pchs=self.simulate_pchs)
        )

    # -- level-1 ------------------------------------------------------------------

    def add(self, a: np.ndarray, b: np.ndarray):
        """Elementwise FP16 addition (residual/skip connections)."""
        return self._emit(
            *self.sys.executor.elementwise(
                "add", a, b, simulate_pchs=self.simulate_pchs
            )
        )

    def mul(self, a: np.ndarray, b: np.ndarray):
        """Elementwise FP16 multiplication."""
        return self._emit(
            *self.sys.executor.elementwise(
                "mul", a, b, simulate_pchs=self.simulate_pchs
            )
        )

    def relu(self, a: np.ndarray):
        """Elementwise ReLU during data movement (MOV with the R flag)."""
        return self._emit(
            *self.sys.executor.elementwise(
                "relu", a, simulate_pchs=self.simulate_pchs
            )
        )

    def bn(self, a: np.ndarray, gamma: float, beta: float):
        """Inference batch-norm folded to ``gamma * x + beta`` (MAD)."""
        return self._emit(
            *self.sys.executor.elementwise(
                "bn", a, scalars=(float(gamma), float(beta)),
                simulate_pchs=self.simulate_pchs,
            )
        )

    # -- composite: LSTM cell ------------------------------------------------------

    def lstm_cell(
        self,
        w_ih: np.ndarray,
        w_hh: np.ndarray,
        bias: np.ndarray,
        x: np.ndarray,
        h: np.ndarray,
        c: np.ndarray,
    ):
        """One LSTM step: the GEMVs run on PIM, activations on the host.

        The PIM LSTM custom op accelerates the two matrix-vector products
        (the memory-bound part); gate nonlinearities are host work, exactly
        as in the paper's LSTM custom op.
        Returns ``(h_next, c_next, [gemv reports])`` — or just
        ``(h_next, c_next)`` in ``reports="profile"`` mode.
        """
        hidden = h.shape[0]
        gates_x, rep_x = self.sys.executor.gemv(
            w_ih, x, simulate_pchs=self.simulate_pchs
        )
        gates_h, rep_h = self.sys.executor.gemv(
            w_hh, h, simulate_pchs=self.simulate_pchs
        )
        gates = gates_x + gates_h + np.asarray(bias, dtype=np.float32)
        i, f, g, o = (
            gates[:hidden],
            gates[hidden : 2 * hidden],
            gates[2 * hidden : 3 * hidden],
            gates[3 * hidden :],
        )
        i = _sigmoid(i)
        f = _sigmoid(f)
        g = np.tanh(g)
        o = _sigmoid(o)
        c_next = f * np.asarray(c, dtype=np.float32) + i * g
        h_next = o * np.tanh(c_next)
        h_next = h_next.astype(np.float16)
        c_next = c_next.astype(np.float16)
        if self.reports == "profile":
            self.profiler.record(rep_x)
            self.profiler.record(rep_h)
            return h_next, c_next
        return h_next, c_next, [rep_x, rep_h]


def _sigmoid(v: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-v))


# ---------------------------------------------------------------------------
# Bit-equivalent reference models
# ---------------------------------------------------------------------------


def gemv_reference(
    w: np.ndarray, x: np.ndarray, num_pchs: int, n_slice: Optional[int] = None
) -> np.ndarray:
    """The device's exact GEMV result (FP16 MAC order included).

    Each output element accumulates in 8 FP16 sub-accumulators (one per GRF
    register, fed round-robin by input chunk position) over its pCH slice;
    sub-accumulators and slices are then reduced in FP32 by the host.
    """
    w = np.asarray(w, dtype=np.float16)
    x = np.asarray(x, dtype=np.float16)
    m, n = w.shape
    if n_slice is None:
        n_slice = -(-n // num_pchs)
        n_slice = -(-n_slice // GRF_REGS) * GRF_REGS
    n_padded = num_pchs * n_slice
    wp = np.zeros((m, n_padded), dtype=np.float16)
    wp[:, :n] = w
    xp = np.zeros(n_padded, dtype=np.float16)
    xp[:n] = x
    total = np.zeros(m, dtype=np.float32)
    for p in range(num_pchs):
        acc = np.zeros((m, GRF_REGS), dtype=np.float16)
        chunks = n_slice // GRF_REGS
        for k in range(chunks):
            base = p * n_slice + k * GRF_REGS
            wk = wp[:, base : base + GRF_REGS]
            xk = xp[base : base + GRF_REGS]
            prod = (wk * xk[np.newaxis, :]).astype(np.float16)
            acc = (acc + prod).astype(np.float16)
        total += acc.astype(np.float32).sum(axis=1)
    return total


def add_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bit-exact reference of the PIM elementwise ADD."""
    return (np.asarray(a, np.float16) + np.asarray(b, np.float16)).astype(np.float16)


def mul_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bit-exact reference of the PIM elementwise MUL."""
    return (np.asarray(a, np.float16) * np.asarray(b, np.float16)).astype(np.float16)


def relu_reference(a: np.ndarray) -> np.ndarray:
    """Bit-exact reference of the PIM MOV(ReLU) (sign-bit mux)."""
    return vec_relu(np.asarray(a, np.float16))


def bn_reference(a: np.ndarray, gamma: float, beta: float) -> np.ndarray:
    """Bit-exact reference of the PIM MAD-based batch norm."""
    a = np.asarray(a, np.float16)
    scaled = (a * np.float16(gamma)).astype(np.float16)
    return (scaled + np.float16(beta)).astype(np.float16)
