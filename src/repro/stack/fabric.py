"""A multi-process serving fabric: one router, N device-replica shards.

The paper's software stack serves "millions of users" from one runtime;
a single Python process driving every lane serialises on the interpreter
long before the simulated device saturates.  :class:`PimFabric` is the
scale-out tier: it shards serving across worker *processes* (each owning
a full :class:`~repro.stack.context.PimContext` +
:class:`~repro.stack.server.PimServer` over an identically-configured
device replica — see :mod:`repro.stack.worker`) and plays the role the
device driver plays one level down: placement, failure isolation, and
merged accounting.

* **placement** — requests are routed by *signature* on a consistent-hash
  ring (virtual nodes per shard), so same-signature requests land on the
  same shard and reuse its staged weights/kernels, and a quarantined
  shard only re-homes its own arc of the ring.  A group that would push
  its home shard past the round's fair share falls back to the
  least-loaded shard instead.
* **failure handling** — the quarantine + breaker discipline of the
  channel tier, lifted to shards: a worker that dies (SIGKILL, crash,
  broken pipe) or replies with an unrecoverable serving error is
  quarantined, and every request of its round is replayed on the
  survivors — or completed on the host golden path when no shard is
  left.  Every submitted request ends in exactly one terminal
  :class:`~repro.stack.server.RequestOutcome`; results are bit-exact
  regardless of which shard (or the host) served them, because shards
  are full device replicas and the golden path reproduces the device's
  arithmetic.
* **accounting** — per-shard :class:`~repro.stack.profiler.ServingProfile`
  replies merge through ``ServingProfile.merge()`` (associative and
  commutative, so arrival order does not matter) with channels rewritten
  into a global ``shard * num_pchs + local`` space; worker trace spans
  merge into the router's tracer with shard tags, and the Chrome export
  shows one process row per shard (pid = shard, tid = lane).

::

    with PimContext(SystemConfig.fast_functional()) as ctx:
        with ctx.fabric(workers=4) as fabric:
            handles = [fabric.submit(Request("gemv", weights=w, a=x))
                       for x in inputs]
            profile = fabric.run()
        results = [h.result for h in handles]
"""

from __future__ import annotations

import bisect
import hashlib
import math
import multiprocessing
import os
import signal
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import PimProgramError, PimWorkerError
from .api import Request, ServerConfig
from .blas import (
    add_reference,
    bn_reference,
    gemv_reference,
    mul_reference,
    relu_reference,
)
from .profiler import Profiler, RequestStats, ServingProfile
from .runtime import SystemConfig
from .worker import run_worker

__all__ = ["FabricHandle", "PimFabric"]


class FabricHandle:
    """The caller's handle to one request submitted to a fabric.

    Mirrors the single-process :class:`~repro.stack.server.PimRequest`
    surface the way callers actually use it: ``result`` (the computed
    array, bit-exact with the host reference), ``outcome`` (the terminal
    :class:`~repro.stack.server.RequestOutcome` value as a string), and
    ``shard`` (which worker served it; -1 means the router's host golden
    path).  All three are ``None`` until :meth:`PimFabric.run` returns.
    """

    def __init__(self, request_id: int, request: Request):
        #: Fabric-wide request id (unique across shards and rounds).
        self.request_id = request_id
        #: The immutable submitted request.
        self.request = request
        #: Computed result (None until run(), or for dropped requests).
        self.result: Optional[np.ndarray] = None
        #: Terminal outcome string (see RequestOutcome), None until run().
        self.outcome: Optional[str] = None
        #: Shard that produced the terminal outcome (-1 = router host path).
        self.shard: Optional[int] = None
        #: How many times the request was replayed off a dead shard.
        self.replays: int = 0


class _HashRing:
    """Consistent-hash ring with virtual nodes over the alive shards."""

    def __init__(self, shards, vnodes: int = 64):
        self._vnodes = int(vnodes)
        self._shards: set = set()
        self._points: List[int] = []
        self._owners: List[int] = []
        for shard in shards:
            self.add(shard)

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(
            hashlib.sha1(key.encode("utf-8")).digest()[:8], "big"
        )

    def _rebuild(self) -> None:
        ring = []
        for shard in self._shards:
            for v in range(self._vnodes):
                ring.append((self._hash(f"shard{shard}:vn{v}"), shard))
        ring.sort()
        self._points = [p for p, _ in ring]
        self._owners = [s for _, s in ring]

    def add(self, shard: int) -> None:
        """Add ``shard``'s virtual nodes to the ring."""
        self._shards.add(int(shard))
        self._rebuild()

    def remove(self, shard: int) -> None:
        """Drop ``shard`` from the ring (no-op when absent)."""
        self._shards.discard(int(shard))
        self._rebuild()

    def lookup(self, key: Tuple) -> int:
        """The shard owning ``key``'s ring point (clockwise successor)."""
        if not self._points:
            raise PimWorkerError("no alive shards on the ring")
        point = self._hash(repr(key))
        i = bisect.bisect_right(self._points, point) % len(self._points)
        return self._owners[i]


@dataclass
class _WorkerLink:
    """The router's bookkeeping for one shard's worker process."""

    shard: int
    process: Any
    conn: Any
    alive: bool = True
    #: Requests this shard has terminally served across rounds.
    served: int = 0


class PimFabric:
    """Routes requests across N worker processes, each a device replica.

    Construct directly (``PimFabric(SystemConfig(...), workers=4)``) or —
    the blessed path — via :meth:`repro.stack.context.PimContext.fabric`,
    which wires the context's profiler/tracer/metrics through.  The
    submit surface is the new-API one only: :meth:`submit` takes a
    :class:`~repro.stack.api.Request`; there is no legacy op-string form
    to deprecate because the fabric never had one.
    """

    #: Reply-wait bound per shard round; a worker silent this long is
    #: treated as dead (SIGKILLed and quarantined).
    reply_timeout_s: float = 600.0

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        workers: int = 2,
        server_config: Optional[ServerConfig] = None,
        *,
        profiler: Optional[Profiler] = None,
        tracer=None,
        metrics=None,
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.config = config or SystemConfig()
        self.server_config = (server_config or ServerConfig()).resolve(
            self.config
        )
        self.num_workers = int(workers)
        self.profiler = profiler
        self.metrics = metrics
        self.tracer = tracer
        if self.tracer is None and self.config.trace:
            from ..obs import Tracer

            self.tracer = Tracer()
        #: PimWorkerError log, one entry per quarantined shard (newest last).
        self.worker_errors: List[PimWorkerError] = []
        self._mp = multiprocessing.get_context(start_method)
        self._workers: Dict[int, _WorkerLink] = {
            shard: self._spawn(shard) for shard in range(self.num_workers)
        }
        self._ring = _HashRing(range(self.num_workers))
        self._pending: List[FabricHandle] = []
        self._next_rid = 0
        self._quarantined: List[int] = []
        self._merged_ids = 0
        # Test/failure-injection hook: called once per round, after every
        # dispatch is on the wire and before any reply is collected.  The
        # worker-kill conservation test SIGKILLs a shard here, which is
        # the most adversarial deterministic instant (work genuinely
        # in flight on the doomed worker).
        self._post_dispatch_hook: Optional[Callable[["PimFabric"], None]] = None
        #: The in-flight round's shard -> handles map (for hooks/tests).
        self._round_assignment: Dict[int, List[FabricHandle]] = {}
        self._closed = False

    # -- lifecycle ----------------------------------------------------------------

    def _spawn(self, shard: int) -> _WorkerLink:
        parent, child = self._mp.Pipe()
        process = self._mp.Process(
            target=run_worker,
            args=(child, self.config, self.server_config, shard),
            name=f"pim-fabric-shard{shard}",
            daemon=True,
        )
        process.start()
        child.close()
        return _WorkerLink(shard=shard, process=process, conn=parent)

    def __enter__(self) -> "PimFabric":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut every worker down and reap the processes. Idempotent."""
        if self._closed:
            return
        self._closed = True
        for link in self._workers.values():
            if link.alive:
                try:
                    link.conn.send(("close",))
                    if link.conn.poll(10.0):
                        link.conn.recv()
                except (OSError, EOFError, BrokenPipeError):
                    pass
            try:
                link.conn.close()
            except OSError:
                pass
            if link.process is not None:
                link.process.join(timeout=10.0)
                if link.process.is_alive():  # pragma: no cover - stuck child
                    link.process.kill()
                    link.process.join(timeout=10.0)
            link.alive = False

    # -- introspection ------------------------------------------------------------

    @property
    def quarantined_shards(self) -> Tuple[int, ...]:
        """Shards quarantined so far, in quarantine order."""
        return tuple(self._quarantined)

    def alive_shards(self) -> List[int]:
        """Shards currently accepting work, ascending."""
        return sorted(s for s, l in self._workers.items() if l.alive)

    # -- submission ---------------------------------------------------------------

    def submit(self, request: Request) -> FabricHandle:
        """Queue one :class:`~repro.stack.api.Request`; returns its handle.

        The fabric speaks the redesigned surface only — pass a
        ``Request``, not the deprecated op-string form (build one with
        ``Request("gemv", weights=w, a=x, ...)``).
        """
        if self._closed:
            raise PimProgramError("fabric is closed")
        if not isinstance(request, Request):
            raise PimProgramError(
                "PimFabric.submit takes a Request; the legacy "
                "submit(op, a=..., ...) form exists only on PimServer "
                "(see docs/MIGRATION.md)"
            )
        request.validate()
        handle = FabricHandle(self._next_rid, request)
        self._next_rid += 1
        self._pending.append(handle)
        return handle

    # -- placement ----------------------------------------------------------------

    def _place(
        self, handles: List[FabricHandle]
    ) -> Dict[int, List[FabricHandle]]:
        """Assign each handle to an alive shard for this round.

        Same-signature requests stay together (they batch and reuse the
        shard's staged weights); each group's home is its signature's
        ring owner, unless that would push the shard past the fair share
        — then the group falls back to the least-loaded shard.  Groups
        are placed largest-first so the fallback has room to even out
        hash skew (round makespan is the *max* over shards).
        """
        alive = self.alive_shards()
        groups: Dict[Tuple, List[FabricHandle]] = {}
        for handle in handles:
            groups.setdefault(handle.request.signature, []).append(handle)
        fair = max(1, math.ceil(len(handles) / len(alive)))
        load = {shard: 0 for shard in alive}
        assignment: Dict[int, List[FabricHandle]] = {s: [] for s in alive}
        ordered = sorted(
            groups.items(), key=lambda kv: (-len(kv[1]), repr(kv[0]))
        )
        for signature, group in ordered:
            shard = self._ring.lookup(signature)
            if load[shard] + len(group) > fair:
                shard = min(alive, key=lambda s: (load[s], s))
            assignment[shard].extend(group)
            load[shard] += len(group)
        return {s: items for s, items in assignment.items() if items}

    # -- execution ----------------------------------------------------------------

    def run(self) -> ServingProfile:
        """Serve every pending request; returns the merged profile.

        Dispatches the round to every assigned shard, then collects
        replies; a shard that died (or errored) mid-round is quarantined
        and its requests replayed on the survivors — or completed on the
        host golden path once no shard is left.  The returned profile is
        the order-free merge of every shard's round profile plus the
        router's own replay/quarantine/host accounting.
        """
        if self._closed:
            raise PimProgramError("fabric is closed")
        serving = ServingProfile()
        todo = self._pending
        self._pending = []
        replayed: set = set()
        while todo and self.alive_shards():
            assignment = self._place(todo)
            failed_shards: List[int] = []
            for shard, items in assignment.items():
                link = self._workers[shard]
                wire = [(h.request_id, h.request) for h in items]
                try:
                    link.conn.send(("serve", wire))
                except (OSError, BrokenPipeError):
                    failed_shards.append(shard)
            self._round_assignment = assignment
            if self._post_dispatch_hook is not None:
                self._post_dispatch_hook(self)
            replay: List[FabricHandle] = []
            for shard, items in assignment.items():
                link = self._workers[shard]
                payload = (
                    None if shard in failed_shards else self._collect(link)
                )
                if payload is None:
                    self._quarantine(shard, serving)
                    for handle in items:
                        handle.replays += 1
                        replayed.add(handle.request_id)
                    serving.replays += len(items)
                    replay.extend(items)
                else:
                    self._fold(link, items, payload, serving)
            todo = replay
        for handle in todo:
            # No shard left to replay on: the router completes the
            # request itself, bit-exactly, on the host golden path.
            self._complete_on_host(handle, serving)
        if self.metrics is not None:
            serving.to_metrics(self.metrics)
        if self.profiler is not None:
            self.profiler.record_serving(serving)
        return serving

    def _collect(self, link: _WorkerLink) -> Optional[Dict[str, Any]]:
        """One shard's round reply, or None when the worker is dead/broken."""
        try:
            if not link.conn.poll(self.reply_timeout_s):
                # Wedged worker: treat like a crash (and make it one).
                self.kill_worker(link.shard)
                return None
            kind, body = link.conn.recv()
        except (EOFError, OSError, ConnectionResetError):
            return None
        if kind != "result":
            return None
        return body

    def _fold(
        self,
        link: _WorkerLink,
        items: List[FabricHandle],
        payload: Dict[str, Any],
        serving: ServingProfile,
    ) -> None:
        """Merge one shard's successful round reply into the session."""
        results = payload["results"]
        outcomes = payload["outcomes"]
        submit_errors = payload["submit_errors"]
        for handle in items:
            rid = handle.request_id
            if rid in submit_errors:
                # The shard refused it at admission; the router still
                # owes the caller a terminal outcome and a result.
                self._complete_on_host(handle, serving)
                continue
            handle.result = results.get(rid)
            handle.outcome = outcomes[rid]
            handle.shard = link.shard
            link.served += 1
        serving.merge(payload["profile"])
        self._merge_trace(payload["spans"], payload["events"])

    def _complete_on_host(
        self, handle: FabricHandle, serving: ServingProfile
    ) -> None:
        """Terminally serve one request on the router's golden path.

        Same bit-exact references the server's host fallback uses
        (``num_pchs`` of the replica shape fixes the GEMV MAC order).
        Router-side completion costs zero simulated time — it is the
        accounting fallback of last resort, not a modelled host.
        """
        request = handle.request
        if request.op == "gemv":
            handle.result = gemv_reference(
                request.weights, request.a, self.config.num_pchs
            )
        elif request.op == "add":
            handle.result = add_reference(request.a, request.b)
        elif request.op == "mul":
            handle.result = mul_reference(request.a, request.b)
        elif request.op == "relu":
            handle.result = relu_reference(request.a)
        else:  # bn: submit() validated the op set already
            gamma, beta = request.scalars or (1.0, 0.0)
            handle.result = bn_reference(request.a, gamma, beta)
        handle.outcome = "degraded_host"
        handle.shard = -1
        serving.record(
            RequestStats(
                request_id=handle.request_id,
                op=request.op,
                arrival_ns=request.arrival_ns,
                start_ns=request.arrival_ns,
                finish_ns=request.arrival_ns,
                batch_size=1,
                lane=-1,
                shard=-1,
                fallback=True,
                priority=request.priority,
                outcome="degraded_host",
                trace_id=request.trace_id,
            )
        )

    # -- failure handling ---------------------------------------------------------

    def kill_worker(self, shard: int) -> None:
        """SIGKILL ``shard``'s worker process (failure injection).

        The deterministic way to exercise the quarantine/replay path:
        call from a ``_post_dispatch_hook`` to kill a worker with a
        round genuinely in flight.  No-op for already-dead workers.
        """
        link = self._workers[shard]
        process = link.process
        if process is not None and process.is_alive():
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=30.0)

    def _quarantine(self, shard: int, serving: ServingProfile) -> None:
        """Retire a dead/errored shard, mirroring channel quarantine."""
        link = self._workers[shard]
        if not link.alive:
            return
        link.alive = False
        self._ring.remove(shard)
        self._quarantined.append(shard)
        serving.quarantined_shards.append(shard)
        error = PimWorkerError(
            f"shard {shard} worker died or errored mid-round; quarantined "
            f"and its requests replayed",
            shard=shard,
        )
        self.worker_errors.append(error)
        try:
            link.conn.close()
        except OSError:
            pass
        if link.process is not None:
            if link.process.is_alive():
                link.process.kill()
            link.process.join(timeout=30.0)
        if self.tracer is not None:
            self.tracer.event(
                "quarantine:shard", at_ns=0.0, category="fabric", shard=shard
            )

    # -- trace merging ------------------------------------------------------------

    def _merge_trace(self, spans: List, events: List) -> None:
        """Fold one shard round's spans/events into the router's tracer.

        Worker span ids restart at 1 every round; the router shifts each
        batch past every id it has already merged (and past the host
        tracer's own counter), so parent/child links stay intact and ids
        stay unique across shards, rounds, and host-side spans.
        """
        if self.tracer is None or not (spans or events):
            return
        base = max(self._merged_ids, self.tracer._next_id - 1)
        top = base
        for span in spans:
            span.span_id += base
            if span.parent_id is not None:
                span.parent_id += base
            top = max(top, span.span_id)
        for event in events:
            if event.parent_id is not None:
                object.__setattr__(event, "parent_id", event.parent_id + base)
        self.tracer.spans.extend(spans)
        self.tracer.events.extend(events)
        self._merged_ids = top
        self.tracer._next_id = max(self.tracer._next_id, top + 1)
