"""A self-healing multi-process serving fabric: one router, N replica shards.

The paper's software stack serves "millions of users" from one runtime;
a single Python process driving every lane serialises on the interpreter
long before the simulated device saturates.  :class:`PimFabric` is the
scale-out tier: it shards serving across worker *processes* (each owning
a full :class:`~repro.stack.context.PimContext` +
:class:`~repro.stack.server.PimServer` over an identically-configured
device replica — see :mod:`repro.stack.worker`) and plays the role the
device driver plays one level down: placement, failure isolation, and
merged accounting.

* **placement** — requests are routed by *signature* on a consistent-hash
  ring (virtual nodes per shard), so same-signature requests land on the
  same shard and reuse its staged weights/kernels, and a quarantined
  shard only re-homes its own arc of the ring.  A group that would push
  its home shard past the round's fair share falls back to the
  least-loaded shard instead.
* **failure handling** — the quarantine + breaker discipline of the
  channel tier, lifted to shards, plus a *lifecycle manager* that brings
  capacity back.  Each shard slot walks the state machine ``serving →
  suspected → quarantined → respawning → rejoined`` (see
  ``docs/ARCHITECTURE.md``, "Fabric resilience & chaos"): a worker that
  dies (SIGKILL, crash, broken pipe), misses a between-rounds heartbeat,
  wedges past the configurable ``ServerConfig.reply_timeout_s``
  watchdog, or ships a payload that fails its CRC32 check is
  quarantined and its round replayed on the survivors — then, within
  ``ServerConfig.max_respawns``, a fresh process is respawned into the
  slot, rebuilds the device replica, and *rejoins* the ring, restoring
  capacity.  :meth:`drain` is the graceful variant: in-flight groups
  finish, the process is recycled with a handshake, nothing is
  quarantined or replayed.  Stragglers short of the wedge timeout are
  *hedged*: past a percentile-based threshold the group is re-dispatched
  to the least-loaded idle survivor and the first reply wins (replicas
  are bit-exact, so first == correct); the loser is cancelled and its
  late reply discarded.  Every submitted request still ends in exactly
  one terminal :class:`~repro.stack.server.RequestOutcome` — the host
  golden path remains the completion of last resort when no shard is
  left and the respawn budget is spent.
* **accounting** — per-shard :class:`~repro.stack.profiler.ServingProfile`
  replies merge through ``ServingProfile.merge()`` (associative and
  commutative, so arrival order does not matter) with channels rewritten
  into a global ``shard * num_pchs + local`` space; worker trace spans
  merge into the router's tracer with shard tags, and the Chrome export
  shows one process row per shard (pid = shard, tid = lane).  Respawns
  (shard-tagged) and hedge dispatches/wins/losses are counted on the
  profile and emitted as instant trace events.

::

    with PimContext(SystemConfig.fast_functional()) as ctx:
        with ctx.fabric(workers=4) as fabric:
            handles = [fabric.submit(Request("gemv", weights=w, a=x))
                       for x in inputs]
            profile = fabric.run()
        results = [h.result for h in handles]
"""

from __future__ import annotations

import bisect
import hashlib
import math
import multiprocessing
import multiprocessing.connection
import os
import pickle
import secrets
import signal
import time
import zlib
from multiprocessing import shared_memory
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import PimProgramError, PimWorkerError
from .api import Request, ServerConfig
from .blas import (
    add_reference,
    bn_reference,
    gemv_reference,
    mul_reference,
    relu_reference,
)
from .profiler import Profiler, RequestStats, ServingProfile, _percentile
from .runtime import SystemConfig
from .shm import (
    DEFAULT_SEGMENT_BYTES,
    SHM_PREFIX,
    ArrayRef,
    SegmentCache,
    ShmArena,
    StagedWeights,
    encode_request,
)
from .worker import run_worker

__all__ = ["FabricHandle", "PimFabric"]


class FabricHandle:
    """The caller's handle to one request submitted to a fabric.

    Mirrors the single-process :class:`~repro.stack.server.PimRequest`
    surface the way callers actually use it: ``result`` (the computed
    array, bit-exact with the host reference), ``outcome`` (the terminal
    :class:`~repro.stack.server.RequestOutcome` value as a string), and
    ``shard`` (which worker served it; -1 means the router's host golden
    path).  All three are ``None`` until :meth:`PimFabric.run` returns.
    """

    def __init__(self, request_id: int, request: Request):
        #: Fabric-wide request id (unique across shards and rounds).
        self.request_id = request_id
        #: The immutable submitted request.
        self.request = request
        #: Computed result (None until run(), or for dropped requests).
        self.result: Optional[np.ndarray] = None
        #: Terminal outcome string (see RequestOutcome), None until run().
        self.outcome: Optional[str] = None
        #: Shard that produced the terminal outcome (-1 = router host path).
        self.shard: Optional[int] = None
        #: How many times the request was replayed off a dead shard.
        self.replays: int = 0


class _HashRing:
    """Consistent-hash ring with virtual nodes over the alive shards."""

    def __init__(self, shards, vnodes: int = 64):
        self._vnodes = int(vnodes)
        self._shards: set = set()
        self._points: List[int] = []
        self._owners: List[int] = []
        for shard in shards:
            self.add(shard)

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(
            hashlib.sha1(key.encode("utf-8")).digest()[:8], "big"
        )

    def _rebuild(self) -> None:
        ring = []
        for shard in self._shards:
            for v in range(self._vnodes):
                ring.append((self._hash(f"shard{shard}:vn{v}"), shard))
        ring.sort()
        self._points = [p for p, _ in ring]
        self._owners = [s for _, s in ring]

    def add(self, shard: int) -> None:
        """Add ``shard``'s virtual nodes to the ring (no-op when present).

        A respawned shard re-adds the *same* virtual nodes it owned
        before quarantine, so its arc of signature space comes home.
        """
        self._shards.add(int(shard))
        self._rebuild()

    def remove(self, shard: int) -> None:
        """Drop ``shard`` from the ring (no-op when absent)."""
        self._shards.discard(int(shard))
        self._rebuild()

    def lookup(self, key: Tuple) -> int:
        """The shard owning ``key``'s ring point (clockwise successor)."""
        if not self._points:
            raise PimWorkerError("no alive shards on the ring")
        point = self._hash(repr(key))
        i = bisect.bisect_right(self._points, point) % len(self._points)
        return self._owners[i]


@dataclass
class _WorkerLink:
    """The router's bookkeeping for one shard slot's worker process."""

    shard: int
    process: Any
    conn: Any
    alive: bool = True
    #: Requests this shard has terminally served across rounds.
    served: int = 0
    #: Lifecycle state of the slot: serving -> suspected -> quarantined
    #: -> respawning -> rejoined (drain adds a "draining" detour).
    state: str = "serving"
    #: Respawns this slot has consumed (bounded by max_respawns; a
    #: graceful drain recycle is free).
    generation: int = 0
    #: Cancelled-hedge replies still queued in the pipe; the router
    #: discards exactly this many result/error messages before trusting
    #: the connection again (pipe ordering is FIFO).
    pending_discards: int = 0


class PimFabric:
    """Routes requests across N worker processes, each a device replica.

    Construct directly (``PimFabric(SystemConfig(...), workers=4)``) or —
    the blessed path — via :meth:`repro.stack.context.PimContext.fabric`,
    which wires the context's profiler/tracer/metrics through.  The
    submit surface is the new-API one only: :meth:`submit` takes a
    :class:`~repro.stack.api.Request`; there is no legacy op-string form
    to deprecate because the fabric never had one.

    Every wall-clock bound of the lifecycle manager (reply watchdog,
    heartbeat, close/join, hedge thresholds) comes from the resolved
    :class:`~repro.stack.api.ServerConfig` — nothing is hard-coded, so
    tests run the wedge path in milliseconds and operators tune it for
    their deployment.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        workers: int = 2,
        server_config: Optional[ServerConfig] = None,
        *,
        profiler: Optional[Profiler] = None,
        tracer=None,
        metrics=None,
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.config = config or SystemConfig()
        self.server_config = (server_config or ServerConfig()).resolve(
            self.config
        )
        if self.server_config.transport not in ("pipe", "shm"):
            raise ValueError(
                f"unknown transport {self.server_config.transport!r} "
                f"(expected 'pipe' or 'shm')"
            )
        self.num_workers = int(workers)
        self.profiler = profiler
        self.metrics = metrics
        self.tracer = tracer
        if self.tracer is None and self.config.trace:
            from ..obs import Tracer

            self.tracer = Tracer()
        #: Reply-wait bound per shard round (seconds); a worker silent
        #: this long is wedged: SIGKILLed, quarantined, and — within the
        #: respawn budget — respawned.  Mirrors
        #: ``ServerConfig.reply_timeout_s``; mutate per-instance to tune
        #: a live fabric.
        self.reply_timeout_s: float = self.server_config.reply_timeout_s
        #: PimWorkerError log, one entry per quarantined shard (newest last).
        self.worker_errors: List[PimWorkerError] = []
        #: Graceful drain/hot-restart recycles performed (see drain()).
        self.drains: int = 0
        # Durability (repro.journal): the *router* owns the journal —
        # workers get the knob stripped, or every shard would re-journal
        # its slice under colliding rids.  Imported lazily to keep the
        # journal package depending on the stack, not vice versa.
        self._journal = None
        self._worker_config = self.server_config
        if self.server_config.journal_dir:
            from ..journal.wal import JournalWriter

            self._worker_config = self.server_config.replace(
                journal_dir=None, journal_sync=False
            )
            self._journal = JournalWriter(
                self.server_config.journal_dir,
                sync=self.server_config.journal_sync,
            )
            self._journal.append_meta(self.config, self.server_config)
        # -- transport (docs/ARCHITECTURE.md, "Fabric transport").  The
        #    router is the single owner of every shared-memory segment:
        #    it creates the operand arena and one result segment per
        #    shard slot before any worker exists, and it alone unlinks
        #    them at close().  Workers only attach, so no worker death —
        #    SIGKILL included — can leak a /dev/shm entry. --
        self._arena: Optional[ShmArena] = None
        self._segments: Optional[SegmentCache] = None
        self._result_segments: Dict[int, Any] = {}
        self._transport_specs: Dict[int, Dict[str, Any]] = {}
        #: Per-shard staged-weight digests the router believes resident
        #: (cleared on quarantine/drain/respawn so a fresh worker always
        #: re-stages — never serves stale weights).
        self._resident: Dict[int, set] = {}
        #: Pipe-serialised control bytes sent/received (both transports)
        #: and bulk tensor bytes staged through/read out of shared
        #: memory (shm only).  bytes_tx is the bench's bytes-on-wire.
        self.bytes_tx = 0
        self.bytes_rx = 0
        self.shm_tx = 0
        self.shm_rx = 0
        #: Fabric-wide weight-store totals folded from worker replies.
        self.weight_store_stats: Dict[str, int] = {
            "hits": 0, "misses": 0, "evictions": 0
        }
        if self.server_config.transport == "shm":
            self._arena = ShmArena(tag="tx")
            self._segments = SegmentCache()
            token = secrets.token_hex(4)
            for shard in range(self.num_workers):
                name = (
                    f"{SHM_PREFIX}-res{shard}-{os.getpid()}-{token}"
                )
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=DEFAULT_SEGMENT_BYTES
                )
                self._result_segments[shard] = segment
                self._transport_specs[shard] = {
                    "result_segment": name,
                    "result_bytes": DEFAULT_SEGMENT_BYTES,
                }
        self._mp = multiprocessing.get_context(start_method)
        self._workers: Dict[int, _WorkerLink] = {
            shard: self._spawn(shard) for shard in range(self.num_workers)
        }
        self._ring = _HashRing(range(self.num_workers))
        self._pending: List[FabricHandle] = []
        self._next_rid = 0
        self._quarantined: List[int] = []
        self._respawns: Dict[int, int] = {}
        self._merged_ids = 0
        # Test/failure-injection hook: called once per round, after every
        # dispatch is on the wire and before any reply is collected.  The
        # worker-kill conservation test SIGKILLs a shard here, which is
        # the most adversarial deterministic instant (work genuinely
        # in flight on the doomed worker).
        self._post_dispatch_hook: Optional[Callable[["PimFabric"], None]] = None
        #: The in-flight round's shard -> handles map (for hooks/tests).
        self._round_assignment: Dict[int, List[FabricHandle]] = {}
        # Shards dispatched this round whose reply is not yet resolved.
        self._in_flight: set = set()
        # Replies collected early by drain(), keyed by shard.
        self._stashed_replies: Dict[int, Tuple] = {}
        self._closed = False

    # -- lifecycle ----------------------------------------------------------------

    def _spawn(self, shard: int) -> _WorkerLink:
        parent, child = self._mp.Pipe()
        process = self._mp.Process(
            target=run_worker,
            args=(
                child, self.config, self._worker_config, shard,
                self._transport_specs.get(shard),
            ),
            name=f"pim-fabric-shard{shard}",
            daemon=True,
        )
        process.start()
        child.close()
        # A fresh process has an empty weight store, whatever the router
        # believed about its predecessor in this slot.
        self._resident.pop(shard, None)
        return _WorkerLink(shard=shard, process=process, conn=parent)

    def __enter__(self) -> "PimFabric":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut every worker down and reap the processes. Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._journal is not None:
            self._journal.close()
        cfg = self.server_config
        for link in self._workers.values():
            if link.alive:
                try:
                    link.conn.send(("close",))
                    if link.conn.poll(cfg.close_timeout_s):
                        link.conn.recv()
                except (OSError, EOFError, BrokenPipeError):
                    pass
            try:
                link.conn.close()
            except OSError:
                pass
            if link.process is not None:
                link.process.join(timeout=cfg.join_timeout_s)
                if link.process.is_alive():  # pragma: no cover - stuck child
                    link.process.kill()
                    link.process.join(timeout=cfg.join_timeout_s)
            link.alive = False
        self._close_shm()

    def _close_shm(self) -> None:
        """Unlink every owned shared-memory segment (single-owner duty).

        Runs after the workers are down (they only held attachments, and
        on Linux an unlink with stragglers attached is safe anyway) —
        leaves ``/dev/shm`` exactly as the fabric found it.
        """
        if self._segments is not None:
            self._segments.close()
            self._segments = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        for segment in self._result_segments.values():
            try:
                segment.close()
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        self._result_segments.clear()

    def _reap(self, link: _WorkerLink) -> None:
        """Join (or kill-then-join) one worker process, bounded."""
        cfg = self.server_config
        if link.process is not None:
            if link.process.is_alive():
                link.process.kill()
            link.process.join(timeout=cfg.join_timeout_s)

    def drain(self, shard: int) -> None:
        """Gracefully recycle ``shard``'s worker: a zero-loss hot restart.

        If a round is in flight on the shard (drain called from a
        post-dispatch hook), its reply is collected *first* and stashed
        for the round's normal folding — in-flight groups finish,
        nothing is quarantined or replayed.  The worker is then shut
        down with the close handshake, joined, and a fresh device
        replica is spawned into the slot; the shard never leaves the
        ring, so capacity is uninterrupted.  A drain does not spend
        respawn budget.  Raises :class:`~repro.errors.PimWorkerError`
        for a dead shard (use the quarantine/respawn path instead).
        """
        link = self._workers[shard]
        if self._closed or not link.alive:
            raise PimWorkerError(
                f"cannot drain shard {shard}: worker is not serving",
                shard=shard,
            )
        cfg = self.server_config
        link.state = "draining"
        if shard in self._in_flight and shard not in self._stashed_replies:
            # Finish the in-flight group before recycling the process.
            while link.pending_discards > 0 and link.conn.poll(
                self.reply_timeout_s
            ):
                try:
                    link.conn.recv()
                except (EOFError, OSError):
                    break
                link.pending_discards -= 1
            if link.conn.poll(self.reply_timeout_s):
                # Decode eagerly: under shm the reply's descriptors
                # point into the slot's result segment, which the
                # replacement worker will rewind at its next serve —
                # materialise them now, while they are still live.
                try:
                    self._stashed_replies[shard] = (
                        "ok", self._decode_reply(link.conn.recv(), shard)
                    )
                except (EOFError, OSError):
                    pass
                except PimWorkerError as err:
                    self._stashed_replies[shard] = ("error", str(err))
        try:
            link.conn.send(("close",))
            if link.conn.poll(cfg.close_timeout_s):
                link.conn.recv()
        except (OSError, EOFError, BrokenPipeError):
            pass
        try:
            link.conn.close()
        except OSError:
            pass
        if link.process is not None:
            link.process.join(timeout=cfg.join_timeout_s)
            if link.process.is_alive():  # pragma: no cover - stuck child
                link.process.kill()
                link.process.join(timeout=cfg.join_timeout_s)
        fresh = self._spawn(shard)
        fresh.served = link.served
        fresh.generation = link.generation
        fresh.state = "rejoined"
        self._workers[shard] = fresh
        self.drains += 1
        if self.tracer is not None:
            self.tracer.event(
                "drain:shard", at_ns=0.0, category="fabric", shard=shard
            )

    def heartbeat(
        self, serving: Optional[ServingProfile] = None
    ) -> List[int]:
        """Ping every alive worker; quarantine the silent.  Returns them.

        The between-rounds liveness probe of the lifecycle manager: every
        alive shard is pinged concurrently and must pong within
        ``ServerConfig.heartbeat_timeout_s``.  A silent worker moves
        ``serving -> suspected``, is killed, and is quarantined (the
        next :meth:`_heal` respawns it within budget).  Stale
        cancelled-hedge replies queued ahead of the pong are discarded
        on the way.
        """
        cfg = self.server_config
        failed: List[int] = []
        pinged: List[int] = []
        for shard in self.alive_shards():
            link = self._workers[shard]
            try:
                link.conn.send(("ping",))
            except (OSError, BrokenPipeError):
                failed.append(shard)
            else:
                pinged.append(shard)
        for shard in pinged:
            link = self._workers[shard]
            deadline = time.monotonic() + cfg.heartbeat_timeout_s
            ok = False
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not link.conn.poll(remaining):
                    break
                try:
                    message = link.conn.recv()
                except (EOFError, OSError):
                    break
                if link.pending_discards > 0 and message[0] in (
                    "result", "error",
                ):
                    link.pending_discards -= 1
                    continue
                if message[0] == "pong":
                    ok = True
                break
            if not ok:
                failed.append(shard)
        for shard in failed:
            link = self._workers[shard]
            link.state = "suspected"
            if self.tracer is not None:
                self.tracer.event(
                    "heartbeat:miss", at_ns=0.0, category="fabric",
                    shard=shard,
                )
            self.kill_worker(shard)
            self._quarantine(
                shard, serving,
                reason="missed the between-rounds heartbeat",
            )
        return failed

    def _heal(
        self, serving: Optional[ServingProfile] = None
    ) -> List[int]:
        """Respawn quarantined slots within budget; rejoin them to the ring.

        Returns the shards revived.  Each respawn rebuilds a full device
        replica in a fresh process and re-adds the shard's virtual nodes
        to the consistent-hash ring — capacity comes *back*, which is
        what distinguishes this fabric from the quarantine-only tier it
        replaces.  Bounded by ``ServerConfig.max_respawns`` per slot.
        """
        if self._closed:
            return []
        cfg = self.server_config
        revived: List[int] = []
        for shard in sorted(self._workers):
            link = self._workers[shard]
            if link.alive or link.generation >= cfg.max_respawns:
                continue
            link.state = "respawning"
            fresh = self._spawn(shard)
            fresh.served = link.served
            fresh.generation = link.generation + 1
            fresh.state = "rejoined"
            self._workers[shard] = fresh
            self._ring.add(shard)
            revived.append(shard)
            self._respawns[shard] = self._respawns.get(shard, 0) + 1
            if serving is not None:
                serving.respawns[shard] = serving.respawns.get(shard, 0) + 1
            if self.tracer is not None:
                self.tracer.event(
                    "respawn:shard", at_ns=0.0, category="fabric",
                    shard=shard, generation=fresh.generation,
                )
        return revived

    # -- introspection ------------------------------------------------------------

    @property
    def quarantined_shards(self) -> Tuple[int, ...]:
        """Shards quarantined so far, in quarantine order.

        A respawned shard stays in this history (it *was* quarantined)
        while serving again — check :meth:`alive_shards` or
        :meth:`shard_states` for current capacity.
        """
        return tuple(self._quarantined)

    @property
    def respawns(self) -> Dict[int, int]:
        """Respawns consumed per shard slot over the fabric's lifetime."""
        return dict(self._respawns)

    def alive_shards(self) -> List[int]:
        """Shards currently accepting work, ascending."""
        return sorted(s for s, l in self._workers.items() if l.alive)

    def shard_states(self) -> Dict[int, str]:
        """Current lifecycle state of every shard slot (see module docs)."""
        return {s: link.state for s, link in sorted(self._workers.items())}

    # -- submission ---------------------------------------------------------------

    def submit(self, request: Request) -> FabricHandle:
        """Queue one :class:`~repro.stack.api.Request`; returns its handle.

        The fabric speaks the redesigned surface only — pass a
        ``Request``, not the deprecated op-string form (build one with
        ``Request("gemv", weights=w, a=x, ...)``).
        """
        if self._closed:
            raise PimProgramError("fabric is closed")
        if not isinstance(request, Request):
            raise PimProgramError(
                "PimFabric.submit takes a Request; the legacy "
                "submit(op, a=..., ...) form exists only on PimServer "
                "(see docs/MIGRATION.md)"
            )
        request.validate()
        handle = FabricHandle(self._next_rid, request)
        self._next_rid += 1
        self._pending.append(handle)
        if self._journal is not None:
            self._journal.append_accepted(handle.request_id, request)
        return handle

    def _journal_outcome(self, handle: FabricHandle) -> None:
        """Append one terminal outcome (result bytes included) to the WAL."""
        if self._journal is not None and handle.outcome is not None:
            self._journal.append_outcome(
                handle.request_id,
                handle.request.trace_id,
                handle.outcome,
                -1 if handle.shard is None else handle.shard,
                handle.result,
            )

    # -- placement ----------------------------------------------------------------

    def _place(
        self, handles: List[FabricHandle]
    ) -> Dict[int, List[FabricHandle]]:
        """Assign each handle to an alive shard for this round.

        Same-signature requests stay together (they batch and reuse the
        shard's staged weights); each group's home is its signature's
        ring owner, unless that would push the shard past the fair share
        — then the group falls back to the least-loaded shard.  Groups
        are placed largest-first so the fallback has room to even out
        hash skew (round makespan is the *max* over shards).
        """
        alive = self.alive_shards()
        groups: Dict[Tuple, List[FabricHandle]] = {}
        for handle in handles:
            groups.setdefault(handle.request.signature, []).append(handle)
        fair = max(1, math.ceil(len(handles) / len(alive)))
        load = {shard: 0 for shard in alive}
        assignment: Dict[int, List[FabricHandle]] = {s: [] for s in alive}
        ordered = sorted(
            groups.items(), key=lambda kv: (-len(kv[1]), repr(kv[0]))
        )
        for signature, group in ordered:
            shard = self._ring.lookup(signature)
            if load[shard] + len(group) > fair:
                shard = min(alive, key=lambda s: (load[s], s))
            assignment[shard].extend(group)
            load[shard] += len(group)
        return {s: items for s, items in assignment.items() if items}

    # -- wire protocol ------------------------------------------------------------

    def _count(self, name: str, amount: int) -> None:
        """Bump one wire-accounting metric (no-op without a registry)."""
        if amount and self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _encode_wire(self, shard: int, items: List[FabricHandle]) -> List[Tuple]:
        """The ``(rid, payload)`` wire items of one dispatch, per target.

        Under the pipe transport the payload is the ``Request`` itself.
        Under shm, each request is encoded against the *target* shard's
        residency set — which is why dispatch (hedges included) encodes
        per target rather than reusing a wire built for another shard: a
        by-digest weight reference is only valid on the shard that
        staged it.  Staged cacheable weights are optimistically marked
        resident here; every path that loses the worker (quarantine,
        drain, respawn) clears the mark again.
        """
        if self._arena is None:
            return [(h.request_id, h.request) for h in items]
        resident = self._resident.setdefault(shard, set())
        budget = int(
            max(0.0, self.server_config.weight_store_mb) * (1 << 20)
        )
        wire = []
        for handle in items:
            encoded = encode_request(
                handle.request,
                self._arena,
                resident,
                budget,
                inline_bytes=self.server_config.shm_inline_bytes,
            )
            wire.append((handle.request_id, encoded))
            weights = encoded.weights
            if isinstance(weights, StagedWeights) and weights.cache:
                resident.add(weights.digest)
        return wire

    def _dispatch(self, link: _WorkerLink, items: List[FabricHandle]) -> bool:
        """Put one serve round on a shard's pipe; False when the send fails.

        With ``pipe_checksum`` the items are pickled once here and framed
        with a CRC32 of the bytes, so the worker detects a dispatch
        corrupted in transit instead of serving garbage.  The framed
        control bytes count under ``bytes_tx`` (the bench's
        bytes-on-wire); tensor bytes staged through the arena count
        separately under ``shm_tx``.
        """
        staged = 0 if self._arena is None else self._arena.bytes_written
        try:
            wire = self._encode_wire(link.shard, items)
            if self._arena is not None:
                delta = self._arena.bytes_written - staged
                self.shm_tx += delta
                self._count("fabric.shm_tx", delta)
            if self.server_config.pipe_checksum:
                blob = pickle.dumps(wire, protocol=pickle.HIGHEST_PROTOCOL)
                self.bytes_tx += len(blob)
                self._count("fabric.bytes_tx", len(blob))
                link.conn.send(("serve", zlib.crc32(blob), blob))
            else:
                link.conn.send(("serve", wire))
            return True
        except (OSError, BrokenPipeError, ValueError):
            return False

    def _decode_reply(
        self, message: Tuple, shard: Optional[int] = None
    ) -> Dict[str, Any]:
        """The payload of one result message, CRC-verified when framed.

        Raises :class:`~repro.errors.PimWorkerError` on an ``error``
        reply or a checksum mismatch — both route the round through the
        quarantine/replay path, never into silently wrong bytes.

        Under shm the payload's result descriptors are materialised
        *here*, the moment the reply is received — not lazily at fold
        time — because the worker rewinds its result segment at its next
        serve round (a hedged or drained slot can be re-dispatched
        before this round folds).  Weight-store deltas and evicted
        digests are folded into the router's accounting and residency
        map on the way.
        """
        kind = message[0]
        if kind != "result":
            raise PimWorkerError(
                f"worker replied {kind!r}: {message[1] if len(message) > 1 else ''}"
            )
        if len(message) == 3:
            _, crc, blob = message
            if zlib.crc32(blob) != crc:
                raise PimWorkerError(
                    "result payload failed its CRC32 check (corrupted in "
                    "transit); replaying the round"
                )
            self.bytes_rx += len(blob)
            self._count("fabric.bytes_rx", len(blob))
            payload = pickle.loads(blob)
        else:
            payload = message[1]
        return self._materialise(payload, shard)

    def _materialise(
        self, payload: Dict[str, Any], shard: Optional[int]
    ) -> Dict[str, Any]:
        """Resolve a reply's shm descriptors into owned arrays (pipe: no-op).

        A descriptor whose CRC32 check fails raises
        :class:`~repro.errors.PimWorkerError` — in-segment corruption
        takes the same quarantine/replay path a corrupted pipe blob
        does.
        """
        if self._segments is None:
            return payload
        results = payload.get("results")
        if results:
            read = 0
            materialised = {}
            for rid, value in results.items():
                if isinstance(value, ArrayRef):
                    try:
                        materialised[rid] = self._segments.read(value)
                    except ValueError as err:
                        raise PimWorkerError(
                            f"{err}; replaying the round"
                        ) from err
                    read += value.nbytes
                else:
                    materialised[rid] = value
            payload["results"] = materialised
            self.shm_rx += read
            self._count("fabric.shm_rx", read)
        stats = payload.get("weight_store")
        if stats:
            for key in ("hits", "misses", "evictions"):
                self.weight_store_stats[key] += int(stats.get(key, 0))
                self._count(f"weight_store.{key}", int(stats.get(key, 0)))
            resident = self._resident.get(payload.get("shard", shard))
            if resident:
                for digest in stats.get("evicted", ()):
                    resident.discard(digest)
        return payload

    # -- execution ----------------------------------------------------------------

    def run(self) -> ServingProfile:
        """Serve every pending request; returns the merged profile.

        Each iteration heals dead slots (respawn + ring rejoin),
        heartbeats the survivors, places and dispatches the round, then
        collects replies under the watchdog/hedging loop; requests off a
        dead or wedged shard are replayed next iteration on the healed
        fleet.  Only when no shard is alive *and* the respawn budget is
        spent does the router complete the remainder on the host golden
        path.  The returned profile is the order-free merge of every
        shard's round profile plus the router's own replay / respawn /
        hedge / quarantine / host accounting.
        """
        if self._closed:
            raise PimProgramError("fabric is closed")
        serving = ServingProfile()
        todo = self._pending
        self._pending = []
        while todo:
            self._heal(serving)
            if self.server_config.heartbeat:
                if self.heartbeat(serving):
                    # Heartbeat quarantined someone: heal before placing.
                    self._heal(serving)
            if not self.alive_shards():
                break
            if self._arena is not None:
                # Every descriptor from the previous round is dead —
                # replies are materialised the moment they arrive — so
                # the operand arena reuses the same pages each round.
                self._arena.reset()
            assignment = self._place(todo)
            failed_shards: List[int] = []
            for shard, items in assignment.items():
                if not self._dispatch(self._workers[shard], items):
                    failed_shards.append(shard)
            self._round_assignment = assignment
            self._in_flight = set(assignment) - set(failed_shards)
            if self._post_dispatch_hook is not None:
                self._post_dispatch_hook(self)
            todo = self._collect_round(assignment, failed_shards, serving)
            self._in_flight = set()
        for handle in todo:
            # No shard left to replay on: the router completes the
            # request itself, bit-exactly, on the host golden path.
            self._complete_on_host(handle, serving)
        if self.metrics is not None:
            serving.to_metrics(self.metrics)
        if self.profiler is not None:
            self.profiler.record_serving(serving)
        return serving

    def _collect_round(
        self,
        assignment: Dict[int, List[FabricHandle]],
        failed_shards: List[int],
        serving: ServingProfile,
    ) -> List[FabricHandle]:
        """Collect one round's replies; returns the handles to replay.

        Replies are multiplexed across every dispatched (and hedged)
        pipe so the router can watchdog wedged workers
        (``reply_timeout_s``), hedge stragglers past the percentile
        threshold, and accept completions in any arrival order — but
        payloads are *folded* in sorted shard order afterwards, so the
        merged profile and trace are identical run to run.
        """
        cfg = self.server_config
        now = time.monotonic()
        # origin shard -> dispatch time of its (or its hedge's) wait.
        waiting: Dict[int, float] = {}
        # origin shard -> (serving shard, payload) once resolved.
        payloads: Dict[int, Tuple[int, Dict[str, Any]]] = {}
        replay: List[FabricHandle] = []
        hedge_of: Dict[int, int] = {}   # hedge shard -> origin shard
        hedged: Dict[int, int] = {}     # origin shard -> hedge shard
        hedge_start: Dict[int, float] = {}
        dead_originals: set = set()     # origins alive only through a hedge
        durations: List[float] = []

        def add_replay(origin: int) -> None:
            for handle in assignment[origin]:
                handle.replays += 1
            serving.replays += len(assignment[origin])
            replay.extend(assignment[origin])
            self._in_flight.discard(origin)

        def resolve(origin: int, server_shard: int, payload) -> None:
            payloads[origin] = (server_shard, payload)
            waiting.pop(origin, None)
            dead_originals.discard(origin)
            self._in_flight.discard(origin)

        def fail_origin(origin: int, reason: str) -> None:
            self._quarantine(origin, serving, reason=reason)
            waiting.pop(origin, None)
            if origin in hedged:
                # A hedge is already racing this group: the round now
                # rides on it alone (its own watchdog still applies).
                dead_originals.add(origin)
            else:
                add_replay(origin)

        def fail_hedge(hedge: int, reason: str) -> None:
            origin = hedge_of.pop(hedge)
            hedged.pop(origin, None)
            hedge_start.pop(hedge, None)
            self._quarantine(hedge, serving, reason=reason)
            if origin in dead_originals:
                dead_originals.discard(origin)
                add_replay(origin)

        for origin in failed_shards:
            self._quarantine(
                origin, serving, reason="dispatch failed (broken pipe)"
            )
            add_replay(origin)
        for origin in assignment:
            if origin in failed_shards:
                continue
            stashed = self._stashed_replies.pop(origin, None)
            if stashed is not None:
                # drain() finished this group before recycling the slot
                # (the reply was decoded eagerly there — see drain()).
                kind, value = stashed
                if kind == "ok":
                    resolve(origin, origin, value)
                else:
                    add_replay(origin)
                continue
            waiting[origin] = now

        while waiting or hedge_of:
            now = time.monotonic()
            conns = {}
            for origin in waiting:
                if origin not in dead_originals:
                    conns[self._workers[origin].conn] = origin
            for hedge in hedge_of:
                conns[self._workers[hedge].conn] = hedge
            if not conns:
                break  # pragma: no cover - every path is dead already
            timeout = self._next_wakeup(
                now, waiting, hedge_start, durations, hedged
            )
            ready = multiprocessing.connection.wait(
                list(conns), timeout=timeout
            )
            for conn in ready:
                shard = conns[conn]
                link = self._workers[shard]
                try:
                    message = link.conn.recv()
                except (EOFError, OSError, ConnectionResetError):
                    if shard in hedge_of:
                        fail_hedge(shard, "hedge worker died mid-round")
                    else:
                        fail_origin(shard, "worker died mid-round")
                    continue
                if link.pending_discards > 0 and message[0] in (
                    "result", "error",
                ):
                    link.pending_discards -= 1
                    continue
                try:
                    payload = self._decode_reply(message, shard)
                except PimWorkerError as err:
                    self.kill_worker(shard)
                    if shard in hedge_of:
                        fail_hedge(shard, str(err))
                    else:
                        fail_origin(shard, str(err))
                    continue
                if shard in hedge_of:
                    origin = hedge_of.pop(shard)
                    hedged.pop(origin, None)
                    hedge_start.pop(shard, None)
                    if origin in waiting or origin in dead_originals:
                        # First (bit-exact) reply wins: the hedge.
                        if origin in waiting:
                            self._workers[origin].pending_discards += 1
                        resolve(origin, shard, payload)
                        serving.hedge_wins += 1
                        if self.tracer is not None:
                            self.tracer.event(
                                "hedge:win", at_ns=0.0, category="fabric",
                                shard=shard, origin=origin,
                            )
                elif shard in waiting:
                    durations.append(now - waiting[shard])
                    hedge = hedged.pop(shard, None)
                    if hedge is not None:
                        # The original outran its hedge: cancel the
                        # loser — its late reply is discarded, never
                        # folded, so the outcome stays exactly-once.
                        hedge_of.pop(hedge, None)
                        hedge_start.pop(hedge, None)
                        self._workers[hedge].pending_discards += 1
                        serving.hedge_losses += 1
                        if self.tracer is not None:
                            self.tracer.event(
                                "hedge:loss", at_ns=0.0, category="fabric",
                                shard=hedge, origin=shard,
                            )
                    resolve(shard, shard, payload)
            now = time.monotonic()
            threshold = self._hedge_threshold(durations)
            for origin in list(waiting):
                if origin in dead_originals:
                    continue
                elapsed = now - waiting[origin]
                if elapsed > self.reply_timeout_s:
                    # Wedged worker: treat like a crash (and make it one).
                    link = self._workers[origin]
                    link.state = "suspected"
                    if self.tracer is not None:
                        self.tracer.event(
                            "wedge:shard", at_ns=0.0, category="fabric",
                            shard=origin,
                        )
                    self.kill_worker(origin)
                    fail_origin(
                        origin,
                        f"wedged: no reply within reply_timeout_s="
                        f"{self.reply_timeout_s:g}s",
                    )
                elif (
                    cfg.hedge
                    and threshold is not None
                    and elapsed > threshold
                    and origin not in hedged
                ):
                    target = self._hedge_target(
                        assignment, waiting, hedge_of
                    )
                    if target is None:
                        continue
                    # Re-encode for the hedge target: under shm the
                    # origin's wire may carry by-digest weight refs only
                    # the origin's store can resolve.
                    if self._dispatch(
                        self._workers[target], assignment[origin]
                    ):
                        hedge_of[target] = origin
                        hedged[origin] = target
                        hedge_start[target] = now
                        serving.hedges += 1
                        if self.tracer is not None:
                            self.tracer.event(
                                "hedge:dispatch", at_ns=0.0,
                                category="fabric", shard=target,
                                origin=origin,
                            )
            for hedge in list(hedge_of):
                if now - hedge_start.get(hedge, now) > self.reply_timeout_s:
                    self.kill_worker(hedge)
                    fail_hedge(
                        hedge,
                        "hedge wedged past reply_timeout_s",
                    )
        # Fold in sorted-origin order: merge results must not depend on
        # reply arrival order, or seeded replays would diverge.
        for origin in sorted(payloads):
            server_shard, payload = payloads[origin]
            self._fold(
                self._workers[server_shard], assignment[origin], payload,
                serving,
            )
        return replay

    def _hedge_threshold(self, durations: List[float]) -> Optional[float]:
        """Wall-clock straggler bound from this round's completed replies.

        ``hedge_factor`` times the ``hedge_quantile`` of completed reply
        times, floored at ``hedge_min_s``; None until a first completion
        exists (a percentile of nothing is meaningless, and hedging every
        round's first reply would double the fleet's work).
        """
        if not durations:
            return None
        cfg = self.server_config
        return max(
            cfg.hedge_min_s,
            cfg.hedge_factor * _percentile(durations, cfg.hedge_quantile),
        )

    def _hedge_target(
        self,
        assignment: Dict[int, List[FabricHandle]],
        waiting: Dict[int, float],
        hedge_of: Dict[int, int],
    ) -> Optional[int]:
        """The least-loaded idle survivor to hedge onto (None when none).

        Idle means alive, not waiting on its own group, not already
        hedging, and with no stale cancelled reply queued; least-loaded
        prefers the shard that served the smallest group this round.
        """
        candidates = [
            s
            for s in self.alive_shards()
            if s not in waiting
            and s not in hedge_of
            and self._workers[s].pending_discards == 0
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda s: (len(assignment.get(s, [])), s))

    def _next_wakeup(
        self,
        now: float,
        waiting: Dict[int, float],
        hedge_start: Dict[int, float],
        durations: List[float],
        hedged: Dict[int, int],
    ) -> float:
        """Bounded sleep until the next watchdog/hedge deadline."""
        soonest = float("inf")
        threshold = self._hedge_threshold(durations)
        for origin, started in waiting.items():
            soonest = min(soonest, started + self.reply_timeout_s)
            if threshold is not None and origin not in hedged:
                soonest = min(soonest, started + threshold)
        for started in hedge_start.values():
            soonest = min(soonest, started + self.reply_timeout_s)
        if soonest == float("inf"):
            return 1.0
        return min(1.0, max(0.01, soonest - now))

    def _fold(
        self,
        link: _WorkerLink,
        items: List[FabricHandle],
        payload: Dict[str, Any],
        serving: ServingProfile,
    ) -> None:
        """Merge one shard's successful round reply into the session."""
        results = payload["results"]
        outcomes = payload["outcomes"]
        submit_errors = payload["submit_errors"]
        for handle in items:
            rid = handle.request_id
            if rid in submit_errors:
                # The shard refused it at admission; the router still
                # owes the caller a terminal outcome and a result.
                self._complete_on_host(handle, serving)
                continue
            handle.result = results.get(rid)
            handle.outcome = outcomes[rid]
            handle.shard = link.shard
            link.served += 1
            self._journal_outcome(handle)
        serving.merge(payload["profile"])
        self._merge_trace(payload["spans"], payload["events"])

    def _complete_on_host(
        self, handle: FabricHandle, serving: ServingProfile
    ) -> None:
        """Terminally serve one request on the router's golden path.

        Same bit-exact references the server's host fallback uses
        (``num_pchs`` of the replica shape fixes the GEMV MAC order).
        Router-side completion costs zero simulated time — it is the
        accounting fallback of last resort, not a modelled host.
        """
        request = handle.request
        if request.op == "gemv":
            handle.result = gemv_reference(
                request.weights, request.a, self.config.num_pchs
            )
        elif request.op == "add":
            handle.result = add_reference(request.a, request.b)
        elif request.op == "mul":
            handle.result = mul_reference(request.a, request.b)
        elif request.op == "relu":
            handle.result = relu_reference(request.a)
        else:  # bn: submit() validated the op set already
            gamma, beta = request.scalars or (1.0, 0.0)
            handle.result = bn_reference(request.a, gamma, beta)
        handle.outcome = "degraded_host"
        handle.shard = -1
        serving.record(
            RequestStats(
                request_id=handle.request_id,
                op=request.op,
                arrival_ns=request.arrival_ns,
                start_ns=request.arrival_ns,
                finish_ns=request.arrival_ns,
                batch_size=1,
                lane=-1,
                shard=-1,
                fallback=True,
                priority=request.priority,
                outcome="degraded_host",
                trace_id=request.trace_id,
            )
        )
        self._journal_outcome(handle)

    # -- failure handling ---------------------------------------------------------

    def kill_worker(self, shard: int) -> None:
        """SIGKILL ``shard``'s worker process (failure injection).

        The deterministic way to exercise the quarantine/replay path:
        call from a ``_post_dispatch_hook`` to kill a worker with a
        round genuinely in flight.  No-op for already-dead workers.
        """
        link = self._workers[shard]
        process = link.process
        if process is not None and process.is_alive():
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=self.server_config.join_timeout_s)

    def inject_worker_fault(self, shard: int, spec: Dict[str, Any]) -> None:
        """Arm one scripted chaos fault on ``shard``'s worker.

        Sends a ``("chaos", spec)`` control message (see
        :func:`repro.stack.worker.apply_chaos` for the spec keys:
        ``delay_s``, ``fail_channel``, ``bit_flips``, ``corrupt_reply``,
        ``seed``) and waits for the acknowledgement, so the fault is
        armed *before* the next round is dispatched.  Raises
        :class:`~repro.errors.PimWorkerError` when the worker is dead or
        refuses the spec.
        """
        link = self._workers[shard]
        if not link.alive:
            raise PimWorkerError(
                f"cannot inject fault into dead shard {shard}", shard=shard
            )
        try:
            link.conn.send(("chaos", dict(spec)))
            while True:
                if not link.conn.poll(self.server_config.heartbeat_timeout_s):
                    raise PimWorkerError(
                        f"shard {shard} did not acknowledge the chaos spec",
                        shard=shard,
                    )
                message = link.conn.recv()
                if link.pending_discards > 0 and message[0] in (
                    "result", "error",
                ):
                    link.pending_discards -= 1
                    continue
                break
        except (OSError, EOFError, BrokenPipeError) as err:
            raise PimWorkerError(
                f"shard {shard} died while arming a chaos fault: {err}",
                shard=shard,
            ) from err
        if message[0] != "chaos-ok":
            raise PimWorkerError(
                f"shard {shard} rejected the chaos spec: {message!r}",
                shard=shard,
            )
        if self.tracer is not None:
            self.tracer.event(
                "chaos:armed", at_ns=0.0, category="chaos", shard=shard,
                spec=",".join(sorted(spec)),
            )

    def _quarantine(
        self,
        shard: int,
        serving: Optional[ServingProfile] = None,
        reason: str = "worker died or errored mid-round",
    ) -> None:
        """Retire a dead/errored shard, mirroring channel quarantine."""
        link = self._workers[shard]
        if not link.alive:
            return
        link.alive = False
        link.state = "quarantined"
        self._ring.remove(shard)
        # The worker (and its weight store) is gone; any digest the
        # router believed resident must be re-staged after respawn.
        self._resident.pop(shard, None)
        self._quarantined.append(shard)
        if serving is not None:
            serving.quarantined_shards.append(shard)
        error = PimWorkerError(
            f"shard {shard} {reason}; quarantined and its requests replayed",
            shard=shard,
        )
        self.worker_errors.append(error)
        try:
            link.conn.close()
        except OSError:
            pass
        if link.process is not None:
            self._reap(link)
        if self.tracer is not None:
            self.tracer.event(
                "quarantine:shard", at_ns=0.0, category="fabric", shard=shard
            )

    # -- trace merging ------------------------------------------------------------

    def _merge_trace(self, spans: List, events: List) -> None:
        """Fold one shard round's spans/events into the router's tracer.

        Worker span ids restart at 1 every round; the router shifts each
        batch past every id it has already merged (and past the host
        tracer's own counter), so parent/child links stay intact and ids
        stay unique across shards, rounds, and host-side spans.
        """
        if self.tracer is None or not (spans or events):
            return
        base = max(self._merged_ids, self.tracer._next_id - 1)
        top = base
        for span in spans:
            span.span_id += base
            if span.parent_id is not None:
                span.parent_id += base
            top = max(top, span.span_id)
        for event in events:
            if event.parent_id is not None:
                object.__setattr__(event, "parent_id", event.parent_id + base)
        self.tracer.spans.extend(spans)
        self.tracer.events.extend(events)
        self._merged_ids = top
        self.tracer._next_id = max(self.tracer._next_id, top + 1)
