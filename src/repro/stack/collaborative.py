"""Collaborative host+PIM GEMV — the paper's future-work proposal.

Section VIII: an HBM3-generation PIM-HBM with fine-grained SB/AB-PIM
interleaving would let "both the host processor and PIM perform GEMV in a
collaborative way and eliminate the need for data layout rearrangement."

This module implements the proposal on the simulator:

* the output rows of ``W`` are split: the top fraction runs on PIM (laid
  out PIM-friendly), the rest stays in host layout and is computed by the
  host (modelled numerically with FP32 and, for timing, with the host
  roofline);
* because both sides work concurrently, the layer time is
  ``max(pim_time, host_time)`` — the optimal split equalises the two,
  derived in closed form from the calibrated bandwidth model.

``CollaborativeGemv.sweep_split`` regenerates the ablation curve that
motivates the feature (see ``benchmarks/bench_collaborative_gemv.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..perf.latency import PIM_HBM, PROC_HBM, LatencyModel, SystemPerf
from .kernels import ExecutionReport, GemvKernel
from .runtime import PimSystem

__all__ = ["CollaborativeGemv", "CollaborativeReport", "optimal_split"]


@dataclass(frozen=True)
class CollaborativeReport:
    """Outcome of one collaborative invocation."""

    pim_rows: int
    host_rows: int
    pim_ns: float
    host_ns: float

    @property
    def ns(self) -> float:
        return max(self.pim_ns, self.host_ns)

    @property
    def balance(self) -> float:
        """1.0 means the two sides finish together (perfect split)."""
        if self.ns == 0:
            return 1.0
        return min(self.pim_ns, self.host_ns) / self.ns


def optimal_split(
    m: int,
    n: int,
    batch: int = 1,
    pim: Optional[LatencyModel] = None,
    host: Optional[LatencyModel] = None,
    granularity: int = 128,
) -> int:
    """PIM-side output rows that minimise ``max(pim, host)`` time.

    At batch 1 PIM dominates and the optimum is usually all-PIM; around
    the Fig. 10 crossover (batch 2-4) the two sides are comparable and a
    genuine split wins — the regime the paper's proposal targets.  The
    optimum is found by sweeping tile-granular splits (host efficiency is
    nonlinear in its row count, so no clean closed form exists).
    """
    pim = pim or LatencyModel(PIM_HBM)
    host = host or LatencyModel(PROC_HBM)
    best_rows, best_ns = 0, float("inf")
    for rows in range(0, m + 1, granularity):
        pim_ns = pim.pim_gemv(rows, n, batch).ns if rows else 0.0
        host_ns = host.host_gemv(m - rows, n, batch).ns if rows < m else 0.0
        ns = max(pim_ns, host_ns)
        if ns < best_ns:
            best_rows, best_ns = rows, ns
    return best_rows


class CollaborativeGemv:
    """A GEMV split across the PIM device and the host processor."""

    def __init__(
        self,
        system: PimSystem,
        m: int,
        n: int,
        pim_rows: Optional[int] = None,
        simulate_pchs: Optional[int] = None,
    ):
        self.sys = system
        self.m = m
        self.n = n
        if pim_rows is None:
            pim_rows = optimal_split(m, n)
        if not 0 <= pim_rows <= m:
            raise ValueError("pim_rows out of range")
        # Snap to tile granularity so the PIM slice fills whole tiles.
        self.pim_rows = min(m, -(-pim_rows // 128) * 128) if pim_rows else 0
        self.host_rows = m - self.pim_rows
        self.simulate_pchs = simulate_pchs
        self._kernel = (
            GemvKernel(system, self.pim_rows, n) if self.pim_rows else None
        )
        self._w_host: Optional[np.ndarray] = None
        self._host_model = LatencyModel(PROC_HBM)
        self._pim_model = LatencyModel(PIM_HBM)

    def load_weights(self, w: np.ndarray) -> None:
        """Stage the PIM slice PIM-friendly; keep the host slice as-is."""
        w = np.asarray(w, dtype=np.float16)
        if w.shape != (self.m, self.n):
            raise ValueError(f"expected {(self.m, self.n)} weights")
        if self._kernel is not None:
            self._kernel.load_weights(w[: self.pim_rows])
        # The host slice keeps its original layout: no rearrangement —
        # the point of the proposal.
        self._w_host = w[self.pim_rows :].copy()

    def __call__(self, x: np.ndarray) -> Tuple[np.ndarray, CollaborativeReport]:
        x = np.asarray(x, dtype=np.float16)
        y = np.zeros(self.m, dtype=np.float32)
        pim_ns = 0.0
        if self._kernel is not None:
            y_pim, report = self._kernel(x, simulate_pchs=self.simulate_pchs)
            y[: self.pim_rows] = y_pim
            pim_ns = report.ns
        host_ns = 0.0
        if self.host_rows:
            if self._w_host is None:
                raise RuntimeError("load_weights() first")
            y[self.pim_rows :] = (
                self._w_host.astype(np.float32) @ x.astype(np.float32)
            )
            host_ns = self._host_model.host_gemv(self.host_rows, self.n).ns
        return y, CollaborativeReport(self.pim_rows, self.host_rows, pim_ns, host_ns)

    # -- the motivating ablation ---------------------------------------------------

    @staticmethod
    def sweep_split(
        m: int, n: int, batch: int = 1, points: int = 9,
        pim: Optional[LatencyModel] = None,
        host: Optional[LatencyModel] = None,
    ) -> Dict[int, float]:
        """Modelled layer time (ns) as a function of PIM-side rows."""
        pim = pim or LatencyModel(PIM_HBM)
        host = host or LatencyModel(PROC_HBM)
        out: Dict[int, float] = {}
        for i in range(points):
            rows = int(round(m * i / (points - 1) / 128)) * 128
            rows = min(m, rows)
            pim_ns = pim.pim_gemv(rows, n, batch).ns if rows else 0.0
            host_ns = host.host_gemv(m - rows, n, batch).ns if rows < m else 0.0
            out[rows] = max(pim_ns, host_ns)
        return out
