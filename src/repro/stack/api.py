"""The redesigned submission and configuration surface of the serving tier.

Two frozen dataclasses replace the keyword soup that had accreted onto the
serving engine since PR 1:

* :class:`Request` — one self-describing, picklable unit of work.  The
  historical ``submit(op, a=..., weights=..., arrival_ns=..., ...)``
  signature grew a parameter per PR; a ``Request`` carries the operation,
  its operands, and its scheduling class (priority, deadline, trace id) in
  one immutable value that can cross a process boundary unchanged — the
  property the sharded fabric (:mod:`repro.stack.fabric`) depends on.
* :class:`ServerConfig` — every serving knob (lanes, batching, retry
  budget, breaker, admission policy, ...) in one place.  Knobs left at
  ``None`` inherit the platform's :class:`~repro.stack.runtime.SystemConfig`
  defaults via :meth:`ServerConfig.resolve`, exactly like the historical
  per-kwarg fallback chain.

The old call forms (``submit(op, ...)``, ``PimServer(system, lanes=...)``,
``ctx.server(lanes=...)``) keep working behind ``DeprecationWarning``
shims — see ``docs/MIGRATION.md`` for the old-to-new mapping.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from ..errors import PimProgramError

__all__ = ["Request", "ServerConfig", "request_signature"]


def request_signature(
    op: str,
    a: Optional[np.ndarray] = None,
    weights: Optional[np.ndarray] = None,
    scalars: Optional[Tuple[float, float]] = None,
) -> Tuple:
    """The batching/placement key of one request.

    Requests with equal signatures may share one fused kernel launch (and,
    in the fabric, should land on the same shard so staged weights are
    reused).  GEMV requests key on weight *content* (shape, dtype, and a
    digest of the bytes), never on object identity: a freed array's
    ``id()`` can be reused by a later allocation, and an identity key
    would silently serve stale weights.  Elementwise requests key on
    ``(op, length, scalars)``.
    """
    if op == "gemv":
        w = np.ascontiguousarray(weights)
        digest = hashlib.sha1(w.tobytes()).hexdigest()
        return ("gemv", w.shape, str(w.dtype), digest)
    scalar_key = (
        None if scalars is None else tuple(float(s) for s in scalars)
    )
    return (op, int(np.asarray(a).size), scalar_key)


@dataclass(frozen=True, eq=False)
class Request:
    """One self-describing, picklable operation for the serving tier.

    ``op`` is ``"gemv"`` or one of the elementwise operators
    (``add``/``mul``/``relu``/``bn``); the operand fields mirror the
    historical ``submit`` keywords.  ``priority`` dispatches higher
    classes first (aging prevents starvation), ``deadline_ns`` is an
    absolute simulated-clock bound on *dispatch*, and ``trace_id`` is an
    opaque caller-supplied correlation id stamped onto every span the
    request produces — the key that reassembles one request's spans
    across fabric shard processes.

    Instances are immutable and contain only picklable values, so a
    ``Request`` crosses the fabric's process boundary byte-identically.
    Results come back on the *handle* returned by ``submit`` (a
    :class:`~repro.stack.server.PimRequest` or
    :class:`~repro.stack.fabric.FabricHandle`), never on the request.
    """

    op: str
    a: Optional[np.ndarray] = None
    b: Optional[np.ndarray] = None
    weights: Optional[np.ndarray] = None
    scalars: Optional[Tuple[float, float]] = None
    arrival_ns: float = 0.0
    priority: int = 0
    deadline_ns: Optional[float] = None
    trace_id: Optional[str] = None

    def validate(self) -> "Request":
        """Check op/operand consistency; returns ``self``.

        Raises :class:`~repro.errors.PimProgramError` (a ``ValueError``
        subclass) on an unknown operator or missing operand — the same
        errors the historical ``submit`` raised.
        """
        from .kernels import ELEMENTWISE_OPS  # local: avoid import cycle

        if self.op == "gemv":
            if self.weights is None or self.a is None:
                raise PimProgramError(
                    "gemv needs weights and an input vector"
                )
        elif self.op in ELEMENTWISE_OPS:
            if self.a is None:
                raise PimProgramError(f"{self.op} needs an input vector")
            if ELEMENTWISE_OPS[self.op].uses_second_operand and self.b is None:
                raise PimProgramError(f"{self.op} needs a second operand")
        else:
            raise PimProgramError(f"unknown op {self.op!r}")
        return self

    @property
    def weight_digest(self) -> Optional[str]:
        """sha1 hex digest of the weight bytes, computed once per instance.

        ``request_signature`` historically re-hashed ``weights.tobytes()``
        on every ``.signature`` access — O(weight bytes) per call on the
        router hot path, which touches the signature at submit,
        placement, *and* batching.  The digest is immutable for an
        immutable request, so it is memoised on first access (stashed
        via ``object.__setattr__`` — the dataclass is frozen, its
        ``__dict__`` is not).  The fabric's shm transport also keys
        shard-resident weight staging on this digest.
        """
        if self.weights is None:
            return None
        cached = self.__dict__.get("_weight_digest")
        if cached is None:
            w = np.ascontiguousarray(self.weights)
            cached = hashlib.sha1(w.tobytes()).hexdigest()
            object.__setattr__(self, "_weight_digest", cached)
        return cached

    @property
    def signature(self) -> Tuple:
        """Batching/placement key (see :func:`request_signature`).

        Same tuple :func:`request_signature` builds, but the GEMV weight
        digest comes from the per-instance :attr:`weight_digest` cache
        instead of being recomputed per access.
        """
        if self.op == "gemv":
            w = np.asarray(self.weights)
            return ("gemv", w.shape, str(w.dtype), self.weight_digest)
        return request_signature(self.op, a=self.a, scalars=self.scalars)

    def replace(self, **overrides) -> "Request":
        """A copy with ``overrides`` applied (dataclasses.replace)."""
        return replace(self, **overrides)


#: ServerConfig fields that inherit their default from SystemConfig when
#: left at None, mapped to the SystemConfig attribute that supplies it.
_INHERITED = {
    "simulate_pchs": "simulate_pchs",
    "scrub_interval": "scrub_interval",
    "queue_depth": "queue_depth",
    "admission": "admission",
    "aging_ns": "aging_ns",
    "retry_budget": "retry_budget",
    "retry_refill": "retry_refill",
    "backoff_base_ns": "backoff_base_ns",
    "backoff_jitter": "backoff_jitter",
    "breaker_threshold": "breaker_threshold",
    "breaker_cooldown_ns": "breaker_cooldown_ns",
    "seed": "server_seed",
}

#: Fallbacks used when no SystemConfig is available to inherit from
#: (mirrors the historical per-kwarg defaults of PimServer.__init__).
_FALLBACKS = {
    "simulate_pchs": None,
    "scrub_interval": 0,
    "queue_depth": None,
    "admission": "block",
    "aging_ns": 50_000.0,
    "retry_budget": 8.0,
    "retry_refill": 0.5,
    "backoff_base_ns": 2_000.0,
    "backoff_jitter": 0.5,
    "breaker_threshold": 3,
    "breaker_cooldown_ns": 100_000.0,
    "seed": 0,
}


@dataclass(frozen=True)
class ServerConfig:
    """Every serving-engine knob in one immutable, picklable value.

    Absorbs the overload/retry/breaker parameters that had accreted onto
    ``PimServer.__init__`` (and their defaults on ``SystemConfig``).  A
    knob left at ``None`` inherits the platform's
    :class:`~repro.stack.runtime.SystemConfig` value at server
    construction (see :meth:`resolve`); ``queue_depth=0`` still forces
    the historical unbounded queue even when the system config bounds it.

    Being frozen and picklable, one ``ServerConfig`` configures every
    worker of a :class:`~repro.stack.fabric.PimFabric` identically.  The
    fabric-tier resilience knobs (reply/heartbeat/join timeouts, respawn
    budget, straggler hedging, pipe checksums) live here too: they are
    plain defaults, never inherited from :class:`SystemConfig`, because
    they bound *wall-clock process* behaviour rather than simulated
    device behaviour.
    """

    lanes: int = 2
    max_batch: int = 8
    max_retries: int = 2
    simulate_pchs: Optional[int] = None
    scrub_interval: Optional[int] = None
    queue_depth: Optional[int] = None
    admission: Optional[str] = None
    aging_ns: Optional[float] = None
    retry_budget: Optional[float] = None
    retry_refill: Optional[float] = None
    backoff_base_ns: Optional[float] = None
    backoff_jitter: Optional[float] = None
    breaker_threshold: Optional[int] = None
    breaker_cooldown_ns: Optional[float] = None
    seed: Optional[int] = None
    # -- fabric resilience (PimFabric; docs/ARCHITECTURE.md, "Fabric
    #    resilience & chaos").  All wall-clock bounds are in real seconds
    #    because they guard against wedged *processes*, not simulated
    #    device time. --
    # How long the router waits for one shard's round reply before
    # declaring the worker wedged (SIGKILL + quarantine + replay).
    reply_timeout_s: float = 600.0
    # Reply bound of the between-rounds heartbeat ping.
    heartbeat_timeout_s: float = 30.0
    # Whether the router pings every alive worker between rounds.
    heartbeat: bool = True
    # Close-handshake reply bound and process-join bound used when the
    # fabric shuts a worker down (gracefully or after a kill).
    close_timeout_s: float = 10.0
    join_timeout_s: float = 30.0
    # How many times one shard slot may be respawned after its worker
    # died or wedged (0 disables self-healing respawn entirely).
    max_respawns: int = 1
    # -- straggler hedging: when a shard's round reply takes longer than
    #    hedge_factor x the hedge_quantile of the round's completed reply
    #    times (never less than hedge_min_s), the router re-dispatches
    #    the group to the least-loaded idle survivor and takes the first
    #    reply; the loser is cancelled (its reply discarded). --
    hedge: bool = True
    hedge_quantile: float = 0.95
    hedge_factor: float = 3.0
    hedge_min_s: float = 0.25
    # CRC32-checksum worker<->router serve/result pipe payloads; a
    # corrupt payload is a PimWorkerError and replays on the survivors.
    pipe_checksum: bool = True
    # -- fabric transport (repro.stack.shm; docs/ARCHITECTURE.md,
    #    "Fabric transport").  "pipe" pickles full request payloads
    #    through the worker pipe — simple, and the always-available
    #    differential oracle.  "shm" carries bulk tensors through a
    #    router-owned shared-memory arena as CRC-guarded descriptors and
    #    keeps GEMV weights shard-resident (keyed by content digest), so
    #    a weight matrix crosses the boundary once per (shard,
    #    signature) instead of every round.  Results are bit-exact
    #    either way; pick "shm" for wire bandwidth. --
    transport: str = "pipe"
    # Per-worker weight-store budget (MiB).  Staged GEMV weights are
    # LRU-cached up to this many MiB per shard; 0 disables residency
    # (every round re-ships weights).  Ignored under transport="pipe".
    weight_store_mb: float = 64.0
    # Tensors at or below this many bytes ride the pickled control
    # message inline instead of crossing as a shared-memory descriptor
    # (the descriptor plus its attach/CRC hops costs more than the bytes
    # for small arrays).  0 forces *every* tensor through shared memory
    # — the mode chaos uses so frame corruption always has a frame to
    # strike.  Ignored under transport="pipe".
    shm_inline_bytes: int = 1024
    # -- durability (repro.journal; docs/ARCHITECTURE.md, "Durability &
    #    replay").  When journal_dir is set, the router appends every
    #    accepted Request and every terminal outcome to a CRC32-framed
    #    write-ahead log there, and repro.journal.recover(journal_dir)
    #    turns the directory back into exactly one bit-exact terminal
    #    outcome per request after a crash.  The fabric strips the knob
    #    from worker configs — the router owns durability, shards never
    #    journal.  journal_sync=True fsyncs every append (durable
    #    against machine death, one fsync per record). --
    journal_dir: Optional[str] = None
    journal_sync: bool = False

    def replace(self, **overrides) -> "ServerConfig":
        """A copy with ``overrides`` applied (dataclasses.replace)."""
        return replace(self, **overrides)

    def resolve(self, system_config=None) -> "ServerConfig":
        """A copy with every ``None`` knob filled in.

        Inherited knobs come from ``system_config`` (a
        :class:`~repro.stack.runtime.SystemConfig`) when one is given,
        else from the historical built-in defaults — the same fallback
        chain the per-kwarg ``PimServer.__init__`` implemented.
        """
        values = {}
        for field_name, config_attr in _INHERITED.items():
            if getattr(self, field_name) is not None:
                continue
            if system_config is not None:
                values[field_name] = getattr(system_config, config_attr)
            else:
                values[field_name] = _FALLBACKS[field_name]
        return self.replace(**values) if values else self
