"""The PIM software stack: driver, runtime, BLAS, and graph framework."""

from ..errors import (
    PimChannelError,
    PimDataError,
    PimError,
    PimJournalError,
    PimOverloadError,
    PimProgramError,
    PimReplayError,
    PimWorkerError,
)
from .api import Request, ServerConfig, request_signature
from .blas import (
    PimBlas,
    add_reference,
    bn_reference,
    gemv_reference,
    mul_reference,
    relu_reference,
)
from .graph import (
    PIM_CUSTOM_OPS,
    PIM_ELIGIBLE_OPS,
    GraphBuilder,
    GraphExecutor,
    Node,
    RunReport,
)
from .driver import (
    ChannelSet,
    PimAllocationError,
    PimDeviceDriver,
    RowSetRange,
    ScrubResult,
)
from .memory import (
    MicrokernelCache,
    PimLayout,
    aligned_size,
    chunk_locations,
    pad_vector,
)
from .kernels import (
    ELEMENTWISE_OPS,
    ElementwiseKernel,
    ExecutionReport,
    GemvKernel,
    PimSession,
)
from .collaborative import CollaborativeGemv, CollaborativeReport, optimal_split
from .lstm import LstmLayerOperator, LstmStepReport
from .profiler import (
    BreakerTransition,
    KernelProfile,
    Profiler,
    RequestStats,
    ServingProfile,
    SessionProfile,
)
from .runtime import PimExecutor, PimSystem, SystemConfig
from .server import PimRequest, PimServer, RequestOutcome
from .context import PimContext
from .fabric import FabricHandle, PimFabric

__all__ = [
    "PimBlas",
    "add_reference",
    "bn_reference",
    "gemv_reference",
    "mul_reference",
    "relu_reference",
    "ChannelSet",
    "PimError",
    "PimDataError",
    "PimChannelError",
    "PimAllocationError",
    "PimOverloadError",
    "PimProgramError",
    "PimWorkerError",
    "PimJournalError",
    "PimReplayError",
    "PimDeviceDriver",
    "RowSetRange",
    "ScrubResult",
    "ELEMENTWISE_OPS",
    "ElementwiseKernel",
    "ExecutionReport",
    "GemvKernel",
    "PimSession",
    "CollaborativeGemv",
    "CollaborativeReport",
    "optimal_split",
    "LstmLayerOperator",
    "LstmStepReport",
    "BreakerTransition",
    "KernelProfile",
    "Profiler",
    "RequestStats",
    "ServingProfile",
    "SessionProfile",
    "PimExecutor",
    "PimSystem",
    "SystemConfig",
    "PimContext",
    "PimRequest",
    "PimServer",
    "RequestOutcome",
    "Request",
    "ServerConfig",
    "request_signature",
    "FabricHandle",
    "PimFabric",
    "MicrokernelCache",
    "PimLayout",
    "aligned_size",
    "chunk_locations",
    "pad_vector",
    "PIM_CUSTOM_OPS",
    "PIM_ELIGIBLE_OPS",
    "GraphBuilder",
    "GraphExecutor",
    "Node",
    "RunReport",
]
