"""The PIM software stack: driver, runtime, BLAS, and graph framework."""

from .blas import (
    PimBlas,
    add_reference,
    bn_reference,
    gemv_reference,
    mul_reference,
    relu_reference,
)
from .graph import (
    PIM_CUSTOM_OPS,
    PIM_ELIGIBLE_OPS,
    GraphBuilder,
    GraphExecutor,
    Node,
    RunReport,
)
from .driver import PimAllocationError, PimDeviceDriver, RowSetRange
from .memory import (
    MicrokernelCache,
    PimLayout,
    aligned_size,
    chunk_locations,
    pad_vector,
)
from .kernels import (
    ELEMENTWISE_OPS,
    ElementwiseKernel,
    ExecutionReport,
    GemvKernel,
    PimSession,
)
from .collaborative import CollaborativeGemv, CollaborativeReport, optimal_split
from .lstm import LstmLayerOperator, LstmStepReport
from .profiler import KernelProfile, Profiler, SessionProfile
from .runtime import PimExecutor, PimSystem

__all__ = [
    "PimBlas",
    "add_reference",
    "bn_reference",
    "gemv_reference",
    "mul_reference",
    "relu_reference",
    "PimAllocationError",
    "PimDeviceDriver",
    "RowSetRange",
    "ELEMENTWISE_OPS",
    "ElementwiseKernel",
    "ExecutionReport",
    "GemvKernel",
    "PimSession",
    "CollaborativeGemv",
    "CollaborativeReport",
    "optimal_split",
    "LstmLayerOperator",
    "LstmStepReport",
    "KernelProfile",
    "Profiler",
    "SessionProfile",
    "PimExecutor",
    "PimSystem",
    "MicrokernelCache",
    "PimLayout",
    "aligned_size",
    "chunk_locations",
    "pad_vector",
    "PIM_CUSTOM_OPS",
    "PIM_ELIGIBLE_OPS",
    "GraphBuilder",
    "GraphExecutor",
    "Node",
    "RunReport",
]
