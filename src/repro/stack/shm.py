"""Zero-copy shared-memory transport primitives for the serving fabric.

The paper's PIM value proposition is bandwidth: keep operands next to
compute instead of shipping them over a narrow link.  The fabric's
historical pipe transport violated that principle one layer up — every
round pickled full request payloads (input vectors *and* the GEMV weight
matrix, even though consistent-hash placement guarantees same-signature
requests revisit the same shard) through a ``multiprocessing`` pipe.
This module supplies the shared-memory alternative behind
``ServerConfig(transport="shm")``:

* :class:`ShmArena` — a router-owned bump allocator over
  ``multiprocessing.shared_memory`` segments.  Bulk tensors are written
  once into an arena and cross the process boundary as
  :class:`ArrayRef` descriptors ``(segment, offset, shape, dtype,
  crc32)``; the pipe carries only the tiny control message.  The
  router owns (and unlinks) every segment — workers merely attach — so
  a SIGKILLed worker can never leak a ``/dev/shm`` entry.
* :class:`SegmentCache` — the attach side.  Attachers never unlink:
  ownership (and hence unlink duty) stays with the creating router, and
  workers share the router's resource-tracker process, so even a
  SIGKILLed *router* gets its segments reaped at tracker shutdown (see
  the class docstring for why attach must not touch the tracker).
* :class:`WeightStore` — the shard-resident weight cache.  Workers keep
  staged GEMV weight arrays keyed by the request's sha1 content digest,
  LRU-bounded by ``ServerConfig.weight_store_mb``, so a weight matrix
  crosses the boundary exactly once per (shard, signature) and
  subsequent rounds ship only the 40-byte digest.
* :class:`WireRequest` + :func:`encode_request`/:func:`decode_request`
  — the descriptor form of a :class:`~repro.stack.api.Request`.

Arrays smaller than :data:`INLINE_BYTES` ride the control message
directly (a 128-byte GEMV result costs more as a descriptor than as
bytes), and zero-length or Fortran-ordered arrays are normalised at one
blessed choke point, :func:`as_wire_array`, instead of being
re-pickled/CRC'd per call site.

Every descriptor carries a CRC32 of its bytes; a reader that finds a
mismatch raises, which the fabric routes through the same
quarantine-and-replay path a corrupted pipe payload takes — shared
memory gets the exact adversarial coverage pipes have (see the
``corrupt_shm`` chaos kind).
"""

from __future__ import annotations

import os
import secrets
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .api import Request

__all__ = [
    "ArrayRef",
    "INLINE_BYTES",
    "SegmentCache",
    "SHM_PREFIX",
    "ShmArena",
    "WeightStore",
    "WireRequest",
    "as_wire_array",
    "decode_request",
    "encode_request",
    "live_segments",
]

#: Prefix of every shared-memory segment this package creates; the leak
#: tests (and the CI ``/dev/shm`` check) count entries carrying it.
SHM_PREFIX = "reproshm"

#: Arrays at or below this many bytes ride the pickled control message
#: inline: a descriptor (plus the attach/frombuffer/CRC hops it implies)
#: costs more than the bytes themselves for small payloads, and a
#: zero-length array has nothing for a descriptor to describe.
INLINE_BYTES = 1024

#: Default size of one arena segment; oversize writes get a dedicated
#: segment of exactly their own size instead.
DEFAULT_SEGMENT_BYTES = 4 << 20


def as_wire_array(array: np.ndarray) -> np.ndarray:
    """The blessed normalisation choke point for arrays bound for a wire.

    Every transport path (shm descriptor writes, weight digesting,
    inline control-message payloads) funnels through here: the result is
    always C-contiguous (``tobytes``/``frombuffer`` round-trips are
    layout-exact), already-contiguous arrays pass through untouched, and
    Fortran-ordered or sliced views are copied exactly once instead of
    being re-normalised (and re-pickled, re-CRC'd) at each call site.
    """
    array = np.asarray(array)
    if array.size and not array.flags.c_contiguous:
        return np.ascontiguousarray(array)
    return array


def live_segments() -> List[str]:
    """Names of every ``/dev/shm`` segment this package has live.

    The leak-test primitive: a fabric that cleaned up after itself
    leaves this list exactly as it found it.  Falls back to an empty
    list on platforms without a ``/dev/shm`` tmpfs.
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - non-Linux fallback
        return []
    return sorted(name for name in entries if name.startswith(SHM_PREFIX))


@dataclass(frozen=True)
class ArrayRef:
    """One tensor living in a shared-memory segment, CRC-guarded.

    The wire form of a bulk array: 5 scalars cross the pipe instead of
    the bytes.  ``crc32`` is of the raw C-order bytes; readers verify it
    before trusting the payload, so in-segment corruption is *detected*
    (and the round replayed) instead of silently decoding into wrong
    results — the same contract the pipe transport's framed blobs have.
    """

    segment: str
    offset: int
    nbytes: int
    shape: Tuple[int, ...]
    dtype: str
    crc32: int


@dataclass(frozen=True)
class WeightRef:
    """A weights-by-digest reference: the matrix is already shard-resident.

    Ships only when the router's residency map says the target shard
    staged this digest earlier (and has not evicted, respawned, or
    drained since); the worker resolves it from its
    :class:`WeightStore`.  A miss is a protocol error the worker reports
    as a round failure — the router quarantines, clears residency, and
    the replay re-stages, so a stale mapping self-heals instead of
    serving stale weights.
    """

    digest: str
    shape: Tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class StagedWeights:
    """First crossing of a weight matrix: descriptor plus its digest.

    The worker reads the array out of shared memory, caches it in its
    :class:`WeightStore` under ``digest`` (unless ``cache`` is False —
    the matrix is bigger than the store budget or the store is
    disabled), and the router marks the (shard, digest) pair resident.
    """

    digest: str
    ref: "ArrayRef"
    cache: bool


@dataclass(frozen=True)
class WireRequest:
    """A :class:`~repro.stack.api.Request` with its tensors swapped for
    descriptors (or inline arrays when small); the shm wire form."""

    op: str
    a: object
    b: object
    weights: object
    scalars: Optional[Tuple[float, float]]
    arrival_ns: float
    priority: int
    deadline_ns: Optional[float]
    trace_id: Optional[str]


class ShmArena:
    """A bump allocator over owned shared-memory segments.

    The single-owner discipline is the cleanup story: only the creating
    process (the fabric router) ever calls :meth:`close`, which unlinks
    every segment — attach-side processes use :class:`SegmentCache` and
    never own anything.  Creation registers with the stdlib resource
    tracker, so even a SIGKILLed owner gets its segments reaped at
    tracker shutdown instead of leaking them in ``/dev/shm``.

    :meth:`reset` rewinds the bump pointers without touching the
    mappings, which is how the fabric recycles the operand arena every
    round: descriptors from round N are dead the moment round N's last
    reply is folded, so round N+1 reuses the same pages.
    """

    def __init__(self, tag: str, segment_bytes: int = DEFAULT_SEGMENT_BYTES):
        self._tag = tag
        self._segment_bytes = int(segment_bytes)
        self._segments: "OrderedDict[str, shared_memory.SharedMemory]" = (
            OrderedDict()
        )
        self._fill: Dict[str, int] = {}
        self._seq = 0
        self._closed = False
        #: Total bytes ever written through :meth:`write` (accounting).
        self.bytes_written = 0

    def _new_segment(self, size: int) -> shared_memory.SharedMemory:
        name = (
            f"{SHM_PREFIX}-{self._tag}-{os.getpid()}-"
            f"{secrets.token_hex(4)}-{self._seq}"
        )
        self._seq += 1
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, size)
        )
        self._segments[segment.name] = segment
        self._fill[segment.name] = 0
        return segment

    def write(self, array: np.ndarray) -> ArrayRef:
        """Copy ``array`` into the arena; returns its descriptor.

        Bump-allocates (8-byte aligned) in the first segment with room,
        growing the arena with a fresh segment when none has — an array
        bigger than one standard segment gets a dedicated segment of
        exactly its own size.
        """
        if self._closed:
            raise ValueError("arena is closed")
        array = as_wire_array(array)
        data = array.tobytes()
        nbytes = len(data)
        target = None
        for name, segment in self._segments.items():
            fill = self._fill[name]
            if fill + nbytes <= segment.size:
                target = segment
                break
        if target is None:
            target = self._new_segment(max(self._segment_bytes, nbytes))
        offset = self._fill[target.name]
        target.buf[offset:offset + nbytes] = data
        self._fill[target.name] = offset + ((nbytes + 7) & ~7)
        self.bytes_written += nbytes
        return ArrayRef(
            segment=target.name,
            offset=offset,
            nbytes=nbytes,
            shape=tuple(array.shape),
            dtype=str(array.dtype),
            crc32=zlib.crc32(data),
        )

    def reset(self) -> None:
        """Rewind every segment's bump pointer (mappings stay)."""
        for name in self._fill:
            self._fill[name] = 0

    def segment_names(self) -> List[str]:
        """Names of every segment the arena owns, creation order."""
        return list(self._segments)

    def close(self) -> None:
        """Close and unlink every owned segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments.values():
            try:
                segment.close()
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        self._segments.clear()
        self._fill.clear()


class SegmentCache:
    """Attach-side mapping cache: one live attachment per segment name.

    CPython (until 3.13's ``track=False``) registers attachments with
    the ``multiprocessing`` resource tracker exactly like creations.
    That is harmless here — fabric workers share the *router's* tracker
    process (fork inherits it; spawn passes its fd), whose per-name
    cache is a set, so an attach-side registration is an idempotent
    no-op on the entry the router's creation made.  Crucially the cache
    must NOT unregister on attach either: with one shared tracker that
    would erase the router's registration, producing a tracker error
    when the router later unlinks — and, worse, losing the
    tracker-reaps-it safety net for segments of a SIGKILLed router.
    Ownership discipline is behavioural instead: an attacher never calls
    ``unlink()``, only :meth:`close`.
    """

    def __init__(self):
        self._attached: Dict[str, shared_memory.SharedMemory] = {}

    def attach(self, name: str) -> shared_memory.SharedMemory:
        """The (cached) attachment for segment ``name``."""
        segment = self._attached.get(name)
        if segment is None:
            segment = shared_memory.SharedMemory(name=name)
            self._attached[name] = segment
        return segment

    def read(self, ref: ArrayRef) -> np.ndarray:
        """Materialise one descriptor's array (an owned copy), CRC-checked.

        Raises ``ValueError`` on a checksum mismatch — the caller maps
        that onto the transport's corruption path (worker: an ``error``
        reply; router: :class:`~repro.errors.PimWorkerError`), never
        into silently wrong bytes.
        """
        segment = self.attach(ref.segment)
        data = bytes(segment.buf[ref.offset:ref.offset + ref.nbytes])
        if zlib.crc32(data) != ref.crc32:
            raise ValueError(
                f"shared-memory frame {ref.segment}@{ref.offset} failed its "
                f"CRC32 check (corrupted in the arena)"
            )
        return np.frombuffer(data, dtype=np.dtype(ref.dtype)).reshape(
            ref.shape
        ).copy()

    def close(self) -> None:
        """Drop every attachment (mappings only — nothing is unlinked)."""
        for segment in self._attached.values():
            try:
                segment.close()
            except OSError:  # pragma: no cover
                pass
        self._attached.clear()


class WeightStore:
    """Shard-resident weight cache: digest -> staged array, LRU-bounded.

    ``budget_mb`` bounds the total cached bytes; inserting past the
    budget evicts least-recently-used entries first, and every eviction
    is reported back to the router (via :meth:`drain_evicted`) so its
    residency map never references a matrix the shard no longer holds.
    A matrix bigger than the whole budget is never cached (the router
    applies the same rule, so it re-ships such weights every round), and
    ``budget_mb=0`` disables residency entirely.
    """

    def __init__(self, budget_mb: float):
        self.budget_bytes = int(max(0.0, float(budget_mb)) * (1 << 20))
        self._store: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self._evicted: List[str] = []
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def cacheable(self, nbytes: int) -> bool:
        """Whether an array of ``nbytes`` may be cached at all."""
        return 0 < nbytes <= self.budget_bytes

    def get(self, digest: str) -> Optional[np.ndarray]:
        """The resident array for ``digest`` (freshened), else None."""
        array = self._store.get(digest)
        if array is None:
            self.misses += 1
            return None
        self._store.move_to_end(digest)
        self.hits += 1
        return array

    def put(self, digest: str, array: np.ndarray) -> bool:
        """Cache ``array`` under ``digest``; returns whether it stuck."""
        if not self.cacheable(array.nbytes):
            return False
        if digest in self._store:
            self._store.move_to_end(digest)
            return True
        while self._bytes + array.nbytes > self.budget_bytes and self._store:
            victim, evicted = self._store.popitem(last=False)
            self._bytes -= evicted.nbytes
            self._evicted.append(victim)
            self.evictions += 1
        self._store[digest] = array
        self._bytes += array.nbytes
        return True

    def drain_evicted(self) -> List[str]:
        """Digests evicted since the last drain (cleared on read)."""
        evicted, self._evicted = self._evicted, []
        return evicted

    def resident_bytes(self) -> int:
        """Total bytes currently cached."""
        return self._bytes

    def __contains__(self, digest: str) -> bool:
        return digest in self._store

    def __len__(self) -> int:
        return len(self._store)


def _encode_operand(array, arena: ShmArena, inline_bytes: int):
    """One operand's wire form: inline when small, a descriptor otherwise."""
    if array is None:
        return None
    array = as_wire_array(array)
    if array.nbytes <= inline_bytes:
        return array
    return arena.write(array)


def encode_request(
    request: Request,
    arena: ShmArena,
    resident: set,
    store_budget_bytes: int,
    inline_bytes: int = INLINE_BYTES,
) -> WireRequest:
    """The shm wire form of one request, against one shard's residency.

    ``resident`` is the router's digest set for the *target* shard —
    resident weights ship as a :class:`WeightRef` (40-byte digest), a
    first crossing ships as :class:`StagedWeights` (descriptor + digest,
    with ``cache`` telling the worker whether the matrix fits its
    store), and non-weight operands inline or descriptor per size.
    Cacheable weights are staged even when small enough to inline —
    residency dedup beats inlining the moment a weight repeats.  The
    caller owns updating the residency map — encoding never mutates it,
    because the same request may be re-encoded for a different shard
    (hedge dispatches) with different residency.
    """
    weights = None
    if request.weights is not None:
        w = as_wire_array(request.weights)
        digest = request.weight_digest
        cacheable = 0 < w.nbytes <= store_budget_bytes
        if cacheable and digest in resident:
            weights = WeightRef(
                digest=digest, shape=tuple(w.shape), dtype=str(w.dtype)
            )
        elif w.nbytes <= inline_bytes and not cacheable:
            weights = w
        else:
            weights = StagedWeights(
                digest=digest, ref=arena.write(w), cache=cacheable
            )
    return WireRequest(
        op=request.op,
        a=_encode_operand(request.a, arena, inline_bytes),
        b=_encode_operand(request.b, arena, inline_bytes),
        weights=weights,
        scalars=request.scalars,
        arrival_ns=request.arrival_ns,
        priority=request.priority,
        deadline_ns=request.deadline_ns,
        trace_id=request.trace_id,
    )


def _decode_operand(wire, cache: SegmentCache):
    """Materialise one operand from its wire form."""
    if wire is None or isinstance(wire, np.ndarray):
        return wire
    return cache.read(wire)


def decode_request(
    wire: WireRequest, cache: SegmentCache, store: WeightStore
) -> Request:
    """Rebuild a full :class:`Request` from its shm wire form.

    Staged weights are read out of shared memory and cached in
    ``store``; by-digest references resolve from the store, and a miss
    raises ``ValueError`` — the worker reports the round as failed, the
    router quarantines the shard and clears its residency, and the
    replay re-stages, so the failure mode is a healed retry rather than
    stale weights.  The rebuilt request carries its digest pre-seeded,
    so the worker-side server never re-hashes the matrix.
    """
    digest = None
    weights = wire.weights
    if isinstance(weights, WeightRef):
        digest = weights.digest
        weights = store.get(digest)
        if weights is None:
            raise ValueError(
                f"weight digest {digest[:12]}... referenced by the router is "
                f"not resident in this shard's weight store"
            )
    elif isinstance(weights, StagedWeights):
        digest = weights.digest
        ref = weights.ref
        array = cache.read(ref)
        if weights.cache:
            store.put(digest, array)
        weights = array
    request = Request(
        op=wire.op,
        a=_decode_operand(wire.a, cache),
        b=_decode_operand(wire.b, cache),
        weights=weights,
        scalars=wire.scalars,
        arrival_ns=wire.arrival_ns,
        priority=wire.priority,
        deadline_ns=wire.deadline_ns,
        trace_id=wire.trace_id,
    )
    if digest is not None:
        # Pre-seed the digest cache: the router already paid the sha1.
        object.__setattr__(request, "_weight_digest", digest)
    return request


class ResultWriter:
    """The worker's bump writer into its router-owned result segment.

    One fixed-size segment per shard slot (created, and eventually
    unlinked, by the router); the worker rewinds it at the start of each
    serve round — safe because the router materialises every descriptor
    the moment a reply arrives, so no descriptor from a previous round
    outlives the round that produced it.  A round whose results overflow
    the segment inlines the remainder in the control message (correct,
    just not zero-copy; counted so the operator can size the segment).
    """

    def __init__(
        self,
        cache: SegmentCache,
        segment: str,
        size: int,
        inline_bytes: int = INLINE_BYTES,
    ):
        self._cache = cache
        self._segment_name = segment
        self._size = int(size)
        self._inline = int(inline_bytes)
        self._fill = 0
        #: Regions written this round, for the chaos corruption hook.
        self.written: List[ArrayRef] = []
        #: Results inlined because the segment was full (cumulative).
        self.inlined = 0

    def reset(self) -> None:
        """Start a fresh round: rewind the bump pointer."""
        self._fill = 0
        self.written = []

    def write(self, array: Optional[np.ndarray]):
        """Wire form of one result: descriptor, or inline when small/full."""
        if array is None:
            return None
        array = as_wire_array(array)
        data = array.tobytes()
        nbytes = len(data)
        if nbytes <= self._inline:
            return array
        if self._fill + nbytes > self._size:
            self.inlined += 1
            return array
        segment = self._cache.attach(self._segment_name)
        offset = self._fill
        segment.buf[offset:offset + nbytes] = data
        self._fill = offset + ((nbytes + 7) & ~7)
        ref = ArrayRef(
            segment=self._segment_name,
            offset=offset,
            nbytes=nbytes,
            shape=tuple(array.shape),
            dtype=str(array.dtype),
            crc32=zlib.crc32(data),
        )
        self.written.append(ref)
        return ref

    def corrupt_last_round(self, injector) -> bool:
        """Flip one seeded bit inside a frame written this round.

        The chaos hook behind the ``corrupt_shm`` fault kind: called
        *after* the reply payload (descriptors included) was built and
        CRC'd, so the router's descriptor verification — not the control
        -blob checksum — must catch it.  Returns False when the round
        wrote nothing through shared memory (nothing to corrupt).
        """
        if not self.written:
            return False
        ref = self.written[0]
        segment = self._cache.attach(self._segment_name)
        view = segment.buf[ref.offset:ref.offset + ref.nbytes]
        injector.corrupt_shm(view)
        return True


WireArray = Union[ArrayRef, np.ndarray, None]
