"""The PIM device driver (Section V-A).

During boot the driver reserves the PIM memory space, marks it uncacheable
(so every access in the region reaches DRAM as a command — no cache sits
between the host and the PIM units), and hands out *physically contiguous*
blocks so PIM kernels never worry about virtual-to-physical translation.

The model allocates in units of **row sets**: one row index taken across
every bank of every pseudo-channel.  That is the natural PIM granularity —
an AB-mode command touches the same row of all banks, so data placed in one
row set is reachable by one lock-step command stream.  The register-mapped
rows at the top of the address space (the grey PIM_CONF region of Fig. 3)
are never allocatable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..pim.device import PimHbmDevice

__all__ = ["RowSetRange", "PimDeviceDriver", "PimAllocationError"]


class PimAllocationError(RuntimeError):
    """The reserved PIM memory space is exhausted or misused."""


@dataclass(frozen=True)
class RowSetRange:
    """A contiguous range of row sets ``[start, stop)`` owned by one client."""

    start: int
    stop: int

    @property
    def num_rows(self) -> int:
        return self.stop - self.start

    def row(self, index: int) -> int:
        """Absolute row index of the ``index``-th row set in the block."""
        if not 0 <= index < self.num_rows:
            raise IndexError(f"row-set index {index} out of range")
        return self.start + index


class PimDeviceDriver:
    """Reserves and allocates the PIM memory region of a device."""

    def __init__(self, device: PimHbmDevice):
        self.device = device
        self.memory_map = device.memory_map
        # Everything below the register rows is the driver's pool.
        self._limit = self.memory_map.first_reserved_row
        self._cursor = 0
        self._allocations: List[RowSetRange] = []
        self.uncacheable = True  # the whole region bypasses the cache

    @property
    def rows_total(self) -> int:
        return self._limit

    @property
    def rows_free(self) -> int:
        return self._limit - self._cursor

    def bytes_per_row_set(self) -> int:
        """Capacity of one row set across the whole device."""
        cfg = self.device.config
        from ..dram.pseudochannel import BANKS_PER_PCH

        return cfg.bank_config.row_bytes * BANKS_PER_PCH * cfg.num_pchs

    def alloc_rows(self, count: int) -> RowSetRange:
        """Allocate ``count`` physically contiguous row sets."""
        if count <= 0:
            raise PimAllocationError("allocation must be positive")
        if self._cursor + count > self._limit:
            raise PimAllocationError(
                f"requested {count} row sets, only {self.rows_free} free"
            )
        block = RowSetRange(self._cursor, self._cursor + count)
        self._cursor += count
        self._allocations.append(block)
        return block

    def alloc_bytes(self, nbytes: int) -> RowSetRange:
        """Allocate enough row sets to hold ``nbytes``."""
        per_row = self.bytes_per_row_set()
        rows = -(-nbytes // per_row)
        return self.alloc_rows(rows)

    def reset(self) -> None:
        """Free everything (bump allocator, per-process teardown)."""
        self._cursor = 0
        self._allocations.clear()

    def check_row(self, row: int) -> None:
        """Raise if ``row`` is outside the allocatable PIM region."""
        if row >= self._limit:
            raise PimAllocationError(
                f"row {row} is inside the reserved register region"
            )
