"""The PIM device driver (Section V-A).

During boot the driver reserves the PIM memory space, marks it uncacheable
(so every access in the region reaches DRAM as a command — no cache sits
between the host and the PIM units), and hands out *physically contiguous*
blocks so PIM kernels never worry about virtual-to-physical translation.

The model allocates in units of **row sets**: one row index taken across
every bank of every pseudo-channel.  That is the natural PIM granularity —
an AB-mode command touches the same row of all banks, so data placed in one
row set is reachable by one lock-step command stream.  The register-mapped
rows at the top of the address space (the grey PIM_CONF region of Fig. 3)
are never allocatable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from ..errors import PimAllocationError
from ..pim.device import PimHbmDevice

__all__ = [
    "RowSetRange",
    "ChannelSet",
    "PimDeviceDriver",
    "PimAllocationError",
    "ScrubResult",
]


@dataclass(frozen=True)
class RowSetRange:
    """A contiguous range of row sets ``[start, stop)`` owned by one client."""

    start: int
    stop: int

    @property
    def num_rows(self) -> int:
        return self.stop - self.start

    def row(self, index: int) -> int:
        """Absolute row index of the ``index``-th row set in the block."""
        if not 0 <= index < self.num_rows:
            raise IndexError(f"row-set index {index} out of range")
        return self.start + index


@dataclass(frozen=True)
class ChannelSet:
    """A disjoint set of pseudo-channels leased to one serving lane.

    Channel independence (Section VIII) is what makes this sound: each
    pseudo-channel has its own controller and mode FSM, so kernels running
    on disjoint channel sets never observe each other — the property the
    request-serving engine exploits to pipeline operators.
    """

    channels: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.channels)

    def __iter__(self):
        return iter(self.channels)


@dataclass
class ScrubResult:
    """Outcome of one background-scrub pass over the allocated region."""

    rows_scanned: int = 0
    words_checked: int = 0
    corrected: int = 0
    #: ``(channel, bank, row)`` triples whose scrub found a double-bit
    #: error the code cannot repair.
    uncorrectable: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def uncorrectable_words(self) -> int:
        """Number of locations reported uncorrectable this pass."""
        return len(self.uncorrectable)


class PimDeviceDriver:
    """Reserves and allocates the PIM memory region of a device."""

    def __init__(self, device: PimHbmDevice):
        self.device = device
        self.memory_map = device.memory_map
        # Everything below the register rows is the driver's pool.
        self._limit = self.memory_map.first_reserved_row
        self._cursor = 0
        self._allocations: List[RowSetRange] = []
        # Freed blocks, kept sorted by start and coalesced; allocations
        # first-fit from here before bumping the cursor.
        self._free_list: List[RowSetRange] = []
        # Channel leases: channel index -> True while leased to a lane.
        self._leased_channels: set = set()
        # Channels retired after a hard failure: never offered again.
        self._quarantined_channels: set = set()
        # Set by PimSystem when exec_mode="fused": compiled traces of a
        # quarantined channel are dropped alongside its lease.
        self.trace_cache = None
        self.uncacheable = True  # the whole region bypasses the cache
        # Observability hooks (repro.obs): scrub passes and quarantine
        # decisions are recorded when attached; None costs one test.
        self.tracer = None
        self.metrics = None

    @property
    def rows_total(self) -> int:
        return self._limit

    @property
    def rows_free(self) -> int:
        reclaimed = sum(b.num_rows for b in self._free_list)
        return self._limit - self._cursor + reclaimed

    def bytes_per_row_set(self) -> int:
        """Capacity of one row set across the whole device."""
        cfg = self.device.config
        from ..dram.pseudochannel import BANKS_PER_PCH

        return cfg.bank_config.row_bytes * BANKS_PER_PCH * cfg.num_pchs

    def alloc_rows(self, count: int) -> RowSetRange:
        """Allocate ``count`` physically contiguous row sets."""
        if count <= 0:
            raise PimAllocationError("allocation must be positive")
        # First fit from the free list (rows reclaimed by operator-cache
        # eviction), splitting the block if it is larger than needed.
        for i, candidate in enumerate(self._free_list):
            if candidate.num_rows >= count:
                block = RowSetRange(candidate.start, candidate.start + count)
                if candidate.num_rows == count:
                    self._free_list.pop(i)
                else:
                    self._free_list[i] = RowSetRange(
                        candidate.start + count, candidate.stop
                    )
                self._allocations.append(block)
                return block
        if self._cursor + count > self._limit:
            raise PimAllocationError(
                f"requested {count} row sets, only {self.rows_free} free"
            )
        block = RowSetRange(self._cursor, self._cursor + count)
        self._cursor += count
        self._allocations.append(block)
        return block

    def alloc_bytes(self, nbytes: int) -> RowSetRange:
        """Allocate enough row sets to hold ``nbytes``."""
        per_row = self.bytes_per_row_set()
        rows = -(-nbytes // per_row)
        return self.alloc_rows(rows)

    def free(self, block: RowSetRange) -> None:
        """Return a block to the pool (operator-cache eviction path)."""
        try:
            self._allocations.remove(block)
        except ValueError:
            raise PimAllocationError(f"block {block} was not allocated")
        self._free_list.append(block)
        self._free_list.sort(key=lambda b: b.start)
        # Coalesce neighbours so long-running serving sessions don't
        # fragment the region.
        merged: List[RowSetRange] = []
        for b in self._free_list:
            if merged and merged[-1].stop == b.start:
                merged[-1] = RowSetRange(merged[-1].start, b.stop)
            else:
                merged.append(b)
        # A block touching the bump cursor is given back to the cursor.
        if merged and merged[-1].stop == self._cursor:
            self._cursor = merged[-1].start
            merged.pop()
        self._free_list = merged

    def reset(self) -> None:
        """Free everything (bump allocator, per-process teardown)."""
        self._cursor = 0
        self._allocations.clear()
        self._free_list.clear()
        self._leased_channels.clear()
        self._quarantined_channels.clear()

    def allocated_rows(self) -> Iterator[int]:
        """Every row-set index currently owned by some client.

        The fault injector and the scrubber walk exactly these: freed
        blocks may hold stale corruption, but nothing will ever read them
        before an allocation re-writes them.
        """
        for block in self._allocations:
            yield from range(block.start, block.stop)

    # -- channel-set leases -----------------------------------------------------

    @property
    def num_channels(self) -> int:
        return len(self.device)

    @property
    def channels_free(self) -> List[int]:
        return [
            p
            for p in range(self.num_channels)
            if p not in self._leased_channels
            and p not in self._quarantined_channels
        ]

    @property
    def channels_leased(self) -> Tuple[int, ...]:
        """Channels currently leased to serving lanes, sorted."""
        return tuple(sorted(self._leased_channels))

    @property
    def channels_quarantined(self) -> Tuple[int, ...]:
        """Channels retired after hard failures, never offered again."""
        return tuple(sorted(self._quarantined_channels))

    def alloc_channels(self, count: int) -> ChannelSet:
        """Lease ``count`` pseudo-channels to one serving lane.

        Lanes hold disjoint sets; kernels bound to a lane only touch its
        controllers, so independent operators pipeline across lanes.
        """
        free = self.channels_free
        if count <= 0:
            raise PimAllocationError("channel lease must be positive")
        if count > len(free):
            raise PimAllocationError(
                f"requested {count} channels, only {len(free)} free"
            )
        leased = tuple(free[:count])
        self._leased_channels.update(leased)
        return ChannelSet(leased)

    def release_channels(self, channel_set: ChannelSet) -> None:
        """Return a leased channel set to the pool."""
        for p in channel_set:
            if p not in self._leased_channels:
                raise PimAllocationError(f"channel {p} was not leased")
        self._leased_channels.difference_update(channel_set.channels)

    def quarantine_channels(self, channels: Sequence[int]) -> None:
        """Retire leased channels after a hard failure.

        Quarantined channels are neither leased nor free: they never
        appear in :attr:`channels_free` again, so no future lane can lease
        them.  Only currently-leased channels can be quarantined (the
        failure was observed by the lane holding the lease).
        """
        for p in channels:
            if p not in self._leased_channels:
                raise PimAllocationError(
                    f"channel {p} is not leased; cannot quarantine"
                )
        self._leased_channels.difference_update(channels)
        self._quarantined_channels.update(channels)
        if self.trace_cache is not None:
            for p in channels:
                self.trace_cache.invalidate_channel(p)
        if self.tracer is not None:
            for p in channels:
                self.tracer.event("quarantine", category="driver", channel=p)
        if self.metrics is not None:
            self.metrics.counter(
                "driver.channels.quarantined",
                "channels retired after hard failures",
            ).inc(len(channels))

    def restore_channels(self, channels: Sequence[int]) -> None:
        """Return quarantined channels to the free pool (after repair)."""
        for p in channels:
            if p not in self._quarantined_channels:
                raise PimAllocationError(f"channel {p} is not quarantined")
        self._quarantined_channels.difference_update(channels)

    # -- background scrub ---------------------------------------------------------

    def scrub(self) -> ScrubResult:
        """One scrub pass: walk allocated rows, repair single-bit errors.

        Visits every allocated row set on every healthy channel whose
        banks carry an ECC engine (:class:`~repro.dram.ecc.EccBank`),
        correcting single-bit errors *and* re-encoding their check bytes —
        which is what stops independent single-bit upsets from aging into
        uncorrectable double-bit words.  Uncorrectable locations are
        reported, not raised; plain banks make this a no-op.
        """
        result = ScrubResult()
        rows = sorted(self.allocated_rows())
        if not rows:
            return result
        for pch in range(self.num_channels):
            if pch in self._quarantined_channels:
                continue
            for bank_index, bank in enumerate(self.device.pch(pch).banks):
                scrub_row = getattr(bank, "scrub_row", None)
                if scrub_row is None or bank.is_failed:
                    continue
                for row in rows:
                    words, corrected, uncorrectable = scrub_row(row)
                    if words:
                        result.rows_scanned += 1
                    result.words_checked += words
                    result.corrected += corrected
                    if uncorrectable:
                        result.uncorrectable.append((pch, bank_index, row))
        if self.tracer is not None and result.words_checked:
            self.tracer.event(
                "scrub",
                category="driver",
                rows=result.rows_scanned,
                corrected=result.corrected,
                uncorrectable=result.uncorrectable_words,
            )
        if self.metrics is not None:
            self.metrics.counter(
                "driver.scrub.passes", "background scrub passes"
            ).inc()
            self.metrics.counter(
                "driver.scrub.corrected", "single-bit errors repaired"
            ).inc(result.corrected)
            self.metrics.counter(
                "driver.scrub.uncorrectable", "double-bit words reported"
            ).inc(result.uncorrectable_words)
        return result

    def check_row(self, row: int) -> None:
        """Raise if ``row`` is outside the allocatable PIM region."""
        if row >= self._limit:
            raise PimAllocationError(
                f"row {row} is inside the reserved register region"
            )
