"""The shard-side half of the serving fabric: one process, one device.

:func:`run_worker` is the entry point a :class:`~repro.stack.fabric.PimFabric`
spawns once per shard.  Each worker owns a *complete* platform — a
:class:`~repro.stack.context.PimContext` (hence a full simulated device)
plus a :class:`~repro.stack.server.PimServer` — configured identically to
every other shard.  Identical device shapes matter: the GEMV golden path's
FP16 MAC order depends on the device's channel count, so full-device
replicas keep results bit-exact no matter which shard serves a request
(shards replicate the device, they do not slice it).

The wire protocol is deliberately tiny — picklable tuples over one
``multiprocessing`` pipe, strictly request/reply from the router's side:

* ``("serve", crc32, blob)`` → ``("result", crc32, blob)`` — the blobs
  are pickled payloads guarded by a CRC32 of their bytes, so a payload
  corrupted in transit is *detected* (and replayed) instead of silently
  decoding into wrong results.  With ``ServerConfig.pipe_checksum``
  off, the historical unchecked forms ``("serve", [(rid, Request),
  ...])`` → ``("result", payload)`` are spoken instead; the worker
  answers in whichever dialect the dispatch arrived in.  The payload
  carries per-rid results and outcomes, the round's
  :class:`~repro.stack.profiler.ServingProfile` (request ids rewritten to
  fabric rids, channels/transitions rewritten to the shard's global ids),
  and the round's trace spans/events (rids rewritten likewise).  A serve
  round that fails wholesale replies ``("error", message)`` instead.
* ``("ping",)`` → ``("pong", shard)`` — liveness probe (the router's
  between-rounds heartbeat).
* ``("chaos", spec)`` → ``("chaos-ok", shard)`` — arm one scripted fault
  (see :func:`apply_chaos`): a latency fault before the next serve, a
  dead device channel, scripted bit flips, or next-reply corruption.
* ``("close",)`` → ``("closed", shard)``, then the worker releases its
  device and exits.
* ``("kill",)`` → no reply: the worker drops the connection and dies
  abruptly — the in-process test double for SIGKILL.

Because the loop only touches the connection's ``recv``/``send`` API, the
same function can be driven by a thread over a local pipe pair (how the
unit tests exercise it) or by a real child process (how the fabric runs
it).
"""

from __future__ import annotations

import pickle
import time
import zlib
from typing import Any, Dict, List, Tuple

from ..errors import PimError
from .api import Request, ServerConfig
from .profiler import BreakerTransition, ServingProfile

__all__ = ["apply_chaos", "run_worker", "serve_round"]


def serve_round(ctx, server, shard: int, items: List[Tuple[int, "Request"]]) -> Dict[str, Any]:
    """Serve one batch of ``(rid, Request)`` items; build the reply payload.

    Requests the server refuses at submit time (queue full in ``"block"``
    mode, malformed request) are reported per-rid in ``submit_errors`` —
    the router completes those on the host golden path so the fabric's
    conservation invariant (exactly one terminal outcome per request)
    never depends on a worker's admission policy.
    """
    num_pchs = server.sys.num_pchs
    handles = {}
    rid_of: Dict[int, int] = {}
    submit_errors: Dict[int, str] = {}
    for rid, request in items:
        try:
            handle = server.submit(request)
        except PimError as err:
            submit_errors[rid] = str(err)
        else:
            handles[rid] = handle
            rid_of[handle.request_id] = rid
    profile = server.run()
    _globalise_profile(profile, shard, num_pchs, rid_of)
    payload: Dict[str, Any] = {
        "shard": shard,
        "results": {rid: h.result for rid, h in handles.items()},
        "outcomes": {rid: h.outcome.value for rid, h in handles.items()},
        "submit_errors": submit_errors,
        "profile": profile,
        "spans": [],
        "events": [],
    }
    tracer = getattr(ctx, "tracer", None)
    if tracer is not None:
        for span in tracer.spans:
            span.shard = shard
            internal = span.attrs.get("request_id")
            if internal in rid_of:
                span.attrs["request_id"] = rid_of[internal]
        events = []
        for event in tracer.events:
            attrs = dict(event.attrs)
            internal = attrs.get("request_id")
            if internal in rid_of:
                attrs["request_id"] = rid_of[internal]
            events.append(
                type(event)(
                    name=event.name,
                    at_ns=event.at_ns,
                    category=event.category,
                    parent_id=event.parent_id,
                    lane=event.lane,
                    channel=event.channel,
                    shard=shard,
                    attrs=attrs,
                )
            )
        payload["spans"] = list(tracer.spans)
        payload["events"] = events
        # Each round ships and forgets its trace, so span ids restart at
        # 1 per round; the router offsets them into one global id space.
        tracer.reset()
    return payload


def _globalise_profile(
    profile: ServingProfile,
    shard: int,
    num_pchs: int,
    rid_of: Dict[int, int],
) -> None:
    """Rewrite a shard-local profile into the fabric's global id spaces.

    Request ids become fabric rids, channel indices become
    ``shard * num_pchs + local`` (each shard replicates the device, so
    local channel 0 of shard 2 is a different physical resource than
    local channel 0 of shard 0), and breaker transitions are stamped with
    the shard.
    """
    for stats in profile.requests:
        stats.request_id = rid_of.get(stats.request_id, stats.request_id)
        stats.shard = shard
    base = shard * num_pchs
    profile.channel_busy_cycles = {
        base + p: busy for p, busy in profile.channel_busy_cycles.items()
    }
    profile.quarantined_channels = [
        base + p for p in profile.quarantined_channels
    ]
    profile.breaker_transitions = [
        BreakerTransition(
            lane=t.lane,
            previous=t.previous,
            state=t.state,
            at_ns=t.at_ns,
            shard=shard,
        )
        for t in profile.breaker_transitions
    ]


class _ChaosState:
    """Scripted faults armed on this worker, applied at the next serve."""

    def __init__(self):
        #: Wall-clock stall (seconds) applied before the next serve round
        #: — small values model stragglers (hedge territory), values past
        #: the router's reply timeout model a wedged process.
        self.delay_s: float = 0.0
        #: Corrupt the next result blob *after* its CRC32 was computed,
        #: modelling in-transit pipe corruption the checksum must catch.
        self.corrupt_next_reply: bool = False
        #: Lazily-built seeded injector for device-tier scripted faults.
        self.injector = None


def apply_chaos(ctx, state: _ChaosState, spec: Dict[str, Any]) -> None:
    """Arm one scripted chaos fault on this worker (see ``("chaos", spec)``).

    ``spec`` keys (any subset):

    * ``delay_s`` — stall this many wall-clock seconds before serving the
      next round (straggler when small, wedge when past the router's
      ``reply_timeout_s``); pass ``wedge: True`` alongside to count the
      stall under ``FaultStats.wedges`` instead of ``slowdowns``.
    * ``fail_channel`` — hard-fail one pseudo-channel of this worker's
      device replica (the in-worker ``PimServer`` quarantines and heals).
    * ``bit_flips`` — flip exactly N stored data bits across the
      allocated rows (with ECC armed these are corrected/scrubbed).
    * ``corrupt_reply`` — corrupt the next result payload after
      checksumming, so the router's CRC32 verification must catch it.
    * ``seed`` — seed of the worker's scripted-fault injector (defaults
      to 0; only the first ``chaos`` message builds the injector).
    """
    from ..faults import FaultConfig, FaultInjector

    if state.injector is None:
        system = ctx.system
        state.injector = system.fault_injector or FaultInjector(
            system, FaultConfig(seed=int(spec.get("seed", 0)))
        )
    if "delay_s" in spec:
        state.delay_s = max(0.0, float(spec["delay_s"]))
        if spec.get("wedge"):
            state.injector.stats.wedges += 1
        else:
            state.injector.stats.slowdowns += 1
    if spec.get("corrupt_reply"):
        state.corrupt_next_reply = True
    if "fail_channel" in spec:
        state.injector.fail_channel(int(spec["fail_channel"]))
    if "bit_flips" in spec:
        state.injector.flip_random_bits(int(spec["bit_flips"]))


def _decode_serve(message: Tuple) -> List[Tuple[int, "Request"]]:
    """The (rid, Request) items of one dispatch, CRC-verified when framed.

    Raises ``ValueError`` on a checksum mismatch — the caller reports it
    as an ``("error", ...)`` reply and the router replays the round.
    """
    if len(message) == 3:
        _, crc, blob = message
        if zlib.crc32(blob) != crc:
            raise ValueError(
                "serve dispatch failed its CRC32 check (payload corrupted "
                "in transit)"
            )
        return pickle.loads(blob)
    return message[1]


def run_worker(conn, system_config, server_config: ServerConfig, shard: int) -> None:
    """Serve fabric messages over ``conn`` until closed, killed, or EOF.

    Builds the shard's platform (one ``PimContext`` over
    ``system_config``, one ``PimServer`` over ``server_config``), then
    loops on the protocol described in the module docstring.  Any
    exception a serve round raises is reported as an ``("error", ...)``
    reply — the router reacts by quarantining the shard — rather than
    crashing silently.
    """
    from .context import PimContext  # local: fabric->worker->context cycle

    ctx = PimContext(system_config)
    server = ctx.server(server_config)
    chaos = _ChaosState()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "serve":
                if chaos.delay_s > 0.0:
                    # Scripted straggler/wedge: stall with the round
                    # already on the wire (the adversarial instant).
                    time.sleep(chaos.delay_s)
                    chaos.delay_s = 0.0
                try:
                    items = _decode_serve(message)
                    payload = serve_round(ctx, server, shard, items)
                except Exception as err:  # noqa: BLE001 - shipped to router
                    conn.send(("error", f"{type(err).__name__}: {err}"))
                else:
                    if len(message) == 3:
                        blob = pickle.dumps(
                            payload, protocol=pickle.HIGHEST_PROTOCOL
                        )
                        crc = zlib.crc32(blob)
                        if chaos.corrupt_next_reply:
                            from ..faults import FaultConfig, FaultInjector

                            chaos.corrupt_next_reply = False
                            if chaos.injector is None:
                                chaos.injector = FaultInjector(
                                    ctx.system, FaultConfig(seed=shard)
                                )
                            # CRC was computed on the good bytes; the blob
                            # is corrupted after, modelling the transit
                            # fault the router's check must catch.
                            blob = chaos.injector.corrupt_blob(blob)
                        conn.send(("result", crc, blob))
                    else:
                        conn.send(("result", payload))
            elif kind == "ping":
                conn.send(("pong", shard))
            elif kind == "chaos":
                try:
                    apply_chaos(ctx, chaos, message[1])
                except Exception as err:  # noqa: BLE001 - shipped to router
                    conn.send(("error", f"{type(err).__name__}: {err}"))
                else:
                    conn.send(("chaos-ok", shard))
            elif kind == "kill":
                # Abrupt death on request: no reply, no cleanup handshake.
                break
            elif kind == "close":
                conn.send(("closed", shard))
                break
            else:
                conn.send(("error", f"unknown message {message[0]!r}"))
    finally:
        try:
            ctx.close()
        except PimError:
            pass
        try:
            conn.close()
        except OSError:
            pass
