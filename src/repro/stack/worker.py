"""The shard-side half of the serving fabric: one process, one device.

:func:`run_worker` is the entry point a :class:`~repro.stack.fabric.PimFabric`
spawns once per shard.  Each worker owns a *complete* platform — a
:class:`~repro.stack.context.PimContext` (hence a full simulated device)
plus a :class:`~repro.stack.server.PimServer` — configured identically to
every other shard.  Identical device shapes matter: the GEMV golden path's
FP16 MAC order depends on the device's channel count, so full-device
replicas keep results bit-exact no matter which shard serves a request
(shards replicate the device, they do not slice it).

The wire protocol is deliberately tiny — picklable tuples over one
``multiprocessing`` pipe, strictly request/reply from the router's side:

* ``("serve", [(rid, Request), ...])`` → ``("result", payload)`` where the
  payload carries per-rid results and outcomes, the round's
  :class:`~repro.stack.profiler.ServingProfile` (request ids rewritten to
  fabric rids, channels/transitions rewritten to the shard's global ids),
  and the round's trace spans/events (rids rewritten likewise).  A serve
  round that fails wholesale replies ``("error", message)`` instead.
* ``("ping",)`` → ``("pong", shard)`` — liveness probe.
* ``("close",)`` → ``("closed", shard)``, then the worker releases its
  device and exits.
* ``("kill",)`` → no reply: the worker drops the connection and dies
  abruptly — the in-process test double for SIGKILL.

Because the loop only touches the connection's ``recv``/``send`` API, the
same function can be driven by a thread over a local pipe pair (how the
unit tests exercise it) or by a real child process (how the fabric runs
it).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..errors import PimError
from .api import Request, ServerConfig
from .profiler import BreakerTransition, ServingProfile

__all__ = ["run_worker", "serve_round"]


def serve_round(ctx, server, shard: int, items: List[Tuple[int, "Request"]]) -> Dict[str, Any]:
    """Serve one batch of ``(rid, Request)`` items; build the reply payload.

    Requests the server refuses at submit time (queue full in ``"block"``
    mode, malformed request) are reported per-rid in ``submit_errors`` —
    the router completes those on the host golden path so the fabric's
    conservation invariant (exactly one terminal outcome per request)
    never depends on a worker's admission policy.
    """
    num_pchs = server.sys.num_pchs
    handles = {}
    rid_of: Dict[int, int] = {}
    submit_errors: Dict[int, str] = {}
    for rid, request in items:
        try:
            handle = server.submit(request)
        except PimError as err:
            submit_errors[rid] = str(err)
        else:
            handles[rid] = handle
            rid_of[handle.request_id] = rid
    profile = server.run()
    _globalise_profile(profile, shard, num_pchs, rid_of)
    payload: Dict[str, Any] = {
        "shard": shard,
        "results": {rid: h.result for rid, h in handles.items()},
        "outcomes": {rid: h.outcome.value for rid, h in handles.items()},
        "submit_errors": submit_errors,
        "profile": profile,
        "spans": [],
        "events": [],
    }
    tracer = getattr(ctx, "tracer", None)
    if tracer is not None:
        for span in tracer.spans:
            span.shard = shard
            internal = span.attrs.get("request_id")
            if internal in rid_of:
                span.attrs["request_id"] = rid_of[internal]
        events = []
        for event in tracer.events:
            attrs = dict(event.attrs)
            internal = attrs.get("request_id")
            if internal in rid_of:
                attrs["request_id"] = rid_of[internal]
            events.append(
                type(event)(
                    name=event.name,
                    at_ns=event.at_ns,
                    category=event.category,
                    parent_id=event.parent_id,
                    lane=event.lane,
                    channel=event.channel,
                    shard=shard,
                    attrs=attrs,
                )
            )
        payload["spans"] = list(tracer.spans)
        payload["events"] = events
        # Each round ships and forgets its trace, so span ids restart at
        # 1 per round; the router offsets them into one global id space.
        tracer.reset()
    return payload


def _globalise_profile(
    profile: ServingProfile,
    shard: int,
    num_pchs: int,
    rid_of: Dict[int, int],
) -> None:
    """Rewrite a shard-local profile into the fabric's global id spaces.

    Request ids become fabric rids, channel indices become
    ``shard * num_pchs + local`` (each shard replicates the device, so
    local channel 0 of shard 2 is a different physical resource than
    local channel 0 of shard 0), and breaker transitions are stamped with
    the shard.
    """
    for stats in profile.requests:
        stats.request_id = rid_of.get(stats.request_id, stats.request_id)
        stats.shard = shard
    base = shard * num_pchs
    profile.channel_busy_cycles = {
        base + p: busy for p, busy in profile.channel_busy_cycles.items()
    }
    profile.quarantined_channels = [
        base + p for p in profile.quarantined_channels
    ]
    profile.breaker_transitions = [
        BreakerTransition(
            lane=t.lane,
            previous=t.previous,
            state=t.state,
            at_ns=t.at_ns,
            shard=shard,
        )
        for t in profile.breaker_transitions
    ]


def run_worker(conn, system_config, server_config: ServerConfig, shard: int) -> None:
    """Serve fabric messages over ``conn`` until closed, killed, or EOF.

    Builds the shard's platform (one ``PimContext`` over
    ``system_config``, one ``PimServer`` over ``server_config``), then
    loops on the protocol described in the module docstring.  Any
    exception a serve round raises is reported as an ``("error", ...)``
    reply — the router reacts by quarantining the shard — rather than
    crashing silently.
    """
    from .context import PimContext  # local: fabric->worker->context cycle

    ctx = PimContext(system_config)
    server = ctx.server(server_config)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "serve":
                try:
                    payload = serve_round(ctx, server, shard, message[1])
                except Exception as err:  # noqa: BLE001 - shipped to router
                    conn.send(("error", f"{type(err).__name__}: {err}"))
                else:
                    conn.send(("result", payload))
            elif kind == "ping":
                conn.send(("pong", shard))
            elif kind == "kill":
                # Abrupt death on request: no reply, no cleanup handshake.
                break
            elif kind == "close":
                conn.send(("closed", shard))
                break
            else:
                conn.send(("error", f"unknown message {message[0]!r}"))
    finally:
        try:
            ctx.close()
        except PimError:
            pass
        try:
            conn.close()
        except OSError:
            pass
