"""The shard-side half of the serving fabric: one process, one device.

:func:`run_worker` is the entry point a :class:`~repro.stack.fabric.PimFabric`
spawns once per shard.  Each worker owns a *complete* platform — a
:class:`~repro.stack.context.PimContext` (hence a full simulated device)
plus a :class:`~repro.stack.server.PimServer` — configured identically to
every other shard.  Identical device shapes matter: the GEMV golden path's
FP16 MAC order depends on the device's channel count, so full-device
replicas keep results bit-exact no matter which shard serves a request
(shards replicate the device, they do not slice it).

The wire protocol is deliberately tiny — picklable tuples over one
``multiprocessing`` pipe, strictly request/reply from the router's side:

* ``("serve", crc32, blob)`` → ``("result", crc32, blob)`` — the blobs
  are pickled payloads guarded by a CRC32 of their bytes, so a payload
  corrupted in transit is *detected* (and replayed) instead of silently
  decoding into wrong results.  With ``ServerConfig.pipe_checksum``
  off, the historical unchecked forms ``("serve", [(rid, Request),
  ...])`` → ``("result", payload)`` are spoken instead; the worker
  answers in whichever dialect the dispatch arrived in.  The payload
  carries per-rid results and outcomes, the round's
  :class:`~repro.stack.profiler.ServingProfile` (request ids rewritten to
  fabric rids, channels/transitions rewritten to the shard's global ids),
  and the round's trace spans/events (rids rewritten likewise).  A serve
  round that fails wholesale replies ``("error", message)`` instead.
* ``("ping",)`` → ``("pong", shard)`` — liveness probe (the router's
  between-rounds heartbeat).
* ``("chaos", spec)`` → ``("chaos-ok", shard)`` — arm one scripted fault
  (see :func:`apply_chaos`): a latency fault before the next serve, a
  dead device channel, scripted bit flips, or next-reply corruption.
* ``("close",)`` → ``("closed", shard)``, then the worker releases its
  device and exits.
* ``("kill",)`` → no reply: the worker drops the connection and dies
  abruptly — the in-process test double for SIGKILL.

Because the loop only touches the connection's ``recv``/``send`` API, the
same function can be driven by a thread over a local pipe pair (how the
unit tests exercise it) or by a real child process (how the fabric runs
it).
"""

from __future__ import annotations

import pickle
import time
import zlib
from typing import Any, Dict, List, Optional, Tuple

from ..errors import PimError
from .api import Request, ServerConfig
from .profiler import BreakerTransition, ServingProfile
from .shm import (
    ResultWriter,
    SegmentCache,
    WeightStore,
    WireRequest,
    as_wire_array,
    decode_request,
)

__all__ = ["apply_chaos", "run_worker", "serve_round"]


def serve_round(ctx, server, shard: int, items: List[Tuple[int, "Request"]]) -> Dict[str, Any]:
    """Serve one batch of ``(rid, Request)`` items; build the reply payload.

    Requests the server refuses at submit time (queue full in ``"block"``
    mode, malformed request) are reported per-rid in ``submit_errors`` —
    the router completes those on the host golden path so the fabric's
    conservation invariant (exactly one terminal outcome per request)
    never depends on a worker's admission policy.
    """
    num_pchs = server.sys.num_pchs
    handles = {}
    rid_of: Dict[int, int] = {}
    submit_errors: Dict[int, str] = {}
    for rid, request in items:
        try:
            handle = server.submit(request)
        except PimError as err:
            submit_errors[rid] = str(err)
        else:
            handles[rid] = handle
            rid_of[handle.request_id] = rid
    profile = server.run()
    _globalise_profile(profile, shard, num_pchs, rid_of)
    payload: Dict[str, Any] = {
        "shard": shard,
        # as_wire_array is the blessed layout choke point: results leave
        # the worker C-contiguous exactly once, here, instead of being
        # re-normalised (or re-copied by pickle) per transport path —
        # zero-length and Fortran-ordered results included.
        "results": {
            rid: None if h.result is None else as_wire_array(h.result)
            for rid, h in handles.items()
        },
        "outcomes": {rid: h.outcome.value for rid, h in handles.items()},
        "submit_errors": submit_errors,
        "profile": profile,
        "spans": [],
        "events": [],
    }
    tracer = getattr(ctx, "tracer", None)
    if tracer is not None:
        for span in tracer.spans:
            span.shard = shard
            internal = span.attrs.get("request_id")
            if internal in rid_of:
                span.attrs["request_id"] = rid_of[internal]
        events = []
        for event in tracer.events:
            attrs = dict(event.attrs)
            internal = attrs.get("request_id")
            if internal in rid_of:
                attrs["request_id"] = rid_of[internal]
            events.append(
                type(event)(
                    name=event.name,
                    at_ns=event.at_ns,
                    category=event.category,
                    parent_id=event.parent_id,
                    lane=event.lane,
                    channel=event.channel,
                    shard=shard,
                    attrs=attrs,
                )
            )
        payload["spans"] = list(tracer.spans)
        payload["events"] = events
        # Each round ships and forgets its trace, so span ids restart at
        # 1 per round; the router offsets them into one global id space.
        tracer.reset()
    return payload


def _globalise_profile(
    profile: ServingProfile,
    shard: int,
    num_pchs: int,
    rid_of: Dict[int, int],
) -> None:
    """Rewrite a shard-local profile into the fabric's global id spaces.

    Request ids become fabric rids, channel indices become
    ``shard * num_pchs + local`` (each shard replicates the device, so
    local channel 0 of shard 2 is a different physical resource than
    local channel 0 of shard 0), and breaker transitions are stamped with
    the shard.
    """
    for stats in profile.requests:
        stats.request_id = rid_of.get(stats.request_id, stats.request_id)
        stats.shard = shard
    base = shard * num_pchs
    profile.channel_busy_cycles = {
        base + p: busy for p, busy in profile.channel_busy_cycles.items()
    }
    profile.quarantined_channels = [
        base + p for p in profile.quarantined_channels
    ]
    profile.breaker_transitions = [
        BreakerTransition(
            lane=t.lane,
            previous=t.previous,
            state=t.state,
            at_ns=t.at_ns,
            shard=shard,
        )
        for t in profile.breaker_transitions
    ]


class _ChaosState:
    """Scripted faults armed on this worker, applied at the next serve."""

    def __init__(self):
        #: Wall-clock stall (seconds) applied before the next serve round
        #: — small values model stragglers (hedge territory), values past
        #: the router's reply timeout model a wedged process.
        self.delay_s: float = 0.0
        #: Corrupt the next result blob *after* its CRC32 was computed,
        #: modelling in-transit pipe corruption the checksum must catch.
        self.corrupt_next_reply: bool = False
        #: Corrupt a shared-memory result frame of the next serve round
        #: *after* the control payload (descriptors included) was built
        #: and CRC'd, so the router's per-descriptor CRC32 — not the
        #: control-blob checksum — must catch it.  Under the pipe
        #: transport (no shm frames exist) this degrades to
        #: ``corrupt_next_reply`` behaviour, keeping chaos schedules
        #: transport-portable.
        self.corrupt_next_shm: bool = False
        #: Lazily-built seeded injector for device-tier scripted faults.
        self.injector = None


def apply_chaos(ctx, state: _ChaosState, spec: Dict[str, Any]) -> None:
    """Arm one scripted chaos fault on this worker (see ``("chaos", spec)``).

    ``spec`` keys (any subset):

    * ``delay_s`` — stall this many wall-clock seconds before serving the
      next round (straggler when small, wedge when past the router's
      ``reply_timeout_s``); pass ``wedge: True`` alongside to count the
      stall under ``FaultStats.wedges`` instead of ``slowdowns``.
    * ``fail_channel`` — hard-fail one pseudo-channel of this worker's
      device replica (the in-worker ``PimServer`` quarantines and heals).
    * ``bit_flips`` — flip exactly N stored data bits across the
      allocated rows (with ECC armed these are corrected/scrubbed).
    * ``corrupt_reply`` — corrupt the next result payload after
      checksumming, so the router's CRC32 verification must catch it.
    * ``corrupt_shm`` — corrupt a shared-memory result frame of the next
      serve round after the reply was checksummed, so the router's
      per-descriptor CRC32 must catch it (falls back to
      ``corrupt_reply`` behaviour under the pipe transport, or when the
      round shipped nothing through shared memory).
    * ``seed`` — seed of the worker's scripted-fault injector (defaults
      to 0; only the first ``chaos`` message builds the injector).
    """
    from ..faults import FaultConfig, FaultInjector

    if state.injector is None:
        system = ctx.system
        state.injector = system.fault_injector or FaultInjector(
            system, FaultConfig(seed=int(spec.get("seed", 0)))
        )
    if "delay_s" in spec:
        state.delay_s = max(0.0, float(spec["delay_s"]))
        if spec.get("wedge"):
            state.injector.stats.wedges += 1
        else:
            state.injector.stats.slowdowns += 1
    if spec.get("corrupt_reply"):
        state.corrupt_next_reply = True
    if spec.get("corrupt_shm"):
        state.corrupt_next_shm = True
    if "fail_channel" in spec:
        state.injector.fail_channel(int(spec["fail_channel"]))
    if "bit_flips" in spec:
        state.injector.flip_random_bits(int(spec["bit_flips"]))


def _decode_serve(message: Tuple) -> List[Tuple[int, "Request"]]:
    """The (rid, Request) items of one dispatch, CRC-verified when framed.

    Raises ``ValueError`` on a checksum mismatch — the caller reports it
    as an ``("error", ...)`` reply and the router replays the round.
    """
    if len(message) == 3:
        _, crc, blob = message
        if zlib.crc32(blob) != crc:
            raise ValueError(
                "serve dispatch failed its CRC32 check (payload corrupted "
                "in transit)"
            )
        return pickle.loads(blob)
    return message[1]


def run_worker(
    conn,
    system_config,
    server_config: ServerConfig,
    shard: int,
    transport_spec: Optional[Dict[str, Any]] = None,
) -> None:
    """Serve fabric messages over ``conn`` until closed, killed, or EOF.

    Builds the shard's platform (one ``PimContext`` over
    ``system_config``, one ``PimServer`` over ``server_config``), then
    loops on the protocol described in the module docstring.  Any
    exception a serve round raises is reported as an ``("error", ...)``
    reply — the router reacts by quarantining the shard — rather than
    crashing silently.

    Under ``server_config.transport == "shm"`` the router passes a
    ``transport_spec`` (``{"result_segment": name, "result_bytes": n}``)
    naming the router-owned segment this worker writes results into;
    dispatched items arrive as :class:`~repro.stack.shm.WireRequest`
    descriptors, staged weights are cached in a per-worker
    :class:`~repro.stack.shm.WeightStore`, and the reply reports the
    store's hit/miss/eviction deltas (plus evicted digests) so the
    router's residency map tracks reality.  The worker only *attaches*
    to segments — it owns and unlinks nothing, so even a SIGKILLed
    worker cannot leak a ``/dev/shm`` entry.
    """
    from .context import PimContext  # local: fabric->worker->context cycle

    ctx = PimContext(system_config)
    server = ctx.server(server_config)
    chaos = _ChaosState()
    segments = writer = store = None
    if server_config.transport == "shm" and transport_spec is not None:
        segments = SegmentCache()
        store = WeightStore(server_config.weight_store_mb)
        writer = ResultWriter(
            segments,
            transport_spec["result_segment"],
            transport_spec["result_bytes"],
            inline_bytes=server_config.shm_inline_bytes,
        )
    # Last-reported cumulative (hits, misses, evictions): replies carry
    # deltas, so the router can sum across rounds and respawns without
    # double counting.
    reported = [0, 0, 0]

    def decode_items(items):
        return [
            (rid, decode_request(w, segments, store))
            if isinstance(w, WireRequest) else (rid, w)
            for rid, w in items
        ]

    def encode_payload(payload):
        writer.reset()
        payload["results"] = {
            rid: writer.write(array)
            for rid, array in payload["results"].items()
        }
        counts = (store.hits, store.misses, store.evictions)
        payload["weight_store"] = {
            "hits": counts[0] - reported[0],
            "misses": counts[1] - reported[1],
            "evictions": counts[2] - reported[2],
            "resident_bytes": store.resident_bytes(),
            "evicted": store.drain_evicted(),
        }
        reported[:] = counts
        return payload

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "serve":
                if chaos.delay_s > 0.0:
                    # Scripted straggler/wedge: stall with the round
                    # already on the wire (the adversarial instant).
                    time.sleep(chaos.delay_s)
                    chaos.delay_s = 0.0
                try:
                    items = _decode_serve(message)
                    if writer is not None:
                        items = decode_items(items)
                    payload = serve_round(ctx, server, shard, items)
                    if writer is not None:
                        payload = encode_payload(payload)
                except Exception as err:  # noqa: BLE001 - shipped to router
                    conn.send(("error", f"{type(err).__name__}: {err}"))
                else:
                    if len(message) == 3:
                        blob = pickle.dumps(
                            payload, protocol=pickle.HIGHEST_PROTOCOL
                        )
                        crc = zlib.crc32(blob)
                        if chaos.corrupt_next_reply or chaos.corrupt_next_shm:
                            from ..faults import FaultConfig, FaultInjector

                            if chaos.injector is None:
                                chaos.injector = FaultInjector(
                                    ctx.system, FaultConfig(seed=shard)
                                )
                        if chaos.corrupt_next_shm:
                            # Strike the shared-memory frames, not the
                            # control blob: its CRC stays valid, so only
                            # the router's per-descriptor check can
                            # catch this.  Degrades to blob corruption
                            # when no frame was written (pipe transport,
                            # or an all-inline round).
                            chaos.corrupt_next_shm = False
                            if writer is None or not writer.corrupt_last_round(
                                chaos.injector
                            ):
                                blob = chaos.injector.corrupt_blob(blob)
                        if chaos.corrupt_next_reply:
                            chaos.corrupt_next_reply = False
                            # CRC was computed on the good bytes; the blob
                            # is corrupted after, modelling the transit
                            # fault the router's check must catch.
                            blob = chaos.injector.corrupt_blob(blob)
                        conn.send(("result", crc, blob))
                    else:
                        conn.send(("result", payload))
            elif kind == "ping":
                conn.send(("pong", shard))
            elif kind == "chaos":
                try:
                    apply_chaos(ctx, chaos, message[1])
                except Exception as err:  # noqa: BLE001 - shipped to router
                    conn.send(("error", f"{type(err).__name__}: {err}"))
                else:
                    conn.send(("chaos-ok", shard))
            elif kind == "kill":
                # Abrupt death on request: no reply, no cleanup handshake.
                break
            elif kind == "close":
                conn.send(("closed", shard))
                break
            else:
                conn.send(("error", f"unknown message {message[0]!r}"))
    finally:
        if segments is not None:
            # Drop attachments only — the router owns every segment and
            # keeps sole unlink duty (the cleanup invariant).
            segments.close()
        try:
            ctx.close()
        except PimError:
            pass
        try:
            conn.close()
        except OSError:
            pass
