"""Deterministic fault injection for the PIM model.

The paper argues (Section VIII) that the architecture is ECC-ready because
PIM units access data at host granularity; this package provides the other
half of that claim's evidence — a way to *create* the faults the ECC path
and the self-healing serving layer must survive.  Configure a
:class:`FaultConfig` on :class:`~repro.stack.runtime.SystemConfig` and the
assembled system carries a seeded :class:`FaultInjector` that flips stored
bits, corrupts register files, and hard-fails whole pseudo-channels.
"""

from .injector import FaultConfig, FaultInjector, FaultStats

__all__ = ["FaultConfig", "FaultInjector", "FaultStats"]
