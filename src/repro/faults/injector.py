"""Seeded fault injection across banks, ECC arrays, and register files.

All randomness flows from one ``numpy`` generator seeded by
:attr:`FaultConfig.seed`, and every walk iterates channels, banks, and
rows in sorted order — two systems built from the same config and driven
by the same workload observe byte-identical fault patterns, which is what
lets the self-healing tests assert bit-exact recovery deterministically.

Three fault classes are modelled:

* **storage bit flips** — stored data bits (and, separately, ECC check
  bits) of *allocated, materialised* rows flip with a per-bit-per-epoch
  probability.  With :class:`~repro.dram.ecc.EccBank` banks these are the
  events SEC-DED corrects (single) or detects (double).
* **register faults** — a GRF/SRF/CRF word of one execution unit is
  corrupted.  CRF corruption also invalidates the runtime's
  microkernel-broadcast cache, modelling the driver re-broadcasting the
  program after detecting an instruction-buffer upset.
* **channel hard failure** — every bank of a pseudo-channel starts
  raising :class:`~repro.errors.PimChannelError` on data access,
  modelling a dead channel the serving layer must quarantine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..errors import PimChannelError

__all__ = ["FaultConfig", "FaultInjector", "FaultStats"]


@dataclass(frozen=True)
class FaultConfig:
    """The fault model of one system, set on ``SystemConfig.faults``.

    Rates are per-bit (storage) or per-unit (registers) probabilities per
    injection epoch; the serving engine runs one epoch between batches.
    """

    #: Per stored data bit, per epoch, probability of flipping.
    bit_flip_rate: float = 0.0
    #: Per stored ECC check bit, per epoch, probability of flipping.
    check_flip_rate: float = 0.0
    #: Per execution unit, per epoch, probability of one register upset.
    register_fault_rate: float = 0.0
    #: Pseudo-channels hard-failed at system construction.
    failed_channels: Tuple[int, ...] = ()
    #: Seed of the injector's random generator.
    seed: int = 0

    @property
    def active(self) -> bool:
        """Whether this config injects any fault at all."""
        return bool(
            self.bit_flip_rate > 0.0
            or self.check_flip_rate > 0.0
            or self.register_fault_rate > 0.0
            or self.failed_channels
        )


@dataclass
class FaultStats:
    """Running counts of everything an injector has done."""

    bit_flips: int = 0
    check_flips: int = 0
    register_faults: int = 0
    crf_faults: int = 0
    channels_failed: List[int] = field(default_factory=list)
    epochs: int = 0
    # -- worker-tier / latency fault classes (the chaos harness drives
    #    these through the fabric's worker protocol; see repro.chaos) --
    # Pipe payloads corrupted in transit (caught by the CRC32 check).
    pipe_corruptions: int = 0
    # Shared-memory result frames corrupted in place (caught by the
    # router's per-descriptor CRC32 check; see repro.stack.shm).
    shm_corruptions: int = 0
    # Serve rounds stalled past the router's reply timeout (wedges) or
    # delayed long enough to trip the straggler hedge (slowdowns).
    wedges: int = 0
    slowdowns: int = 0

    @property
    def total(self) -> int:
        """All injected faults (flips + register upsets + dead channels)."""
        return (
            self.bit_flips
            + self.check_flips
            + self.register_faults
            + len(self.channels_failed)
            + self.pipe_corruptions
            + self.shm_corruptions
            + self.wedges
            + self.slowdowns
        )


class FaultInjector:
    """Applies a :class:`FaultConfig` to a live system, deterministically.

    Constructed by :class:`~repro.stack.runtime.PimSystem` when its config
    carries an active fault model; ``config.failed_channels`` are failed
    immediately, while bit flips and register faults are injected one
    epoch at a time by :meth:`tick` (the serving engine calls it between
    batches).
    """

    def __init__(self, system, config: FaultConfig):
        self.sys = system
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.stats = FaultStats()
        for pch in config.failed_channels:
            self.fail_channel(pch)

    # -- hard failures ----------------------------------------------------------

    def fail_channel(self, pch: int) -> None:
        """Hard-fail one pseudo-channel: every data access raises."""
        if not 0 <= pch < self.sys.num_pchs:
            raise PimChannelError(
                f"cannot fail channel {pch}: device has {self.sys.num_pchs}",
                channels=(pch,),
            )
        for bank in self.sys.device.pch(pch).banks:
            bank.fail(pch)
        self._invalidate_traces(pch)
        if pch not in self.stats.channels_failed:
            self.stats.channels_failed.append(pch)

    def _invalidate_traces(self, pch: int) -> None:
        """Drop a channel's compiled traces (exec_mode="fused") on faults
        that could otherwise pair a cached dataflow with corrupted state.

        Content-keyed caching already makes stale-program replay
        impossible (a flipped CRF word changes the key); this models the
        driver additionally dropping the channel's compiled traces with
        its broadcast cache, keeping the bounded cache free of entries
        for programs that will never run again.
        """
        cache = getattr(self.sys, "_trace_cache", None)
        if cache is not None:
            cache.invalidate_channel(pch)

    def is_failed(self, pch: int) -> bool:
        """Whether channel ``pch`` has been hard-failed."""
        return pch in self.stats.channels_failed

    # -- soft faults ------------------------------------------------------------

    def tick(self) -> int:
        """Run one injection epoch; returns the number of new faults."""
        before = self.stats.total
        self.inject_storage_faults()
        self.corrupt_registers()
        self.stats.epochs += 1
        return self.stats.total - before

    def _allocated_rows(self) -> List[int]:
        driver = getattr(self.sys, "driver", None)
        if driver is None:
            return []
        return sorted(driver.allocated_rows())

    def inject_storage_faults(self) -> int:
        """Flip stored data/check bits of allocated rows; returns count.

        Only rows both *allocated* by the driver and *materialised* in a
        bank's sparse store are eligible — an unallocated or never-written
        row holds no live data, so a flip there could never be observed.
        """
        cfg = self.config
        if cfg.bit_flip_rate <= 0.0 and cfg.check_flip_rate <= 0.0:
            return 0
        allocated = set(self._allocated_rows())
        if not allocated:
            return 0
        flipped = 0
        for pch in range(self.sys.num_pchs):
            if self.is_failed(pch):
                continue
            for bank in self.sys.device.pch(pch).banks:
                rows = sorted(set(bank.materialized_rows()) & allocated)
                row_bits = bank.config.row_bytes * 8
                for row in rows:
                    if cfg.bit_flip_rate > 0.0:
                        count = int(self.rng.binomial(row_bits, cfg.bit_flip_rate))
                        for bit in self.rng.integers(0, row_bits, size=count):
                            bank.flip_bit(row, int(bit))
                        self.stats.bit_flips += count
                        flipped += count
                    if cfg.check_flip_rate > 0.0 and hasattr(bank, "flip_check_bit"):
                        # One check byte per 8-byte word: row_bytes check bits.
                        check_bits = bank.config.row_bytes
                        count = int(
                            self.rng.binomial(check_bits, cfg.check_flip_rate)
                        )
                        for bit in self.rng.integers(0, check_bits, size=count):
                            bank.flip_check_bit(row, int(bit))
                        self.stats.check_flips += count
                        flipped += count
        return flipped

    def flip_random_bits(self, count: int) -> int:
        """Flip exactly ``count`` stored data bits, scripted-chaos style.

        Unlike the rate-driven :meth:`inject_storage_faults`, this is the
        deterministic "flip N bits *now*" primitive the chaos harness
        schedules at a simulated instant.  Targets are drawn (seeded)
        from the allocated, materialised rows — the same eligibility rule
        as the rate path; returns the number of bits actually flipped
        (0 when no live row exists to strike).
        """
        allocated = set(self._allocated_rows())
        targets = []
        for pch in range(self.sys.num_pchs):
            if self.is_failed(pch):
                continue
            for bank in self.sys.device.pch(pch).banks:
                for row in sorted(set(bank.materialized_rows()) & allocated):
                    targets.append((bank, row))
        if not targets:
            return 0
        flipped = 0
        for _ in range(int(count)):
            bank, row = targets[int(self.rng.integers(0, len(targets)))]
            bit = int(self.rng.integers(0, bank.config.row_bytes * 8))
            bank.flip_bit(row, bit)
            self.stats.bit_flips += 1
            flipped += 1
        return flipped

    def corrupt_blob(self, blob: bytes) -> bytes:
        """Flip one seeded bit of a pipe payload (latency-tier fault).

        Models in-transit corruption of a worker<->router message: the
        CRC32 the sender computed no longer matches, so the receiver's
        checksum verification must catch it (see
        :mod:`repro.stack.fabric`).  Counts under
        ``stats.pipe_corruptions``.
        """
        corrupted = bytearray(blob)
        if corrupted:
            index = int(self.rng.integers(0, len(corrupted)))
            corrupted[index] ^= 1 << int(self.rng.integers(0, 8))
        self.stats.pipe_corruptions += 1
        return bytes(corrupted)

    def corrupt_shm(self, view: memoryview) -> None:
        """Flip one seeded bit of a shared-memory frame, in place.

        Models in-segment corruption of a result tensor *after* the
        reply's control payload (descriptor CRCs included) was built and
        checksummed — the control blob still verifies, so only the
        router's per-descriptor CRC32 check (see
        :meth:`repro.stack.shm.SegmentCache.read`) can catch it.  Counts
        under ``stats.shm_corruptions``.
        """
        if len(view):
            index = int(self.rng.integers(0, len(view)))
            view[index] ^= 1 << int(self.rng.integers(0, 8))
        self.stats.shm_corruptions += 1

    def corrupt_registers(self) -> int:
        """Corrupt one register word per struck execution unit.

        A CRF upset additionally invalidates the runtime's per-channel
        microkernel cache (``system._crf_loaded``): the driver detects the
        instruction-buffer corruption and re-broadcasts the program before
        the next launch, so a corrupted kernel never executes silently.
        """
        rate = self.config.register_fault_rate
        if rate <= 0.0:
            return 0
        struck = 0
        for pch in range(self.sys.num_pchs):
            if self.is_failed(pch):
                continue
            for unit in self.sys.device.pch(pch).units:
                if self.rng.random() >= rate:
                    continue
                regs = unit.regs
                kind = ("crf", "grf", "srf")[int(self.rng.integers(0, 3))]
                if kind == "crf":
                    index = int(self.rng.integers(0, len(regs.crf)))
                    bit = int(self.rng.integers(0, 32))
                    regs.flip_bit("crf", index, bit)
                    loaded = getattr(self.sys, "_crf_loaded", None)
                    if loaded is not None:
                        loaded.pop(pch, None)
                    self._invalidate_traces(pch)
                    self.stats.crf_faults += 1
                elif kind == "grf":
                    half = ("grf_a", "grf_b")[int(self.rng.integers(0, 2))]
                    array = getattr(regs, half)
                    index = int(self.rng.integers(0, array.shape[0]))
                    bit = int(self.rng.integers(0, array.shape[1] * 16))
                    regs.flip_bit(half, index, bit)
                else:
                    half = ("srf_m", "srf_a")[int(self.rng.integers(0, 2))]
                    array = getattr(regs, half)
                    index = int(self.rng.integers(0, array.shape[0]))
                    bit = int(self.rng.integers(0, 16))
                    regs.flip_bit(half, index, bit)
                self.stats.register_faults += 1
                struck += 1
        return struck
