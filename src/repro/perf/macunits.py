"""MAC-unit area/energy model for Table I.

The paper reports relative area and energy/op of MAC units implemented in a
20nm DRAM process (normalised to an INT16 MAC with a 48-bit accumulator) and
uses the comparison to justify choosing FP16 over BFLOAT16/FP32/INT.

We model a MAC unit structurally:

* an integer/significand multiplier array ~ ``mul_bits^2``,
* an accumulate adder and register ~ ``acc_bits``,
* for floating point: exponent logic ~ ``exp_bits``, plus alignment /
  normalisation shifters and rounding ~ ``sig_bits``.

The component coefficients cannot be derived from first principles (they are
silicon measurements), so they are **fitted to the paper's own Table I** —
the model then decomposes the totals into components and extrapolates to
formats the paper did not build (exposed for the ablation bench).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = ["MacUnitSpec", "MacUnitModel", "PAPER_TABLE1", "TABLE1_SPECS"]


@dataclass(frozen=True)
class MacUnitSpec:
    """One MAC-unit configuration.

    ``sig_bits`` is the significand width including the hidden bit for FP
    formats, or the full operand width for integer formats (``exp_bits=0``).
    """

    name: str
    sig_bits: int
    exp_bits: int
    acc_bits: int

    @property
    def is_float(self) -> bool:
        return self.exp_bits > 0


TABLE1_SPECS = (
    MacUnitSpec("INT16 (w/ 48-bit Acc.)", sig_bits=16, exp_bits=0, acc_bits=48),
    MacUnitSpec("INT8 (w/ 48-bit Acc.)", sig_bits=8, exp_bits=0, acc_bits=48),
    MacUnitSpec("INT8 (w/ 32-bit Acc.)", sig_bits=8, exp_bits=0, acc_bits=32),
    MacUnitSpec("FP16", sig_bits=11, exp_bits=5, acc_bits=11),
    MacUnitSpec("BFLOAT16", sig_bits=8, exp_bits=8, acc_bits=8),
    MacUnitSpec("FP32", sig_bits=24, exp_bits=8, acc_bits=24),
)

# Table I of the paper (normalised to INT16 w/ 48-bit accumulator).
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    "INT16 (w/ 48-bit Acc.)": {"area": 1.00, "energy": 1.00},
    "INT8 (w/ 48-bit Acc.)": {"area": 0.45, "energy": 0.81},
    "INT8 (w/ 32-bit Acc.)": {"area": 0.35, "energy": 0.77},
    "FP16": {"area": 1.32, "energy": 1.21},
    "BFLOAT16": {"area": 1.15, "energy": 1.04},
    "FP32": {"area": 3.96, "energy": 1.34},
}


class MacUnitModel:
    """Structural area/energy model fitted to the paper's silicon data."""

    def __init__(self) -> None:
        self._area_coeffs = self._fit("area")
        self._energy_coeffs = self._fit("energy")

    @staticmethod
    def _features(spec: MacUnitSpec, metric: str) -> np.ndarray:
        """Structural feature vector of one MAC configuration.

        Area scales with datapath structure (no fixed cost).  Energy per op
        additionally has a format-independent clocking/control/register term
        that dominates the integer rows of Table I (shrinking the multiplier
        4x only saves ~19% energy), and a per-format floating-point tax for
        the align/normalise/round datapath.
        """
        fp = 1.0 if spec.is_float else 0.0
        if metric == "area":
            shifter = (
                spec.sig_bits * max(1.0, math.log2(spec.sig_bits))
                if spec.is_float
                else 0.0
            )
            return np.array(
                [
                    0.0,
                    spec.sig_bits**2,  # multiplier array
                    spec.acc_bits,  # accumulate adder + register
                    float(spec.exp_bits),  # exponent datapath
                    shifter,  # align/normalise shifters + rounding
                ]
            )
        return np.array(
            [
                1.0,  # clocking / control / pipeline registers
                spec.sig_bits**2,  # multiplier switching
                spec.acc_bits,  # accumulator switching
                fp * spec.sig_bits**2,  # FP align/normalise datapath
                fp,  # FP control overhead
            ]
        )

    def _fit(self, metric: str) -> np.ndarray:
        from scipy.optimize import nnls

        rows = np.stack([self._features(s, metric) for s in TABLE1_SPECS])
        targets = np.array([PAPER_TABLE1[s.name][metric] for s in TABLE1_SPECS])
        coeffs, _ = nnls(rows, targets)
        return coeffs

    def area(self, spec: MacUnitSpec) -> float:
        """Relative area (INT16/48 == fitted ~1.0)."""
        return float(self._features(spec, "area") @ self._area_coeffs)

    def energy_per_op(self, spec: MacUnitSpec) -> float:
        """Relative energy per MAC operation."""
        return float(self._features(spec, "energy") @ self._energy_coeffs)

    def normalised_table(self) -> Dict[str, Dict[str, float]]:
        """Model outputs normalised to the INT16/48 row, like Table I."""
        base_area = self.area(TABLE1_SPECS[0])
        base_energy = self.energy_per_op(TABLE1_SPECS[0])
        return {
            spec.name: {
                "area": self.area(spec) / base_area,
                "energy": self.energy_per_op(spec) / base_energy,
            }
            for spec in TABLE1_SPECS
        }

    def breakdown(self, spec: MacUnitSpec) -> Dict[str, float]:
        """Per-component area contribution (multiplier/acc/exponent/shift)."""
        names = ("constant", "multiplier", "accumulator", "exponent", "shift_round")
        contributions = self._features(spec, "area") * self._area_coeffs
        return dict(zip(names, contributions.tolist()))
