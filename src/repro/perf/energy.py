"""Power and energy models (Figs. 11, 12 and 13).

**Fig. 11 — device power breakdown.**  The paper measures HBM vs PIM-HBM
power over back-to-back reads at 2.4 Gbps and finds PIM-HBM draws only
+5.4% while moving 4x the data on chip.  We model the device as four
components whose streaming-power fractions are calibrated to that result:

* *cell* and *IOSA/decoders* scale with bank-level activity (x4 in AB-PIM),
* the *internal global I/O bus* power disappears in AB-PIM (data stops at
  the bank I/O boundary),
* the *I/O PHY* keeps a residual ~10% toggle (the buffer die's 1024-bit
  interface the paper notes could be gated for another ~10% saving),
* the *PIM execution units* add their own draw.

**Fig. 12 — system power & energy.**  System power is processor + memory.
The processor burns ``stall_w`` while blocked on memory (all CUs spinning),
scales toward ``peak_w`` with compute utilisation, and drops to
``issue_w`` in PIM phases where a handful of thread groups drive commands
and the remaining CUs are idle-gated.  PROC-HBMx4 is the paper's
hypothetical 4x-bandwidth system: memory power and bandwidth both scale 4x,
so memory-bound efficiency stays roughly flat.

**Fig. 13 — DS2 power over time.**  The layer walk of the latency model
yields a (time, power) trace for each platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..apps.layers import Add, Bn, Conv, Fc, HostWork, Layer, Lstm
from ..apps.models import AppModel
from .latency import PIM_HBM, PROC_HBM, LatencyModel, SystemPerf

__all__ = [
    "DevicePowerModel",
    "SystemPowerParams",
    "EnergyModel",
    "PowerPhase",
]


@dataclass(frozen=True)
class DevicePowerModel:
    """Component power fractions of one (PIM-)HBM device.

    Fractions are of the *HBM streaming* total (back-to-back reads at
    2.4 Gbps, 85C, random FP16 data — the Fig. 11 operating point).
    """

    cell: float = 0.08
    iosa: float = 0.12
    global_bus: float = 0.45
    io_phy: float = 0.35
    # AB-PIM residuals and additions.
    bank_activity_factor: float = 4.0  # 8 banks at half cadence
    bus_residual: float = 0.045  # control/command distribution
    phy_residual: float = 0.10  # buffer-die 1024-bit I/O toggle
    pim_units: float = 0.109

    def hbm_breakdown(self) -> Dict[str, float]:
        """Streaming-read power by component (sums to 1.0)."""
        return {
            "cell": self.cell,
            "iosa_decoders": self.iosa,
            "global_bus": self.global_bus,
            "io_phy": self.io_phy,
            "pim_units": 0.0,
        }

    def pim_breakdown(self) -> Dict[str, float]:
        """AB-PIM power by component, relative to HBM streaming == 1.0."""
        k = self.bank_activity_factor
        return {
            "cell": self.cell * k,
            "iosa_decoders": self.iosa * k,
            "global_bus": self.bus_residual,
            "io_phy": self.phy_residual,
            "pim_units": self.pim_units,
        }

    @property
    def pim_total(self) -> float:
        """Total AB-PIM power relative to HBM streaming (paper: 1.054)."""
        return sum(self.pim_breakdown().values())

    @property
    def energy_per_bit_reduction(self) -> float:
        """PIM moves ``bank_activity_factor`` x the bits at ``pim_total`` x
        the power (paper: 3.5x lower energy per bit)."""
        return self.bank_activity_factor / self.pim_total

    @property
    def gated_buffer_saving(self) -> float:
        """Fraction of HBM power saved by gating the buffer-die I/O
        (the ~10% opportunity the paper notes)."""
        return self.phy_residual


@dataclass(frozen=True)
class SystemPowerParams:
    """System-level power constants (watts)."""

    proc_peak_w: float = 225.0
    proc_stall_w: float = 60.0  # all CUs spinning on memory
    proc_issue_w: float = 55.0  # few thread groups driving PIM commands
    host_cpu_w: float = 100.0  # pre/post-processing on the host CPU
    mem_idle_w: float = 30.0  # 4 devices, refresh + standby
    mem_stream_w: float = 100.0  # 4 devices + SoC PHYs at full stream


@dataclass
class PowerPhase:
    """One contiguous execution phase for the Fig. 13 trace."""

    name: str
    start_ns: float
    duration_ns: float
    power_w: float


class EnergyModel:
    """Couples the latency model with the power models."""

    def __init__(
        self,
        system: SystemPerf,
        device: DevicePowerModel = DevicePowerModel(),
        power: SystemPowerParams = SystemPowerParams(),
        bandwidth_scale: float = 1.0,
    ):
        """``bandwidth_scale`` models PROC-HBMx4 (4.0): memory bandwidth,
        idle and streaming power all scale together."""
        from dataclasses import replace

        if bandwidth_scale != 1.0:
            system = replace(system, num_pchs=int(system.num_pchs * bandwidth_scale))
        self.latency = LatencyModel(system)
        self.sys = system
        self.device = device
        self.power = power
        self.bandwidth_scale = bandwidth_scale

    # -- per-phase power -----------------------------------------------------------

    def _mem_power(self, bw_utilisation: float, pim_active: bool) -> float:
        p = self.power
        scale = self.bandwidth_scale
        idle = p.mem_idle_w * scale
        if pim_active:
            stream = p.mem_stream_w * self.device.pim_total
            return idle + (stream - p.mem_idle_w) * max(0.0, min(1.0, bw_utilisation))
        stream = p.mem_stream_w * scale
        return idle + (stream - idle) * max(0.0, min(1.0, bw_utilisation))

    def _proc_power(self, compute_utilisation: float, phase: str) -> float:
        p = self.power
        if phase == "pim":
            return p.proc_issue_w
        if phase == "hostwork":
            return p.host_cpu_w
        u = max(0.0, min(1.0, compute_utilisation))
        return p.proc_stall_w + (p.proc_peak_w - p.proc_stall_w) * u

    # -- kernel-level (Fig. 12 microbenchmarks) ---------------------------------------

    def gemv_phase(self, m: int, n: int, batch: int = 1) -> PowerPhase:
        """Duration and system power of one GEMV on this platform."""
        lat = self.latency
        if self.sys.kind == "pim":
            t = lat.pim_gemv(m, n, batch)
            # Fraction of cycles the AB-PIM datapath is actively streaming.
            tiles, chunks = lat._gemv_shape(m, n)
            busy = tiles * (2 * chunks + 1) * 8 * self.sys.tccd_l
            util = busy * self.sys.tck_ns / max(t.ns, 1.0)
            power = self._proc_power(0.0, "pim") + self._mem_power(util, True)
            return PowerPhase(f"gemv{m}x{n}", 0.0, t.ns, power)
        t = lat.host_gemv(m, n, batch)
        eff = lat.cal.gemv_efficiency(m, batch)
        u_compute = 2 * m * n * batch / (t.ns * 1e-9) / self.sys.peak_flops
        power = self._proc_power(u_compute, "host") + self._mem_power(eff, False)
        return PowerPhase(f"gemv{m}x{n}", 0.0, t.ns, power)

    def add_phase(self, elements: int, batch: int = 1) -> PowerPhase:
        """Duration and system power of one elementwise ADD."""
        lat = self.latency
        if self.sys.kind == "pim":
            t = lat.pim_add(elements, batch)
            # Elementwise kernels keep every bank pair streaming through
            # FILL/op/MOV phases: the device runs at near-peak activity.
            power = self._proc_power(0.0, "pim") + self._mem_power(1.0, True)
            return PowerPhase(f"add{elements}", 0.0, t.ns, power)
        t = lat.host_stream(elements, 3, batch)
        power = self._proc_power(0.02, "host") + self._mem_power(
            lat.cal.host_stream_eff, False
        )
        return PowerPhase(f"add{elements}", 0.0, t.ns, power)

    def kernel_energy_j(self, phase: PowerPhase) -> float:
        """Energy of one phase in joules."""
        return phase.power_w * phase.duration_ns * 1e-9

    # -- application-level (Figs. 12 and 13) -------------------------------------------

    def app_phases(self, app: AppModel, batch: int = 1) -> List[PowerPhase]:
        """Per-layer (duration, power) phases of one application run."""
        lat = self.latency
        phases: List[PowerPhase] = []
        now = 0.0
        for layer in app.layers:
            t = lat.layer_time(layer, batch).ns
            offloaded = self.sys.kind == "pim" and lat.offloads(layer)
            if isinstance(layer, HostWork):
                power = self._proc_power(0.0, "hostwork") + self._mem_power(0.05, False)
            elif offloaded:
                # Offloaded layers interleave AB-PIM bursts with launch and
                # activation gaps: effective device duty is below peak.
                power = self._proc_power(0.0, "pim") + self._mem_power(0.45, True)
            elif isinstance(layer, Conv):
                util = lat.cal.conv_utilisation(batch)
                power = self._proc_power(util, "host") + self._mem_power(0.3, False)
            elif isinstance(layer, (Bn, Add)):
                power = self._proc_power(0.02, "host") + self._mem_power(
                    lat.cal.host_stream_eff, False
                )
            else:  # host-executed GEMV-like layer
                m = layer.gate_m if isinstance(layer, Lstm) else layer.m
                eff = lat.cal.gemv_efficiency(m, batch, lstm=isinstance(layer, Lstm))
                power = self._proc_power(0.05, "host") + self._mem_power(eff, False)
            phases.append(PowerPhase(layer.name, now, t, power))
            now += t
        return phases

    def app_energy_j(self, app: AppModel, batch: int = 1) -> Tuple[float, float]:
        """(energy in joules, total time in ns)."""
        phases = self.app_phases(app, batch)
        energy = sum(p.power_w * p.duration_ns * 1e-9 for p in phases)
        total = sum(p.duration_ns for p in phases)
        return energy, total

    def app_average_power_w(self, app: AppModel, batch: int = 1) -> float:
        """Time-weighted average system power over one inference."""
        energy, total = self.app_energy_j(app, batch)
        return energy / (total * 1e-9)

    def power_trace(
        self, app: AppModel, batch: int = 1, points: int = 64
    ) -> List[Tuple[float, float]]:
        """(time_us, power_w) samples over one inference (Fig. 13)."""
        phases = self.app_phases(app, batch)
        total = sum(p.duration_ns for p in phases)
        samples: List[Tuple[float, float]] = []
        for i in range(points):
            t = total * (i + 0.5) / points
            acc = 0.0
            current = phases[-1].power_w
            for p in phases:
                if acc <= t < acc + p.duration_ns:
                    current = p.power_w
                    break
                acc += p.duration_ns
            samples.append((t / 1000.0, current))
        return samples
