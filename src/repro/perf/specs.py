"""Derived device specifications (Tables IV and V).

Everything here is computed from first principles out of the architectural
parameters — lane counts, clock frequencies, bank geometry — and the bench
``bench_tables4_5_specs.py`` prints the derived values next to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..dram.pseudochannel import BANKS_PER_PCH
from ..pim.device import UNITS_PER_PCH
from ..pim.isa import CRF_ENTRIES, GRF_REGS, SRF_REGS
from ..pim.registers import GRF_REG_BYTES, LANES

__all__ = ["PimUnitSpec", "PimDeviceSpec"]


@dataclass(frozen=True)
class PimUnitSpec:
    """Table IV: the PIM execution unit."""

    lanes: int = LANES
    lane_bits: int = 16
    freq_mhz_min: float = 250.0
    freq_mhz_max: float = 300.0
    gate_count: int = 200_000
    area_mm2: float = 0.712

    @property
    def datapath_bits(self) -> int:
        return self.lanes * self.lane_bits  # 256

    @property
    def num_multipliers(self) -> int:
        return self.lanes

    @property
    def num_adders(self) -> int:
        return self.lanes

    @property
    def peak_gflops(self) -> float:
        """Throughput at max frequency: lanes x (mul+add) x f."""
        return self.lanes * 2 * self.freq_mhz_max / 1000.0

    @property
    def crf_bits(self) -> int:
        return 32 * CRF_ENTRIES

    @property
    def grf_bits(self) -> int:
        return GRF_REG_BYTES * 8 * 2 * GRF_REGS  # 16 x 256-bit

    @property
    def srf_bits(self) -> int:
        return 16 * 2 * SRF_REGS  # 16 x 16-bit

    def as_table(self) -> Dict[str, str]:
        """Render Table IV as label -> value strings."""
        return {
            "# of MUL/ADD FPUs": f"{self.num_multipliers}/{self.num_adders}",
            "Datapath Width": f"{self.datapath_bits} bits ({self.lane_bits} bits x {self.lanes} lanes)",
            "Operating Frequency": f"{self.freq_mhz_min:.0f}MHz ~ {self.freq_mhz_max:.0f}MHz",
            "Throughput": f"{self.peak_gflops:.1f} GFLOPs at {self.freq_mhz_max:.0f}MHz",
            "Equivalent Gate Count": f"{self.gate_count:,}",
            "Instruction Registers": f"32b x {CRF_ENTRIES} (CRF)",
            "Vector and Scalar Registers": f"256b x {2 * GRF_REGS} (GRF), 16b x {2 * SRF_REGS} (SRF)",
            "Area": f"{self.area_mm2} mm^2",
        }


@dataclass(frozen=True)
class PimDeviceSpec:
    """Table V: the PIM-HBM device (one stack)."""

    ext_clock_ghz_min: float = 1.0
    ext_clock_ghz_max: float = 1.2
    num_pchs: int = 16
    banks_per_pch: int = BANKS_PER_PCH
    units_per_pch: int = UNITS_PER_PCH
    bank_io_bits: int = 64
    pim_dies: int = 4
    pim_die_gbit: int = 4
    hbm_dies: int = 4
    hbm_die_gbit: int = 8
    die_area_mm2: float = 84.4

    @property
    def data_rate_gbps(self) -> float:
        """Per-pin data rate (DDR on the external clock)."""
        return 2 * self.ext_clock_ghz_max

    @property
    def onchip_bandwidth_tbps(self) -> float:
        """On-chip compute bandwidth: 8 operating banks per pCH at the DRAM
        core rate (half the I/O rate, i.e. the tCCD_L cadence)."""
        core_gbps = self.ext_clock_ghz_max  # 1.2 Gb/s per wire at tCCD_L
        per_pch = core_gbps * self.bank_io_bits * self.units_per_pch / 8  # GB/s
        return per_pch * self.num_pchs / 1000.0

    @property
    def onchip_bandwidth_tbps_min(self) -> float:
        per_pch = self.ext_clock_ghz_min * self.bank_io_bits * self.units_per_pch / 8
        return per_pch * self.num_pchs / 1000.0

    @property
    def io_bandwidth_gbps(self) -> float:
        """Off-chip I/O bandwidth: one operating bank per pCH at full rate."""
        return self.data_rate_gbps * self.bank_io_bits * 1 * self.num_pchs / 8

    @property
    def capacity_gbyte(self) -> float:
        total_gbit = self.pim_dies * self.pim_die_gbit + self.hbm_dies * self.hbm_die_gbit
        return total_gbit / 8

    @property
    def pim_units_per_die(self) -> int:
        """4 pCHs per die x 8 units (Section VI: 32 per die)."""
        return 4 * self.units_per_pch

    def as_table(self) -> Dict[str, str]:
        """Render Table V as label -> value strings."""
        return {
            "Ext. Clocking Frequency": f"{self.ext_clock_ghz_min:.0f}~{self.ext_clock_ghz_max:.1f}GHz",
            "# of pCHs": str(self.num_pchs),
            "# of banks per pCH": str(self.banks_per_pch),
            "# of PIM exe. units per pCH": str(self.units_per_pch),
            "On-Chip (Compute) Bandwidth": (
                f"{self.onchip_bandwidth_tbps_min:.0f}TB/s~{self.onchip_bandwidth_tbps:.3f}TB/s"
            ),
            "Off-Chip (I/O) Bandwidth": f"{self.io_bandwidth_gbps:.1f}GB/s (max)",
            "Capacity": f"{self.capacity_gbyte:.0f}GB",
            "Area of DRAM Die": f"{self.die_area_mm2} mm^2",
        }
