"""Thermal/TDP headroom check (Section VII-C).

The paper's power argument is ultimately thermal: "the power consumption of
PIM-HBM is slightly higher than that of HBM, staying within the thermal
design power (TDP) limit set by the original HBM-based system", and with
the buffer-die I/O gated, PIM "can also offer a thermal advantage over
HBM".  This model turns those statements into a checkable budget: device
power under a workload mix vs the SiP's per-stack TDP allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .energy import DevicePowerModel

__all__ = ["ThermalBudget", "thermal_report"]


@dataclass(frozen=True)
class ThermalBudget:
    """Per-stack thermal allocation of the SiP.

    ``hbm_streaming_w`` is the HBM device's power at full streaming (the
    Fig. 11 normalisation point); the SiP's cooling is provisioned with
    ``margin`` headroom above it.
    """

    hbm_streaming_w: float = 15.0
    margin: float = 0.10

    @property
    def tdp_w(self) -> float:
        """The per-stack TDP the original HBM system was designed for."""
        return self.hbm_streaming_w * (1.0 + self.margin)


def thermal_report(
    device: DevicePowerModel = DevicePowerModel(),
    budget: ThermalBudget = ThermalBudget(),
) -> Dict[str, float]:
    """Power vs TDP for the three operating points the paper discusses.

    Returns watts for HBM streaming, AB-PIM execution, and AB-PIM with the
    buffer-die I/O gated, plus each point's TDP headroom fraction.
    """
    hbm_w = budget.hbm_streaming_w
    pim_w = hbm_w * device.pim_total
    gated_w = hbm_w * (device.pim_total - device.gated_buffer_saving)
    return {
        "tdp_w": budget.tdp_w,
        "hbm_streaming_w": hbm_w,
        "pim_w": pim_w,
        "pim_gated_w": gated_w,
        "hbm_headroom": 1.0 - hbm_w / budget.tdp_w,
        "pim_headroom": 1.0 - pim_w / budget.tdp_w,
        "pim_gated_headroom": 1.0 - gated_w / budget.tdp_w,
        "within_tdp": float(pim_w <= budget.tdp_w),
        "thermal_advantage_when_gated": float(gated_w < hbm_w),
    }
