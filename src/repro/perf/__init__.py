"""Performance and energy models: kernel/app latency, power, specs, MACs."""

from .activity import ActivityBreakdown, ActivityEnergyModel, ActivityEnergyParams
from .energy import DevicePowerModel, EnergyModel, PowerPhase, SystemPowerParams
from .latency import PIM_HBM, PROC_HBM, Calibration, LatencyModel, SystemPerf
from .macunits import PAPER_TABLE1, TABLE1_SPECS, MacUnitModel, MacUnitSpec
from .specs import PimDeviceSpec, PimUnitSpec
from .thermal import ThermalBudget, thermal_report

__all__ = [
    "ActivityBreakdown",
    "ActivityEnergyModel",
    "ActivityEnergyParams",
    "DevicePowerModel",
    "EnergyModel",
    "PowerPhase",
    "SystemPowerParams",
    "PIM_HBM",
    "PROC_HBM",
    "Calibration",
    "LatencyModel",
    "SystemPerf",
    "PAPER_TABLE1",
    "TABLE1_SPECS",
    "MacUnitModel",
    "MacUnitSpec",
    "PimDeviceSpec",
    "PimUnitSpec",
    "ThermalBudget",
    "thermal_report",
]
