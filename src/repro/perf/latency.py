"""Kernel- and application-level execution-time model (Fig. 10).

Two sides are modelled:

* **Host (PROC-HBM)** — a roofline with software-stack efficiencies: each
  kernel runs at ``max(compute time, traffic / (BW * efficiency))`` plus a
  kernel-launch overhead.  The efficiencies are the *calibrated
  substitution* for the commercial host's BLAS behaviour (we cannot run the
  vendor library): the paper itself attributes GEMV's 11.2x to the host
  kernel "not optimized to fully utilize the off-chip memory bandwidth".
* **PIM (PIM-HBM)** — an analytic mirror of the command streams the
  functional simulator executes: column commands at the tCCD_L cadence,
  a fence (thread-group barrier) after every 8-command AAM window, row
  switches, mode transitions, and partial-sum readback.  Tests check the
  analytic cycle counts against the cycle-accurate simulator.

All calibrated constants live in :class:`Calibration` with their paper
anchors; EXPERIMENTS.md records model-vs-paper for every reported number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..apps.layers import Add, Bn, Conv, Embedding, Fc, HostWork, Layer, Lstm
from ..apps.models import AppModel

__all__ = ["Calibration", "SystemPerf", "LatencyModel", "PROC_HBM", "PIM_HBM"]

_COL = 8  # AAM window: commands per fence
_LANES = 16
_UNITS = 8
_TILE_OUT = _UNITS * _LANES  # 128 outputs per tile per pCH


@dataclass(frozen=True)
class Calibration:
    """Calibrated software-stack constants (paper anchors in comments)."""

    # Host GEMV bandwidth efficiency at M=1024, batch 1.  Anchor: GEMV1
    # speedup 11.2x (Section VII-B).
    host_gemv_eff_base: float = 0.045
    # Efficiency grows with row count (more parallelism exposed).
    host_gemv_eff_size_exp: float = 0.5
    # Batching turns GEMV into GEMM; library efficiency rises ~B^2 until
    # the GEMM ceiling.  Anchors: B2 ratio 3.2x, B4 crossover (Fig. 10).
    host_gemm_eff_batch_exp: float = 2.0
    host_gemm_eff_max: float = 0.75
    # LSTM layers batch less effectively than raw GEMM library calls.
    # Anchor: DS2 ratio falling 3.5x (B1) -> 1.6x (B2) (Fig. 10).
    host_lstm_eff_batch_exp: float = 0.9
    # Streaming level-1 kernels (ADD/BN/ReLU) on the host.
    host_stream_eff: float = 0.80
    # Convolution compute utilisation at batch 1 (small-batch convolutions
    # leave most of the device idle); batching recovers utilisation.
    host_conv_util: float = 0.04
    host_conv_util_batch_exp: float = 1.0
    host_conv_util_max: float = 0.60
    # LLC batch-reuse efficiency.  Anchor: miss rate ~100% at B1 falling to
    # 70-80% at B4 (Fig. 10): miss = 1 - reuse*(B-1)/B.
    llc_batch_reuse: float = 0.33
    # Thread-group barrier cost in DRAM CA cycles.  Anchor: ADD speedup
    # 1.6x at B1 (Section VII-B).
    fence_cycles: int = 22
    # One kernel dispatch (host -> device).
    kernel_launch_ns: float = 6000.0
    # Reconfiguring the PIM data path for a *different* operator (CRF
    # reprogram, mode transitions, memory-manager lookup, channel barriers).
    # Resident operators invoked back to back (the microbenchmark steady
    # state) do not pay it.  Anchor: GNMT's per-step, per-layer decoder
    # kernel calls limiting its end-to-end gain to 1.5x (Section VII-B).
    pim_operator_switch_ns: float = 110000.0
    # PIM session setup (mode transitions + CRF/SRF programming).
    pim_setup_cycles: int = 150
    # PRE+ACT pair when the lock-step stream switches rows.
    row_switch_cycles: int = 28
    # Bus turnaround padding per elementwise group (RD->WR->RD).
    turnaround_cycles: int = 20

    def llc_miss_rate(self, batch: int) -> float:
        """Modelled LLC miss rate at a batch size (Fig. 10 study)."""
        return 1.0 - self.llc_batch_reuse * (batch - 1) / batch

    def gemv_efficiency(self, m: int, batch: int, lstm: bool = False) -> float:
        """Host library's achieved fraction of peak bandwidth."""
        base = self.host_gemv_eff_base * (m / 1024.0) ** self.host_gemv_eff_size_exp
        exp = self.host_lstm_eff_batch_exp if lstm else self.host_gemm_eff_batch_exp
        return min(self.host_gemm_eff_max, base * batch**exp)

    def conv_utilisation(self, batch: int) -> float:
        """Host convolution compute utilisation at a batch size."""
        return min(
            self.host_conv_util_max,
            self.host_conv_util * batch**self.host_conv_util_batch_exp,
        )


@dataclass(frozen=True)
class SystemPerf:
    """Static parameters of one evaluation platform."""

    name: str
    kind: str  # "hbm" or "pim"
    num_pchs: int = 64  # 4 devices x 16 pCH (Section VI)
    tck_ns: float = 1.0 / 1.2
    tccd_l: int = 4
    tccd_s: int = 2
    col_bytes: int = 32
    cols_per_row: int = 32
    peak_flops: float = 26.5e12  # 60 CUs x 128 FP16 FLOP x 1.725 GHz * 2
    cal: Calibration = field(default_factory=Calibration)

    @property
    def offchip_bw(self) -> float:
        """Peak off-chip bandwidth in bytes/s (1.229 TB/s for 64 pCHs)."""
        return self.num_pchs * self.col_bytes / (self.tccd_s * self.tck_ns * 1e-9)

    @property
    def onchip_bw(self) -> float:
        """PIM compute bandwidth (4x off-chip: 8 banks at tCCD_L)."""
        return self.num_pchs * _UNITS * self.col_bytes / (
            self.tccd_l * self.tck_ns * 1e-9
        )


PROC_HBM = SystemPerf("PROC-HBM", "hbm")
PIM_HBM = SystemPerf("PIM-HBM", "pim")


@dataclass
class KernelTime:
    """One kernel's modelled execution time, with its mechanism split."""

    ns: float
    launch_ns: float = 0.0
    fence_ns: float = 0.0
    mem_ns: float = 0.0
    compute_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        return self.ns


class LatencyModel:
    """Kernel and application times for one platform."""

    def __init__(self, system: SystemPerf):
        self.sys = system
        self.cal = system.cal

    # -- host kernels -----------------------------------------------------------

    def host_gemv(self, m: int, n: int, batch: int = 1, lstm: bool = False) -> KernelTime:
        """Host GEMV time: roofline x calibrated library efficiency."""
        cal = self.cal
        traffic = 2 * m * n * batch * cal.llc_miss_rate(batch)
        eff = cal.gemv_efficiency(m, batch, lstm=lstm)
        mem_ns = traffic / (self.sys.offchip_bw * eff) * 1e9
        compute_ns = 2 * m * n * batch / self.sys.peak_flops * 1e9
        ns = max(mem_ns, compute_ns) + cal.kernel_launch_ns
        return KernelTime(ns, cal.kernel_launch_ns, 0.0, mem_ns, compute_ns)

    def host_stream(self, elements: int, accesses: int, batch: int = 1) -> KernelTime:
        """Streaming level-1 kernel: ``accesses`` 2-byte touches/element."""
        traffic = accesses * 2 * elements * batch
        mem_ns = traffic / (self.sys.offchip_bw * self.cal.host_stream_eff) * 1e9
        ns = mem_ns + self.cal.kernel_launch_ns
        return KernelTime(ns, self.cal.kernel_launch_ns, 0.0, mem_ns, 0.0)

    def host_conv(self, flops: float, batch: int = 1) -> KernelTime:
        """Host convolution time (compute-bound)."""
        util = self.cal.conv_utilisation(batch)
        compute_ns = flops * batch / (self.sys.peak_flops * util) * 1e9
        ns = compute_ns + self.cal.kernel_launch_ns
        return KernelTime(ns, self.cal.kernel_launch_ns, 0.0, 0.0, compute_ns)

    # -- PIM kernels -------------------------------------------------------------

    def _gemv_shape(self, m: int, n: int) -> Tuple[int, int]:
        """(tiles, chunks) of the GEMV layout on this system."""
        n_slice = -(-n // self.sys.num_pchs)
        n_slice = -(-n_slice // _COL) * _COL
        chunks = n_slice // _COL
        tiles = -(-m // _TILE_OUT)
        return tiles, chunks

    def pim_gemv_cycles(self, m: int, n: int, include_setup: bool = True) -> int:
        """Per-pCH cycle count of one PIM GEMV invocation."""
        cal = self.cal
        t = self.sys
        tiles, chunks = self._gemv_shape(m, n)
        chunks_per_row = t.cols_per_row // _COL
        fence = cal.fence_cycles
        per_tile = (
            (_COL * t.tccd_l + fence)  # zero GRF_B
            + (2 * fence + 2 * t.tccd_l)  # PIM_OP_MODE on/off
            + chunks * (2 * _COL * t.tccd_l + 2 * fence)  # stage + MAC
            + (_COL * t.tccd_l + fence)  # partial-sum epilogue
            + -(-chunks // chunks_per_row) * cal.row_switch_cycles
        )
        readback = tiles * _UNITS * _COL * t.tccd_s
        cycles = tiles * per_tile + readback
        if include_setup:
            cycles += cal.pim_setup_cycles
        return cycles

    def pim_gemv(self, m: int, n: int, batch: int = 1, launches: int = 1) -> KernelTime:
        """PIM GEMV time from the analytic command-stream mirror."""
        cycles = self.pim_gemv_cycles(m, n) * batch
        tiles, chunks = self._gemv_shape(m, n)
        fence_ns = (
            tiles * (2 * chunks + 4) * self.cal.fence_cycles * batch * self.sys.tck_ns
        )
        launch_ns = launches * self.cal.kernel_launch_ns
        ns = cycles * self.sys.tck_ns + launch_ns
        return KernelTime(ns, launch_ns, fence_ns, cycles * self.sys.tck_ns, 0.0)

    def pim_elementwise_cycles(
        self, elements: int, commands_per_group: int, fences_per_group: int,
        include_setup: bool = True,
    ) -> int:
        """Per-pCH cycles of one elementwise kernel invocation."""
        cal = self.cal
        t = self.sys
        per_group_elems = self.sys.num_pchs * _UNITS * _COL * _LANES
        groups = -(-elements // per_group_elems)
        per_group = (
            commands_per_group * t.tccd_l
            + fences_per_group * cal.fence_cycles
            + cal.turnaround_cycles
        )
        groups_per_row = (t.cols_per_row // 2) // _COL
        cycles = groups * per_group + (groups // groups_per_row) * cal.row_switch_cycles
        if include_setup:
            cycles += cal.pim_setup_cycles
        return cycles

    def pim_add(self, elements: int, batch: int = 1) -> KernelTime:
        """PIM elementwise ADD time (24 commands + 3 fences per group)."""
        cycles = self.pim_elementwise_cycles(elements, 24, 3) * batch
        ns = cycles * self.sys.tck_ns + self.cal.kernel_launch_ns
        return KernelTime(ns, self.cal.kernel_launch_ns, 0.0, cycles * self.sys.tck_ns, 0.0)

    def pim_bn(self, elements: int, batch: int = 1) -> KernelTime:
        """PIM batch-norm time (16 commands + 2 fences per group)."""
        cycles = self.pim_elementwise_cycles(elements, 16, 2) * batch
        ns = cycles * self.sys.tck_ns + self.cal.kernel_launch_ns
        return KernelTime(ns, self.cal.kernel_launch_ns, 0.0, cycles * self.sys.tck_ns, 0.0)

    # -- layer dispatch -------------------------------------------------------------

    def lstm_time(self, layer: Lstm, batch: int) -> KernelTime:
        """One LSTM layer end to end."""
        cal = self.cal
        steps = layer.steps * layer.directions
        if self.sys.kind == "hbm":
            per_step = self.host_gemv(
                layer.gate_m, layer.input_dim + layer.hidden, batch, lstm=True
            )
            # One launch per layer per direction: the host library fuses the
            # step loop into one kernel.
            ns = steps * (per_step.ns - per_step.launch_ns)
            ns += layer.directions * cal.kernel_launch_ns
            return KernelTime(ns, layer.directions * cal.kernel_launch_ns, 0.0, ns, 0.0)
        gemv_x = self.pim_gemv_cycles(layer.gate_m, layer.input_dim)
        gemv_h = self.pim_gemv_cycles(layer.gate_m, layer.hidden)
        cycles = steps * (gemv_x + gemv_h) * batch
        if layer.fused:
            # Whole layer issued as one PIM kernel: one operator switch.
            launch_ns = layer.directions * (
                cal.kernel_launch_ns + cal.pim_operator_switch_ns
            )
        else:
            # Decoder-style: the PIM kernel is re-invoked (and the datapath
            # reconfigured) every step because the next input depends on
            # this step's output.
            launch_ns = steps * (cal.kernel_launch_ns + cal.pim_operator_switch_ns)
        # Host-side activations overlap with the next step's command
        # generation; their residual cost is folded into the launch constant.
        ns = cycles * self.sys.tck_ns + launch_ns
        return KernelTime(ns, launch_ns, 0.0, cycles * self.sys.tck_ns, 0.0)

    def fc_time(self, layer: Fc, batch: int) -> KernelTime:
        """A fully connected layer: per-call GEMV plus operator switches."""
        if self.sys.kind == "hbm":
            one = self.host_gemv(layer.m, layer.n, batch)
            return KernelTime(one.ns * layer.calls, one.launch_ns * layer.calls)
        one = self.pim_gemv(layer.m, layer.n, batch)
        # Each call in an alternating layer sequence reconfigures the
        # operator (applications interleave FCs with other layers).
        switch_ns = layer.calls * self.cal.pim_operator_switch_ns
        return KernelTime(
            one.ns * layer.calls + switch_ns,
            one.launch_ns * layer.calls + switch_ns,
        )

    def _raw_layer_time(self, layer: Layer, batch: int) -> KernelTime:
        """Layer time on this platform with no offload policy applied."""
        if isinstance(layer, Conv):
            return self.host_conv(layer.flops, batch)
        if isinstance(layer, HostWork):
            return KernelTime(layer.ns * batch)
        if isinstance(layer, Lstm):
            return self.lstm_time(layer, batch)
        if isinstance(layer, Fc):
            return self.fc_time(layer, batch)
        if isinstance(layer, Bn):
            if self.sys.kind == "hbm":
                return self.host_stream(layer.elements, 2, batch)
            return self.pim_bn(layer.elements, batch)
        if isinstance(layer, Add):
            if self.sys.kind == "hbm":
                return self.host_stream(layer.elements, 3, batch)
            return self.pim_add(layer.elements, batch)
        if isinstance(layer, Embedding):
            traffic = layer.lookups * 128  # one embedding row per lookup
            ns = traffic / self.sys.offchip_bw * 1e9 + self.cal.kernel_launch_ns
            return KernelTime(ns)
        raise TypeError(f"unknown layer {layer!r}")

    def _host_view(self) -> "LatencyModel":
        if self.sys.kind == "hbm":
            return self
        view = getattr(self, "_host_view_cache", None)
        if view is None:
            view = LatencyModel(replace(self.sys, kind="hbm"))
            self._host_view_cache = view
        return view

    def offloads(self, layer: Layer) -> bool:
        """The preprocessor's static offload decision (Section V-A).

        Taken once per operator at deployment, for the latency-sensitive
        batch-1 case the system targets: offload only if PIM is faster.
        The decision then applies at every batch size, which is why Fig. 10
        shows PIM-HBM *losing* to HBM at batch 4 instead of matching it.
        """
        if self.sys.kind == "hbm" or not getattr(layer, "pim_eligible", False):
            return False
        pim_b1 = self._raw_layer_time(layer, 1).ns
        host_b1 = self._host_view()._raw_layer_time(layer, 1).ns
        return pim_b1 < host_b1

    def layer_time(self, layer: Layer, batch: int) -> KernelTime:
        """One layer's time under the static offload policy."""
        if self.sys.kind == "pim" and layer.pim_eligible and not self.offloads(layer):
            return self._host_view()._raw_layer_time(layer, batch)
        return self._raw_layer_time(layer, batch)

    # -- applications --------------------------------------------------------------

    def app_time(self, app: AppModel, batch: int = 1) -> Dict[str, float]:
        """Per-layer and total time (ns) for one application."""
        breakdown = {}
        total = 0.0
        for layer in app.layers:
            t = self.layer_time(layer, batch).ns
            breakdown[layer.name] = t
            total += t
        breakdown["total"] = total
        return breakdown

    def without_fences(self) -> "LatencyModel":
        """The Section VII-B study: a controller that preserves command
        order in PIM mode, removing all fence costs."""
        return LatencyModel(
            replace(self.sys, cal=replace(self.cal, fence_cycles=0))
        )
