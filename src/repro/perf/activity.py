"""Activity-based energy accounting from simulator event counts.

Where :class:`repro.perf.energy.DevicePowerModel` is the *analytic* Fig. 11
model (component power fractions under steady streaming), this module
derives the same breakdown bottom-up from what the functional simulator
actually did: ACT counts, column commands by mode, PIM instruction and
bank-access counters.  Tests cross-validate the two on live kernels —
the energy-per-bit advantage must emerge from counted events, not from
assumed fractions.

Per-event energies are expressed in arbitrary units normalised so that one
HBM streaming read (one 32-byte column through cell, IOSA, global bus and
PHY) costs 1.0, split per the calibrated Fig. 11 fractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from ..dram.commands import CommandType
from .energy import DevicePowerModel

__all__ = ["ActivityEnergyParams", "ActivityBreakdown", "ActivityEnergyModel"]


@dataclass(frozen=True)
class ActivityEnergyParams:
    """Per-event energies (arbitrary units; one HBM streaming RD == 1.0)."""

    # One bank's array + sense path for one 32 B column access.
    cell_per_access: float = 0.08
    iosa_per_access: float = 0.12
    # Moving one 32 B burst across the internal global bus / off-chip PHY.
    bus_per_burst: float = 0.45
    phy_per_burst: float = 0.35
    # Row activation (shared across the column accesses of that row; the
    # steady-stream Fig. 11 operating point amortises it to ~0).
    act_energy: float = 1.6
    # One PIM instruction across 16 lanes (MAC-class; Table I scale).
    pim_instruction: float = 0.11
    # Residual buffer-die toggle per AB-PIM command (the ~10% Fig. 11 notes).
    buffer_residual_per_cmd: float = 0.10
    # Command/control distribution per AB-mode command.
    control_per_cmd: float = 0.045

    @classmethod
    def from_power_model(cls, power: DevicePowerModel) -> "ActivityEnergyParams":
        """Derive per-event energies from the Fig. 11 fractions."""
        return cls(
            cell_per_access=power.cell,
            iosa_per_access=power.iosa,
            bus_per_burst=power.global_bus,
            phy_per_burst=power.io_phy,
            pim_instruction=power.pim_units / 1.0,
            buffer_residual_per_cmd=power.phy_residual,
            control_per_cmd=power.bus_residual,
        )


@dataclass
class ActivityBreakdown:
    """Accumulated component energies (same keys as the Fig. 11 model)."""

    cell: float = 0.0
    iosa_decoders: float = 0.0
    global_bus: float = 0.0
    io_phy: float = 0.0
    pim_units: float = 0.0
    activation: float = 0.0
    bits_processed: int = 0

    @property
    def total(self) -> float:
        return (
            self.cell + self.iosa_decoders + self.global_bus
            + self.io_phy + self.pim_units + self.activation
        )

    @property
    def energy_per_bit(self) -> float:
        return self.total / self.bits_processed if self.bits_processed else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Component energies keyed like the Fig. 11 breakdown."""
        return {
            "cell": self.cell,
            "iosa_decoders": self.iosa_decoders,
            "global_bus": self.global_bus,
            "io_phy": self.io_phy,
            "pim_units": self.pim_units,
            "activation": self.activation,
        }


class ActivityEnergyModel:
    """Counts events on (PIM-)pseudo-channels into component energies."""

    def __init__(self, params: ActivityEnergyParams = ActivityEnergyParams()):
        self.params = params

    def host_breakdown(self, channels: Iterable, col_bytes: int = 32) -> ActivityBreakdown:
        """Energy of standard-DRAM traffic (every column crosses the PHY)."""
        p = self.params
        out = ActivityBreakdown()
        for ch in channels:
            columns = (
                ch.cmd_counts[CommandType.RD] + ch.cmd_counts[CommandType.WR]
            )
            pim_cols = getattr(ch, "pim_triggered_columns", 0)
            ab_cols = getattr(ch, "ab_broadcast_columns", 0)
            host_cols = columns - pim_cols - ab_cols
            out.cell += host_cols * p.cell_per_access
            out.iosa_decoders += host_cols * p.iosa_per_access
            out.global_bus += host_cols * p.bus_per_burst
            out.io_phy += host_cols * p.phy_per_burst
            out.activation += ch.cmd_counts[CommandType.ACT] * p.act_energy
            out.bits_processed += host_cols * col_bytes * 8
        return out

    def pim_breakdown(self, channels: Iterable, col_bytes: int = 32) -> ActivityBreakdown:
        """Energy of the AB-PIM activity on PIM pseudo-channels.

        Bank-side energy counts *actual* unit bank accesses (FILL/MAC reads,
        MOV writes); the staged WR bursts still cross the PHY from the host;
        internal global-bus transport is skipped (data stops at the bank
        I/O), leaving the control residual.
        """
        p = self.params
        out = ActivityBreakdown()
        for ch in channels:
            pim_cols = getattr(ch, "pim_triggered_columns", 0)
            bank_accesses = 0
            instructions = 0
            for unit in getattr(ch, "units", ()):
                bank_accesses += unit.stats.bank_reads + unit.stats.bank_writes
                instructions += unit.stats.instructions
            out.cell += bank_accesses * p.cell_per_access
            out.iosa_decoders += bank_accesses * p.iosa_per_access
            out.global_bus += pim_cols * p.control_per_cmd
            out.io_phy += pim_cols * p.buffer_residual_per_cmd
            out.pim_units += instructions * p.pim_instruction
            out.activation += 0.0  # counted on the host side per command mix
            out.bits_processed += bank_accesses * col_bytes * 8
        return out

    def energy_per_bit_advantage(
        self, pim_channels: Iterable, host_channels: Iterable
    ) -> float:
        """Measured energy/bit ratio: host traffic over AB-PIM traffic."""
        pim = self.pim_breakdown(pim_channels)
        host = self.host_breakdown(host_channels)
        if pim.energy_per_bit == 0:
            raise ValueError("no PIM activity recorded")
        return host.energy_per_bit / pim.energy_per_bit
