"""CRC32-framed, segment-rotated write-ahead log for the serving stack.

Record format — one frame per record, appended to the newest segment::

    +----------------+----------------+----------------------+
    | u32 length (LE)| u32 crc32 (LE) | pickled record bytes |
    +----------------+----------------+----------------------+

``length`` is the payload byte count and ``crc32`` covers exactly those
bytes, so a reader can always tell a torn tail write (the crash model:
the process died mid-``write``) from a complete record.  Segments are
named ``wal-00000001.seg``, ``wal-00000002.seg``, ... and rotate once
the current one crosses ``segment_bytes``, keeping any single file small
enough to scan cheaply and letting retention policies drop whole
prefixes.

Torn-tail tolerance is the load-bearing property: a bad frame (short
header, short payload, CRC mismatch) at the tail of the *newest* segment
ends the scan silently — that is the expected wreckage of a SIGKILL.
The same damage anywhere else means the journal cannot be trusted and
raises :class:`~repro.errors.PimJournalError` instead of quietly
dropping acknowledged records.

Two record kinds matter to recovery (see :mod:`repro.journal.recovery`):

* ``{"kind": "accepted", "rid", "trace_id", "digest", "request"}`` —
  appended at admission, before the request is placed.  ``digest`` is a
  content hash of the pickled frozen :class:`~repro.stack.api.Request`.
* ``{"kind": "outcome", "rid", "trace_id", "outcome", "shard",
  "result"}`` — appended when the request reaches a terminal outcome;
  carries the result bytes so recovery can restore terminal requests
  bit-exactly without re-executing them.

A ``{"kind": "meta", ...}`` record written at journal open carries the
session's ``SystemConfig``/``ServerConfig`` so ``recover(journal_dir)``
can rebuild a matching fabric without extra arguments.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
from typing import Any, Dict, Iterator, List, Optional

from ..errors import PimJournalError
import zlib

__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "JournalWriter",
    "iter_records",
    "list_segments",
    "read_records",
    "request_digest",
    "segment_path",
]

_HEADER = struct.Struct("<II")

#: Rotation threshold: a segment that has crossed this many bytes is
#: closed and the next append opens a fresh one.  Small enough that a
#: torn tail never risks more than ~1 MiB of scan, large enough that a
#: serve-bench run stays in a handful of files.
DEFAULT_SEGMENT_BYTES = 1 << 20

_PREFIX = "wal-"
_SUFFIX = ".seg"


def segment_path(journal_dir: str, index: int) -> str:
    """Path of segment ``index`` (1-based) under ``journal_dir``."""
    return os.path.join(journal_dir, f"{_PREFIX}{index:08d}{_SUFFIX}")


def list_segments(journal_dir: str) -> List[str]:
    """Existing segment paths under ``journal_dir``, in append order."""
    try:
        names = os.listdir(journal_dir)
    except FileNotFoundError:
        return []
    except OSError as exc:
        raise PimJournalError(f"cannot list journal {journal_dir!r}: {exc}")
    return [
        os.path.join(journal_dir, name)
        for name in sorted(names)
        if name.startswith(_PREFIX) and name.endswith(_SUFFIX)
    ]


def request_digest(request: Any) -> str:
    """Content hash (sha1 hex) of a picklable request object."""
    blob = pickle.dumps(request, protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha1(blob).hexdigest()


class JournalWriter:
    """Appends framed records to the newest segment of a journal.

    ``sync=True`` makes every append flush *and* fsync before returning
    (``ServerConfig.journal_sync``) — durable against machine death, not
    just process death, at the cost of one fsync per record.  The writer
    continues an existing journal (new appends land after the surviving
    records), so recovery can append its own outcome records to the same
    directory and make a second ``recover()`` a no-op.
    """

    def __init__(
        self,
        journal_dir: str,
        *,
        sync: bool = False,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ):
        self.journal_dir = journal_dir
        self.sync = bool(sync)
        self.segment_bytes = int(segment_bytes)
        if self.segment_bytes < len(_HEADER.pack(0, 0)) + 1:
            raise PimJournalError(
                f"segment_bytes={segment_bytes} cannot hold a single frame"
            )
        try:
            os.makedirs(journal_dir, exist_ok=True)
        except OSError as exc:
            raise PimJournalError(
                f"cannot create journal directory {journal_dir!r}: {exc}"
            )
        existing = list_segments(journal_dir)
        if existing:
            self._index = int(os.path.basename(existing[-1])[len(_PREFIX):-len(_SUFFIX)])
            path = existing[-1]
        else:
            self._index = 1
            path = segment_path(journal_dir, self._index)
        try:
            self._file = open(path, "ab")
        except OSError as exc:
            raise PimJournalError(f"cannot open segment {path!r}: {exc}")
        self._size = self._file.tell()
        self.appended = 0

    def append(self, record: Dict[str, Any]) -> None:
        """Frame and append one record; honours rotation and ``sync``."""
        if self._file is None:
            raise PimJournalError("journal writer is closed")
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        if self._size > 0 and self._size + len(frame) > self.segment_bytes:
            self._rotate()
        try:
            self._file.write(frame)
            self._file.flush()
            if self.sync:
                os.fsync(self._file.fileno())
        except OSError as exc:
            raise PimJournalError(
                f"append to journal {self.journal_dir!r} failed: {exc}"
            )
        self._size += len(frame)
        self.appended += 1

    def _rotate(self) -> None:
        self._file.close()
        self._index += 1
        path = segment_path(self.journal_dir, self._index)
        try:
            self._file = open(path, "ab")
        except OSError as exc:
            raise PimJournalError(f"cannot open segment {path!r}: {exc}")
        self._size = self._file.tell()

    # -- record constructors ----------------------------------------------------

    def append_meta(self, system_config: Any, server_config: Any) -> None:
        """Record the session's configs so ``recover()`` needs no args."""
        self.append(
            {
                "kind": "meta",
                "system_config": system_config,
                "server_config": server_config,
            }
        )

    def append_accepted(self, rid: int, request: Any) -> None:
        """Record one admission, content-hashed, before placement."""
        self.append(
            {
                "kind": "accepted",
                "rid": int(rid),
                "trace_id": getattr(request, "trace_id", None),
                "digest": request_digest(request),
                "request": request,
            }
        )

    def append_outcome(
        self,
        rid: int,
        trace_id: Optional[str],
        outcome: str,
        shard: int,
        result: Any,
    ) -> None:
        """Record one terminal outcome, result bytes included."""
        self.append(
            {
                "kind": "outcome",
                "rid": int(rid),
                "trace_id": trace_id,
                "outcome": str(outcome),
                "shard": int(shard),
                "result": result,
            }
        )

    def close(self) -> None:
        """Flush and close the current segment. Idempotent."""
        if self._file is not None:
            try:
                self._file.flush()
                if self.sync:
                    os.fsync(self._file.fileno())
            except OSError:
                pass
            self._file.close()
            self._file = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _iter_segment(path: str, final: bool) -> Iterator[Dict[str, Any]]:
    """Yield the records of one segment.

    ``final`` marks the newest segment: damage at its tail is the
    expected crash wreckage and ends the scan; damage anywhere else
    raises :class:`~repro.errors.PimJournalError`.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise PimJournalError(f"cannot read segment {path!r}: {exc}")
    offset = 0
    header = _HEADER.size
    while offset < len(data):
        torn = f"torn record at {os.path.basename(path)}+{offset}"
        if offset + header > len(data):
            if final:
                return
            raise PimJournalError(f"{torn}: truncated header mid-journal")
        length, crc = _HEADER.unpack_from(data, offset)
        payload = data[offset + header : offset + header + length]
        if len(payload) < length:
            if final:
                return
            raise PimJournalError(f"{torn}: truncated payload mid-journal")
        if zlib.crc32(payload) != crc:
            if final and offset + header + length == len(data):
                return
            raise PimJournalError(f"{torn}: CRC32 mismatch mid-journal")
        try:
            record = pickle.loads(payload)
        except Exception as exc:
            if final and offset + header + length == len(data):
                return
            raise PimJournalError(f"{torn}: unpicklable record ({exc})")
        yield record
        offset += header + length


def iter_records(journal_dir: str) -> Iterator[Dict[str, Any]]:
    """Yield every intact record of a journal, in append order.

    Torn-tail tolerant (see :func:`_iter_segment`); an empty or missing
    directory yields nothing.
    """
    segments = list_segments(journal_dir)
    for i, path in enumerate(segments):
        yield from _iter_segment(path, final=(i == len(segments) - 1))


def read_records(journal_dir: str) -> List[Dict[str, Any]]:
    """Every intact record of a journal, in append order, as a list."""
    return list(iter_records(journal_dir))
