"""Crash-consistent recovery: journal directory in, terminal outcomes out.

:func:`recover` rebuilds the state a killed router left behind:

1. **Scan** the journal (torn-tail tolerant, see :mod:`.wal`) into
   accepted records and terminal outcome records.
2. **Dedupe** accepted records by ``trace_id`` — the first admission of
   a trace id is canonical, later duplicates (a client that resubmitted
   across the crash) are dropped, so recovery is idempotent.
3. **Restore** every request whose terminal outcome was journaled: the
   outcome record carries the result bytes, so the handle comes back
   bit-exact without re-execution.  Its profile entry is synthesised
   with ``recovered=True`` and ``batch_size=0`` — restored work must
   never inflate goodput.
4. **Replay** every journaled-but-unterminated request through a fresh
   :class:`~repro.stack.fabric.PimFabric` (journaling stripped — the
   recovery session appends its own outcome records under the original
   rids), then remap the fresh rids back to the journaled ones so
   handles and profile entries keep their original identity.

Every profile entry and every span the recovery session produces is
tagged ``recovered=True``; a second ``recover()`` over the same
directory restores everything and replays nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import PimJournalError
from ..stack.api import Request, ServerConfig
from ..stack.fabric import FabricHandle, PimFabric
from ..stack.profiler import RequestStats, ServingProfile
from ..stack.runtime import SystemConfig
from .wal import JournalWriter, read_records

__all__ = ["RecoveryReport", "recover"]


@dataclass
class RecoveryReport:
    """What one :func:`recover` pass found, restored, and replayed."""

    journal_dir: str
    #: One handle per journaled request (post-dedupe), ascending rid;
    #: every one carries a terminal outcome and (when served) a result.
    handles: List[FabricHandle]
    #: Recovery-session profile: synthesised entries for restored
    #: requests plus real entries for replayed ones, all ``recovered``.
    profile: ServingProfile
    #: Tracer of the replay fabric (None when nothing was replayed and
    #: no tracer was supplied); recovery spans carry ``recovered=True``.
    tracer: Optional[Any]
    #: Intact journal records scanned (accepted + outcome + meta).
    records: int
    #: Requests whose terminal outcome was restored from the journal.
    restored: int
    #: Requests replayed through the fresh fabric.
    replayed: int
    #: Duplicate accepted records dropped by trace_id dedupe.
    deduped: int
    #: trace_id -> canonical rid, for callers correlating by trace.
    trace_rids: Dict[str, int] = field(default_factory=dict)
    #: Just the replay-session slice of ``profile`` (no synthesised
    #: restored entries) — what a caller resuming a half-served workload
    #: merges into its own running totals without double counting.
    replay_profile: ServingProfile = field(default_factory=ServingProfile)

    def outcomes(self) -> Dict[str, int]:
        """Terminal outcome histogram over the recovered handles."""
        counts: Dict[str, int] = {}
        for handle in self.handles:
            counts[handle.outcome] = counts.get(handle.outcome, 0) + 1
        return counts

    def render(self) -> List[str]:
        """Human-readable recovery report, one line per fact."""
        lines = [
            f"recovery of {self.journal_dir}",
            f"  records scanned    : {self.records}",
            f"  requests journaled : {len(self.handles)} "
            f"(+{self.deduped} deduped by trace_id)",
            f"  restored terminal  : {self.restored}",
            f"  replayed           : {self.replayed}",
        ]
        outcomes = self.outcomes()
        for outcome in sorted(outcomes):
            lines.append(f"  outcome {outcome:<12} : {outcomes[outcome]}")
        return lines


def _dedupe_key(rid: int, trace_id: Optional[str]) -> Tuple:
    # Requests without a trace id cannot be correlated across
    # resubmission: each admission stays its own request.
    return ("trace", trace_id) if trace_id else ("rid", rid)


def recover(
    journal_dir: str,
    *,
    config: Optional[SystemConfig] = None,
    server_config: Optional[ServerConfig] = None,
    workers: int = 2,
    tracer: Optional[Any] = None,
    start_method: Optional[str] = None,
    journal_outcomes: bool = True,
) -> RecoveryReport:
    """Recover one journal directory into terminal outcomes.

    ``config``/``server_config`` default to the journal's own ``meta``
    record (every journaling server writes one at open), so the common
    call is just ``recover(journal_dir)``.  ``journal_outcomes=True``
    appends the replayed outcomes back to the same journal under their
    original rids, making a second pass restore-only.
    """
    records = read_records(journal_dir)
    meta: Dict[str, Any] = {}
    accepted: List[Dict[str, Any]] = []
    outcome_of: Dict[int, Dict[str, Any]] = {}
    for record in records:
        kind = record.get("kind")
        if kind == "meta":
            meta = record
        elif kind == "accepted":
            accepted.append(record)
        elif kind == "outcome":
            outcome_of[record["rid"]] = record
        else:
            raise PimJournalError(f"unknown journal record kind {kind!r}")

    if config is None:
        config = meta.get("system_config") or SystemConfig()
    if server_config is None:
        server_config = meta.get("server_config") or ServerConfig()
    # The recovery fabric must not journal its own admissions: its rids
    # restart at zero and would collide with the journaled ones.  The
    # outcome records recovery owes the journal are appended below,
    # under the original rids.
    server_config = server_config.resolve(config).replace(
        journal_dir=None, journal_sync=False
    )

    # Dedupe: first admission of a trace id wins; remember every rid a
    # key was admitted under so a duplicate's journaled outcome still
    # terminates the canonical rid.
    canonical: Dict[Tuple, Dict[str, Any]] = {}
    rids_of: Dict[Tuple, List[int]] = {}
    deduped = 0
    for record in accepted:
        key = _dedupe_key(record["rid"], record.get("trace_id"))
        if key in canonical:
            deduped += 1
        else:
            canonical[key] = record
        rids_of.setdefault(key, []).append(record["rid"])

    entries: List[Tuple[Dict[str, Any], Optional[Dict[str, Any]]]] = []
    for key, record in canonical.items():
        terminal = None
        for rid in rids_of[key]:
            if rid in outcome_of:
                terminal = outcome_of[rid]
                break
        entries.append((record, terminal))
    entries.sort(key=lambda pair: pair[0]["rid"])

    profile = ServingProfile()
    replay_profile = ServingProfile()
    handles: List[FabricHandle] = []
    pending: List[Dict[str, Any]] = []
    for record, terminal in entries:
        if terminal is None:
            pending.append(record)
            continue
        request: Request = record["request"]
        handle = FabricHandle(record["rid"], request)
        handle.result = terminal.get("result")
        handle.outcome = terminal["outcome"]
        handle.shard = terminal.get("shard", -1)
        handles.append(handle)
        profile.record(
            RequestStats(
                request_id=record["rid"],
                op=request.op,
                arrival_ns=request.arrival_ns,
                start_ns=request.arrival_ns,
                finish_ns=request.arrival_ns,
                batch_size=0,
                lane=-1,
                shard=handle.shard if handle.shard is not None else -1,
                priority=request.priority,
                outcome=handle.outcome,
                trace_id=request.trace_id,
                recovered=True,
            )
        )

    replay_tracer = tracer
    replayed = 0
    if pending:
        fabric = PimFabric(
            config,
            workers=workers,
            server_config=server_config,
            tracer=tracer,
            start_method=start_method,
        )
        replay_tracer = fabric.tracer
        span_base = len(replay_tracer.spans) if replay_tracer else 0
        event_base = len(replay_tracer.events) if replay_tracer else 0
        try:
            rid_of: Dict[int, int] = {}
            fresh: List[FabricHandle] = []
            for record in pending:
                handle = fabric.submit(record["request"])
                rid_of[handle.request_id] = record["rid"]
                fresh.append(handle)
            served = fabric.run()
        finally:
            fabric.close()
        for handle in fresh:
            handle.request_id = rid_of[handle.request_id]
            handles.append(handle)
        replayed = len(fresh)
        for stats in served.requests:
            stats.request_id = rid_of.get(stats.request_id, stats.request_id)
            stats.recovered = True
        served.recovered = len(served.requests)
        replay_profile = served
        profile.merge(served)
        if replay_tracer is not None:
            for span in replay_tracer.spans[span_base:]:
                span.attrs["recovered"] = True
            for event in replay_tracer.events[event_base:]:
                event.attrs["recovered"] = True
        if journal_outcomes:
            with JournalWriter(journal_dir) as writer:
                for handle in sorted(fresh, key=lambda h: h.request_id):
                    writer.append_outcome(
                        handle.request_id,
                        handle.request.trace_id,
                        handle.outcome,
                        -1 if handle.shard is None else handle.shard,
                        handle.result,
                    )

    handles.sort(key=lambda h: h.request_id)
    trace_rids = {
        h.request.trace_id: h.request_id
        for h in handles
        if h.request.trace_id
    }
    return RecoveryReport(
        journal_dir=journal_dir,
        handles=handles,
        profile=profile,
        tracer=replay_tracer,
        records=len(records),
        restored=len(handles) - replayed,
        replayed=replayed,
        deduped=deduped,
        trace_rids=trace_rids,
        replay_profile=replay_profile,
    )
