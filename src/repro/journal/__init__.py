"""Durability layer: write-ahead request journal and crash recovery.

The journal records every accepted :class:`~repro.stack.api.Request` and
every terminal outcome in a CRC32-framed, segment-rotated write-ahead
log (:mod:`repro.journal.wal`), and :func:`repro.journal.recovery.recover`
turns a journal directory left behind by a killed router back into
exactly one bit-exact terminal outcome per journaled request.
"""

from .wal import (
    DEFAULT_SEGMENT_BYTES,
    JournalWriter,
    iter_records,
    list_segments,
    read_records,
    request_digest,
)
from .recovery import RecoveryReport, recover

__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "JournalWriter",
    "RecoveryReport",
    "iter_records",
    "list_segments",
    "read_records",
    "recover",
    "request_digest",
]
